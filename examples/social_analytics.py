#!/usr/bin/env python3
"""Social-media warehouse analytics — the paper's motivating use case.

Loads a synthetic Gleambook network and runs the kinds of analyses the
paper's introduction motivates ("warehousing and analyzing web data,
social media data, message data"): joins, grouping, spatial windows,
keyword search, and a fan-out analysis over the friend graph — showing
EXPLAIN output so the Algebricks rewrites (index selection, semi-joins,
partition-aware exchanges) are visible.

    python examples/social_analytics.py
"""

import os
import shutil
import tempfile

from repro import connect
from repro.datagen import GleambookGenerator

SCHEMA = """
CREATE TYPE UserType AS {
    id: int, alias: string, name: string, userSince: datetime,
    friendIds: {{ int }}, employment: [EmploymentType]
};
CREATE TYPE EmploymentType AS {
    organizationName: string, startDate: date, endDate: date?
};
CREATE TYPE MessageType AS {
    messageId: int, authorId: int, message: string,
    inResponseTo: int?, senderLocation: point?, sendTime: datetime
};
CREATE DATASET Users(UserType) PRIMARY KEY id;
CREATE DATASET Messages(MessageType) PRIMARY KEY messageId;
CREATE INDEX msgAuthorIdx ON Messages(authorId) TYPE BTREE;
CREATE INDEX msgLocIdx ON Messages(senderLocation) TYPE RTREE;
CREATE INDEX msgTextIdx ON Messages(message) TYPE KEYWORD;
"""

ANALYSES = [
    ("Top message authors (join + group + order + limit)", """
        SELECT name AS author, COUNT(*) AS messages
        FROM Users u JOIN Messages m ON m.authorId = u.id
        GROUP BY u.name AS name
        ORDER BY messages DESC, author
        LIMIT 5;
     """),
    ("Messages from a spatial window (R-tree index)", """
        SELECT VALUE m.messageId FROM Messages m
        WHERE spatial_intersect(m.senderLocation,
              rectangle("20.0,20.0 45.0,45.0"))
        ORDER BY m.messageId LIMIT 8;
     """),
    ("Keyword search (inverted index)", """
        SELECT VALUE m.message FROM Messages m
        WHERE ftcontains(m.message, 'customer service')
        LIMIT 3;
     """),
    ("Well-connected recent users (quantifier over a dataset)", """
        SELECT u.alias AS alias, COLL_COUNT(u.friendIds) AS friends
        FROM Users u
        WHERE COLL_COUNT(u.friendIds) >= 8
          AND SOME m IN Messages SATISFIES m.authorId = u.id
        ORDER BY friends DESC LIMIT 5;
     """),
    ("Employment histories, unnested", """
        SELECT org, COUNT(*) AS employees
        FROM Users u UNNEST u.employment e
        GROUP BY e.organizationName AS org
        ORDER BY employees DESC, org LIMIT 5;
     """),
]


def main():
    workdir = tempfile.mkdtemp(prefix="asterix-social-")
    try:
        with connect(os.path.join(workdir, "db")) as db:
            db.set_session_now("2019-04-08T00:00:00")
            db.execute(SCHEMA)

            gen = GleambookGenerator(seed=7)
            print("loading 300 users / 1500 messages ...")
            for user in gen.users(300):
                db.cluster.insert_record("Default.Users", user)
            for message in gen.messages(1500, num_users=300):
                db.cluster.insert_record("Default.Messages", message)
            db.flush_dataset("Users")
            db.flush_dataset("Messages")

            for title, query in ANALYSES:
                print(f"\n== {title}")
                result = db.execute(query)
                for row in result.rows:
                    print("  ", row)
                profile = result.profile
                print(f"   [simulated {profile.simulated_ms:.2f} ms, "
                      f"{profile.physical_reads} page reads]")

            print("\n== EXPLAIN of the spatial query")
            print(db.execute(ANALYSES[1][1], explain=True).plan)
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
