#!/usr/bin/env python3
"""Quickstart: the paper's Figure 3, verbatim.

Runs the exact DDL, external dataset definition, SQL++ SELECT, and SQL++
UPSERT the paper prints in Fig. 3(a)-(d): the Gleambook social network
with every index type, an external web access log queried in situ, and
the "active users by number of friends" analysis.

    python examples/quickstart.py
"""

import os
import shutil
import tempfile

from repro import connect
from repro.datagen import GleambookGenerator

FIG_3A = """
CREATE TYPE GleambookUserType AS {
   id: int,
   alias: string,
   name: string,
   userSince: datetime,
   friendIds: {{ int }},
   employment: [EmploymentType]
};

CREATE TYPE GleambookMessageType AS {
   messageId: int,
   authorId: int,
   inResponseTo: int?,
   senderLocation: point?,
   message: string
};

CREATE TYPE EmploymentType AS {
   organizationName: string,
   startDate: date,
   endDate: date?
};

CREATE DATASET GleambookUsers(GleambookUserType) PRIMARY KEY id;
CREATE DATASET GleambookMessages(GleambookMessageType)
    PRIMARY KEY messageId;

CREATE INDEX gbUserSinceIdx ON GleambookUsers(userSince);
CREATE INDEX gbAuthorIdx ON GleambookMessages(authorId) TYPE BTREE;
CREATE INDEX gbSenderLocIndex ON GleambookMessages(senderLocation)
    TYPE RTREE;
CREATE INDEX gbMessageIdx ON GleambookMessages(message) TYPE KEYWORD;
"""

FIG_3B = """
CREATE TYPE AccessLogType AS CLOSED {{
    ip: string,
    time: string,
    user: string,
    verb: string,
    `path`: string,
    stat: int32,
    size: int32
}};

CREATE EXTERNAL DATASET AccessLog(AccessLogType)
USING localfs
(("path"="{path}"),
 ("format"="delimited-text"), ("delimiter"="|"));
"""

FIG_3C = """
WITH endTime AS current_datetime(),
     startTime AS endTime - duration("P30D")
SELECT nf AS numFriends, COUNT(user) AS activeUsers
FROM GleambookUsers user
LET nf = COLL_COUNT(user.friendIds)
WHERE SOME logrec IN AccessLog SATISFIES
      user.alias = logrec.user
  AND datetime(logrec.time) >= startTime
  AND datetime(logrec.time) <= endTime
GROUP BY nf;
"""

FIG_3D = """
UPSERT INTO GleambookUsers (
  {"id":667,
   "alias":"dfrump",
   "name":"DonaldFrump",
   "nickname":"Frumpkin",
   "userSince":datetime("2017-01-01T00:00:00"),
   "friendIds":{{}},
   "employment":[{"organizationName":"USA",
                  "startDate":date("2017-01-20")}],
   "gender":"M"}
);
"""


def main():
    workdir = tempfile.mkdtemp(prefix="asterix-quickstart-")
    try:
        with connect(os.path.join(workdir, "db")) as db:
            db.set_session_now("2019-04-08T00:00:00")

            print("== Fig. 3(a): types, datasets, and all four index kinds")
            db.execute(FIG_3A)
            print("   created: 3 types, 2 datasets, 4 indexes")

            print("== generating the Gleambook social network")
            gen = GleambookGenerator(seed=42)
            users = list(gen.users(200))
            for user in users:
                db.cluster.insert_record("Default.GleambookUsers", user)
            for message in gen.messages(400, num_users=200):
                db.cluster.insert_record("Default.GleambookMessages",
                                         message)
            print(f"   loaded {len(users)} users, 400 messages")

            print("== Fig. 3(b): an external access log, queried in situ")
            log_path = os.path.join(workdir, "accesses.txt")
            aliases = [u["alias"] for u in users]
            with open(log_path, "w") as f:
                for line in gen.access_log_lines(1000, aliases):
                    f.write(line + "\n")
            db.execute(FIG_3B.format(path=log_path))
            total = db.query("SELECT COUNT(*) AS n FROM AccessLog l;")
            print(f"   access log rows visible via SQL++: {total[0]['n']}")

            print("== Fig. 3(d): UPSERT a (rather famous) user")
            print("  ", db.execute(FIG_3D).message)

            print("== Fig. 3(c): active users in the last 30 days, "
                  "grouped by friend count")
            rows = sorted(db.query(FIG_3C),
                          key=lambda r: r["numFriends"])
            print(f"   {'numFriends':>10} | activeUsers")
            for row in rows[:12]:
                print(f"   {row['numFriends']:>10} | {row['activeUsers']}")
            if len(rows) > 12:
                print(f"   ... {len(rows) - 12} more groups")

            print("== the same data through a secondary index")
            result = db.execute("""
                SELECT VALUE u.name FROM GleambookUsers u
                WHERE u.userSince >= datetime("2018-01-01T00:00:00")
                LIMIT 5;
            """)
            print("   plan uses:", [
                line.strip().split()[0]
                for line in result.plan.splitlines()
            ][-1])
            for name in result.rows:
                print("   -", name)
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
