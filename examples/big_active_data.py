#!/usr/bin/env python3
"""Big Active Data: "data pub/sub" (paper §IV / §VII, ref [17]).

The BAD project's canonical scenario: emergency notifications.  Users
subscribe — through brokers — to a repetitive channel parameterized by
their area and a severity threshold; as new reports stream in, each tick
re-evaluates the channel and delivers fresh matches.  Subscribers sharing
parameters share one query execution (the BAD optimization).

    python examples/big_active_data.py
"""

import os
import shutil
import tempfile

from repro import connect
from repro.bad import BADExtension


def main():
    workdir = tempfile.mkdtemp(prefix="asterix-bad-")
    try:
        with connect(os.path.join(workdir, "db")) as db:
            db.execute("""
                CREATE TYPE ReportType AS {
                    id: int, severity: int, area: string, what: string
                };
                CREATE DATASET EmergencyReports(ReportType)
                    PRIMARY KEY id;
            """)
            bad = BADExtension(db)
            bad.create_broker("campusApp")
            bad.create_broker("cityDesk")
            bad.create_channel(
                "EmergenciesNearMe", ["area", "minSeverity"],
                """SELECT r.id AS id, r.what AS what
                   FROM EmergencyReports r
                   WHERE r.area = $area AND r.severity >= $minSeverity
                   ORDER BY r.id;""",
            )

            print("== subscriptions")
            subs = [
                ("campusApp", "campus", 2),
                ("campusApp", "campus", 2),   # same params: shared exec
                ("campusApp", "campus", 4),
                ("cityDesk", "downtown", 1),
            ]
            for broker, area, severity in subs:
                sid = bad.subscribe("EmergenciesNearMe", broker, area,
                                    severity)
                print(f"   sub {sid}: {broker} <- area={area} "
                      f"minSeverity={severity}")

            stream = [
                (1, 3, "campus", "power outage in DBH"),
                (2, 1, "downtown", "street fair congestion"),
                (3, 5, "campus", "lab flooding"),
                (4, 2, "downtown", "minor fender bender"),
            ]
            for tick, (rid, severity, area, what) in enumerate(stream, 1):
                db.execute(
                    f'INSERT INTO EmergencyReports ({{"id": {rid}, '
                    f'"severity": {severity}, "area": "{area}", '
                    f'"what": "{what}"}});'
                )
                executions = bad.tick()
                print(f"\n== tick {bad.clock}: report {rid} arrived "
                      f"({executions} channel execution(s))")
                for name, broker in bad.brokers.items():
                    for delivery in broker.drain():
                        ids = [r["id"] for r in delivery.results]
                        print(f"   {name} / sub {delivery.subscription_id}"
                              f" <- reports {ids}")

            print(f"\n== {bad.shared_executions_saved} query executions "
                  f"saved by parameter sharing")
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
