#!/usr/bin/env python3
"""Data feeds + Big Active Data: the full streaming pipeline.

Fig. 1's "Data Feeds" arrow meets §IV's pub/sub extension: a message
stream is fed continuously into a dataset (batched through the
transactional path, buffering in LSM memory components per Fig. 2), while
a BAD channel watches the arriving data and notifies subscribers of new
matches — the "Big Active Data" vision end to end.

    python examples/continuous_ingestion.py
"""

import os
import shutil
import tempfile

from repro import connect
from repro.bad import BADExtension
from repro.datagen import GleambookGenerator
from repro.feeds import FeedManager, GeneratorSource


def main():
    workdir = tempfile.mkdtemp(prefix="asterix-feeds-")
    try:
        with connect(os.path.join(workdir, "db")) as db:
            db.execute("""
                CREATE TYPE MsgType AS {
                    messageId: int, authorId: int, message: string
                };
                CREATE DATASET Messages(MsgType) PRIMARY KEY messageId;
                CREATE INDEX byText ON Messages(message) TYPE KEYWORD;
            """)

            gen = GleambookGenerator(seed=5)
            stream = (
                {"messageId": m["messageId"], "authorId": m["authorId"],
                 "message": m["message"]}
                for m in gen.messages(600, num_users=50)
            )

            feeds = FeedManager(db)
            feeds.create_feed("msgFeed", GeneratorSource(stream),
                              batch_size=50)
            feeds.connect_feed("msgFeed", "Messages")
            feeds.start_feed("msgFeed")
            print("== feed msgFeed connected to Messages")

            bad = BADExtension(db)
            bad.create_broker("dashboard")
            bad.create_channel(
                "ComplaintsAbout", ["word"],
                """SELECT VALUE COUNT(*) FROM Messages m
                   WHERE ftcontains(m.message, $word)
                     AND ftcontains(m.message, 'hate');""",
            )
            bad.subscribe("ComplaintsAbout", "dashboard", "battery")
            bad.subscribe("ComplaintsAbout", "dashboard", "signal")
            print("== channel ComplaintsAbout with 2 subscriptions")

            for wave in range(4):
                ingested = feeds.pump("msgFeed", max_batches=3)
                bad.tick()
                deliveries = bad.brokers["dashboard"].drain()
                counts = {
                    bad.subscriptions[d.subscription_id].params[0]:
                        d.results[0]
                    for d in deliveries
                }
                total = db.query(
                    "SELECT VALUE COUNT(*) FROM Messages m;")[0]
                print(f"   wave {wave + 1}: +{ingested} messages "
                      f"(total {total}); complaints so far: {counts}")

            stats = feeds.feeds["msgFeed"].stats
            print(f"== feed stats: {stats.records} records in "
                  f"{stats.batches} batches, {stats.failures} failures")

            print("== the fed data is fully queryable")
            rows = db.query("""
                SELECT a, COUNT(*) AS n FROM Messages m
                GROUP BY m.authorId AS a
                ORDER BY n DESC, a LIMIT 3;
            """)
            for row in rows:
                print(f"   author {row['a']}: {row['n']} messages")
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
