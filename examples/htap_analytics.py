#!/usr/bin/env python3
"""Couchbase Analytics: AsterixDB as a commercial HTAP backend (§VI).

Fig. 7's architecture end to end: an operational KV front end ("Data
Service") streams mutations — DCP-style, resumable by sequence number —
into a *shadow dataset* on the analytical side, where SQL++ runs "on an
up-to-date copy of the data" with performance isolation: the heavy
analytics below never touches the Data Service's request queue, while the
pre-Analytics baseline (scanning the operational store inline) stalls
front-end operations behind it.

    python examples/htap_analytics.py
"""

import os
import shutil
import tempfile

from repro import connect
from repro.analytics import AnalyticsService, KVStore


def main():
    workdir = tempfile.mkdtemp(prefix="asterix-htap-")
    try:
        with connect(os.path.join(workdir, "db")) as db:
            kv = KVStore()
            bucket = kv.create_bucket("orders", op_service_time_us=10.0)
            analytics = AnalyticsService(db, kv)
            analytics.connect_bucket("orders")
            print("== bucket 'orders' connected to a shadow dataset")

            print("== front end: operational writes (the app's hot path)")
            now = 0.0
            for i in range(500):
                bucket.upsert(
                    f"order::{i}",
                    {"customer": f"c{i % 40}", "total": 10 + i % 90,
                     "status": "paid" if i % 5 else "refunded"},
                    now_us=now,
                )
                now += 20.0
            print(f"   500 orders written; shadow lag = "
                  f"{analytics.lag('orders')} mutations")

            applied = analytics.sync()
            print(f"== DCP sync: {applied} mutations ingested; lag = "
                  f"{analytics.lag('orders')}")

            print("== analytics on the shadow copy (SQL++)")
            rows = analytics.query("""
                SELECT status, COUNT(*) AS orders, SUM(o.total) AS revenue
                FROM orders o
                GROUP BY o.status AS status ORDER BY status;
            """)
            for row in rows:
                print(f"   {row['status']:<9} {row['orders']:>4} orders, "
                      f"revenue {row['revenue']}")

            print("== performance isolation")
            busy_before = bucket.busy_until_us
            analytics.query(
                "SELECT c, SUM(o.total) AS spend FROM orders o "
                "GROUP BY o.customer AS c ORDER BY spend DESC LIMIT 3;")
            print(f"   heavy analytics ran; Data Service queue advanced by "
                  f"{bucket.busy_until_us - busy_before:.0f} us (isolated)")

            t0 = bucket.busy_until_us
            bucket.scan_inline(now_us=t0)
            latency = bucket.upsert("order::late", {"total": 1},
                                    now_us=t0 + 1)
            print(f"   baseline (inline scan of the data service): the "
                  f"next front-end write waited {latency:.0f} us")

            print("== updates keep flowing: near-real-time freshness")
            bucket.upsert("order::0", {"customer": "c0", "total": 999,
                                       "status": "paid"}, now_us=now)
            analytics.sync()
            top = analytics.query("""
                SELECT VALUE o.total FROM orders o
                WHERE o._key = 'order::0';
            """)
            print(f"   order::0 now shows total = {top[0]} on the "
                  f"analytics side")
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
