#!/usr/bin/env python3
"""The Gloria Mark multitasking study (paper §V-D, ref [27]).

Reproduces the user engagement that drove real AsterixDB features: a
stress-and-multitasking study over multi-channel temporal event data
needed (1) time-binning "their data into various sized bins", (2) correct
handling of "the possibility that a given user activity might span bins
(so they needed to allocate portions of such an activity to the relevant
bins)", and (3) CSV export "to round-trip their data in and out of the
system".  This example does all three with the interval_bin /
overlap_bins / get_overlapping_interval functions added for that study.

    python examples/multitasking_study.py
"""

import os
import shutil
import tempfile
from collections import defaultdict

from repro import connect
from repro.adm import ADateTime, ADuration
from repro.datagen import activity_log
from repro.external import export_csv, import_csv
from repro.functions import call


def main():
    workdir = tempfile.mkdtemp(prefix="asterix-study-")
    try:
        with connect(os.path.join(workdir, "db")) as db:
            db.execute("""
                CREATE TYPE ActivityType AS {
                    activityId: int, student: int, category: string,
                    stress: double
                };
                CREATE DATASET Activities(ActivityType)
                    PRIMARY KEY activityId;
            """)

            print("== importing the activity log (CSV round-trip, part 1)")
            records = activity_log(600, num_students=12)
            csv_in = os.path.join(workdir, "raw_activities.csv")
            export_csv(csv_in, records,
                       ["activityId", "student", "category", "activity",
                        "stress"])
            for record in import_csv(csv_in):
                db.cluster.insert_record("Default.Activities", record)
            n = db.query("SELECT COUNT(*) AS n FROM Activities a;")
            print(f"   imported {n[0]['n']} activities via CSV")

            print("== hourly time-binning with bin-spanning allocation")
            anchor = ADateTime.parse("2014-02-03T00:00:00")
            hour = ADuration.parse("PT1H")
            rows = db.query("SELECT VALUE a FROM Activities a;")
            minutes_by_bin = defaultdict(float)
            spanning = 0
            for activity in rows:
                interval = activity["activity"]
                bins = call("overlap_bins", interval, anchor, hour)
                if len(bins) > 1:
                    spanning += 1
                for b in bins:
                    piece = call("get_overlapping_interval", interval, b)
                    dur = call("duration_from_interval", piece)
                    start = call("get_interval_start", b)
                    minutes_by_bin[str(start)] += dur.millis / 60_000
            print(f"   {spanning} activities spanned more than one bin "
                  f"(their time is split across bins)")
            print("   computer time per hour bin:")
            for start in sorted(minutes_by_bin)[:8]:
                mins = minutes_by_bin[start]
                bar = "#" * int(mins / 40)
                print(f"   {start}  {mins:7.1f} min  {bar}")

            print("== stress vs. activity category (SQL++ grouping)")
            stress_rows = db.query("""
                SELECT cat, AVG(a.stress) AS meanStress, COUNT(*) AS n
                FROM Activities a
                GROUP BY a.category AS cat
                ORDER BY meanStress DESC;
            """)
            for row in stress_rows:
                print(f"   {row['cat']:<10} stress {row['meanStress']:.2f}"
                      f"  (n={row['n']})")

            print("== exporting results (CSV round-trip, part 2)")
            csv_out = os.path.join(workdir, "stress_by_category.csv")
            count = export_csv(csv_out, stress_rows,
                               ["cat", "meanStress", "n"])
            back = import_csv(csv_out)
            assert len(back) == count
            print(f"   exported {count} rows and re-imported them intact")
    finally:
        shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
