from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "A Python reproduction of Apache AsterixDB "
        "(ICDE 2019 'AsterixDB Mid-Flight')"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
