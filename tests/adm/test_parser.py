"""Tests for the textual ADM parser and formatter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import (
    ADate,
    ADateTime,
    ADuration,
    APoint,
    ARectangle,
    Multiset,
    format_adm,
    parse_adm,
)
from repro.common.errors import SyntaxError_


class TestJsonCore:
    def test_scalars(self):
        assert parse_adm("null") is None
        assert parse_adm("true") is True
        assert parse_adm("false") is False
        assert parse_adm("42") == 42
        assert parse_adm("-3.5") == -3.5
        assert parse_adm('"hi"') == "hi"

    def test_object(self):
        assert parse_adm('{"a": 1, "b": [2, 3]}') == {"a": 1, "b": [2, 3]}

    def test_empty_containers(self):
        assert parse_adm("{}") == {}
        assert parse_adm("[]") == []
        assert parse_adm("{{}}") == Multiset()

    def test_string_escapes(self):
        assert parse_adm(r'"a\nb\t\"cA"') == 'a\nb\t"c' + "A"

    def test_single_quotes(self):
        assert parse_adm("'hello'") == "hello"

    def test_nested(self):
        v = parse_adm('{"a": {"b": [{"c": 1}]}}')
        assert v["a"]["b"][0]["c"] == 1


class TestAdmExtensions:
    def test_multiset(self):
        v = parse_adm("{{1, 2, 2}}")
        assert isinstance(v, Multiset)
        assert sorted(v) == [1, 2, 2]

    def test_datetime_constructor(self):
        v = parse_adm('datetime("2017-01-01T00:00:00")')
        assert v == ADateTime.parse("2017-01-01T00:00:00")

    def test_date_and_duration(self):
        assert parse_adm('date("2017-01-20")') == ADate.parse("2017-01-20")
        assert parse_adm('duration("P30D")') == ADuration.parse("P30D")

    def test_point(self):
        assert parse_adm('point("1.5,2.5")') == APoint(1.5, 2.5)

    def test_rectangle(self):
        v = parse_adm('rectangle("0,0 10,10")')
        assert v == ARectangle(APoint(0, 0), APoint(10, 10))

    def test_int_suffixes(self):
        assert parse_adm("5i32") == 5
        assert parse_adm("2.5f") == 2.5

    def test_fig3d_upsert_payload(self):
        """The exact record from the paper's Fig. 3(d)."""
        text = """{
           "id":667,
           "alias":"dfrump",
           "name":"DonaldFrump",
           "nickname":"Frumpkin",
           "userSince":datetime("2017-01-01T00:00:00"),
           "friendIds":{{}},
           "employment":[{"organizationName":"USA",
                          "startDate":date("2017-01-20")}],
           "gender":"M"}"""
        v = parse_adm(text)
        assert v["id"] == 667
        assert v["friendIds"] == Multiset()
        assert v["employment"][0]["startDate"] == ADate.parse("2017-01-20")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "{", '{"a" 1}', "[1,", "{{1", 'datetime(2017)', "frobnicate",
         '"unterminated', "1 2"],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(SyntaxError_):
            parse_adm(text)

    def test_error_carries_position(self):
        try:
            parse_adm('{"a":\n  !}')
        except SyntaxError_ as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected syntax error")


class TestFormatter:
    def test_simple_roundtrip(self):
        v = {"a": 1, "b": [True, None, "x"], "m": Multiset([1])}
        assert parse_adm(format_adm(v)) == v

    def test_constructor_roundtrip(self):
        v = {"d": ADate(100), "p": APoint(1, 2)}
        assert parse_adm(format_adm(v)) == v

    def test_indented_output(self):
        text = format_adm({"a": 1, "b": 2}, indent=2)
        assert "\n" in text
        assert parse_adm(text) == {"a": 1, "b": 2}


def adm_texts(depth=2):
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(10**9), 10**9),
        st.text(
            alphabet=st.characters(codec="utf-8",
                                   blacklist_categories=("Cs", "Cc")),
            max_size=8,
        ),
        st.builds(ADate, st.integers(-10000, 10000)),
        st.builds(ADateTime, st.integers(0, 2**40)),
    )
    if depth == 0:
        return scalars
    inner = adm_texts(depth - 1)
    return st.one_of(
        scalars,
        st.lists(inner, max_size=3),
        st.lists(inner, max_size=3).map(Multiset),
        st.dictionaries(
            st.text(
                alphabet=st.characters(codec="utf-8",
                                       blacklist_categories=("Cs", "Cc")),
                max_size=5,
            ),
            inner,
            max_size=3,
        ),
    )


@given(adm_texts())
@settings(max_examples=200)
def test_format_parse_roundtrip(value):
    assert parse_adm(format_adm(value)) == value
