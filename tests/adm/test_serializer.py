"""Round-trip tests for the binary ADM serializer."""

import uuid

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import (
    ACircle,
    ADate,
    ADateTime,
    ADuration,
    AInterval,
    ALine,
    APoint,
    APolygon,
    ARectangle,
    ATime,
    Multiset,
    TypeTag,
    deserialize,
    deserialize_tuple,
    serialize,
    serialize_tuple,
    serialized_size,
)

SAMPLES = [
    None,
    True,
    False,
    0,
    -1,
    2**40,
    -(2**40),
    1.5,
    -0.0,
    "",
    "héllo wörld",
    b"",
    b"\x00\xff",
    uuid.uuid5(uuid.NAMESPACE_DNS, "asterix"),
    ADate(17000),
    ATime(12_345_678),
    ADateTime(1_483_228_800_000),
    ADuration(14, 123456),
    AInterval(10, 20, TypeTag.DATE),
    APoint(1.25, -7.5),
    ALine(APoint(0, 0), APoint(1, 1)),
    ARectangle(APoint(-1, -1), APoint(1, 1)),
    ACircle(APoint(0, 0), 2.5),
    APolygon((APoint(0, 0), APoint(1, 0), APoint(0, 1))),
    [],
    [1, "two", [3.0]],
    Multiset([1, 1, 2]),
    {"id": 667, "alias": "dfrump", "friendIds": Multiset(), "emp": [{"o": "USA"}]},
]


@pytest.mark.parametrize("value", SAMPLES, ids=[repr(s)[:40] for s in SAMPLES])
def test_roundtrip_samples(value):
    assert deserialize(serialize(value)) == value


def test_multiset_type_preserved():
    out = deserialize(serialize(Multiset([1])))
    assert isinstance(out, Multiset)


def test_array_not_multiset():
    out = deserialize(serialize([1]))
    assert not isinstance(out, Multiset)


def test_tuple_roundtrip():
    t = (1, "a", APoint(0, 0))
    assert deserialize_tuple(serialize_tuple(t)) == t


def test_serialized_size_positive():
    assert serialized_size({"a": 1}) > 2


def test_varint_compactness():
    assert len(serialize(1)) <= 3
    assert len(serialize(2**50)) <= 10


def adm_values(depth=2):
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**62), 2**62),
        st.floats(allow_nan=False),
        st.text(max_size=12),
        st.binary(max_size=12),
        st.builds(ADate, st.integers(-100000, 100000)),
        st.builds(ADateTime, st.integers(-(2**50), 2**50)),
        st.builds(
            APoint,
            st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e9, max_value=1e9),
            st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e9, max_value=1e9),
        ),
    )
    if depth == 0:
        return scalars
    inner = adm_values(depth - 1)
    return st.one_of(
        scalars,
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(Multiset),
        st.dictionaries(st.text(max_size=6), inner, max_size=4),
    )


@given(adm_values())
@settings(max_examples=300)
def test_roundtrip_property(value):
    assert deserialize(serialize(value)) == value


@given(st.lists(adm_values(1), min_size=1, max_size=5))
@settings(max_examples=100)
def test_tuple_roundtrip_property(values):
    t = tuple(values)
    assert deserialize_tuple(serialize_tuple(t)) == t
