"""Unit tests for the ADM value universe."""

import uuid

import pytest

from repro.adm import (
    MISSING,
    ACircle,
    ADate,
    ADateTime,
    ADuration,
    AInterval,
    APoint,
    APolygon,
    ARectangle,
    ATime,
    Missing,
    Multiset,
    TypeTag,
    deep_copy,
    hash_value,
    tag_of,
)
from repro.common.errors import InvalidArgumentError


class TestMissing:
    def test_singleton(self):
        assert Missing() is MISSING

    def test_falsy(self):
        assert not MISSING

    def test_distinct_from_null(self):
        assert MISSING is not None

    def test_repr(self):
        assert repr(MISSING) == "MISSING"


class TestTagging:
    @pytest.mark.parametrize(
        "value,tag",
        [
            (MISSING, TypeTag.MISSING),
            (None, TypeTag.NULL),
            (True, TypeTag.BOOLEAN),
            (42, TypeTag.BIGINT),
            (1.5, TypeTag.DOUBLE),
            ("hi", TypeTag.STRING),
            (b"\x00", TypeTag.BINARY),
            (uuid.uuid5(uuid.NAMESPACE_DNS, "x"), TypeTag.UUID),
            (ADate(0), TypeTag.DATE),
            (ATime(0), TypeTag.TIME),
            (ADateTime(0), TypeTag.DATETIME),
            (ADuration(1, 2), TypeTag.DURATION),
            (AInterval(0, 5), TypeTag.INTERVAL),
            (APoint(1, 2), TypeTag.POINT),
            ([1, 2], TypeTag.ARRAY),
            (Multiset([1]), TypeTag.MULTISET),
            ({"a": 1}, TypeTag.OBJECT),
        ],
    )
    def test_tag_of(self, value, tag):
        assert tag_of(value) is tag

    def test_bool_is_not_int(self):
        assert tag_of(True) is TypeTag.BOOLEAN

    def test_multiset_is_not_array(self):
        assert tag_of(Multiset()) is TypeTag.MULTISET

    def test_non_adm_value_rejected(self):
        with pytest.raises(InvalidArgumentError):
            tag_of(object())


class TestTemporal:
    def test_date_parse_roundtrip(self):
        d = ADate.parse("2017-01-20")
        assert str(d) == "2017-01-20"
        assert d.to_date().year == 2017

    def test_date_epoch(self):
        assert ADate.parse("1970-01-01").days == 0

    def test_bad_date(self):
        with pytest.raises(InvalidArgumentError):
            ADate.parse("not-a-date")

    def test_time_parse(self):
        t = ATime.parse("13:30:15.250")
        assert t.millis == ((13 * 60 + 30) * 60 + 15) * 1000 + 250
        assert str(t) == "13:30:15.250"

    def test_datetime_parse(self):
        dt = ADateTime.parse("2017-01-01T00:00:00")
        assert dt.date_part() == ADate.parse("2017-01-01")
        assert dt.time_part().millis == 0

    def test_datetime_z_suffix(self):
        assert (
            ADateTime.parse("2017-01-01T00:00:00Z")
            == ADateTime.parse("2017-01-01T00:00:00")
        )

    def test_datetime_from_parts(self):
        d, t = ADate.parse("2000-06-01"), ATime.parse("12:00:00")
        dt = ADateTime.from_parts(d, t)
        assert dt.date_part() == d and dt.time_part() == t

    def test_datetime_ordering(self):
        assert ADateTime.parse("2016-01-01T00:00:00") < ADateTime.parse(
            "2017-01-01T00:00:00"
        )

    def test_duration_parse_days(self):
        assert ADuration.parse("P30D").millis == 30 * 86_400_000

    def test_duration_parse_mixed(self):
        d = ADuration.parse("P1Y2M3DT4H5M6.5S")
        assert d.months == 14
        assert d.millis == 3 * 86_400_000 + 4 * 3_600_000 + 5 * 60_000 + 6500

    def test_duration_negative(self):
        d = ADuration.parse("-P1M")
        assert d.months == -1

    def test_duration_str_roundtrip(self):
        for text in ["P30D", "P1Y2M", "PT4H5M", "P1DT1S"]:
            assert ADuration.parse(str(ADuration.parse(text))) == \
                ADuration.parse(text)

    def test_bad_duration(self):
        with pytest.raises(InvalidArgumentError):
            ADuration.parse("30 days")

    def test_interval_overlap(self):
        a, b, c = AInterval(0, 10), AInterval(5, 15), AInterval(10, 20)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # half-open

    def test_interval_rejects_inverted(self):
        with pytest.raises(InvalidArgumentError):
            AInterval(10, 0)


class TestSpatial:
    def test_point_parse(self):
        assert APoint.parse("1.5,-2") == APoint(1.5, -2.0)

    def test_point_distance(self):
        assert APoint(0, 0).distance(APoint(3, 4)) == 5.0

    def test_rectangle_contains(self):
        r = ARectangle(APoint(0, 0), APoint(10, 10))
        assert r.contains_point(APoint(5, 5))
        assert r.contains_point(APoint(0, 0))  # boundary
        assert not r.contains_point(APoint(11, 5))

    def test_rectangle_intersects(self):
        a = ARectangle(APoint(0, 0), APoint(10, 10))
        b = ARectangle(APoint(5, 5), APoint(15, 15))
        c = ARectangle(APoint(20, 20), APoint(30, 30))
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)

    def test_rectangle_rejects_bad_corners(self):
        with pytest.raises(InvalidArgumentError):
            ARectangle(APoint(10, 10), APoint(0, 0))

    def test_circle(self):
        c = ACircle(APoint(0, 0), 5)
        assert c.contains_point(APoint(3, 4))
        assert not c.contains_point(APoint(4, 4))
        assert c.mbr() == ARectangle(APoint(-5, -5), APoint(5, 5))

    def test_polygon_contains(self):
        square = APolygon(
            (APoint(0, 0), APoint(10, 0), APoint(10, 10), APoint(0, 10))
        )
        assert square.contains_point(APoint(5, 5))
        assert square.contains_point(APoint(0, 5))  # boundary
        assert not square.contains_point(APoint(15, 5))

    def test_polygon_needs_three_points(self):
        with pytest.raises(InvalidArgumentError):
            APolygon((APoint(0, 0), APoint(1, 1)))

    def test_polygon_mbr(self):
        tri = APolygon((APoint(0, 0), APoint(4, 0), APoint(2, 3)))
        assert tri.mbr() == ARectangle(APoint(0, 0), APoint(4, 3))


class TestMultiset:
    def test_order_insensitive_equality(self):
        assert Multiset([1, 2, 3]) == Multiset([3, 1, 2])

    def test_bag_semantics(self):
        assert Multiset([1, 1, 2]) != Multiset([1, 2, 2])

    def test_not_equal_to_plain_list(self):
        assert Multiset([1]) != [1]


class TestHashing:
    def test_deterministic(self):
        v = {"a": [1, 2], "b": Multiset(["x"]), "p": APoint(1, 2)}
        assert hash_value(v) == hash_value(deep_copy(v))

    def test_int_float_equal_hash(self):
        assert hash_value(1) == hash_value(1.0)

    def test_multiset_order_insensitive_hash(self):
        assert hash_value(Multiset([1, 2])) == hash_value(Multiset([2, 1]))

    def test_missing_fields_ignored(self):
        assert hash_value({"a": 1, "b": MISSING}) == hash_value({"a": 1})

    def test_seed_changes_hash(self):
        assert hash_value("x", seed=1) != hash_value("x", seed=2)

    def test_distributes(self):
        buckets = [0] * 8
        for i in range(4096):
            buckets[hash_value(i) % 8] += 1
        assert min(buckets) > 300


class TestDeepCopy:
    def test_nested_independence(self):
        v = {"xs": [1, {"y": 2}]}
        c = deep_copy(v)
        c["xs"][1]["y"] = 99
        assert v["xs"][1]["y"] == 2

    def test_multiset_type_preserved(self):
        assert isinstance(deep_copy(Multiset([1])), Multiset)
