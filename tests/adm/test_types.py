"""Tests for the ADM type system: open/closed types, optional fields."""

import pytest

from repro.adm import (
    BIGINT,
    DATETIME,
    STRING,
    ADateTime,
    Field,
    Multiset,
    MultisetType,
    ObjectType,
    OrderedListType,
    TypeReference,
    TypeRegistry,
)
from repro.common.errors import TypeError_, UnknownEntityError


@pytest.fixture
def gleambook_registry():
    """The Fig. 3(a) schema."""
    reg = TypeRegistry()
    reg.add(
        ObjectType(
            "EmploymentType",
            (
                Field("organizationName", STRING),
                Field("startDate", TypeReference("date")),
                Field("endDate", TypeReference("date"), optional=True),
            ),
        )
    )
    reg.add(
        ObjectType(
            "GleambookUserType",
            (
                Field("id", BIGINT),
                Field("alias", STRING),
                Field("name", STRING),
                Field("userSince", DATETIME),
                Field("friendIds", MultisetType(BIGINT)),
                Field("employment",
                      OrderedListType(TypeReference("EmploymentType"))),
            ),
        )
    )
    reg.add(
        ObjectType(
            "AccessLogType",
            (
                Field("ip", STRING),
                Field("time", STRING),
                Field("user", STRING),
                Field("verb", STRING),
                Field("path", STRING),
                Field("stat", TypeReference("int32")),
                Field("size", TypeReference("int32")),
            ),
            is_open=False,
        )
    )
    return reg


def make_user(**overrides):
    from repro.adm import ADate

    user = {
        "id": 667,
        "alias": "dfrump",
        "name": "DonaldFrump",
        "userSince": ADateTime.parse("2017-01-01T00:00:00"),
        "friendIds": Multiset([1, 2, 3]),
        "employment": [
            {"organizationName": "USA", "startDate": ADate.parse("2017-01-20")}
        ],
    }
    user.update(overrides)
    return user


class TestOpenTypes:
    def test_valid_instance(self, gleambook_registry):
        gleambook_registry.validate(make_user(), "GleambookUserType")

    def test_open_type_allows_extra_fields(self, gleambook_registry):
        user = make_user(gender="M", nickname="Frumpkin")
        gleambook_registry.validate(user, "GleambookUserType")

    def test_missing_required_field_rejected(self, gleambook_registry):
        user = make_user()
        del user["alias"]
        with pytest.raises(TypeError_, match="alias"):
            gleambook_registry.validate(user, "GleambookUserType")

    def test_wrong_field_type_rejected(self, gleambook_registry):
        with pytest.raises(TypeError_, match="id"):
            gleambook_registry.validate(make_user(id="not-an-int"),
                                        "GleambookUserType")

    def test_optional_field_may_be_absent(self, gleambook_registry):
        user = make_user()
        assert "endDate" not in user["employment"][0]
        gleambook_registry.validate(user, "GleambookUserType")

    def test_optional_field_may_be_null(self, gleambook_registry):
        user = make_user()
        user["employment"][0]["endDate"] = None
        gleambook_registry.validate(user, "GleambookUserType")

    def test_required_field_may_not_be_null(self, gleambook_registry):
        with pytest.raises(TypeError_):
            gleambook_registry.validate(make_user(alias=None),
                                        "GleambookUserType")

    def test_nested_list_items_validated(self, gleambook_registry):
        user = make_user(employment=[{"organizationName": 42,
                                      "startDate": None}])
        with pytest.raises(TypeError_):
            gleambook_registry.validate(user, "GleambookUserType")


class TestClosedTypes:
    def log_record(self, **overrides):
        rec = {
            "ip": "1.2.3.4",
            "time": "2018-01-01T00:00:00",
            "user": "dfrump",
            "verb": "GET",
            "path": "/home",
            "stat": 200,
            "size": 1024,
        }
        rec.update(overrides)
        return rec

    def test_closed_valid(self, gleambook_registry):
        gleambook_registry.validate(self.log_record(), "AccessLogType")

    def test_closed_rejects_extra_fields(self, gleambook_registry):
        with pytest.raises(TypeError_, match="extra"):
            gleambook_registry.validate(self.log_record(referer="x"),
                                        "AccessLogType")

    def test_int32_range_enforced(self, gleambook_registry):
        with pytest.raises(TypeError_, match="range"):
            gleambook_registry.validate(self.log_record(size=2**40),
                                        "AccessLogType")


class TestPrimitives:
    def test_int_is_valid_double(self):
        from repro.adm import DOUBLE

        DOUBLE.validate(3)

    def test_bool_is_not_int(self):
        with pytest.raises(TypeError_):
            BIGINT.validate(True)

    def test_tinyint_range(self):
        from repro.adm import TINYINT

        TINYINT.validate(127)
        with pytest.raises(TypeError_):
            TINYINT.validate(128)

    def test_multiset_accepts_plain_list_payload(self):
        MultisetType(BIGINT).validate([1, 2])

    def test_ordered_list_rejects_multiset(self):
        with pytest.raises(TypeError_):
            OrderedListType(BIGINT).validate(Multiset([1]))


class TestRegistry:
    def test_unknown_type(self):
        with pytest.raises(UnknownEntityError):
            TypeRegistry().resolve("NoSuchType")

    def test_builtin_aliases(self):
        reg = TypeRegistry()
        assert reg.resolve("int") is reg.resolve("int64")
        assert "int32" in reg

    def test_remove(self):
        reg = TypeRegistry()
        reg.add(ObjectType("T", ()))
        reg.remove("T")
        with pytest.raises(UnknownEntityError):
            reg.resolve("T")

    def test_forward_reference(self):
        reg = TypeRegistry()
        reg.add(ObjectType("A", (Field("b", TypeReference("B")),)))
        reg.add(ObjectType("B", (Field("x", BIGINT),)))
        reg.validate({"b": {"x": 1}}, "A")
