"""Unit and property tests for the ADM total order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import (
    MISSING,
    ADate,
    ADateTime,
    APoint,
    Multiset,
    compare,
    compare_tuples,
    eq,
    sort_key,
)


class TestScalarOrder:
    def test_missing_before_null(self):
        assert compare(MISSING, None) < 0

    def test_null_before_boolean(self):
        assert compare(None, False) < 0

    def test_numeric_cross_type(self):
        assert compare(1, 1.5) < 0
        assert compare(2, 1.5) > 0
        assert compare(1, 1.0) == 0

    def test_numbers_before_strings(self):
        assert compare(10**9, "a") < 0

    def test_string_order(self):
        assert compare("apple", "banana") < 0

    def test_temporal(self):
        assert compare(ADate(1), ADate(2)) < 0
        assert compare(ADateTime(5), ADateTime(5)) == 0

    def test_point_lexicographic(self):
        assert compare(APoint(1, 9), APoint(2, 0)) < 0


class TestCollectionOrder:
    def test_array_lexicographic(self):
        assert compare([1, 2], [1, 3]) < 0
        assert compare([1, 2], [1, 2, 0]) < 0

    def test_multiset_order_insensitive(self):
        assert compare(Multiset([2, 1]), Multiset([1, 2])) == 0

    def test_object_by_sorted_fields(self):
        assert compare({"a": 1}, {"a": 2}) < 0
        assert compare({"a": 1}, {"b": 1}) < 0
        assert compare({"a": 1, "z": MISSING}, {"a": 1}) == 0

    def test_tuple_compare(self):
        assert compare_tuples((1, "a"), (1, "b")) < 0
        assert compare_tuples((1,), (1, "a")) < 0


def adm_scalars():
    return st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(10**6), 10**6),
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-1e6, max_value=1e6),
        st.text(max_size=8),
        st.builds(ADate, st.integers(-10000, 10000)),
    )


def adm_values(depth=2):
    if depth == 0:
        return adm_scalars()
    inner = adm_values(depth - 1)
    return st.one_of(
        adm_scalars(),
        st.lists(inner, max_size=3),
        st.lists(inner, max_size=3).map(Multiset),
        st.dictionaries(st.text(max_size=4), inner, max_size=3),
    )


class TestTotalOrderProperties:
    @given(adm_values(), adm_values())
    @settings(max_examples=200)
    def test_antisymmetry(self, a, b):
        assert compare(a, b) == -compare(b, a)

    @given(adm_values())
    @settings(max_examples=100)
    def test_reflexivity(self, a):
        assert compare(a, a) == 0
        assert eq(a, a)

    @given(adm_values(), adm_values(), adm_values())
    @settings(max_examples=200)
    def test_transitivity(self, a, b, c):
        xs = sorted([a, b, c], key=sort_key)
        assert compare(xs[0], xs[1]) <= 0
        assert compare(xs[1], xs[2]) <= 0
        assert compare(xs[0], xs[2]) <= 0

    @given(st.lists(adm_values(), max_size=10))
    @settings(max_examples=100)
    def test_sort_is_stable_total(self, xs):
        ys = sorted(xs, key=sort_key)
        for i in range(len(ys) - 1):
            assert compare(ys[i], ys[i + 1]) <= 0
