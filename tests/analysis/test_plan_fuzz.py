"""Property test: every optimized plan satisfies the verifier.

Hypothesis generates random SQL++ queries from a datagen-style grammar
(the shapes the paper's workloads exercise: filters, joins, grouping,
ordering, quantifiers).  Plan verification is on for the whole test
suite (tests/conftest.py), so the verifier re-checks the plan after
every rewrite-rule firing and the job after generation — any rule that
corrupts a plan fails here naming itself.
"""

import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st              # noqa: E402

from repro import connect                            # noqa: E402
from repro.analysis import plan_verification_enabled  # noqa: E402

FIELDS = ("age", "score", "city", "id")
CITIES = ("irvine", "riverside", "sandiego", "la", "sf")

_DB = None


def db():
    global _DB
    if _DB is None:
        _DB = connect(tempfile.mkdtemp() + "/db")
        _DB.execute("""
            CREATE TYPE RecType AS { id: int, age: int, score: double,
                                     city: string };
            CREATE TYPE OrderType AS { oid: int, cust: int };
            CREATE DATASET Recs(RecType) PRIMARY KEY id;
            CREATE DATASET Orders(OrderType) PRIMARY KEY oid;
            CREATE INDEX byAge ON Recs(age);
            CREATE INDEX byCity ON Recs(city);
        """)
        for i in range(40):
            _DB.cluster.insert_record("Default.Recs", {
                "id": i, "age": 18 + (i * 7) % 45,
                "score": (i * 13 % 100) / 10.0,
                "city": CITIES[i % len(CITIES)],
            })
        for i in range(30):
            _DB.cluster.insert_record("Default.Orders", {
                "oid": i, "cust": i % 40,
            })
        _DB.flush_dataset("Recs")
    return _DB


# --- the grammar ------------------------------------------------------------

comparison = st.builds(
    lambda field, op, against: f"r.{field} {op} {against}",
    st.sampled_from(FIELDS),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    st.one_of(
        st.integers(min_value=0, max_value=70).map(str),
        st.sampled_from([f"'{c}'" for c in CITIES]),
    ),
)

# parenthesized so a following AND starts a new conjunct instead of
# being absorbed into the SATISFIES body
quantifier = st.builds(
    lambda op, age: f"({op} o IN dataset('Orders') SATISFIES "
                    f"o.cust = r.id"
                    + (f" AND o.oid > {age}" if op == "SOME" else "") + ")",
    st.sampled_from(["SOME", "EVERY"]),
    st.integers(min_value=0, max_value=20),
)

predicate = st.one_of(comparison, quantifier)

where_clause = st.lists(predicate, min_size=0, max_size=3).map(
    lambda ps: (" WHERE " + " AND ".join(ps)) if ps else "")

order_limit = st.one_of(
    st.just(""),
    st.just(" ORDER BY r.age"),
    st.builds(lambda n: f" ORDER BY r.score DESC LIMIT {n}",
              st.integers(min_value=1, max_value=10)),
)


@st.composite
def select_query(draw):
    where = draw(where_clause)
    shape = draw(st.sampled_from(["value", "fields", "group", "join"]))
    if shape == "value":
        field = draw(st.sampled_from(FIELDS))
        tail = draw(order_limit)
        return f"SELECT VALUE r.{field} FROM Recs r{where}{tail};"
    if shape == "fields":
        fields = draw(st.lists(st.sampled_from(FIELDS), min_size=1,
                               max_size=3, unique=True))
        projs = ", ".join(f"r.{f} AS {f}" for f in fields)
        tail = draw(order_limit)
        return f"SELECT {projs} FROM Recs r{where}{tail};"
    if shape == "group":
        agg = draw(st.sampled_from(
            ["COUNT(*)", "SUM(r.age)", "MIN(r.score)", "MAX(r.age)"]))
        return (f"SELECT c AS city, {agg} AS m FROM Recs r{where} "
                f"GROUP BY r.city AS c ORDER BY c;")
    return (f"SELECT VALUE [r.id, o.oid] FROM Recs r "
            f"JOIN Orders o ON o.cust = r.id{where};")


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=select_query())
def test_every_optimized_plan_verifies(query):
    assert plan_verification_enabled()
    instance = db()
    # the assertion is the verifier itself: any rule that breaks an
    # invariant raises PlanInvariantError naming the rule, and a bad
    # generated job raises JobInvariantError
    rows = instance.query(query)
    assert isinstance(rows, list)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=select_query())
def test_index_paths_verify_too(query):
    instance = db()
    with_idx = instance.query(query)
    without = instance.query(query, enable_index_access=False)
    if "EVERY" not in query:     # answers must agree as well
        assert sorted(map(repr, with_idx)) == sorted(map(repr, without))


# --- array (UNNEST) index fuzz ---------------------------------------------
#
# Same property, multi-valued: random element-level predicates over an
# array-indexed field must verify at every rewrite AND return exactly
# what the forced-scan plan returns.  Array shapes are adversarial on
# purpose: absent arrays, empty arrays, elements missing the key field,
# duplicate element values.

_ARR_DB = None


def arr_db():
    global _ARR_DB
    if _ARR_DB is None:
        _ARR_DB = connect(tempfile.mkdtemp() + "/db")
        _ARR_DB.execute("""
            CREATE TYPE OrdType AS { o_id: int };
            CREATE DATASET Ords(OrdType) PRIMARY KEY o_id;
            CREATE INDEX oDay ON Ords (UNNEST lines SELECT day);
        """)
        for i in range(60):
            rec = {"o_id": i}
            shape = i % 10
            if shape == 0:
                pass                       # no lines field at all
            elif shape == 1:
                rec["lines"] = []
            elif shape == 2:
                rec["lines"] = [{"n": 1}]  # element missing the key
            elif shape == 3:
                rec["lines"] = [{"n": 1, "day": i % 13},
                                {"n": 2, "day": i % 13}]   # duplicates
            else:
                rec["lines"] = [{"n": n, "day": (i * 3 + n) % 13}
                                for n in range(1, 1 + i % 4)]
            _ARR_DB.cluster.insert_record("Default.Ords", rec)
        _ARR_DB.flush_dataset("Ords")
    return _ARR_DB


array_predicate = st.builds(
    lambda op, day: f"l.day {op} {day}",
    st.sampled_from(["=", "<", "<=", ">", ">="]),
    st.integers(min_value=-1, max_value=14),
)

array_query = st.builds(
    lambda preds, tail: ("SELECT VALUE [o.o_id, l.n] FROM Ords o "
                         "UNNEST o.lines l WHERE "
                         + " AND ".join(preds) + tail + ";"),
    st.lists(array_predicate, min_size=1, max_size=3),
    st.sampled_from(["", " ORDER BY o.o_id, l.n"]),
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=array_query)
def test_array_index_paths_verify_and_agree(query):
    assert plan_verification_enabled()
    instance = arr_db()
    with_idx = instance.query(query)
    without = instance.query(query, enable_index_access=False)
    if "ORDER BY" in query:
        assert with_idx == without
    else:
        # unordered output: tuple order is unspecified (the index path
        # visits records in element-key order, the scan in pk order),
        # but the multiset of answers must be identical
        assert sorted(map(repr, with_idx)) == sorted(map(repr, without))
