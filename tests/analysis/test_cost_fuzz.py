"""Property test: cost-based plans are answer-equivalent to syntactic
plans.

Hypothesis generates multi-join SQL++ queries (the shapes join
reordering, build-side selection, and broadcast connectors fire on) and
runs each twice — stats-driven and with ``enable_cost_based=False``.
Plan verification is on suite-wide, so every reordered plan re-verifies
at each rewrite; on top of that the answers must match: byte-identical
(repr-equal, in order) when the query has a deterministic ORDER BY on a
unique key, multiset-equal otherwise.
"""

import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st              # noqa: E402

from repro import connect                            # noqa: E402

_DB = None


def db():
    global _DB
    if _DB is None:
        _DB = connect(tempfile.mkdtemp() + "/db")
        _DB.execute("""
            CREATE TYPE CustType AS { cid: int, region: string };
            CREATE TYPE OrderType AS { oid: int, cust: int, item: int,
                                       amount: double };
            CREATE TYPE ItemType AS { iid: int, price: double };
            CREATE DATASET Custs(CustType) PRIMARY KEY cid;
            CREATE DATASET Orders(OrderType) PRIMARY KEY oid;
            CREATE DATASET Items(ItemType) PRIMARY KEY iid;
        """)
        regions = ("north", "south", "east", "west")
        for i in range(12):
            _DB.cluster.insert_record("Default.Custs", {
                "cid": i, "region": regions[i % 4],
            })
        for i in range(80):
            _DB.cluster.insert_record("Default.Orders", {
                "oid": i, "cust": i % 12, "item": (i * 7) % 25,
                "amount": float(i % 40),
            })
        for i in range(25):
            _DB.cluster.insert_record("Default.Items", {
                "iid": i, "price": i * 1.5,
            })
        # flush so statistics come from persisted component synopses,
        # not just the memory-component pass
        _DB.flush_dataset("Custs")
        _DB.flush_dataset("Orders")
        _DB.flush_dataset("Items")
    return _DB


where_clause = st.one_of(
    st.just(""),
    st.builds(lambda n: f" AND o.amount > {n}",
              st.integers(min_value=0, max_value=35)),
    st.builds(lambda r: f" AND c.region = '{r}'",
              st.sampled_from(["north", "south", "east", "west"])),
)


@st.composite
def join_query(draw):
    where = draw(where_clause)
    # the written order varies so the reorder rule sees good and bad
    # syntactic orders alike
    froms = draw(st.permutations(
        ["Custs c", "Orders o", "Items i"]))
    shape = draw(st.sampled_from(["ordered", "bag", "two_way"]))
    if shape == "two_way":
        return (f"SELECT VALUE [o.oid, c.region] "
                f"FROM Orders o, Custs c "
                f"WHERE o.cust = c.cid{where} ORDER BY o.oid;", True)
    sql = (f"SELECT VALUE [o.oid, c.region, i.price] "
           f"FROM {', '.join(froms)} "
           f"WHERE o.cust = c.cid AND o.item = i.iid{where}")
    if shape == "ordered":
        return (sql + " ORDER BY o.oid;", True)
    return (sql + ";", False)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(q=join_query())
def test_cost_based_plans_answer_equivalent(q):
    query, ordered = q
    instance = db()
    with_stats = instance.query(query)
    without = instance.query(query, enable_cost_based=False)
    if ordered:
        # ORDER BY on the unique oid: results must be byte-identical,
        # order included
        assert repr(with_stats) == repr(without)
    else:
        assert sorted(map(repr, with_stats)) == sorted(map(repr, without))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(q=join_query())
def test_estimates_annotated_on_explain(q):
    query, _ = q
    instance = db()
    explained = instance.explain(query)

    def walk(node):
        yield node
        for child in node["inputs"]:
            yield from walk(child)

    assert all("estimated_cardinality" in n
               for n in walk(explained.logical_plan))
