"""Plan/stream/job verifier: each invariant caught on a hand-built
broken plan, and sound plans pass.
"""

import pytest

from repro.algebricks import logical as L
from repro.algebricks.expressions import LCall, LConst, LVar
from repro.algebricks.jobgen import RANDOM, SINGLETON, Stream
from repro.analysis import verify_job, verify_plan, verify_stream
from repro.common.errors import JobInvariantError, PlanInvariantError
from repro.hyracks.job import JobSpecification, OperatorDescriptor


def scan(pk=1, rec=2, dataset="D"):
    return L.DataSourceScan(dataset, [pk], rec)


def invariant_of(excinfo) -> str:
    return excinfo.value.invariant


class TestPlanInvariants:
    def test_sound_plan_passes(self):
        plan = L.DistributeResult(
            LVar(3),
            inputs=[L.Project([3], inputs=[
                L.Assign(3, LCall("field_access",
                                  [LVar(2), LConst("name")]),
                         inputs=[scan()]),
            ])],
        )
        verify_plan(plan, require_root=True)

    def test_input_arity(self):
        op = L.Select(LConst(True), inputs=[scan(), scan(pk=5, rec=6)])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "input-arity"

    def test_def_before_use(self):
        # $$9 has no producer below the Select
        op = L.Select(LCall("gt", [LVar(9), LConst(0)]), inputs=[scan()])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "def-before-use"

    def test_shadowing(self):
        # Assign re-produces $$2, the scan's record var
        op = L.Assign(2, LConst(1), inputs=[scan()])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "shadowing"

    def test_single_producer(self):
        # two union branches both produce $$7 under distinct operators
        left = L.Project([7], inputs=[
            L.Assign(7, LConst(1), inputs=[scan(pk=1, rec=2)])])
        right = L.Project([7], inputs=[
            L.Assign(7, LConst(2), inputs=[scan(pk=3, rec=4)])])
        op = L.UnionAll(9, inputs=[left, right])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "single-producer"

    def test_schema_duplicates(self):
        # joining two branches that carry the same variable duplicates it
        # in the join's output schema
        shared_var_left = scan(pk=1, rec=2)
        shared_var_right = scan(pk=1, rec=2, dataset="E")
        op = L.Join(LConst(True),
                    inputs=[shared_var_left, shared_var_right])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) in ("schema-duplicates", "single-producer")

    def test_tree_shape(self):
        shared = L.Project([7], inputs=[
            L.Assign(7, LConst(1), inputs=[scan()])])
        op = L.UnionAll(9, inputs=[shared, shared])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "tree-shape"

    def test_project_containment(self):
        op = L.Project([99], inputs=[scan()])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "def-before-use"

    def test_sort_key_must_be_variable(self):
        # jobgen requires ORDER BY keys pre-assigned to variables
        op = L.Order([(LCall("field_access",
                             [LVar(2), LConst("age")]), False)],
                     inputs=[scan()])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "sort-key-variable"

    def test_group_key_must_be_variable(self):
        op = L.GroupBy([(5, LConst(1))], [], inputs=[scan()])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "group-key-variable"

    def test_group_by_variable_key_passes(self):
        op = L.GroupBy([(5, LVar(1))],
                       [L.AggCall(6, "count", LVar(2))],
                       inputs=[scan()])
        verify_plan(op)

    def test_union_branch_width(self):
        # scan schema is [pk, rec]: width 2, union needs width 1
        op = L.UnionAll(9, inputs=[scan(), scan(pk=5, rec=6)])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op)
        assert invariant_of(exc) == "union-branch-width"

    def test_root_shape(self):
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(scan(), require_root=True)
        assert invariant_of(exc) == "root-shape"
        verify_plan(scan())          # fine as a subtree

    def test_rule_blame_in_message(self):
        op = L.Project([99], inputs=[scan()])
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(op, rule="push_project")
        assert exc.value.rule == "push_project"
        assert "push_project" in str(exc.value)
        assert exc.value.code == 4100


class TestStreamInvariants:
    def test_layout_must_match_schema(self):
        op = scan()
        stream = Stream(op_id=0, schema=[1], width=1)   # dropped $$2
        with pytest.raises(JobInvariantError):
            verify_stream(op, stream)

    def test_hash_claim_must_be_in_layout(self):
        op = scan()
        stream = Stream(op_id=0, schema=[1, 2], width=2,
                        partitioning=("hash", [42]))
        with pytest.raises(JobInvariantError) as exc:
            verify_stream(op, stream)
        assert "hash partitioning" in str(exc.value)

    def test_order_claim_must_be_in_layout(self):
        op = scan()
        stream = Stream(op_id=0, schema=[1, 2], width=1,
                        partitioning=SINGLETON, order=[(42, False)])
        with pytest.raises(JobInvariantError):
            verify_stream(op, stream)

    def test_sound_stream_passes(self):
        op = scan()
        verify_stream(op, Stream(op_id=0, schema=[1, 2], width=2,
                                 partitioning=("hash", [1]),
                                 order=[(1, False)]))
        verify_stream(op, Stream(op_id=0, schema=[1, 2], width=2,
                                 partitioning=RANDOM))


class _Op(OperatorDescriptor):
    def __init__(self, name="op", num_inputs=1):
        self.name = name
        self.num_inputs = num_inputs


class _Conn:
    def __repr__(self):
        return "conn"


class TestJobInvariants:
    def test_sound_job_passes(self):
        job = JobSpecification()
        a = job.add_operator(_Op("src", num_inputs=0))
        b = job.add_operator(_Op("sink", num_inputs=1))
        job.connect(_Conn(), a, b, port=0)
        verify_job(job)

    def test_two_sinks_rejected(self):
        job = JobSpecification()
        job.add_operator(_Op("a", num_inputs=0))
        job.add_operator(_Op("b", num_inputs=0))
        with pytest.raises(JobInvariantError) as exc:
            verify_job(job)
        assert "exactly one sink" in str(exc.value)

    def test_non_dense_ports_rejected(self):
        job = JobSpecification()
        a = job.add_operator(_Op("src", num_inputs=0))
        b = job.add_operator(_Op("join", num_inputs=2))
        job.connect(_Conn(), a, b, port=1)    # port 0 never wired
        with pytest.raises(JobInvariantError) as exc:
            verify_job(job)
        assert "ports" in str(exc.value)

    def test_cycle_rejected(self):
        job = JobSpecification()
        a = job.add_operator(_Op("a", num_inputs=1))
        b = job.add_operator(_Op("b", num_inputs=1))
        c = job.add_operator(_Op("sink", num_inputs=1))
        job.connect(_Conn(), a, b, port=0)
        job.connect(_Conn(), b, a, port=0)
        job.connect(_Conn(), b, c, port=0)
        with pytest.raises(JobInvariantError) as exc:
            verify_job(job)
        assert "cycle" in str(exc.value)

    def test_dangling_edge_rejected(self):
        job = JobSpecification()
        job.add_operator(_Op("only", num_inputs=0))
        # bypass connect()'s own bounds check to exercise the verifier
        from repro.hyracks.job import _Edge
        job.edges.append(_Edge(_Conn(), 0, 5, 0))
        with pytest.raises(JobInvariantError) as exc:
            verify_job(job)
        assert "outside" in str(exc.value)
