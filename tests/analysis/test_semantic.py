"""Semantic analyzer: bad statements fail *before* execution with
distinct 4xxx codes, identically for SQL++ and AQL (both languages share
the core AST the analyzer walks).
"""

import pytest

from repro import connect
from repro.analysis import analyze_statement
from repro.common.errors import (
    ArityError,
    DuplicateAliasError,
    SemanticError,
    UndefinedVariableError,
    UnknownDatasetError,
    UnknownFieldError,
    UnknownFunctionError,
)
from repro.lang.aql.parser import parse_aql
from repro.lang.sqlpp.parser import parse_sqlpp


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    instance.execute("""
        CREATE TYPE ClosedUser AS CLOSED { id: int, name: string };
        CREATE TYPE OpenMsg AS { messageId: int, authorId: int };
        CREATE DATASET Users(ClosedUser) PRIMARY KEY id;
        CREATE DATASET Messages(OpenMsg) PRIMARY KEY messageId;
    """)
    instance.execute(
        'INSERT INTO Users ({"id": 1, "name": "ann"});')
    yield instance
    instance.close()


def analyze_sqlpp(db, text):
    (stmt,) = parse_sqlpp(text)
    analyze_statement(stmt, db.metadata)


def analyze_aql(db, text):
    (stmt,) = parse_aql(text)
    analyze_statement(stmt, db.metadata)


class TestSQLPP:
    def test_unknown_dataset_is_4002(self, db):
        with pytest.raises(UnknownDatasetError) as exc:
            db.query("SELECT VALUE x FROM NoSuchDataset x;")
        assert exc.value.code == 4002
        assert "NoSuchDataset" in str(exc.value)

    def test_undefined_variable_is_4001(self, db):
        with pytest.raises(UndefinedVariableError) as exc:
            db.query("SELECT VALUE nosuchvar FROM Users u;")
        assert exc.value.code == 4001
        assert "nosuchvar" in str(exc.value)

    def test_unknown_function_is_4003(self, db):
        with pytest.raises(UnknownFunctionError) as exc:
            db.query("SELECT VALUE frobnicate(u.id) FROM Users u;")
        assert exc.value.code == 4003
        assert "frobnicate" in str(exc.value)

    def test_closed_type_field_violation_is_4004(self, db):
        with pytest.raises(UnknownFieldError) as exc:
            db.query("SELECT VALUE u.salary FROM Users u;")
        assert exc.value.code == 4004
        assert "salary" in str(exc.value)

    def test_open_type_field_passes(self, db):
        # OpenMsg is open: undeclared fields are a runtime MISSING, not a
        # compile-time error
        assert db.query("SELECT VALUE m.whatever FROM Messages m;") == []

    def test_wrong_arity_is_4006(self, db):
        with pytest.raises(ArityError) as exc:
            db.query("SELECT VALUE abs(u.id, 2) FROM Users u;")
        assert exc.value.code == 4006

    def test_duplicate_alias_is_4007(self, db):
        with pytest.raises(DuplicateAliasError) as exc:
            db.query("SELECT VALUE u FROM Users u, Messages u;")
        assert exc.value.code == 4007

    def test_insert_into_unknown_dataset(self, db):
        with pytest.raises(UnknownDatasetError):
            db.execute('INSERT INTO Nowhere ({"id": 9});')

    def test_errors_are_semantic_errors(self, db):
        with pytest.raises(SemanticError):
            db.query("SELECT VALUE x FROM NoSuchDataset x;")

    def test_valid_queries_pass(self, db):
        analyze_sqlpp(db, "SELECT VALUE u.name FROM Users u;")
        analyze_sqlpp(db, """
            SELECT name AS n, COUNT(*) AS c
            FROM Users u WHERE u.id > 0
            GROUP BY u.name AS name ORDER BY n LIMIT 5;
        """)
        # Messages is open: m.tags is undeclared but legal to iterate
        analyze_sqlpp(db, """
            SELECT VALUE {"id": m.messageId, "tags": (
                SELECT VALUE t FROM m.tags t)}
            FROM Messages m;
        """)


class TestAQL:
    def test_unknown_dataset_is_4002(self, db):
        with pytest.raises(UnknownDatasetError) as exc:
            db.query("for $x in dataset NoSuchDataset return $x;",
                     language="aql")
        assert exc.value.code == 4002

    def test_undefined_variable_is_4001(self, db):
        with pytest.raises(UndefinedVariableError) as exc:
            db.query("for $u in dataset Users return $nosuchvar;",
                     language="aql")
        assert exc.value.code == 4001

    def test_unknown_function_is_4003(self, db):
        with pytest.raises(UnknownFunctionError) as exc:
            db.query("for $u in dataset Users return frobnicate($u.id);",
                     language="aql")
        assert exc.value.code == 4003

    def test_closed_type_field_violation_is_4004(self, db):
        with pytest.raises(UnknownFieldError) as exc:
            db.query("for $u in dataset Users return $u.salary;",
                     language="aql")
        assert exc.value.code == 4004

    def test_valid_query_passes(self, db):
        analyze_aql(db, """
            for $u in dataset Users
            let $n := $u.name
            where $u.id >= 0
            return {"name": $n};
        """)


class TestExplainAnalyzes:
    def test_explain_reports_semantic_error(self, db):
        # EXPLAIN runs the analyzer too: a bad statement never reaches
        # the translator
        with pytest.raises(UnknownDatasetError):
            db.explain("SELECT VALUE x FROM NoSuchDataset x;")

    def test_explain_includes_analyze_phase(self, db):
        ex = db.explain("SELECT VALUE u.name FROM Users u;")
        assert "analyze" in [p["name"] for p in ex.phases]
