"""Unit tests for the project linter (tools/lint).

Each project-specific checker gets at least one violating fixture and one
passing fixture, plus coverage of the suppression-comment escape hatch.
"""

import textwrap

from tools.lint.checkers import (
    CHECKERS,
    check_node_lock,
    check_per_tuple_dispatch,
    check_swallowed_faults,
    check_temp_pairing,
    check_unused_imports,
    check_wallclock,
    lint_source,
)

SIM_PATH = "src/repro/hyracks/executor.py"
RETRY_PATH = "src/repro/resilience/retry.py"
PLAIN_PATH = "src/repro/adm/values.py"


def lint(source, path, checkers=CHECKERS):
    return lint_source(textwrap.dedent(source), path, checkers)


def rules(findings):
    return [f.rule for f in findings]


class TestWallclock:
    def test_flags_time_time_in_simulated_path(self):
        findings = lint(
            """
            import time

            def tick(node):
                node.last_seen = time.time()
            """,
            SIM_PATH,
        )
        assert "no-wallclock" in rules(findings)
        (finding,) = [f for f in findings if f.rule == "no-wallclock"]
        assert "time.time()" in finding.message
        assert finding.line == 5

    def test_flags_unseeded_random(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.random()
            """,
            SIM_PATH,
        )
        assert "no-wallclock" in rules(findings)
        (finding,) = [f for f in findings if f.rule == "no-wallclock"]
        assert "random.Random(seed)" in finding.message

    def test_seeded_random_instance_passes(self):
        findings = lint(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            SIM_PATH,
        )
        assert rules(findings) == []

    def test_perf_counter_allowed(self):
        # perf_counter measures real elapsed work for metrics; it never
        # feeds back into simulated behaviour, so it is sanctioned.
        findings = lint(
            """
            import time

            def profile():
                return time.perf_counter()
            """,
            SIM_PATH,
        )
        assert rules(findings) == []

    def test_not_applied_outside_simulated_paths(self):
        findings = lint(
            """
            import time

            def now():
                return time.time()
            """,
            PLAIN_PATH,
        )
        assert "no-wallclock" not in rules(findings)

    def test_suppression_comment(self):
        findings = lint(
            """
            import time

            def tick():
                return time.time()  # lint: allow-wallclock
            """,
            SIM_PATH,
        )
        assert rules(findings) == []


class TestNodeLock:
    def test_flags_unlocked_mutation(self):
        findings = lint(
            """
            def fail(node):
                node.state = "DEAD"
            """,
            SIM_PATH,
        )
        assert rules(findings) == ["node-lock"]
        assert "node.state" in findings[0].message

    def test_flags_unlocked_augassign_via_self(self):
        findings = lint(
            """
            class Worker:
                def bump(self):
                    self.node.jobs_run += 1
            """,
            SIM_PATH,
        )
        assert rules(findings) == ["node-lock"]

    def test_mutation_under_lock_passes(self):
        findings = lint(
            """
            def fail(node):
                with node.lock:
                    node.state = "DEAD"
                    node.jobs_run += 1
            """,
            SIM_PATH,
        )
        assert rules(findings) == []

    def test_assigning_the_lock_itself_passes(self):
        findings = lint(
            """
            import threading

            def init(node):
                node.lock = threading.RLock()
            """,
            SIM_PATH,
        )
        assert rules(findings) == []

    def test_lock_does_not_leak_past_with_block(self):
        findings = lint(
            """
            def fail(node):
                with node.lock:
                    node.state = "DEAD"
                node.epoch = 2
            """,
            SIM_PATH,
        )
        assert rules(findings) == ["node-lock"]
        assert findings[0].line == 5

    def test_suppression_comment(self):
        findings = lint(
            """
            def init(node):
                node.state = "NEW"  # lint: allow-node-lock
            """,
            SIM_PATH,
        )
        assert rules(findings) == []


class TestSwallowedFaults:
    def test_bare_except_flagged_everywhere(self):
        findings = lint(
            """
            def safe(fn):
                try:
                    fn()
                except:
                    pass
            """,
            PLAIN_PATH,
        )
        assert "swallowed-fault" in rules(findings)
        assert "bare `except:`" in findings[0].message

    def test_except_exception_flagged_everywhere(self):
        findings = lint(
            """
            def guard(fn, log):
                try:
                    return fn()
                except Exception as exc:
                    log.append(exc)
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == ["swallowed-fault"]
        assert "`except Exception`" in findings[0].message

    def test_except_exception_in_tuple_flagged(self):
        findings = lint(
            """
            def guard(fn):
                try:
                    return fn()
                except (ValueError, Exception):
                    raise
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == ["swallowed-fault"]

    def test_except_exception_suppression_comment(self):
        findings = lint(
            """
            def guard(fn, log):
                try:
                    return fn()
                except Exception as exc:  # lint: allow-swallow
                    log.append(exc)
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == []

    def test_narrow_handler_not_flagged(self):
        findings = lint(
            """
            def guard(fn, log):
                try:
                    return fn()
                except (ValueError, KeyError) as exc:
                    log.append(exc)
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == []

    def test_silent_handler_flagged_in_retry_path(self):
        findings = lint(
            """
            def retry(fn):
                for _ in range(3):
                    try:
                        return fn()
                    except ValueError:
                        continue
            """,
            RETRY_PATH,
        )
        assert rules(findings) == ["swallowed-fault"]
        assert "except ValueError" in findings[0].message

    def test_silent_handler_ok_outside_retry_path(self):
        findings = lint(
            """
            def probe(fn):
                try:
                    return fn()
                except ValueError:
                    pass
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == []

    def test_handler_that_records_passes(self):
        findings = lint(
            """
            def retry(fn, log):
                for _ in range(3):
                    try:
                        return fn()
                    except ValueError as exc:
                        log.append(exc)
            """,
            RETRY_PATH,
        )
        assert rules(findings) == []

    def test_handler_that_reraises_passes(self):
        findings = lint(
            """
            def retry(fn):
                try:
                    return fn()
                except ValueError:
                    raise
            """,
            RETRY_PATH,
        )
        assert rules(findings) == []

    def test_suppression_comment(self):
        findings = lint(
            """
            def retry(fn):
                try:
                    return fn()
                except ValueError:  # lint: allow-swallow
                    pass
            """,
            RETRY_PATH,
        )
        assert rules(findings) == []


class TestUnusedImports:
    def test_flags_unused_from_import(self):
        findings = lint(
            """
            from os.path import join, split

            def f(a, b):
                return join(a, b)
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == ["unused-import"]
        assert "`split`" in findings[0].message

    def test_used_imports_pass(self):
        findings = lint(
            """
            import os
            from os.path import join

            def f(a, b):
                return join(os.sep, a, b)
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == []

    def test_future_import_exempt(self):
        findings = lint(
            """
            from __future__ import annotations

            X = 1
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == []

    def test_init_py_exempt(self):
        findings = lint(
            """
            from os.path import join
            """,
            "src/repro/adm/__init__.py",
        )
        assert rules(findings) == []

    def test_attribute_root_counts_as_use(self):
        findings = lint(
            """
            import os

            SEP = os.path.sep
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == []

    def test_noqa_suppresses(self):
        findings = lint(
            """
            import os  # noqa

            X = 1
            """,
            PLAIN_PATH,
        )
        assert rules(findings) == []


class TestTempPairing:
    OP_PATH = "src/repro/hyracks/operators/spiller.py"

    def test_flags_unpaired_make_temp_file(self):
        findings = lint(
            """
            def leaky(ctx):
                handle = ctx.make_temp_file("x")
                return handle
            """,
            self.OP_PATH,
        )
        assert rules(findings) == ["temp-pairing"]
        assert "release_temp_file" in findings[0].message

    def test_paired_release_passes(self):
        findings = lint(
            """
            def careful(ctx):
                handle = ctx.make_temp_file("x")
                try:
                    use(handle)
                finally:
                    ctx.release_temp_file(handle)
            """,
            self.OP_PATH,
        )
        assert rules(findings) == []

    def test_flags_writer_without_finish(self):
        findings = lint(
            """
            def leaky(ctx, data):
                writer = RunFileWriter(ctx, "run")
                for tup in data:
                    writer.write(tup)
            """,
            self.OP_PATH,
        )
        assert rules(findings) == ["temp-pairing"]
        assert "finish()" in findings[0].message

    def test_writer_reaching_finish_passes(self):
        findings = lint(
            """
            def careful(ctx, data):
                writer = RunFileWriter(ctx, "run")
                for tup in data:
                    writer.write(tup)
                return writer.finish()
            """,
            self.OP_PATH,
        )
        assert rules(findings) == []

    def test_release_in_nested_function_does_not_count(self):
        findings = lint(
            """
            def leaky(ctx):
                handle = ctx.make_temp_file("x")

                def later():
                    ctx.release_temp_file(handle)
                return later
            """,
            self.OP_PATH,
        )
        assert rules(findings) == ["temp-pairing"]

    def test_suppression_comment(self):
        findings = lint(
            """
            def transfer(ctx):
                return ctx.make_temp_file("x")  # lint: allow-temp-pairing
            """,
            self.OP_PATH,
        )
        assert rules(findings) == []

    def test_not_scoped_outside_runtime_paths(self):
        source = "def f(ctx):\n    return ctx.make_temp_file('x')\n"
        assert lint_source(source, "tools/bench_runner.py") == []


class TestPerTupleDispatch:
    OP_PATH = "src/repro/hyracks/operators/group.py"

    def test_flags_step_in_loop(self):
        findings = lint(
            """
            def fold(states, data):
                for tup in data:
                    for state in states:
                        state.step(tup)
            """,
            self.OP_PATH,
        )
        assert rules(findings) == ["per-tuple"]
        (finding,) = findings
        assert "step_many" in finding.message
        assert finding.line == 5

    def test_flags_order_key_in_loop(self):
        findings = lint(
            """
            def keys(data, fields, desc):
                out = []
                for tup in data:
                    out.append(order_key(tup, fields, desc))
                return out
            """,
            "src/repro/hyracks/operators/sort.py",
        )
        assert rules(findings) == ["per-tuple"]

    def test_batched_forms_pass(self):
        findings = lint(
            """
            def fold(state, call, frame):
                state.step_many(call.evaluate_many(frame))

            def keys(data, fields, desc):
                key = compile_order_key(fields, desc, data)
                return [key(t) for t in data]
            """,
            self.OP_PATH,
        )
        assert rules(findings) == []

    def test_step_outside_loop_passes(self):
        findings = lint(
            """
            def one(state, value):
                state.step(value)
            """,
            self.OP_PATH,
        )
        assert rules(findings) == []

    def test_suppression_comment(self):
        findings = lint(
            """
            def fold(states, data):
                for tup in data:
                    for state in states:
                        state.step(tup)   # lint: allow-per-tuple
            """,
            self.OP_PATH,
        )
        assert rules(findings) == []

    def test_not_scoped_outside_hyracks(self):
        source = ("def fold(states, data):\n"
                  "    for tup in data:\n"
                  "        for s in states:\n"
                  "            s.step(tup)\n")
        assert lint_source(source, "src/repro/functions/aggregates.py") == []

    def test_nested_loop_reports_once(self):
        findings = lint(
            """
            def fold(groups):
                for frame in groups:
                    for tup in frame:
                        state.step(tup)
            """,
            self.OP_PATH,
        )
        assert rules(findings) == ["per-tuple"]


class TestRegistry:
    def test_at_least_three_project_checkers(self):
        project = {check_wallclock, check_node_lock, check_swallowed_faults,
                   check_temp_pairing, check_per_tuple_dispatch}
        registered = {checker for checker, _ in CHECKERS}
        assert project <= registered
        assert check_unused_imports in registered

    def test_path_scoping(self):
        # a wall-clock call outside every scoped prefix fires nothing
        source = "import time\nX = time.time()\n"
        assert lint_source(source, "tools/bench_runner.py") == []

    def test_findings_are_sorted_and_serializable(self):
        findings = lint(
            """
            import time

            def f(node):
                node.a = time.time()
            """,
            SIM_PATH,
        )
        assert sorted(rules(findings)) == ["no-wallclock", "node-lock"]
        for f in findings:
            d = f.to_dict()
            assert set(d) == {"path", "line", "col", "rule", "message"}
            assert f.render().startswith(SIM_PATH)
