"""Tests for the spatial access-method adapters (E1's contestants)."""

import random

import pytest

from repro.adm import APoint, ARectangle
from repro.index import GridScheme, make_spatial_index
from repro.storage import BufferCache, FileManager, IODevice
from repro.storage.lsm import NoMergePolicy

KINDS = ["rtree", "zorder", "hilbert", "grid"]
BOUNDS = (0.0, 0.0, 100.0, 100.0)


@pytest.fixture
def stack(tmp_path):
    fm = FileManager([IODevice(0, str(tmp_path / "dev"))], page_size=2048)
    cache = BufferCache(fm, num_pages=128)
    yield fm, cache
    fm.close()


def build(kind, fm, cache, points):
    idx = make_spatial_index(kind, fm, cache, f"idx_{kind}", bounds=BOUNDS,
                             merge_policy=NoMergePolicy())
    for pk, (x, y) in enumerate(points):
        idx.insert(APoint(x, y), (pk,))
    return idx


def reference(points, window):
    return sorted(
        (pk,) for pk, (x, y) in enumerate(points)
        if window.contains_point(APoint(x, y))
    )


class TestGridScheme:
    def test_cell_of_corners(self):
        g = GridScheme(0, 0, 10, 10, cells_per_side=10)
        assert g.cell_of(APoint(0.5, 0.5)) == 0
        assert g.cell_of(APoint(9.5, 9.5)) == 99

    def test_cells_overlapping(self):
        g = GridScheme(0, 0, 10, 10, cells_per_side=10)
        window = ARectangle(APoint(1.5, 1.5), APoint(3.5, 2.5))
        cells = g.cells_overlapping(window)
        assert set(cells) == {11, 12, 13, 21, 22, 23}

    def test_cell_runs_row_contiguous(self):
        g = GridScheme(0, 0, 10, 10, cells_per_side=10)
        window = ARectangle(APoint(1.5, 1.5), APoint(3.5, 2.5))
        assert g.cell_runs(window) == [(11, 13), (21, 23)]


@pytest.mark.parametrize("kind", KINDS)
class TestAdapterContract:
    def test_query_matches_reference(self, stack, kind):
        fm, cache = stack
        rng = random.Random(13)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100))
                  for _ in range(800)]
        idx = build(kind, fm, cache, points)
        for seed in range(4):
            r = random.Random(seed)
            x0, y0 = r.uniform(0, 80), r.uniform(0, 80)
            window = ARectangle(APoint(x0, y0),
                                APoint(x0 + 12, y0 + 12))
            assert sorted(idx.query(window)) == reference(points, window)

    def test_query_after_flush(self, stack, kind):
        fm, cache = stack
        points = [(float(i), float(i)) for i in range(60)]
        idx = build(kind, fm, cache, points)
        idx.flush()
        window = ARectangle(APoint(10, 10), APoint(20, 20))
        assert sorted(idx.query(window)) == reference(points, window)

    def test_delete(self, stack, kind):
        fm, cache = stack
        points = [(5.0, 5.0), (6.0, 6.0)]
        idx = build(kind, fm, cache, points)
        idx.delete(APoint(5.0, 5.0), (0,))
        window = ARectangle(APoint(0, 0), APoint(10, 10))
        assert sorted(idx.query(window)) == [(1,)]

    def test_delete_across_flush(self, stack, kind):
        fm, cache = stack
        points = [(5.0, 5.0), (6.0, 6.0)]
        idx = build(kind, fm, cache, points)
        idx.flush()
        idx.delete(APoint(6.0, 6.0), (1,))
        window = ARectangle(APoint(0, 0), APoint(10, 10))
        assert sorted(idx.query(window)) == [(0,)]

    def test_stats_accumulate(self, stack, kind):
        fm, cache = stack
        points = [(float(i % 10), float(i // 10)) for i in range(100)]
        idx = build(kind, fm, cache, points)
        idx.query_stats.reset()
        window = ARectangle(APoint(2, 2), APoint(5, 5))
        got = idx.query(window)
        assert idx.query_stats.verified == len(got)
        assert idx.query_stats.candidates >= idx.query_stats.verified
        assert idx.query_stats.ranges_scanned >= 1


class TestFilterVerifyBehaviour:
    def test_linearized_schemes_produce_false_candidates(self, stack):
        """Z-order/grid over-approximate: candidates >= verified, strictly
        so for windows that cut cells (this is their inherent verify cost,
        which the E1 bench reports)."""
        fm, cache = stack
        rng = random.Random(2)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100))
                  for _ in range(2000)]
        idx = build("grid", fm, cache, points)
        idx.query_stats.reset()
        window = ARectangle(APoint(13.3, 17.7), APoint(26.1, 30.9))
        idx.query(window)
        assert idx.query_stats.candidates > idx.query_stats.verified

    def test_unknown_kind_rejected(self, stack):
        fm, cache = stack
        with pytest.raises(ValueError):
            make_spatial_index("kdtree", fm, cache, "x")
