"""Tests for Z-order/Hilbert linearizations and their range decompositions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import APoint, ARectangle
from repro.common.errors import InvalidArgumentError
from repro.index import (
    KeySpace,
    hilbert_key,
    hilbert_ranges,
    zorder_key,
    zorder_ranges,
)

SPACE = KeySpace(0, 0, 64, 64, bits=6)


class TestKeySpace:
    def test_quantize_corners(self):
        assert SPACE.quantize(0, 0) == (0, 0)
        assert SPACE.quantize(63.999, 63.999) == (63, 63)

    def test_quantize_clamps(self):
        assert SPACE.quantize(-5, 200) == (0, 63)

    def test_rejects_empty_space(self):
        with pytest.raises(InvalidArgumentError):
            KeySpace(0, 0, 0, 10)

    def test_rejects_bad_bits(self):
        with pytest.raises(InvalidArgumentError):
            KeySpace(0, 0, 1, 1, bits=0)


class TestZOrder:
    def test_bijective_on_grid(self):
        space = KeySpace(0, 0, 8, 8, bits=3)
        keys = {
            zorder_key(space, APoint(x + 0.5, y + 0.5))
            for x in range(8) for y in range(8)
        }
        assert len(keys) == 64
        assert min(keys) == 0 and max(keys) == 63

    def test_origin_is_zero(self):
        assert zorder_key(SPACE, APoint(0.1, 0.1)) == 0

    def test_locality_neighbors_close_mostly(self):
        # Morton codes of x-adjacent cells differ little within a quad
        space = KeySpace(0, 0, 4, 4, bits=2)
        k0 = zorder_key(space, APoint(0.5, 0.5))
        k1 = zorder_key(space, APoint(1.5, 0.5))
        assert abs(k1 - k0) == 1


class TestHilbert:
    def test_bijective_on_grid(self):
        space = KeySpace(0, 0, 16, 16, bits=4)
        keys = {
            hilbert_key(space, APoint(x + 0.5, y + 0.5))
            for x in range(16) for y in range(16)
        }
        assert len(keys) == 256

    def test_curve_is_continuous(self):
        """Consecutive Hilbert indexes are always adjacent cells — the
        locality property Z-order lacks."""
        space = KeySpace(0, 0, 16, 16, bits=4)
        position = {}
        for x in range(16):
            for y in range(16):
                position[hilbert_key(space, APoint(x + 0.5, y + 0.5))] = (x, y)
        for d in range(255):
            (x0, y0), (x1, y1) = position[d], position[d + 1]
            assert abs(x0 - x1) + abs(y0 - y1) == 1


def random_window(rng, max_side=14.0):
    x0, y0 = rng.uniform(0, 50), rng.uniform(0, 50)
    return ARectangle(
        APoint(x0, y0),
        APoint(x0 + rng.uniform(0.5, max_side),
               y0 + rng.uniform(0.5, max_side)),
    )


class TestRangeDecomposition:
    @pytest.mark.parametrize("key_fn,ranges_fn", [
        (zorder_key, zorder_ranges),
        (hilbert_key, hilbert_ranges),
    ])
    def test_windows_covered(self, key_fn, ranges_fn):
        """Every point inside a window maps into one of its key ranges."""
        rng = random.Random(11)
        for _ in range(50):
            window = random_window(rng)
            ranges = ranges_fn(SPACE, window, max_ranges=128)
            for _ in range(20):
                p = APoint(
                    rng.uniform(window.bottom_left.x, window.top_right.x),
                    rng.uniform(window.bottom_left.y, window.top_right.y),
                )
                k = key_fn(SPACE, p)
                assert any(lo <= k <= hi for lo, hi in ranges)

    @pytest.mark.parametrize("ranges_fn", [zorder_ranges, hilbert_ranges])
    def test_budget_respected(self, ranges_fn):
        rng = random.Random(3)
        for _ in range(20):
            window = random_window(rng, max_side=30)
            assert len(ranges_fn(SPACE, window, max_ranges=8)) <= 8

    @pytest.mark.parametrize("ranges_fn", [zorder_ranges, hilbert_ranges])
    def test_ranges_sorted_disjoint(self, ranges_fn):
        rng = random.Random(5)
        for _ in range(20):
            ranges = ranges_fn(SPACE, random_window(rng), max_ranges=64)
            for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
                assert hi1 < lo2

    def test_hilbert_fewer_or_equal_false_area(self):
        """Hilbert's better locality shows up as no-worse range counts for
        typical windows (a soft property; checked on aggregate)."""
        rng = random.Random(7)
        z_total = h_total = 0
        for _ in range(40):
            window = random_window(rng)
            z_total += len(zorder_ranges(SPACE, window, max_ranges=1000))
            h_total += len(hilbert_ranges(SPACE, window, max_ranges=1000))
        assert h_total <= z_total * 1.2


@given(
    x=st.floats(min_value=0, max_value=63.9),
    y=st.floats(min_value=0, max_value=63.9),
)
@settings(max_examples=200)
def test_keys_in_domain(x, y):
    p = APoint(x, y)
    assert 0 <= zorder_key(SPACE, p) < SPACE.side ** 2
    assert 0 <= hilbert_key(SPACE, p) < SPACE.side ** 2
