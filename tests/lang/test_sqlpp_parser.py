"""Tests for the SQL++ parser (AST-level)."""

import pytest

from repro.adm import MISSING
from repro.common.errors import SyntaxError_
from repro.lang import core_ast as ast
from repro.lang.sqlpp.parser import parse_sqlpp, parse_sqlpp_expression


def one(text):
    statements = parse_sqlpp(text)
    assert len(statements) == 1
    return statements[0]


class TestExpressions:
    def test_literals(self):
        assert parse_sqlpp_expression("42").value == 42
        assert parse_sqlpp_expression("-3.5").args[0].value == 3.5
        assert parse_sqlpp_expression("'hi'").value == "hi"
        assert parse_sqlpp_expression("true").value is True
        assert parse_sqlpp_expression("null").value is None
        assert parse_sqlpp_expression("missing").value is MISSING

    def test_precedence(self):
        e = parse_sqlpp_expression("1 + 2 * 3")
        assert e.function == "numeric_add"
        assert e.args[1].function == "numeric_multiply"

    def test_comparison_chain(self):
        e = parse_sqlpp_expression("a.x >= 1 AND a.x < 10 OR b = 2")
        assert e.function == "or"
        assert e.args[0].function == "and"

    def test_not_precedence(self):
        e = parse_sqlpp_expression("NOT a AND b")
        assert e.function == "and"
        assert e.args[0].function == "not"

    def test_path_navigation(self):
        e = parse_sqlpp_expression("u.employment[0].organizationName")
        assert isinstance(e, ast.FieldAccess)
        assert e.field == "organizationName"
        assert isinstance(e.base, ast.IndexAccess)

    def test_is_null_missing(self):
        assert parse_sqlpp_expression("x IS NULL").function == "is_null"
        e = parse_sqlpp_expression("x IS NOT MISSING")
        assert e.function == "not"
        assert e.args[0].function == "is_missing"

    def test_between(self):
        e = parse_sqlpp_expression("x BETWEEN 1 AND 10")
        assert e.function == "between"

    def test_like_and_not_like(self):
        assert parse_sqlpp_expression("x LIKE 'a%'").function == "like"
        e = parse_sqlpp_expression("x NOT LIKE 'a%'")
        assert e.function == "not"

    def test_in_operator(self):
        e = parse_sqlpp_expression("x IN [1, 2, 3]")
        assert e.function == "array_contains"

    def test_concat(self):
        e = parse_sqlpp_expression("a || b || c")
        assert e.function == "string_concat"

    def test_case_searched(self):
        e = parse_sqlpp_expression(
            "CASE WHEN x > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(e, ast.CaseWhen)
        assert len(e.whens) == 1

    def test_case_simple(self):
        e = parse_sqlpp_expression("CASE x WHEN 1 THEN 'one' END")
        assert e.whens[0][0].function == "eq"

    def test_quantified(self):
        e = parse_sqlpp_expression(
            "SOME f IN u.friendIds SATISFIES f > 100")
        assert isinstance(e, ast.QuantifiedExpr)
        assert e.some and e.var == "f"
        e2 = parse_sqlpp_expression(
            "EVERY f IN u.friendIds SATISFIES f > 0")
        assert not e2.some

    def test_exists(self):
        e = parse_sqlpp_expression("EXISTS u.employment")
        assert isinstance(e, ast.ExistsExpr)

    def test_object_constructor(self):
        e = parse_sqlpp_expression('{"a": 1, "b": x.y}')
        assert isinstance(e, ast.ObjectExpr)
        assert e.pairs[0][0].value == "a"

    def test_unquoted_object_keys(self):
        e = parse_sqlpp_expression("{a: 1}")
        assert e.pairs[0][0].value == "a"

    def test_array_and_multiset(self):
        assert not parse_sqlpp_expression("[1, 2]").multiset
        assert parse_sqlpp_expression("{{1, 2}}").multiset

    def test_function_call(self):
        e = parse_sqlpp_expression("coll_count(u.friendIds)")
        assert isinstance(e, ast.Call)
        assert e.function == "coll_count"

    def test_count_star(self):
        e = parse_sqlpp_expression("COUNT(*)")
        assert e.function == "count_star"

    def test_subquery_expression(self):
        e = parse_sqlpp_expression(
            "(SELECT VALUE e.organizationName FROM u.employment e)")
        assert isinstance(e, ast.SubqueryExpr)

    def test_backtick_identifier(self):
        e = parse_sqlpp_expression("r.`path`")
        assert e.field == "path"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SyntaxError_):
            parse_sqlpp_expression("1 1")


class TestSelectQueries:
    def test_minimal(self):
        stmt = one("SELECT VALUE 1;")
        q = stmt.query
        assert q.select.value_expr.value == 1

    def test_select_from_where(self):
        q = one("SELECT u.name FROM Users u WHERE u.age > 21;").query
        assert q.from_terms[0].alias == "u"
        assert q.where.function == "gt"
        assert q.select.projections[0].alias == "name"

    def test_from_first_order(self):
        q = one("FROM Users u WHERE u.x = 1 SELECT VALUE u;").query
        assert q.select.value_expr is not None

    def test_with_clause(self):
        q = one("WITH t AS current_datetime() SELECT VALUE t;").query
        assert q.with_clauses[0][0] == "t"

    def test_joins(self):
        q = one("""
            SELECT u.name, m.message
            FROM Users u JOIN Messages m ON m.authorId = u.id;
        """).query
        assert q.from_terms[1].kind == "join"
        assert q.from_terms[1].condition is not None

    def test_left_join(self):
        q = one("""
            SELECT u FROM Users u LEFT OUTER JOIN Msgs m
            ON m.authorId = u.id;
        """).query
        assert q.from_terms[1].kind == "leftjoin"

    def test_comma_join(self):
        q = one("SELECT u, m FROM Users u, Messages m;").query
        assert len(q.from_terms) == 2
        assert q.from_terms[1].kind == "from"

    def test_unnest(self):
        q = one("SELECT f FROM Users u UNNEST u.friendIds f;").query
        assert q.from_terms[1].kind == "unnest"

    def test_let(self):
        q = one("""
            SELECT VALUE nf FROM Users u
            LET nf = coll_count(u.friendIds);
        """).query
        assert q.let_clauses[0][0] == "nf"

    def test_group_by(self):
        q = one("""
            SELECT nf, COUNT(u) AS n FROM Users u
            GROUP BY u.numFriends AS nf;
        """).query
        assert q.group_keys[0].alias == "nf"

    def test_group_by_group_as(self):
        q = one("""
            SELECT g FROM Users u GROUP BY u.age GROUP AS g;
        """).query
        assert q.group_as == "g"
        assert q.group_keys[0].alias == "age"

    def test_having(self):
        q = one("""
            SELECT a FROM Users u GROUP BY u.age AS a
            HAVING COUNT(u) > 2;
        """).query
        assert q.having is not None

    def test_order_limit_offset(self):
        q = one("""
            SELECT VALUE u FROM Users u
            ORDER BY u.name DESC, u.id LIMIT 10 OFFSET 5;
        """).query
        assert q.order_by[0].descending
        assert not q.order_by[1].descending
        assert q.limit.value == 10
        assert q.offset.value == 5

    def test_distinct(self):
        q = one("SELECT DISTINCT VALUE u.age FROM Users u;").query
        assert q.select.distinct

    def test_select_star(self):
        q = one("SELECT * FROM Users u;").query
        assert q.select.projections[0].star


class TestDDL:
    def test_create_dataverse(self):
        stmt = one("CREATE DATAVERSE social IF NOT EXISTS;")
        assert stmt.name == "social" and stmt.if_not_exists

    def test_create_type_open(self):
        stmt = one("""
            CREATE TYPE UserType AS {
                id: int, alias: string, friendIds: {{ int }},
                employment: [EmploymentType], spouse: string?
            };
        """)
        assert stmt.body.is_open
        names = [f.name for f in stmt.body.fields]
        assert names == ["id", "alias", "friendIds", "employment", "spouse"]
        assert stmt.body.fields[2].type_name.kind == "multiset"
        assert stmt.body.fields[3].type_name.kind == "ordered"
        assert stmt.body.fields[4].optional

    def test_create_type_closed(self):
        stmt = one("CREATE TYPE T AS CLOSED { x: int };")
        assert not stmt.body.is_open

    def test_create_dataset(self):
        stmt = one("CREATE DATASET Users(UserType) PRIMARY KEY id;")
        assert stmt.primary_key == ["id"]

    def test_create_dataset_composite_pk(self):
        stmt = one("CREATE DATASET T(Ty) PRIMARY KEY org, id;")
        assert stmt.primary_key == ["org", "id"]

    def test_create_external_dataset(self):
        stmt = one("""
            CREATE EXTERNAL DATASET Log(LogType) USING localfs
            (("path"="localhost:///x/y.txt"),
             ("format"="delimited-text"), ("delimiter"="|"));
        """)
        assert stmt.adapter == "localfs"
        assert stmt.properties["format"] == "delimited-text"

    @pytest.mark.parametrize("ddl,kind,gram", [
        ("CREATE INDEX i ON D(f);", "btree", 3),
        ("CREATE INDEX i ON D(f) TYPE BTREE;", "btree", 3),
        ("CREATE INDEX i ON D(loc) TYPE RTREE;", "rtree", 3),
        ("CREATE INDEX i ON D(msg) TYPE KEYWORD;", "keyword", 3),
        ("CREATE INDEX i ON D(msg) TYPE NGRAM(2);", "ngram", 2),
    ])
    def test_create_index(self, ddl, kind, gram):
        stmt = one(ddl)
        assert stmt.kind == kind and stmt.gram_length == gram

    def test_create_array_index(self):
        stmt = one("CREATE INDEX oDel ON Orders "
                   "(UNNEST o_orderline SELECT ol_delivery_d);")
        assert stmt.kind == "array"
        assert stmt.array_path == "o_orderline"
        assert stmt.fields == ["ol_delivery_d"]

    def test_create_array_index_composite_and_nested(self):
        stmt = one("CREATE INDEX ix ON D "
                   "(UNNEST a.b SELECT x, y.z) TYPE BTREE;")
        assert stmt.kind == "array"
        assert stmt.array_path == "a.b"
        assert stmt.fields == ["x", "y.z"]

    def test_create_array_index_element_itself(self):
        stmt = one("CREATE INDEX ix ON D (UNNEST tags);")
        assert stmt.kind == "array"
        assert stmt.array_path == "tags"
        assert stmt.fields == []

    def test_array_index_rejects_non_btree_type(self):
        from repro.common.errors import InvalidIndexDDLError

        with pytest.raises(InvalidIndexDDLError):
            one("CREATE INDEX ix ON D (UNNEST tags) TYPE KEYWORD;")

    def test_drop(self):
        assert one("DROP DATASET Users;").kind == "dataset"
        stmt = one("DROP INDEX Users.byAlias;")
        assert stmt.kind == "index" and stmt.dataset == "Users"

    def test_load(self):
        stmt = one("""
            LOAD DATASET Users USING localfs
            (("path"="/data/u.adm"), ("format"="adm"));
        """)
        assert stmt.dataset == "Users" and stmt.format == "adm"


class TestDML:
    def test_insert_object(self):
        stmt = one('INSERT INTO Users ({"id": 1});')
        assert isinstance(stmt, ast.InsertStatement)
        assert not stmt.upsert

    def test_upsert(self):
        stmt = one('UPSERT INTO Users ({"id": 1});')
        assert stmt.upsert

    def test_insert_subquery(self):
        stmt = one("INSERT INTO Backup (SELECT VALUE u FROM Users u);")
        assert isinstance(stmt.payload, ast.SubqueryExpr)

    def test_delete_where(self):
        stmt = one("DELETE FROM Users u WHERE u.id = 5;")
        assert stmt.alias == "u"
        assert stmt.where.function == "eq"

    def test_delete_all(self):
        stmt = one("DELETE FROM Users;")
        assert stmt.where is None


class TestScripts:
    def test_multiple_statements(self):
        statements = parse_sqlpp("""
            CREATE DATAVERSE a;
            USE a;
            SELECT VALUE 1;
        """)
        assert len(statements) == 3

    def test_comments(self):
        statements = parse_sqlpp("""
            -- line comment
            /* block
               comment */
            SELECT VALUE 1;
        """)
        assert len(statements) == 1

    def test_error_has_position(self):
        try:
            parse_sqlpp("SELECT VALUE\n  %%;")
        except SyntaxError_ as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected a syntax error")
