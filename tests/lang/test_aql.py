"""AQL tests: the deprecated first language, compiled as a peer of SQL++
through the same algebra (the §IV-A claim, verified end to end)."""

import pytest

from repro import connect
from repro.lang import core_ast as ast
from repro.lang.aql.parser import parse_aql


def one(text):
    statements = parse_aql(text)
    assert len(statements) == 1
    return statements[0]


class TestAQLParser:
    def test_simple_flwor(self):
        stmt = one("for $u in dataset Users return $u;")
        q = stmt.query
        assert q.from_terms[0].alias == "u"
        assert q.select.value_expr is not None

    def test_dataset_function_form(self):
        stmt = one("for $u in dataset('Users') return $u.name;")
        term = stmt.query.from_terms[0]
        assert isinstance(term.expr, ast.Call)
        assert term.expr.args[0].value == "Users"

    def test_let_where(self):
        q = one("""
            for $u in dataset Users
            let $nf := count($u.friendIds)
            where $nf > 2
            return $nf;
        """).query
        assert q.let_clauses[0][0] == "nf"
        # AQL count() is the collection function
        assert q.let_clauses[0][1].function == "coll_count"
        assert q.where.function == "gt"

    def test_multiple_for_clauses(self):
        q = one("""
            for $u in dataset Users
            for $m in dataset Messages
            where $m.authorId = $u.id
            return {"u": $u.alias, "m": $m.message};
        """).query
        assert len(q.from_terms) == 2

    def test_for_at_positional(self):
        q = one("for $x at $i in $u.xs return $i;").query
        assert q.from_terms[0].positional_alias == "i"

    def test_group_by_with(self):
        q = one("""
            for $u in dataset Users
            group by $age := $u.age with $u
            return {"age": $age, "n": count($u)};
        """).query
        assert q.group_keys[0].alias == "age"
        assert q.aql_group_with == ["u"]

    def test_order_limit(self):
        q = one("""
            for $u in dataset Users
            order by $u.name desc
            limit 5 offset 2
            return $u;
        """).query
        assert q.order_by[0].descending
        assert q.limit.value == 5 and q.offset.value == 2

    def test_quantified(self):
        q = one("""
            for $u in dataset Users
            where some $f in $u.friendIds satisfies $f = 3
            return $u;
        """).query
        assert isinstance(q.where, ast.QuantifiedExpr)

    def test_ddl_passthrough(self):
        stmt = one("create type T as { id: int };")
        assert isinstance(stmt, ast.CreateType)


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    instance.execute("""
        CREATE TYPE UserType AS { id: int, alias: string, age: int,
                                  friendIds: {{ int }} };
        CREATE DATASET Users(UserType) PRIMARY KEY id;
    """)
    for i in range(10):
        friends = ", ".join(str(j) for j in range(i % 3))
        instance.execute(
            f'INSERT INTO Users ({{"id": {i}, "alias": "u{i}", '
            f'"age": {20 + i % 5}, "friendIds": {{{{{friends}}}}}}});'
        )
    yield instance
    instance.close()


class TestAQLExecution:
    def test_scan(self, db):
        rows = db.query("for $u in dataset Users return $u.id;",
                        language="aql")
        assert sorted(rows) == list(range(10))

    def test_filter(self, db):
        rows = db.query("""
            for $u in dataset Users
            where $u.age = 21
            return $u.alias;
        """, language="aql")
        assert sorted(rows) == ["u1", "u6"]

    def test_let_and_collection_count(self, db):
        rows = db.query("""
            for $u in dataset Users
            let $nf := count($u.friendIds)
            where $nf = 2
            return $u.id;
        """, language="aql")
        assert sorted(rows) == [2, 5, 8]

    def test_group_by_with(self, db):
        rows = db.query("""
            for $u in dataset Users
            group by $age := $u.age with $u
            return {"age": $age, "n": count($u)};
        """, language="aql")
        assert sorted((r["age"], r["n"]) for r in rows) == [
            (20, 2), (21, 2), (22, 2), (23, 2), (24, 2)
        ]

    def test_order_by(self, db):
        rows = db.query("""
            for $u in dataset Users
            order by $u.id desc
            limit 3
            return $u.id;
        """, language="aql")
        assert rows == [9, 8, 7]

    def test_deprecation_warning(self, db):
        result = db.execute("for $u in dataset Users return $u;",
                            language="aql")
        assert any("deprecated" in w for w in result.warnings)


class TestLanguageParity:
    """The same query in both languages: identical results and — after
    optimization — the same plan shapes (shared algebra, §IV-A)."""

    PAIRS = [
        (
            "SELECT VALUE u.alias FROM Users u WHERE u.age > 22;",
            "for $u in dataset Users where $u.age > 22 return $u.alias;",
        ),
        (
            "SELECT VALUE u.id FROM Users u WHERE u.id = 4;",
            "for $u in dataset Users where $u.id = 4 return $u.id;",
        ),
        (
            "SELECT VALUE coll_count(u.friendIds) FROM Users u "
            "ORDER BY u.id;",
            "for $u in dataset Users order by $u.id "
            "return count($u.friendIds);",
        ),
    ]

    @pytest.mark.parametrize("sqlpp,aql", PAIRS)
    def test_same_results(self, db, sqlpp, aql):
        assert sorted(db.query(sqlpp), key=repr) == \
            sorted(db.query(aql, language="aql"), key=repr)

    @pytest.mark.parametrize("sqlpp,aql", PAIRS)
    def test_same_plan_shape(self, db, sqlpp, aql):
        import re

        def shape(text):
            plan = db.execute(text[0], explain=True,
                              language=text[1]).plan
            # operator names only, variables normalized away
            return [
                re.sub(r"\$\$\d+", "$", line).split()[0]
                for line in plan.splitlines()
            ]

        assert shape((sqlpp, "sqlpp")) == shape((aql, "aql"))
