"""Unit tests for the shared SQL++/AQL tokenizer."""

import pytest

from repro.common.errors import SyntaxError_
from repro.lang.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_idents_and_keywords(self):
        assert kinds("SELECT value") == [("IDENT", "SELECT"),
                                         ("IDENT", "value")]

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e3 2E-2")
        assert [t.value for t in tokens[:-1]] == [42, 3.14, 1000.0, 0.02]

    def test_integer_dot_field_not_float(self):
        # "a.5"? No — but "1.x" must not lex as a float
        tokens = tokenize("x[1].y")
        assert [t.text for t in tokens[:-1]] == ["x", "[", "1", "]",
                                                 ".", "y"]

    def test_strings_both_quotes(self):
        tokens = tokenize("'it''s' \"two\"")
        assert tokens[0].value == "it's"
        assert tokens[1].value == "two"

    def test_string_escapes(self):
        assert tokenize(r'"a\nbA"')[0].value == "a\nbA"

    def test_backtick_identifier(self):
        tok = tokenize("`path`")[0]
        assert tok.kind == "IDENT" and tok.text == "path"

    def test_dollar_variables(self):
        tok = tokenize("$user")[0]
        assert tok.kind == "VAR" and tok.text == "user"

    def test_multichar_punct(self):
        assert [t.text for t in tokenize("<= >= != || :=")[:-1]] == \
            ["<=", ">=", "!=", "||", ":="]

    def test_comments_stripped(self):
        tokens = tokenize("a -- comment\n/* block\n */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SyntaxError_, match="unterminated"):
            tokenize('"abc')

    def test_unterminated_comment(self):
        with pytest.raises(SyntaxError_, match="comment"):
            tokenize("/* never ends")

    def test_bad_character(self):
        with pytest.raises(SyntaxError_):
            tokenize("a # b")

    def test_bad_variable(self):
        with pytest.raises(SyntaxError_, match="variable"):
            tokenize("$ x")
