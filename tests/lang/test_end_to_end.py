"""End-to-end SQL++ tests through the full stack (parse -> translate ->
optimize -> jobgen -> execute on the simulated cluster)."""

import pytest

from repro import connect
from repro.common.errors import (
    AsterixError,
    CompilationError,
    DuplicateKeyError,
    TypeError_,
)


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    instance.set_session_now("2019-04-08T00:00:00")
    yield instance
    instance.close()


@pytest.fixture
def social(db):
    """A small social-network database."""
    db.execute("""
        CREATE TYPE UserType AS {
            id: int, alias: string, name: string, age: int,
            friendIds: {{ int }}
        };
        CREATE TYPE MessageType AS {
            messageId: int, authorId: int, message: string,
            senderLocation: point?
        };
        CREATE DATASET Users(UserType) PRIMARY KEY id;
        CREATE DATASET Messages(MessageType) PRIMARY KEY messageId;
    """)
    for i in range(12):
        db.execute(f"""
            INSERT INTO Users ({{"id": {i}, "alias": "u{i:02d}",
                "name": "User {i}", "age": {20 + i % 4},
                "friendIds": {{{{{", ".join(str(j) for j in range(i % 3))}}}}}
            }});
        """)
    for m in range(20):
        author = m % 12
        x, y = (m % 10) * 10.0, (m // 10) * 10.0
        db.execute(f"""
            INSERT INTO Messages ({{"messageId": {m}, "authorId": {author},
                "message": "message number {m} from user {author}",
                "senderLocation": point("{x},{y}")}});
        """)
    return db


class TestBasicQueries:
    def test_expression_query(self, db):
        assert db.query("SELECT VALUE 1 + 2;") == [3]

    def test_full_scan(self, social):
        rows = social.query("SELECT VALUE u.id FROM Users u;")
        assert sorted(rows) == list(range(12))

    def test_where_filter(self, social):
        rows = social.query(
            "SELECT VALUE u.alias FROM Users u WHERE u.age = 22;")
        assert sorted(rows) == ["u02", "u06", "u10"]

    def test_projection_objects(self, social):
        rows = social.query(
            "SELECT u.alias AS a, u.age FROM Users u WHERE u.id = 3;")
        assert rows == [{"a": "u03", "age": 23}]

    def test_select_star(self, social):
        rows = social.query("SELECT * FROM Users u WHERE u.id = 1;")
        assert rows[0]["u"]["alias"] == "u01"

    def test_order_by(self, social):
        rows = social.query(
            "SELECT VALUE u.alias FROM Users u ORDER BY u.alias DESC;")
        assert rows == sorted(rows, reverse=True)

    def test_limit_offset(self, social):
        rows = social.query(
            "SELECT VALUE u.id FROM Users u ORDER BY u.id "
            "LIMIT 3 OFFSET 2;")
        assert rows == [2, 3, 4]

    def test_distinct(self, social):
        rows = social.query("SELECT DISTINCT VALUE u.age FROM Users u;")
        assert sorted(rows) == [20, 21, 22, 23]

    def test_pk_point_query(self, social):
        rows = social.query(
            "SELECT VALUE u.name FROM Users u WHERE u.id = 7;")
        assert rows == ["User 7"]

    def test_pk_range_query(self, social):
        rows = social.query(
            "SELECT VALUE u.id FROM Users u WHERE u.id >= 4 AND u.id < 7;")
        assert sorted(rows) == [4, 5, 6]

    def test_missing_field_access(self, social):
        # a MISSING result value is not serialized into the result set
        rows = social.query(
            "SELECT VALUE u.nosuchfield FROM Users u WHERE u.id = 0;")
        assert rows == []

    def test_case_expression(self, social):
        rows = social.query("""
            SELECT VALUE CASE WHEN u.age >= 22 THEN 'old' ELSE 'young' END
            FROM Users u WHERE u.id < 2;
        """)
        assert sorted(rows) == ["young", "young"]


class TestJoinsAndNesting:
    def test_equi_join(self, social):
        rows = social.query("""
            SELECT u.alias AS who, m.messageId AS mid
            FROM Users u, Messages m
            WHERE m.authorId = u.id AND u.id = 2;
        """)
        assert sorted(r["mid"] for r in rows) == [2, 14]

    def test_explicit_join_syntax(self, social):
        rows = social.query("""
            SELECT VALUE m.messageId
            FROM Users u JOIN Messages m ON m.authorId = u.id
            WHERE u.age = 20;
        """)
        expected = [m for m in range(20) if (m % 12) % 4 == 0]
        assert sorted(rows) == expected

    def test_left_outer_join(self, social):
        social.execute(
            'INSERT INTO Users ({"id": 99, "alias": "lonely", '
            '"name": "No Messages", "age": 50, "friendIds": {{}}});')
        rows = social.query("""
            SELECT u.alias AS a, m.messageId AS mid
            FROM Users u LEFT JOIN Messages m ON m.authorId = u.id
            WHERE u.id = 99;
        """)
        assert rows == [{"a": "lonely"}]  # mid is MISSING -> dropped

    def test_unnest(self, social):
        rows = social.query("""
            SELECT VALUE f FROM Users u UNNEST u.friendIds f
            WHERE u.id = 5;
        """)
        assert sorted(rows) == [0, 1]

    def test_quantified_over_field(self, social):
        rows = social.query("""
            SELECT VALUE u.id FROM Users u
            WHERE SOME f IN u.friendIds SATISFIES f = 1;
        """)
        # users with i%3 >= 2 have friend 1
        assert sorted(rows) == [2, 5, 8, 11]

    def test_semijoin_from_quantifier_over_dataset(self, social):
        rows = social.query("""
            SELECT VALUE u.alias FROM Users u
            WHERE SOME m IN Messages SATISFIES m.authorId = u.id
                  AND m.messageId >= 18;
        """)
        assert sorted(rows) == ["u06", "u07"]

    def test_exists_subquery(self, social):
        rows = social.query("""
            SELECT VALUE u.alias FROM Users u
            WHERE EXISTS (SELECT VALUE m FROM Messages m
                          WHERE m.authorId = u.id AND m.messageId > 17);
        """)
        assert sorted(rows) == ["u06", "u07"]

    def test_inline_subquery_over_field(self, social):
        rows = social.query("""
            SELECT VALUE (SELECT VALUE f * 10 FROM u.friendIds f
                          WHERE f > 0)
            FROM Users u WHERE u.id = 5;
        """)
        assert rows == [[10]]


class TestGrouping:
    def test_group_by_count(self, social):
        rows = social.query("""
            SELECT age, COUNT(u) AS n FROM Users u GROUP BY u.age AS age;
        """)
        assert sorted((r["age"], r["n"]) for r in rows) == [
            (20, 3), (21, 3), (22, 3), (23, 3)
        ]

    def test_group_by_multiple_aggregates(self, social):
        rows = social.query("""
            SELECT a, COUNT(u) AS n, MIN(u.id) AS lo, MAX(u.id) AS hi
            FROM Users u GROUP BY u.age AS a HAVING COUNT(u) > 1;
        """)
        assert len(rows) == 4
        for r in rows:
            assert r["lo"] < r["hi"]

    def test_global_aggregate(self, social):
        rows = social.query("SELECT COUNT(*) AS n FROM Messages m;")
        assert rows == [{"n": 20}]

    def test_avg_sum(self, social):
        rows = social.query(
            "SELECT AVG(u.age) AS a, SUM(u.age) AS s FROM Users u;")
        assert rows[0]["s"] == sum(20 + i % 4 for i in range(12))

    def test_group_as(self, social):
        rows = social.query("""
            SELECT a, g FROM Users u GROUP BY u.age AS a GROUP AS g
            ORDER BY a LIMIT 1;
        """)
        assert rows[0]["a"] == 20
        assert len(rows[0]["g"]) == 3
        assert all("u" in item for item in rows[0]["g"])

    def test_order_by_aggregate(self, social):
        rows = social.query("""
            SELECT a FROM Users u GROUP BY u.age AS a
            ORDER BY COUNT(u) DESC, a;
        """)
        assert [r["a"] for r in rows] == [20, 21, 22, 23]

    def test_fig3c_shape(self, social):
        """The paper's Fig. 3(c) pattern against the social fixture."""
        rows = social.query("""
            SELECT nf AS numFriends, COUNT(user) AS activeUsers
            FROM Users user
            LET nf = COLL_COUNT(user.friendIds)
            WHERE SOME m IN Messages SATISFIES user.id = m.authorId
            GROUP BY nf;
        """)
        by_nf = {r["numFriends"]: r["activeUsers"] for r in rows}
        assert by_nf == {0: 4, 1: 4, 2: 4}


class TestDML:
    def test_insert_and_read_back(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            INSERT INTO D ({"id": 1, "x": "a"});
        """)
        assert db.query("SELECT VALUE d.x FROM D d;") == ["a"]

    def test_insert_duplicate_pk_fails(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            INSERT INTO D ({"id": 1});
        """)
        with pytest.raises(DuplicateKeyError):
            db.execute('INSERT INTO D ({"id": 1});')

    def test_upsert_replaces(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            UPSERT INTO D ({"id": 1, "v": "old"});
            UPSERT INTO D ({"id": 1, "v": "new"});
        """)
        assert db.query("SELECT VALUE d.v FROM D d;") == ["new"]

    def test_insert_array_of_records(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
        """)
        result = db.execute(
            'INSERT INTO D ([{"id": 1}, {"id": 2}, {"id": 3}]);')
        assert "3 record(s)" in result.message

    def test_insert_from_query(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET Src(T) PRIMARY KEY id;
            CREATE DATASET Dst(T) PRIMARY KEY id;
            INSERT INTO Src ([{"id": 1, "x": 5}, {"id": 2, "x": 10}]);
            INSERT INTO Dst (SELECT VALUE s FROM Src s WHERE s.x > 7);
        """)
        assert db.query("SELECT VALUE d.id FROM Dst d;") == [2]

    def test_delete_where(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            INSERT INTO D ([{"id": 1}, {"id": 2}, {"id": 3}]);
        """)
        result = db.execute("DELETE FROM D d WHERE d.id < 3;")
        assert "2 record(s)" in result.message
        assert db.query("SELECT VALUE d.id FROM D d;") == [3]

    def test_type_validation_on_insert(self, db):
        db.execute("""
            CREATE TYPE T AS CLOSED { id: int, name: string };
            CREATE DATASET D(T) PRIMARY KEY id;
        """)
        with pytest.raises(TypeError_):
            db.execute('INSERT INTO D ({"id": 1, "name": "x", "z": 2});')

    def test_open_type_allows_extras(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            INSERT INTO D ({"id": 1, "anything": [1, {"deep": true}]});
        """)
        rows = db.query("SELECT VALUE d.anything[1].deep FROM D d;")
        assert rows == [True]


class TestIndexUsage:
    def test_secondary_index_plan_and_results(self, social):
        social.execute("CREATE INDEX byAge ON Users(age);")
        with_index = social.execute(
            "SELECT VALUE u.id FROM Users u WHERE u.age = 21;")
        without = social.execute(
            "SELECT VALUE u.id FROM Users u WHERE u.age = 21;",
            enable_index_access=False)
        assert sorted(with_index.rows) == sorted(without.rows) == [1, 5, 9]
        assert "index-search" in with_index.plan
        assert "index-search" not in without.plan

    def test_rtree_index_spatial_query(self, social):
        social.execute(
            "CREATE INDEX byLoc ON Messages(senderLocation) TYPE RTREE;")
        result = social.execute("""
            SELECT VALUE m.messageId FROM Messages m
            WHERE spatial_intersect(m.senderLocation,
                create_rectangle(create_point(0.0, 0.0),
                                 create_point(35.0, 5.0)));
        """)
        assert sorted(result.rows) == [0, 1, 2, 3]
        assert "rtree-index-search" in result.plan

    def test_keyword_index_ftcontains(self, social):
        social.execute(
            "CREATE INDEX byMsg ON Messages(message) TYPE KEYWORD;")
        result = social.execute("""
            SELECT VALUE m.messageId FROM Messages m
            WHERE ftcontains(m.message, 'number 7');
        """)
        # conjunctive token semantics: message 19 ("...from user 7")
        # also contains both tokens
        assert sorted(result.rows) == [7, 19]
        assert "keyword-index-search" in result.plan


class TestMetadataQueries:
    def test_catalog_is_queryable(self, social):
        rows = social.query("""
            SELECT VALUE d.DatasetName FROM Metadata.Dataset d
            WHERE d.DataverseName = 'Default';
        """)
        assert sorted(rows) == ["Messages", "Users"]

    def test_dataverses(self, db):
        db.execute("CREATE DATAVERSE science;")
        rows = db.query(
            "SELECT VALUE v.DataverseName FROM Metadata.Dataverse v;")
        assert "science" in rows and "Default" in rows

    def test_use_dataverse_scoping(self, db):
        db.execute("""
            CREATE DATAVERSE a;
            USE a;
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            INSERT INTO D ({"id": 7});
        """)
        assert db.query("SELECT VALUE d.id FROM D d;") == [7]
        db.execute("USE Default;")
        with pytest.raises(AsterixError):
            db.query("SELECT VALUE d.id FROM D d;")
        assert db.query("SELECT VALUE d.id FROM a.D d;") == [7]


class TestExplain:
    def test_explain_returns_plan(self, social):
        result = social.execute(
            "SELECT VALUE u FROM Users u WHERE u.id = 1;", explain=True)
        assert result.kind == "explain"
        assert "primary-search" in result.plan
        assert result.rows == []

    def test_constant_folding_in_plan(self, social):
        result = social.execute("""
            WITH cutoff AS 20 + 2
            SELECT VALUE u FROM Users u WHERE u.age > cutoff;
        """, explain=True)
        assert "22" in result.plan
        assert "cutoff" not in result.plan


class TestErrors:
    def test_unknown_dataset(self, db):
        with pytest.raises(AsterixError, match="NoSuch"):
            db.query("SELECT VALUE x FROM NoSuchThing x;")

    def test_unknown_function(self, db):
        with pytest.raises(AsterixError, match="frobnicate"):
            db.query("SELECT VALUE frobnicate(1);")

    def test_unresolved_variable(self, db):
        with pytest.raises(AsterixError, match="nosuchvar"):
            db.query("SELECT VALUE nosuchvar;")

    def test_aggregate_in_where_rejected(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
        """)
        with pytest.raises(CompilationError, match="grouping context"):
            db.query("SELECT VALUE d FROM D d WHERE SUM(d.id) > 1;")

    def test_select_aggregate_without_from(self, db):
        # implicit single-group aggregation over the empty-tuple source
        assert db.query("SELECT VALUE SUM(3);") == [3]


class TestUnionAll:
    def test_two_branches(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET A(T) PRIMARY KEY id;
            CREATE DATASET B(T) PRIMARY KEY id;
            INSERT INTO A ([{"id": 1, "v": "a1"}, {"id": 2, "v": "a2"}]);
            INSERT INTO B ([{"id": 1, "v": "b1"}]);
        """)
        rows = db.query("""
            SELECT VALUE a.v FROM A a
            UNION ALL
            SELECT VALUE b.v FROM B b;
        """)
        assert sorted(rows) == ["a1", "a2", "b1"]

    def test_bag_semantics_keeps_duplicates(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET A(T) PRIMARY KEY id;
            INSERT INTO A ([{"id": 1, "v": "same"}]);
        """)
        rows = db.query("""
            SELECT VALUE a.v FROM A a
            UNION ALL
            SELECT VALUE a.v FROM A a;
        """)
        assert rows == ["same", "same"]

    def test_three_branches_with_filters(self, social):
        rows = social.query("""
            SELECT VALUE u.alias FROM Users u WHERE u.id = 0
            UNION ALL
            SELECT VALUE u.alias FROM Users u WHERE u.id = 1
            UNION ALL
            SELECT VALUE m.messageId FROM Messages m WHERE m.messageId = 5;
        """)
        assert sorted(rows, key=repr) == sorted(
            [5, "u00", "u01"], key=repr)


class TestGeneralizedGrouping:
    """§IV-A: SQL++ 'exploit[s] the nested/composable data model of JSON
    by offering generalized support for grouping and aggregation' — the
    group is a first-class collection (GROUP AS) that nested subqueries
    can re-query."""

    def test_group_as_with_nested_subquery(self, social):
        rows = social.query("""
            SELECT age, (SELECT VALUE x.u.alias FROM g AS x) AS aliases
            FROM Users u GROUP BY u.age AS age GROUP AS g
            ORDER BY age;
        """)
        assert len(rows) == 4
        assert sorted(rows[0]["aliases"]) == ["u00", "u04", "u08"]

    def test_group_as_filtered_subquery(self, social):
        rows = social.query("""
            SELECT age,
                   (SELECT VALUE x.u.id FROM g AS x
                    WHERE x.u.id >= 8) AS elders
            FROM Users u GROUP BY u.age AS age GROUP AS g
            ORDER BY age;
        """)
        by_age = {r["age"]: sorted(r["elders"]) for r in rows}
        assert by_age[20] == [8]
        assert by_age[23] == [11]

    def test_nested_collection_in_result(self, social):
        """Results can be arbitrarily nested objects (non-flat output)."""
        rows = social.query("""
            SELECT VALUE {"user": u.alias,
                          "profile": {"age": u.age,
                                      "friends": u.friendIds}}
            FROM Users u WHERE u.id = 5;
        """)
        assert rows[0]["profile"]["age"] == 21
        assert sorted(rows[0]["profile"]["friends"]) == [0, 1]
