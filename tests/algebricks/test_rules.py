"""Tests for the Algebricks rewrite rules."""

import pytest

from repro.algebricks import (
    LCall,
    LConst,
    LVar,
    MetadataView,
    optimize,
    plan_signature,
)
from repro.algebricks.logical import (
    Assign,
    DataSourceScan,
    DistributeResult,
    Join,
    Limit,
    Order,
    PrimaryIndexSearch,
    SecondaryIndexSearch,
    Select,
    Unnest,
)
from repro.storage.dataset_storage import SecondaryIndexSpec


class FakeMetadata(MetadataView):
    def __init__(self, indexes=()):
        self._indexes = list(indexes)

    def pk_fields(self, dataset):
        return ("id",)

    def secondary_indexes(self, dataset):
        return self._indexes

    def is_external(self, dataset):
        return False


def scan(pk_var=1, rec_var=2, dataset="ds"):
    return DataSourceScan(dataset, [pk_var], rec_var)


def fa(var, name):
    return LCall("field_access", [LVar(var), LConst(name)])


def result(child, expr=None):
    return DistributeResult(expr or LVar(2), inputs=[child])


class TestBasicRewrites:
    def test_constant_folding(self):
        plan = result(Select(
            LCall("gt", [LConst(2), LCall("numeric_add",
                                          [LConst(1), LConst(1)])]),
            inputs=[scan()],
        ))
        optimized = optimize(plan, FakeMetadata())
        # 2 > (1+1) folds to false; select(false) survives (no pruning of
        # empty plans), but the inner add is gone
        select = optimized.inputs[0]
        assert isinstance(select, Select)
        assert select.condition == LConst(False)

    def test_conjunction_split_and_true_removal(self):
        cond = LCall("and", [LConst(True),
                             LCall("gt", [LVar(1), LConst(5)])])
        plan = result(Select(cond, inputs=[scan()]))
        optimized = optimize(plan, FakeMetadata())
        sig = plan_signature(optimized)
        # with a pk predicate this becomes a primary index search
        assert "PrimaryIndexSearch" in sig

    def test_select_pushed_below_assign(self):
        inner = Assign(3, fa(2, "x"), inputs=[scan()])
        cond = LCall("gt", [LVar(1), LConst(0)])  # only needs scan vars
        plan = DistributeResult(LVar(3), inputs=[Select(cond,
                                                        inputs=[inner])])
        optimized = optimize(plan, FakeMetadata())
        sig = plan_signature(optimized)
        # assign should now be above the select/search
        assert sig.index("Assign") < sig.index("PrimaryIndexSearch")

    def test_dead_assign_removed(self):
        inner = Assign(3, fa(2, "unused"), inputs=[scan()])
        plan = DistributeResult(LVar(2), inputs=[inner])
        optimized = optimize(plan, FakeMetadata())
        assert "Assign" not in plan_signature(optimized)

    def test_live_assign_kept(self):
        inner = Assign(3, fa(2, "used"), inputs=[scan()])
        plan = DistributeResult(LVar(3), inputs=[inner])
        optimized = optimize(plan, FakeMetadata())
        assert "Assign" in plan_signature(optimized)


class TestJoinRewrites:
    def make_join_plan(self, condition_above):
        left = scan(1, 2, "left")
        right = scan(3, 4, "right")
        join = Join(LConst(True), inputs=[left, right])
        return DistributeResult(LVar(2), inputs=[
            Select(condition_above, inputs=[join])
        ])

    def test_equality_select_becomes_join_condition(self):
        cond = LCall("eq", [LVar(1), LVar(3)])
        optimized = optimize(self.make_join_plan(cond), FakeMetadata())
        join = next(op for op in _walk(optimized) if isinstance(op, Join))
        assert "eq" in repr(join.condition)
        assert "Select" not in plan_signature(optimized)

    def test_one_sided_select_pushed_into_branch(self):
        cond = LCall("gt", [fa(4, "size"), LConst(100)])
        optimized = optimize(self.make_join_plan(cond), FakeMetadata())
        join = next(op for op in _walk(optimized) if isinstance(op, Join))
        right_branch_sig = plan_signature(join.inputs[1])
        assert "Select" in right_branch_sig


class TestAccessMethodRules:
    def test_primary_index_point_lookup(self):
        cond = LCall("eq", [LVar(1), LConst(42)])
        plan = result(Select(cond, inputs=[scan()]))
        optimized = optimize(plan, FakeMetadata())
        search = optimized.inputs[0]
        assert isinstance(search, PrimaryIndexSearch)
        assert search.lo == [LConst(42)] and search.hi == [LConst(42)]

    def test_primary_index_range(self):
        conds = Select(
            LCall("and", [
                LCall("ge", [LVar(1), LConst(10)]),
                LCall("lt", [LVar(1), LConst(20)]),
            ]),
            inputs=[scan()],
        )
        optimized = optimize(result(conds), FakeMetadata())
        search = optimized.inputs[0]
        assert isinstance(search, PrimaryIndexSearch)
        assert search.lo == [LConst(10)] and search.lo_inclusive
        assert search.hi == [LConst(20)] and not search.hi_inclusive

    def test_pk_predicate_via_field_access(self):
        cond = LCall("eq", [fa(2, "id"), LConst(7)])
        optimized = optimize(result(Select(cond, inputs=[scan()])),
                             FakeMetadata())
        assert isinstance(optimized.inputs[0], PrimaryIndexSearch)

    def test_secondary_btree_index_chosen(self):
        md = FakeMetadata([SecondaryIndexSpec("byA", "btree", ("alias",))])
        cond = LCall("eq", [fa(2, "alias"), LConst("bob")])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md)
        search = optimized.inputs[0]
        assert isinstance(search, SecondaryIndexSearch)
        assert search.index_name == "byA"

    def test_secondary_index_through_assign(self):
        md = FakeMetadata([SecondaryIndexSpec("byA", "btree", ("alias",))])
        assigned = Assign(3, fa(2, "alias"), inputs=[scan()])
        cond = LCall("eq", [LVar(3), LConst("bob")])
        optimized = optimize(result(Select(cond, inputs=[assigned])), md)
        assert "SecondaryIndexSearch" in plan_signature(optimized)

    def test_rtree_index_chosen_with_residual(self):
        from repro.adm import APoint, ARectangle

        md = FakeMetadata([SecondaryIndexSpec("byLoc", "rtree", ("loc",))])
        window = ARectangle(APoint(0, 0), APoint(10, 10))
        cond = LCall("spatial_intersect", [fa(2, "loc"), LConst(window)])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md)
        sig = plan_signature(optimized)
        assert "SecondaryIndexSearch" in sig
        assert "Select" in sig   # residual exact check kept

    def test_inverted_index_chosen(self):
        md = FakeMetadata([SecondaryIndexSpec("byMsg", "keyword",
                                              ("message",))])
        cond = LCall("ftcontains", [fa(2, "message"), LConst("big data")])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.index_kind == "keyword"

    def test_index_access_can_be_disabled(self):
        md = FakeMetadata([SecondaryIndexSpec("byA", "btree", ("alias",))])
        cond = LCall("eq", [fa(2, "alias"), LConst("bob")])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md,
                             enable_index_access=False)
        sig = plan_signature(optimized)
        assert "SecondaryIndexSearch" not in sig
        assert "DataSourceScan" in sig

    def test_no_index_no_rewrite(self):
        cond = LCall("eq", [fa(2, "alias"), LConst("bob")])
        optimized = optimize(result(Select(cond, inputs=[scan()])),
                             FakeMetadata())
        assert "SecondaryIndexSearch" not in plan_signature(optimized)


class TestConstantInlining:
    def test_does_not_inline_into_sort_keys(self):
        # regression: rule_inline_constant_assigns used to substitute a
        # constant WITH-binding into Order.pairs, leaving an LConst sort
        # key jobgen refuses (and the sort-key-variable plan invariant
        # flags, naming the rule)
        plan = DistributeResult(LVar(2), inputs=[
            Order([(LVar(5), False)], inputs=[
                Assign(5, LConst(1), inputs=[scan()])
            ])
        ])
        optimized = optimize(plan, FakeMetadata())
        order = next(op for op in _walk(optimized) if isinstance(op, Order))
        (key, _), = order.pairs
        assert key == LVar(5)
        # the assign must survive as the key's producer
        assert any(isinstance(op, Assign) and op.var == 5
                   for op in _walk(optimized))

    def test_does_not_inline_into_group_keys(self):
        from repro.algebricks.logical import AggCall, GroupBy
        plan = DistributeResult(LVar(7), inputs=[
            GroupBy([(7, LVar(5))], [AggCall(8, "count", LVar(2))],
                    inputs=[Assign(5, LConst(1), inputs=[scan()])])
        ])
        optimized = optimize(plan, FakeMetadata())
        group = next(op for op in _walk(optimized)
                     if isinstance(op, GroupBy))
        (_, key), = group.keys
        assert key == LVar(5)

    def test_still_inlines_into_predicates(self):
        plan = DistributeResult(LVar(2), inputs=[
            Select(LCall("gt", [fa(2, "x"), LVar(5)]), inputs=[
                Assign(5, LConst(3), inputs=[scan()])
            ])
        ])
        optimized = optimize(plan, FakeMetadata())
        select = next(op for op in _walk(optimized)
                      if isinstance(op, Select))
        assert "LVar(5)" not in repr(select.condition)

    def test_constant_order_by_end_to_end(self, tmp_path):
        from repro import connect
        from repro.analysis import plan_verification

        with connect(str(tmp_path / "db")) as db:
            db.execute('CREATE TYPE T AS { id: int }; '
                       'CREATE DATASET D(T) PRIMARY KEY id;')
            db.execute('INSERT INTO D ({"id": 1}); '
                       'INSERT INTO D ({"id": 2});')
            with plan_verification(True):
                assert db.query('WITH c AS 1 SELECT VALUE d.id '
                                'FROM D d ORDER BY c;') == [1, 2]
                assert db.query('WITH c AS 1 SELECT k AS k, COUNT(*) AS n '
                                'FROM D d GROUP BY c AS k;') == \
                    [{"k": 1, "n": 2}]


class TestLimitPushdown:
    def test_limit_into_order(self):
        plan = DistributeResult(LVar(2), inputs=[
            Limit(5, 2, inputs=[
                Order([(LVar(1), False)], inputs=[scan()])
            ])
        ])
        optimized = optimize(plan, FakeMetadata())
        order = next(op for op in _walk(optimized) if isinstance(op, Order))
        assert order.topk == 7


def _walk(op):
    yield op
    for child in op.inputs:
        yield from _walk(child)


class TestCompositeIndexMatching:
    def test_eq_prefix_plus_range(self):
        md = FakeMetadata([SecondaryIndexSpec("byOrgDate", "btree",
                                              ("org", "since"))])
        cond = LCall("and", [
            LCall("eq", [fa(2, "org"), LConst("uci")]),
            LCall("ge", [fa(2, "since"), LConst(2010)]),
        ])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.lo == [LConst("uci"), LConst(2010)]
        assert search.hi == [LConst("uci")]
        # both predicates consumed: no residual selects
        assert "Select" not in plan_signature(optimized)

    def test_eq_on_both_fields(self):
        md = FakeMetadata([SecondaryIndexSpec("byOrgDate", "btree",
                                              ("org", "since"))])
        cond = LCall("and", [
            LCall("eq", [fa(2, "org"), LConst("uci")]),
            LCall("eq", [fa(2, "since"), LConst(2010)]),
        ])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.lo == [LConst("uci"), LConst(2010)]
        assert search.hi == [LConst("uci"), LConst(2010)]

    def test_second_field_alone_no_match(self):
        """A bound on only the second field can't use the index."""
        md = FakeMetadata([SecondaryIndexSpec("byOrgDate", "btree",
                                              ("org", "since"))])
        cond = LCall("ge", [fa(2, "since"), LConst(2010)])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md)
        assert "SecondaryIndexSearch" not in plan_signature(optimized)

    def test_widest_index_preferred(self):
        md = FakeMetadata([
            SecondaryIndexSpec("byOrg", "btree", ("org",)),
            SecondaryIndexSpec("byOrgDate", "btree", ("org", "since")),
        ])
        cond = LCall("and", [
            LCall("eq", [fa(2, "org"), LConst("uci")]),
            LCall("lt", [fa(2, "since"), LConst(2020)]),
        ])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.index_name == "byOrgDate"

    def test_conflicting_bounds_intersect(self):
        """The fuzzer's find, as a unit test: age >= 27 AND age = 55."""
        md = FakeMetadata([SecondaryIndexSpec("byAge", "btree", ("age",))])
        cond = LCall("and", [
            LCall("ge", [fa(2, "age"), LConst(27)]),
            LCall("eq", [fa(2, "age"), LConst(55)]),
        ])
        optimized = optimize(result(Select(cond, inputs=[scan()])), md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.lo == [LConst(55)] and search.hi == [LConst(55)]


class TestArrayIndexRule:
    """rule_introduce_array_index: swap the scan under an Unnest for an
    array-index search, keeping the whole Unnest+Select chain as the
    residual (the rewrite consumes nothing)."""

    DELIV = SecondaryIndexSpec("oDelivery", "array", ("ol_delivery_d",),
                               array_path="o_orderline")

    def unnest_plan(self, cond, outer=False, collection=None):
        un = Unnest(3, collection or fa(2, "o_orderline"), outer=outer,
                    inputs=[scan()])
        return DistributeResult(LVar(3), inputs=[Select(cond,
                                                        inputs=[un])])

    def test_array_index_chosen_with_full_residual(self):
        md = FakeMetadata([self.DELIV])
        cond = LCall("lt", [fa(3, "ol_delivery_d"), LConst(100)])
        optimized = optimize(self.unnest_plan(cond), md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.index_kind == "array"
        assert search.index_name == "oDelivery"
        assert search.hi == [LConst(100)] and not search.hi_inclusive
        # nothing consumed: the Unnest and the Select both survive, and
        # the search sits *below* the Unnest
        sig = plan_signature(optimized)
        assert "Unnest" in sig and "Select" in sig
        unnest = next(op for op in _walk(optimized)
                      if isinstance(op, Unnest))
        assert any(isinstance(op, SecondaryIndexSearch)
                   for op in _walk(unnest))

    def test_eq_bounds_both_sides(self):
        md = FakeMetadata([self.DELIV])
        cond = LCall("eq", [fa(3, "ol_delivery_d"), LConst(7)])
        optimized = optimize(self.unnest_plan(cond), md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.lo == [LConst(7)] and search.hi == [LConst(7)]

    def test_elementwise_index_on_unnest_var(self):
        md = FakeMetadata([SecondaryIndexSpec("byTag", "array", (),
                                              array_path="tags")])
        un = Unnest(3, fa(2, "tags"), inputs=[scan()])
        cond = LCall("eq", [LVar(3), LConst("big data")])
        plan = DistributeResult(LVar(1), inputs=[Select(cond,
                                                        inputs=[un])])
        optimized = optimize(plan, md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.index_kind == "array"
        assert search.lo == [LConst("big data")]

    def test_wrong_path_no_fire(self):
        md = FakeMetadata([SecondaryIndexSpec("other", "array",
                                              ("ol_delivery_d",),
                                              array_path="items")])
        cond = LCall("lt", [fa(3, "ol_delivery_d"), LConst(100)])
        optimized = optimize(self.unnest_plan(cond), md)
        assert "SecondaryIndexSearch" not in plan_signature(optimized)

    def test_outer_unnest_no_fire(self):
        md = FakeMetadata([self.DELIV])
        cond = LCall("lt", [fa(3, "ol_delivery_d"), LConst(100)])
        optimized = optimize(self.unnest_plan(cond, outer=True), md)
        assert "SecondaryIndexSearch" not in plan_signature(optimized)

    def test_prefix_bounded_composite_fires(self):
        """A bound on a *prefix* of a composite element key is enough:
        maintenance indexes every element whose first key field is
        known (trailing MISSING parts stored verbatim), so a prefix
        search still sees a superset and the residual chain re-checks
        everything."""
        md = FakeMetadata([SecondaryIndexSpec(
            "byDayAmt", "array", ("ol_delivery_d", "ol_amount"),
            array_path="o_orderline")])
        cond = LCall("lt", [fa(3, "ol_delivery_d"), LConst(100)])
        optimized = optimize(self.unnest_plan(cond), md)
        sig = plan_signature(optimized)
        assert "SecondaryIndexSearch" in sig
        assert "Unnest" in sig          # residual chain kept intact

    def test_suffix_only_bound_no_fire(self):
        """A bound on a trailing key field alone gives the search
        nothing to seek on (elements with a MISSING first field have
        entries the bound can't reach in order): no fire."""
        md = FakeMetadata([SecondaryIndexSpec(
            "byDayAmt", "array", ("ol_delivery_d", "ol_amount"),
            array_path="o_orderline")])
        cond = LCall("lt", [fa(3, "ol_amount"), LConst(100)])
        optimized = optimize(self.unnest_plan(cond), md)
        assert "SecondaryIndexSearch" not in plan_signature(optimized)

    def test_composite_fully_bounded_fires(self):
        md = FakeMetadata([SecondaryIndexSpec(
            "byDayAmt", "array", ("ol_delivery_d", "ol_amount"),
            array_path="o_orderline")])
        cond = LCall("and", [
            LCall("eq", [fa(3, "ol_delivery_d"), LConst(7)]),
            LCall("ge", [fa(3, "ol_amount"), LConst(5)]),
        ])
        optimized = optimize(self.unnest_plan(cond), md)
        search = next(op for op in _walk(optimized)
                      if isinstance(op, SecondaryIndexSearch))
        assert search.lo == [LConst(7), LConst(5)]
        assert search.hi == [LConst(7)]

    def test_disabled_by_flag(self):
        md = FakeMetadata([self.DELIV])
        cond = LCall("lt", [fa(3, "ol_delivery_d"), LConst(100)])
        optimized = optimize(self.unnest_plan(cond), md,
                             enable_index_access=False)
        assert "SecondaryIndexSearch" not in plan_signature(optimized)

    def test_predicate_on_record_not_element_no_fire(self):
        """A bound on the *record* (not the unnested element) must not
        drive the array index."""
        md = FakeMetadata([self.DELIV])
        cond = LCall("lt", [fa(2, "o_id"), LConst(100)])
        optimized = optimize(self.unnest_plan(cond), md)
        assert not any(isinstance(op, SecondaryIndexSearch)
                       and op.index_kind == "array"
                       for op in _walk(optimized))
