"""Cost-based optimization: the cardinality estimator, join reordering,
build-side selection, and broadcast-vs-repartition connector choice."""

from repro.algebricks import LCall, LConst, LVar, MetadataView, optimize
from repro.algebricks.cost import CardinalityEstimator
from repro.algebricks.jobgen import compile_plan
from repro.algebricks.logical import (
    DataSourceScan,
    DistributeResult,
    Join,
    Select,
    walk,
)
from repro.hyracks.connectors import BroadcastConnector
from repro.hyracks.operators.join import HybridHashJoinOp
from repro.storage.lsm.synopsis import ComponentSynopsis, FieldSynopsis


class StatsMetadata(MetadataView):
    """Metadata with canned per-dataset synopses: ``sizes`` maps dataset
    name -> record count; every dataset has a unique-ish ``id`` field."""

    def __init__(self, sizes):
        self.sizes = dict(sizes)

    def pk_fields(self, dataset):
        return ("id",)

    def secondary_indexes(self, dataset):
        return []

    def is_external(self, dataset):
        return False

    def dataset_statistics(self, dataset):
        n = self.sizes.get(dataset)
        if n is None:
            return None
        return ComponentSynopsis(record_count=n, fields={
            "id": FieldSynopsis(count=n, min=0, max=n - 1, distinct=n),
        })


def eq(a, b):
    return LCall("eq", [LVar(a), LVar(b)])


def three_way_plan():
    """big JOIN mid JOIN small, written worst-first: the syntactic order
    joins the two largest relations before the small filter arrives."""
    big = DataSourceScan("big", [1], 2)
    mid = DataSourceScan("mid", [3], 4)
    small = DataSourceScan("small", [5], 6)
    j1 = Join(eq(1, 3), inputs=[big, mid])
    j2 = Join(eq(3, 5), inputs=[j1, small])
    return DistributeResult(LVar(2), inputs=[j2])


def scan_order(root):
    return [op.dataset for op in walk(root)
            if isinstance(op, DataSourceScan)]


class TestEstimator:
    def test_scan_estimate_from_stats(self):
        meta = StatsMetadata({"big": 5000})
        est = CardinalityEstimator(meta)
        plan = DistributeResult(LVar(2),
                                inputs=[DataSourceScan("big", [1], 2)])
        est.annotate(plan)
        assert plan.inputs[0].est_card == 5000

    def test_scan_estimate_default_without_stats(self):
        est = CardinalityEstimator(StatsMetadata({}))
        plan = DistributeResult(LVar(2),
                                inputs=[DataSourceScan("ds", [1], 2)])
        est.annotate(plan)
        assert plan.inputs[0].est_card == 1000.0

    def test_pk_equality_select_estimates_one(self):
        meta = StatsMetadata({"big": 5000})
        sel = Select(LCall("eq", [LVar(1), LConst(7)]),
                     inputs=[DataSourceScan("big", [1], 2)])
        plan = DistributeResult(LVar(2), inputs=[sel])
        CardinalityEstimator(meta).annotate(plan)
        assert sel.est_card <= 2

    def test_join_estimate_uses_ndv(self):
        meta = StatsMetadata({"big": 1000, "small": 10})
        join = Join(eq(1, 3), inputs=[DataSourceScan("big", [1], 2),
                                      DataSourceScan("small", [3], 4)])
        plan = DistributeResult(LVar(2), inputs=[join])
        CardinalityEstimator(meta).annotate(plan)
        # |big x small| / max(ndv) = 1000*10/1000
        assert join.est_card == 10.0


class TestJoinReorder:
    SIZES = {"big": 2000, "mid": 400, "small": 5}

    def test_reorders_to_smallest_first(self):
        optimized = optimize(three_way_plan(), StatsMetadata(self.SIZES))
        order = scan_order(optimized)
        # the small relation must participate in the first (deepest) join
        assert "small" in order[:2], order

    def test_no_fire_without_stats(self):
        optimized = optimize(three_way_plan(), StatsMetadata({}))
        assert scan_order(optimized) == ["big", "mid", "small"]

    def test_no_fire_when_disabled(self):
        optimized = optimize(three_way_plan(), StatsMetadata(self.SIZES),
                             enable_cost_based=False)
        assert scan_order(optimized) == ["big", "mid", "small"]
        assert all(getattr(op, "est_card", None) is None
                   for op in walk(optimized))

    def test_annotation_runs_even_without_reorder(self):
        optimized = optimize(three_way_plan(), StatsMetadata({}))
        assert all(getattr(op, "est_card", None) is not None
                   for op in walk(optimized))

    def test_no_cross_product_introduced(self):
        optimized = optimize(three_way_plan(), StatsMetadata(self.SIZES))
        for op in walk(optimized):
            if isinstance(op, Join):
                assert op.condition != LConst(True)


class TestPhysicalChoices:
    def compile(self, sizes, swap=True):
        plan = DistributeResult(LVar(2), inputs=[
            Join(eq(1, 3), inputs=[DataSourceScan("left", [1], 2),
                                   DataSourceScan("right", [3], 4)])])
        meta = StatsMetadata(sizes)
        optimized = optimize(plan, meta, enable_cost_based=swap)
        return compile_plan(optimized, meta, 4)

    def test_build_side_swaps_to_smaller_left(self):
        job, _ = self.compile({"left": 10, "right": 9000})
        hj = next(op for op in job.operators
                  if isinstance(op, HybridHashJoinOp))
        assert hj.build_side == 0

    def test_build_side_default_when_right_smaller(self):
        job, _ = self.compile({"left": 9000, "right": 10})
        hj = next(op for op in job.operators
                  if isinstance(op, HybridHashJoinOp))
        assert hj.build_side == 1

    def test_build_side_default_without_stats(self):
        job, _ = self.compile({})
        hj = next(op for op in job.operators
                  if isinstance(op, HybridHashJoinOp))
        assert hj.build_side == 1

    def compile_computed_keys(self, sizes):
        """Join on non-pk computed keys, so both sides would need a
        hash repartition — the broadcast-vs-repartition decision point."""
        fa = lambda v, n: LCall("field_access", [LVar(v), LConst(n)])
        plan = DistributeResult(LVar(2), inputs=[
            Join(LCall("eq", [fa(2, "x"), fa(4, "y")]),
                 inputs=[DataSourceScan("left", [1], 2),
                         DataSourceScan("right", [3], 4)])])
        meta = StatsMetadata(sizes)
        optimized = optimize(plan, meta)
        return compile_plan(optimized, meta, 4)

    def test_broadcast_chosen_for_tiny_build_side(self):
        job, _ = self.compile_computed_keys({"left": 9000, "right": 10})
        assert any(isinstance(e.connector, BroadcastConnector)
                   for e in job.edges)

    def test_no_broadcast_for_balanced_sides(self):
        job, _ = self.compile_computed_keys({"left": 9000,
                                             "right": 9000})
        assert not any(isinstance(e.connector, BroadcastConnector)
                       for e in job.edges)

    def test_no_broadcast_when_keys_already_partitioned(self):
        # pk = pk join: both inputs are already hash-partitioned on the
        # join key, repartition is free, broadcast would only add cost
        job, _ = self.compile({"left": 9000, "right": 10})
        assert not any(isinstance(e.connector, BroadcastConnector)
                       for e in job.edges)

    def test_estimates_stamped_on_physical_operators(self):
        job, _ = self.compile({"left": 100, "right": 100})
        stamped = [op for op in job.operators
                   if getattr(op, "estimated_cardinality", None)
                   is not None]
        assert stamped
