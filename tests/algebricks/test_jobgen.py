"""End-to-end: logical plans compiled by the job generator and executed
on the simulated cluster."""

import pytest

from repro.algebricks import LCall, LConst, LVar, MetadataView, compile_plan, optimize
from repro.algebricks.logical import (
    AggCall,
    Aggregate,
    Assign,
    DataSourceScan,
    Distinct,
    DistributeResult,
    GroupBy,
    InsertDelete,
    Join,
    Limit,
    Order,
    Select,
    Unnest,
)
from repro.common.config import ClusterConfig, NodeConfig
from repro.hyracks import ClusterController
from repro.storage.dataset_storage import SecondaryIndexSpec


class ClusterMetadata(MetadataView):
    def __init__(self, cluster):
        self.cluster = cluster

    def pk_fields(self, dataset):
        return self.cluster.datasets[dataset].pk_fields

    def secondary_indexes(self, dataset):
        return list(self.cluster.datasets[dataset].indexes.values())

    def is_external(self, dataset):
        return False


@pytest.fixture
def cluster(tmp_path):
    config = ClusterConfig(num_nodes=2, partitions_per_node=2,
                           frame_size=16,
                           node=NodeConfig(buffer_cache_pages=256))
    cc = ClusterController(str(tmp_path / "c"), config)
    cc.create_dataset("Users", ("id",))
    for i in range(30):
        cc.insert_record("Users", {
            "id": i,
            "alias": f"user{i:02d}",
            "age": 20 + i % 10,
            "friendIds": list(range(i % 4)),
        })
    yield cc
    cc.close()


def execute(cluster, plan, *, optimize_plan=True):
    md = ClusterMetadata(cluster)
    if optimize_plan:
        plan = optimize(plan, md)
    job, _ = compile_plan(plan, md, cluster.num_partitions)
    result = cluster.run_job(job)
    return [t[0] for t in result.tuples], result.profile


def fa(var, name):
    return LCall("field_access", [LVar(var), LConst(name)])


def scan(pk=1, rec=2):
    return DataSourceScan("Users", [pk], rec)


class TestScanPlans:
    def test_full_scan(self, cluster):
        plan = DistributeResult(LVar(2), inputs=[scan()])
        rows, _ = execute(cluster, plan)
        assert len(rows) == 30
        assert {r["id"] for r in rows} == set(range(30))

    def test_filter(self, cluster):
        cond = LCall("gt", [fa(2, "age"), LConst(27)])
        plan = DistributeResult(LVar(2), inputs=[Select(cond,
                                                        inputs=[scan()])])
        rows, _ = execute(cluster, plan)
        assert all(r["age"] > 27 for r in rows)
        assert len(rows) == 6

    def test_pk_point_lookup_plan(self, cluster):
        cond = LCall("eq", [LVar(1), LConst(7)])
        plan = DistributeResult(LVar(2), inputs=[Select(cond,
                                                        inputs=[scan()])])
        rows, profile = execute(cluster, plan)
        assert len(rows) == 1 and rows[0]["id"] == 7
        names = [op.name for op in profile.operators]
        assert any("primary-search" in n for n in names)


class TestProjectionAndOrder:
    def test_assign_project_order(self, cluster):
        assigned = Assign(3, fa(2, "alias"), inputs=[scan()])
        ordered = Order([(LVar(3), True)], inputs=[assigned])
        plan = DistributeResult(LVar(3), inputs=[ordered])
        rows, _ = execute(cluster, plan)
        assert rows == sorted(rows, reverse=True)
        assert len(rows) == 30

    def test_order_then_limit_global(self, cluster):
        assigned = Assign(3, fa(2, "age"), inputs=[scan()])
        ordered = Order([(LVar(3), False)], inputs=[assigned])
        limited = Limit(5, 0, inputs=[ordered])
        plan = DistributeResult(LVar(3), inputs=[limited])
        rows, _ = execute(cluster, plan)
        assert len(rows) == 5
        assert rows == sorted(rows)
        assert rows[0] == 20  # global minimum, not a per-partition one


class TestJoins:
    def test_self_equi_join_on_age(self, cluster):
        left = DataSourceScan("Users", [1], 2)
        right = DataSourceScan("Users", [3], 4)
        la = Assign(5, fa(2, "age"), inputs=[left])
        ra = Assign(6, fa(4, "age"), inputs=[right])
        join = Join(LCall("eq", [LVar(5), LVar(6)]), inputs=[la, ra])
        count = Aggregate([AggCall(7, "count_star", LConst(1))],
                          inputs=[join])
        plan = DistributeResult(LVar(7), inputs=[count])
        rows, profile = execute(cluster, plan)
        assert rows == [30 * 3]  # 10 ages x 3 users each -> 9 pairs/age
        assert any("hash-join" in op.name for op in profile.operators)

    def test_pk_pk_join_is_exchange_free(self, cluster):
        left = DataSourceScan("Users", [1], 2)
        right = DataSourceScan("Users", [3], 4)
        join = Join(LCall("eq", [LVar(1), LVar(3)]), inputs=[left, right])
        count = Aggregate([AggCall(7, "count_star", LConst(1))],
                          inputs=[join])
        plan = DistributeResult(LVar(7), inputs=[count])
        rows, profile = execute(cluster, plan)
        assert rows == [30]
        # partition-awareness: no hash repartitioning needed for pk=pk
        assert profile.connector_network_tuples < 40


class TestGroupByPlans:
    def test_group_by_age(self, cluster):
        assigned = Assign(3, fa(2, "age"), inputs=[scan()])
        gb = GroupBy(keys=[(4, LVar(3))],
                     aggregates=[AggCall(5, "count_star", LConst(1))],
                     inputs=[assigned])
        obj = Assign(6, LCall("object_add", [
            LCall("object_add", [LConst({}), LConst("age"), LVar(4)]),
            LConst("n"), LVar(5)]), inputs=[gb])
        plan = DistributeResult(LVar(6), inputs=[obj])
        rows, _ = execute(cluster, plan)
        assert len(rows) == 10
        assert all(r["n"] == 3 for r in rows)

    def test_listify_group(self, cluster):
        assigned = Assign(3, fa(2, "age"), inputs=[scan()])
        gb = GroupBy(keys=[(4, LVar(3))],
                     aggregates=[AggCall(5, "listify", fa(2, "alias"))],
                     inputs=[assigned])
        plan = DistributeResult(LVar(5), inputs=[gb])
        rows, _ = execute(cluster, plan)
        assert len(rows) == 10
        assert all(isinstance(r, list) and len(r) == 3 for r in rows)


class TestUnnestPlans:
    def test_unnest_friends(self, cluster):
        un = Unnest(3, fa(2, "friendIds"), inputs=[scan()])
        count = Aggregate([AggCall(4, "count_star", LConst(1))],
                          inputs=[un])
        plan = DistributeResult(LVar(4), inputs=[count])
        rows, _ = execute(cluster, plan)
        # sum of i%4 friends for 30 users: 8 groups of (0+1+2+3) = 45...
        expected = sum(i % 4 for i in range(30))
        assert rows == [expected]


class TestDistinctPlans:
    def test_distinct_ages(self, cluster):
        assigned = Assign(3, fa(2, "age"), inputs=[scan()])
        from repro.algebricks.logical import Project

        proj = Project([3], inputs=[assigned])
        dist = Distinct([3], inputs=[proj])
        plan = DistributeResult(LVar(3), inputs=[dist])
        rows, _ = execute(cluster, plan)
        assert sorted(rows) == list(range(20, 30))


class TestSecondaryIndexPlans:
    def test_btree_index_used_and_correct(self, cluster):
        cluster.create_index("Users",
                             SecondaryIndexSpec("byAlias", "btree",
                                                ("alias",)))
        cond = LCall("eq", [fa(2, "alias"), LConst("user07")])
        plan = DistributeResult(LVar(2), inputs=[Select(cond,
                                                        inputs=[scan()])])
        rows, profile = execute(cluster, plan)
        assert len(rows) == 1 and rows[0]["id"] == 7
        names = [op.name for op in profile.operators]
        assert any("btree-search" in n for n in names)
        assert any("primary-lookup" in n for n in names)


class TestDmlPlans:
    def test_insert_via_plan(self, cluster):
        from repro.algebricks.logical import EmptyTupleSource

        record = LConst({"id": 999, "alias": "new", "age": 1,
                         "friendIds": []})
        plan = InsertDelete("Users", "insert", record_expr=record,
                            inputs=[EmptyTupleSource()])
        rows, _ = execute(cluster, plan)
        assert rows == [1]
        assert cluster.get_record("Users", (999,))["alias"] == "new"

    def test_delete_via_plan(self, cluster):
        cond = LCall("lt", [LVar(1), LConst(5)])
        selected = Select(cond, inputs=[scan()])
        plan = InsertDelete("Users", "delete", pk_exprs=[LVar(1)],
                            inputs=[selected])
        rows, _ = execute(cluster, plan)
        assert rows == [5]
        assert cluster.get_record("Users", (3,)) is None
        assert cluster.get_record("Users", (5,)) is not None
