"""Tests for external datasets (feature 6): localfs, simulated HDFS, CSV."""

import os

import pytest

from repro import connect
from repro.adm import ADateTime, APoint
from repro.common.errors import StorageError
from repro.external import (
    SimulatedHDFS,
    export_csv,
    import_csv,
)


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    yield instance
    instance.close()


@pytest.fixture
def access_log_file(tmp_path):
    path = tmp_path / "accesses.txt"
    lines = [
        "1.2.3.4|2019-04-01T10:00:00|dfrump|GET|/home|200|1024",
        "5.6.7.8|2019-04-02T11:00:00|alice|GET|/feed|200|2048",
        "9.9.9.9|2019-04-03T12:00:00|bob|POST|/msg|201|300",
    ]
    path.write_text("\n".join(lines) + "\n")
    return str(path)


ACCESS_LOG_DDL = """
CREATE TYPE AccessLogType AS CLOSED {{
    ip: string, time: string, user: string, verb: string,
    `path`: string, stat: int32, size: int32
}};
CREATE EXTERNAL DATASET AccessLog(AccessLogType)
USING localfs
(("path"="{path}"), ("format"="delimited-text"), ("delimiter"="|"));
"""


class TestLocalFS:
    def test_fig3b_external_dataset(self, db, access_log_file):
        db.execute(ACCESS_LOG_DDL.format(path=access_log_file))
        rows = db.query("SELECT VALUE l.user FROM AccessLog l;")
        assert sorted(rows) == ["alice", "bob", "dfrump"]

    def test_typed_columns(self, db, access_log_file):
        db.execute(ACCESS_LOG_DDL.format(path=access_log_file))
        rows = db.query(
            "SELECT VALUE l.size FROM AccessLog l WHERE l.stat = 200;")
        assert sorted(rows) == [1024, 2048]

    def test_join_external_with_internal(self, db, access_log_file):
        """The Fig. 3(c) pattern: mixing stored and external data."""
        db.execute(ACCESS_LOG_DDL.format(path=access_log_file))
        db.execute("""
            CREATE TYPE UserType AS { id: int, alias: string };
            CREATE DATASET Users(UserType) PRIMARY KEY id;
            INSERT INTO Users ([{"id": 1, "alias": "alice"},
                                {"id": 2, "alias": "carol"}]);
        """)
        rows = db.query("""
            SELECT VALUE u.id FROM Users u
            WHERE SOME l IN AccessLog SATISFIES l.user = u.alias;
        """)
        assert rows == [1]

    def test_adm_format(self, db, tmp_path):
        path = tmp_path / "data.adm"
        path.write_text(
            '{"id": 1, "when": datetime("2019-01-01T00:00:00")}\n'
            '{"id": 2, "tags": {{"a", "b"}}}\n'
        )
        db.execute(f"""
            CREATE TYPE AnyType AS {{ id: int }};
            CREATE EXTERNAL DATASET Stuff(AnyType) USING localfs
            (("path"="{path}"), ("format"="adm"));
        """)
        rows = db.query("SELECT VALUE s.id FROM Stuff s;")
        assert sorted(rows) == [1, 2]
        whens = db.query(
            "SELECT VALUE s.`when` FROM Stuff s WHERE s.id = 1;")
        assert whens == [ADateTime.parse("2019-01-01T00:00:00")]

    def test_load_dataset(self, db, tmp_path):
        path = tmp_path / "users.adm"
        path.write_text(
            '{"id": 1, "name": "ann"}\n{"id": 2, "name": "bob"}\n')
        db.execute(f"""
            CREATE TYPE UserType AS {{ id: int }};
            CREATE DATASET Users(UserType) PRIMARY KEY id;
            LOAD DATASET Users USING localfs
            (("path"="{path}"), ("format"="adm"));
        """)
        assert sorted(db.query("SELECT VALUE u.name FROM Users u;")) == \
            ["ann", "bob"]

    def test_external_cannot_be_indexed(self, db, access_log_file):
        from repro.common.errors import MetadataError

        db.execute(ACCESS_LOG_DDL.format(path=access_log_file))
        with pytest.raises(MetadataError):
            db.execute("CREATE INDEX i ON AccessLog(user);")


class TestSimulatedHDFS:
    def test_put_read_roundtrip(self, tmp_path):
        hdfs = SimulatedHDFS(str(tmp_path / "hdfs"), block_size=64)
        lines = [f'{{"id": {i}}}' for i in range(50)]
        hdfs.put_lines("/data/x.adm", lines)
        blocks = hdfs.blocks_of("/data/x.adm")
        assert len(blocks) > 1   # really split
        data = b"".join(
            hdfs.read_block("/data/x.adm", b.block_id) for b in blocks
        )
        assert data.decode().splitlines() == lines

    def test_blocks_respect_line_boundaries(self, tmp_path):
        hdfs = SimulatedHDFS(str(tmp_path / "hdfs"), block_size=100)
        hdfs.put_lines("/f", ["x" * 30 for _ in range(20)])
        for block in hdfs.blocks_of("/f"):
            data = hdfs.read_block("/f", block.block_id)
            assert data.endswith(b"\n")

    def test_missing_file(self, tmp_path):
        hdfs = SimulatedHDFS(str(tmp_path / "hdfs"))
        with pytest.raises(StorageError):
            hdfs.blocks_of("/nope")

    def test_query_external_hdfs_dataset(self, db):
        lines = [f'{{"id": {i}, "v": {i * i}}}' for i in range(30)]
        db.hdfs.put_lines("/logs/events.adm", lines)
        db.execute("""
            CREATE TYPE EventType AS { id: int };
            CREATE EXTERNAL DATASET Events(EventType) USING hdfs
            (("path"="/logs/events.adm"), ("format"="adm"));
        """)
        rows = db.query(
            "SELECT VALUE e.v FROM Events e WHERE e.id = 5;")
        assert rows == [25]
        assert db.hdfs.reads > 0


class TestCSVRoundTrip:
    def test_roundtrip(self, tmp_path):
        records = [
            {"id": 1, "who": "ann", "score": 3.5,
             "when": ADateTime.parse("2014-02-03T10:30:00"),
             "loc": APoint(1.0, 2.0)},
            {"id": 2, "who": "bob", "score": None},
        ]
        path = str(tmp_path / "out.csv")
        count = export_csv(path, records, ["id", "who", "score", "when",
                                           "loc"])
        assert count == 2
        back = import_csv(path)
        assert back[0]["when"] == records[0]["when"]
        assert back[0]["loc"] == records[0]["loc"]
        assert back[1]["score"] is None
        assert "when" not in back[1]   # missing cell dropped

    def test_nested_values(self, tmp_path):
        records = [{"id": 1, "tags": ["a", "b"], "obj": {"x": 1}}]
        path = str(tmp_path / "n.csv")
        export_csv(path, records, ["id", "tags", "obj"])
        back = import_csv(path)
        assert back[0]["tags"] == ["a", "b"]
        assert back[0]["obj"] == {"x": 1}

    def test_db_roundtrip(self, db, tmp_path):
        """§V-D: export a dataset to CSV, reimport into another."""
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET A(T) PRIMARY KEY id;
            CREATE DATASET B(T) PRIMARY KEY id;
            INSERT INTO A ([{"id": 1, "x": "one"}, {"id": 2, "x": "two"}]);
        """)
        rows = db.query("SELECT VALUE a FROM A a;")
        path = str(tmp_path / "dump.csv")
        export_csv(path, rows, ["id", "x"])
        for record in import_csv(path):
            db.cluster.insert_record("Default.B", record)
        assert sorted(db.query("SELECT VALUE b.x FROM B b;")) == \
            ["one", "two"]
