"""Metrics registry semantics: counters, gauges, histograms, reset."""

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_monotonic(self):
        c = Counter("x")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_up_down_set(self):
        g = Gauge("g")
        g.inc(2)
        g.dec(0.5)
        assert g.value == 1.5
        g.set(-7)
        assert g.value == -7
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0

    def test_percentiles(self):
        h = Histogram("h")
        for v in range(101):
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 50.0
        assert h.percentile(100) == 100.0
        with pytest.raises(MetricError):
            h.percentile(101)

    def test_empty_percentile(self):
        assert Histogram("h").percentile(99) == 0.0

    def test_reservoir_bound_keeps_exact_count_and_sum(self):
        h = Histogram("h", max_samples=10)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == sum(range(100))
        # reservoir holds only the newest 10 observations
        assert h.percentile(0) == 90.0

    def test_reset(self):
        h = Histogram("h")
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.summary()["p50"] == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(MetricError):
            reg.gauge("a")

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(3.0)
        snap = reg.snapshot()
        assert snap["a"] == 2
        assert snap["b"] == 1.5
        assert snap["c"]["count"] == 1

    def test_delta_reports_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("quiet").inc(1)
        reg.histogram("h").observe(1.0)
        before = reg.snapshot()
        reg.counter("a").inc(3)
        reg.histogram("h").observe(2.0)
        delta = reg.delta(before)
        assert delta == {"a": 3, "h.count": 1}

    def test_reset_zeroes_in_place_keeping_handles(self):
        """The contract long-lived subsystems rely on: a handle cached at
        startup survives a reset between queries."""
        reg = MetricsRegistry()
        handle = reg.counter("a")
        handle.inc(5)
        reg.reset()
        assert reg.counter("a").value == 0
        handle.inc()                      # cached handle still live
        assert reg.counter("a").value == 1

    def test_reset_between_queries_isolates_deltas(self):
        reg = MetricsRegistry()
        reg.counter("q").inc(7)
        reg.reset()
        before = reg.snapshot()
        reg.counter("q").inc(2)
        assert reg.delta(before) == {"q": 2}


class TestDefaultRegistry:
    def test_process_wide_singleton(self):
        assert get_registry() is get_registry()

    def test_instrumented_subsystems_register_counters(self):
        # importing the storage layer registers its mirrors
        import repro.storage.buffer_cache   # noqa: F401
        import repro.storage.lsm.component  # noqa: F401

        names = get_registry().names()
        assert "lsm.flushes" in names
        assert "lsm.searches" in names
