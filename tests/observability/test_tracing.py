"""Span / QueryTrace / RewriteRecorder unit behaviour."""

from repro.observability.tracing import (
    QUERY_PHASES,
    QueryTrace,
    RewriteRecorder,
    Span,
    maybe_phase,
)


class TestSpan:
    def test_events_and_dict(self):
        span = Span("execute")
        span.add_event("operator", op="scan", elapsed_us=1.5)
        d = span.to_dict()
        assert d["name"] == "execute"
        assert d["events"] == [
            {"name": "operator", "op": "scan", "elapsed_us": 1.5}
        ]


class TestQueryTrace:
    def test_phase_context_records_duration(self):
        trace = QueryTrace(statement="q")
        with trace.phase("optimize"):
            pass
        assert trace.phase_names() == ["optimize"]
        assert trace.phases[0].duration_us >= 0.0

    def test_phase_recorded_even_on_error(self):
        trace = QueryTrace()
        try:
            with trace.phase("jobgen"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert trace.phase_names() == ["jobgen"]

    def test_find_phase(self):
        trace = QueryTrace()
        with trace.phase("parse"):
            pass
        assert trace.find_phase("parse") is trace.phases[0]
        assert trace.find_phase("execute") is None

    def test_to_dict_shape(self):
        trace = QueryTrace(statement="SELECT 1", language="sqlpp",
                           kind="query")
        with trace.phase("parse"):
            pass
        d = trace.to_dict()
        assert d["statement"] == "SELECT 1"
        assert d["phases"][0]["name"] == "parse"
        assert "rewrites" in d and "metrics" in d

    def test_maybe_phase_none_is_noop(self):
        with maybe_phase(None, "anything") as span:
            assert span is None

    def test_query_phases_constant(self):
        assert QUERY_PHASES == ("parse", "analyze", "translate",
                                "optimize", "jobgen", "execute")

    def test_pretty_mentions_rules_and_phases(self):
        trace = QueryTrace(statement="SELECT 1", kind="query")
        with trace.phase("parse"):
            pass
        trace.rewrites.observe("push_select_down", 1.0, fired=True,
                               target="Select")
        text = trace.pretty()
        assert "parse" in text
        assert "push_select_down" in text


class TestRewriteRecorder:
    def test_rule_name_strips_prefix(self):
        def rule_fold_constants():
            pass

        assert RewriteRecorder.rule_name(rule_fold_constants) == \
            "fold_constants"

    def test_firings_and_times(self):
        rec = RewriteRecorder()
        rec.observe("a", 2.0, fired=True, target="Select")
        rec.observe("a", 3.0, fired=False, target="Join")
        rec.observe("b", 1.0, fired=True, target="Join")
        rec.end_pass(["Select", "Join"])
        assert rec.fired_rules == ["a", "b"]
        assert rec.rule_times_us["a"] == 5.0
        assert rec.passes == 1
        d = rec.to_dict()
        assert d["firings"][0]["rule"] == "a"
        assert d["firings"][0]["target"] == "Select"

    def test_fired_rules_are_distinct_in_order(self):
        rec = RewriteRecorder()
        for rule in ("x", "y", "x"):
            rec.observe(rule, 0.0, fired=True, target="Select")
        assert rec.fired_rules == ["x", "y"]
