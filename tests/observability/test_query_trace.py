"""Integration: traced execution and runtime EXPLAIN through the stack.

The ISSUE-1 acceptance surface: ``execute(..., trace=True)`` and
``explain(q)`` must return structured trace/plan objects for both AQL
and SQL++ paths, with per-phase timings, a fired-rule list, per-operator
partition costs, and buffer-cache/LSM counters present.
"""

import pytest

from repro import connect
from repro.observability import QUERY_PHASES


@pytest.fixture
def db(tmp_path):
    with connect(str(tmp_path / "db")) as instance:
        instance.execute("""
            CREATE TYPE UserType AS { id: int, alias: string };
            CREATE DATASET Users(UserType) PRIMARY KEY id;
            CREATE INDEX byAlias ON Users(alias);
        """)
        for i in range(40):
            instance.execute(
                'INSERT INTO Users ({"id": %d, "alias": "u%d"});' % (i, i)
            )
        instance.flush_dataset("Users")
        yield instance


QUERY = "SELECT VALUE u.alias FROM Users u WHERE u.alias = 'u7';"
AQL_QUERY = "for $u in dataset Users where $u.id = 3 return $u.alias"


class TestTracedExecution:
    def test_reports_every_phase(self, db):
        trace = db.execute(QUERY, trace=True).trace
        assert trace is not None
        assert trace.phase_names() == list(QUERY_PHASES)
        for span in trace.phases:
            assert span.duration_us >= 0.0

    def test_reports_fired_rules(self, db):
        trace = db.execute(QUERY, trace=True).trace
        assert len(trace.fired_rules) >= 1
        assert "introduce_secondary_index" in trace.fired_rules
        assert trace.rewrites.passes >= 1

    def test_per_operator_partition_costs(self, db):
        trace = db.execute(QUERY, trace=True).trace
        assert trace.operators
        for op in trace.operators:
            assert "name" in op and "elapsed_us" in op
            assert op["partitions"], f"operator {op['name']} has no costs"
            for cost in op["partitions"].values():
                assert {"cpu_us", "io_us", "network_us",
                        "tuples_out"} <= set(cost)

    def test_execute_span_has_operator_events(self, db):
        trace = db.execute(QUERY, trace=True).trace
        events = trace.find_phase("execute").events
        assert events and all(
            e["name"] in ("operator", "stage",
                          "memory_admission", "memory_grant")
            for e in events)
        # admission control reserved frames on every node for this query
        assert sum(e["name"] == "memory_admission" for e in events) >= 1
        op_events = [e for e in events if e["name"] == "operator"]
        stage_events = [e for e in events if e["name"] == "stage"]
        assert op_events and stage_events
        assert {e["op"] for e in op_events} >= {"result-writer"}
        # every operator is covered by exactly one stage
        staged_ops = [op for e in stage_events for op in e["ops"]]
        assert sorted(staged_ops) == sorted(e["op"] for e in op_events)

    def test_buffer_cache_and_lsm_counters_present(self, db):
        trace = db.execute(QUERY, trace=True).trace
        assert any(k.startswith("buffer_cache.")
                   for k in trace.metrics_totals)
        assert any(k.startswith("lsm.") for k in trace.metrics_totals)
        # the flushed index search must actually touch LSM search path
        assert trace.metrics.get("lsm.searches", 0) >= 1

    def test_results_identical_with_and_without_trace(self, db):
        assert db.execute(QUERY, trace=True).rows == \
            db.execute(QUERY).rows == ["u7"]

    def test_aql_path_traces_too(self, db):
        result = db.execute(AQL_QUERY, language="aql", trace=True)
        assert result.rows == ["u3"]
        trace = result.trace
        assert trace.language == "aql"
        assert trace.phase_names() == list(QUERY_PHASES)
        assert len(trace.fired_rules) >= 1

    def test_dml_is_traced(self, db):
        result = db.execute(
            'INSERT INTO Users ({"id": 1000, "alias": "zz"});', trace=True)
        assert result.trace.kind == "dml"
        assert "execute" in result.trace.phase_names()

    def test_ddl_gets_minimal_trace(self, db):
        result = db.execute("CREATE DATAVERSE other;", trace=True)
        assert result.trace.kind == "ddl"
        assert result.trace.phase_names() == ["parse", "execute"]

    def test_trace_serializes_to_dict(self, db):
        import json

        d = db.execute(QUERY, trace=True).trace.to_dict()
        json.dumps(d)           # must be plain data
        assert d["kind"] == "query"
        assert [p["name"] for p in d["phases"]] == list(QUERY_PHASES)

    def test_untraced_execution_attaches_no_trace(self, db):
        assert db.execute(QUERY).trace is None


class TestExplain:
    def test_structured_plan_and_job(self, db):
        ex = db.explain(QUERY)
        assert ex.logical_plan["operator"] == "DistributeResult"
        assert ex.logical_plan["inputs"]          # nested tree
        assert ex.job["operators"] and ex.job["edges"]
        names = [op["name"] for op in ex.job["operators"]]
        assert "result-writer" in names
        assert "btree-search(Default.Users.byAlias)" in names

    def test_text_halves_present(self, db):
        ex = db.explain(QUERY)
        assert "distribute-result" in ex.logical_text
        assert "result-writer" in ex.job_text
        pretty = ex.pretty()
        assert "optimized logical plan" in pretty
        assert "hyracks job" in pretty

    def test_fired_rules_and_phases(self, db):
        ex = db.explain(QUERY)
        assert "introduce_secondary_index" in ex.fired_rules
        assert [p["name"] for p in ex.phases] == \
            ["parse", "analyze", "translate", "optimize", "jobgen"]

    def test_aql_explain(self, db):
        ex = db.explain(AQL_QUERY, language="aql")
        assert ex.language == "aql"
        assert ex.logical_plan["inputs"]
        assert "introduce_primary_index" in ex.fired_rules

    def test_explain_does_not_execute(self, db):
        before = db.query("SELECT VALUE COUNT(*) FROM Users u;")[0]
        db.explain('INSERT INTO Users ({"id": 777, "alias": "x"});')
        assert db.query("SELECT VALUE COUNT(*) FROM Users u;")[0] == before

    def test_explain_rejects_ddl(self, db):
        from repro.common.errors import AsterixError

        with pytest.raises(AsterixError):
            db.explain("CREATE DATAVERSE nope;")

    def test_explain_serializes_to_dict(self, db):
        import json

        json.dumps(db.explain(QUERY).to_dict())
