"""The central error-code registry stays coherent.

Enforced here, as promised by :mod:`repro.common.errors`:

* every explicit error code is unique across the whole system,
* every explicit code falls inside a documented :data:`CODE_BANDS` band,
* every error class documents itself with a docstring,
* codes render as stable ``ASX####`` prefixes.
"""

from repro.common.errors import (
    AsterixError,
    CODE_BANDS,
    PlanInvariantError,
    SemanticError,
    band_of,
    code_table,
    iter_error_classes,
)


def test_codes_are_unique():
    # code_table() itself raises ValueError on a collision
    table = code_table()
    assert len(table) >= 25


def test_every_code_is_in_a_documented_band():
    for code, cls in code_table().items():
        band = band_of(code)
        assert band is not None, \
            f"{cls.__name__} code {code} falls outside every CODE_BANDS band"


def test_bands_do_not_overlap():
    spans = sorted((lo, hi) for lo, hi, _ in CODE_BANDS)
    for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
        assert lo1 <= hi1
        assert hi1 < lo2, f"bands ({lo1},{hi1}) and ({lo2},{hi2}) overlap"


def test_every_error_class_has_a_docstring():
    for cls in iter_error_classes():
        doc = cls.__dict__.get("__doc__")
        assert doc and doc.strip(), f"{cls.__name__} has no docstring"


def test_semantic_errors_live_in_the_4000_band():
    for cls in iter_error_classes():
        if issubclass(cls, SemanticError):
            assert 4000 <= cls.code <= 4099, \
                f"{cls.__name__} ({cls.code}) outside the semantic band"


def test_asx_prefix_rendering():
    err = SemanticError("boom")
    assert str(err).startswith("ASX4000: ")
    err = PlanInvariantError("bad plan", rule="my_rule", invariant="shape")
    assert str(err).startswith("ASX4100: ")
    assert "my_rule" in str(err)
    assert err.rule == "my_rule"
    assert err.invariant == "shape"


def test_subsystem_modules_register_their_codes():
    # classes defined next to their subsystem still land in the table
    table = code_table()
    bands = {band_of(code)[0] for code in table}
    assert 3500 in bands, "resilience fault codes missing from registry"
    assert 3900 in bands, "observability codes missing from registry"


def test_legacy_compatibility_inheritance():
    # 4xxx semantic errors still match the legacy classes callers catch
    from repro.common.errors import (
        IdentifierError,
        TypeError_,
        UndefinedVariableError,
        UnknownDatasetError,
        UnknownFieldError,
    )

    assert issubclass(UndefinedVariableError, IdentifierError)
    assert issubclass(UnknownDatasetError, IdentifierError)
    assert issubclass(UnknownFieldError, TypeError_)
    assert UndefinedVariableError.code == 4001
    assert UnknownDatasetError.code == 4002
    assert UnknownFieldError.code == 4004


def test_catching_asterixerror_catches_everything():
    for cls in iter_error_classes():
        assert issubclass(cls, AsterixError)


def test_index_ddl_error_registered():
    from repro.common.errors import InvalidIndexDDLError, MetadataError

    assert issubclass(InvalidIndexDDLError, MetadataError)
    assert InvalidIndexDDLError.code == 1103
    assert band_of(1103) is not None
    assert str(InvalidIndexDDLError("bad")).startswith("ASX1103: ")
