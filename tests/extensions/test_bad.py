"""Tests for the BAD (Big Active Data) pub/sub extension."""

import pytest

from repro import connect
from repro.bad import BADExtension
from repro.common.errors import AsterixError, DuplicateError, UnknownEntityError


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    instance.execute("""
        CREATE TYPE ReportType AS { id: int, severity: int, area: string };
        CREATE DATASET EmergencyReports(ReportType) PRIMARY KEY id;
    """)
    yield instance
    instance.close()


@pytest.fixture
def bad(db):
    ext = BADExtension(db)
    ext.create_broker("phoneApp")
    ext.create_channel(
        "EmergenciesNearMe", ["area", "minSeverity"],
        """SELECT VALUE r.id FROM EmergencyReports r
           WHERE r.area = $area AND r.severity >= $minSeverity;""",
    )
    return ext


def report(db, rid, severity, area):
    db.execute(
        f'INSERT INTO EmergencyReports ({{"id": {rid}, '
        f'"severity": {severity}, "area": "{area}"}});'
    )


class TestChannelLifecycle:
    def test_duplicate_broker(self, bad):
        with pytest.raises(DuplicateError):
            bad.create_broker("phoneApp")

    def test_duplicate_channel(self, bad):
        with pytest.raises(DuplicateError):
            bad.create_channel("EmergenciesNearMe", [], "SELECT VALUE 1;")

    def test_subscribe_unknown_channel(self, bad):
        with pytest.raises(UnknownEntityError):
            bad.subscribe("nope", "phoneApp")

    def test_subscription_arity_checked(self, bad):
        with pytest.raises(AsterixError, match="parameter"):
            bad.subscribe("EmergenciesNearMe", "phoneApp", "campus")

    def test_drop_channel_removes_subscriptions(self, bad):
        sid = bad.subscribe("EmergenciesNearMe", "phoneApp", "campus", 3)
        bad.drop_channel("EmergenciesNearMe")
        assert sid not in bad.subscriptions


class TestDelivery:
    def test_matching_results_delivered(self, db, bad):
        bad.subscribe("EmergenciesNearMe", "phoneApp", "campus", 3)
        report(db, 1, 5, "campus")
        report(db, 2, 1, "campus")     # below minSeverity
        report(db, 3, 5, "downtown")   # wrong area
        bad.tick()
        deliveries = bad.brokers["phoneApp"].drain()
        assert len(deliveries) == 1
        assert deliveries[0].results == [1]

    def test_multiple_subscriptions_distinct_params(self, db, bad):
        bad.subscribe("EmergenciesNearMe", "phoneApp", "campus", 1)
        bad.subscribe("EmergenciesNearMe", "phoneApp", "downtown", 1)
        report(db, 1, 2, "campus")
        report(db, 2, 2, "downtown")
        bad.tick()
        deliveries = bad.brokers["phoneApp"].drain()
        by_params = {tuple(d.results) for d in deliveries}
        assert by_params == {(1,), (2,)}

    def test_shared_params_one_execution(self, db, bad):
        """N subscribers with identical parameters share one query run."""
        for _ in range(5):
            bad.subscribe("EmergenciesNearMe", "phoneApp", "campus", 1)
        report(db, 1, 2, "campus")
        executions = bad.tick()
        assert executions == 1
        assert len(bad.brokers["phoneApp"].drain()) == 5
        assert bad.shared_executions_saved == 4

    def test_periodic_channels(self, db, bad):
        bad.create_channel("Slow", [], "SELECT VALUE 1;", period=3)
        bad.create_broker("b2")
        bad.subscribe("Slow", "b2")
        bad.subscribe("EmergenciesNearMe", "phoneApp", "campus", 1)
        for _ in range(6):
            bad.tick()
        slow = bad.channels["Slow"]
        fast = bad.channels["EmergenciesNearMe"]
        assert slow.executions < fast.executions

    def test_new_data_appears_in_next_tick(self, db, bad):
        bad.subscribe("EmergenciesNearMe", "phoneApp", "campus", 1)
        bad.tick()
        assert bad.brokers["phoneApp"].drain()[0].results == []
        report(db, 9, 4, "campus")
        bad.tick()
        assert bad.brokers["phoneApp"].drain()[0].results == [9]

    def test_string_params_escaped(self, db, bad):
        sid = bad.subscribe("EmergenciesNearMe", "phoneApp",
                            "o''brien area", 1)
        bad.tick()  # must not blow up on the quote
        assert sid in bad.subscriptions
