"""Tests for the Couchbase Analytics simulation (§VI, Fig. 7)."""

import pytest

from repro import connect
from repro.analytics import AnalyticsService, KVStore, MutationKind
from repro.common.errors import DuplicateError, UnknownEntityError


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    yield instance
    instance.close()


@pytest.fixture
def kv():
    store = KVStore()
    store.create_bucket("travel")
    return store


@pytest.fixture
def analytics(db, kv):
    service = AnalyticsService(db, kv)
    service.connect_bucket("travel")
    return service


class TestKVStore:
    def test_upsert_get(self, kv):
        bucket = kv.bucket("travel")
        bucket.upsert("hotel_1", {"name": "Inn", "stars": 3})
        assert bucket.get("hotel_1")["stars"] == 3

    def test_mutations_sequenced(self, kv):
        bucket = kv.bucket("travel")
        bucket.upsert("a", {})
        bucket.upsert("b", {})
        bucket.delete("a")
        seqnos = [m.seqno for m in bucket.dcp_stream()]
        assert seqnos == [1, 2, 3]
        assert bucket.dcp_stream(2)[0].kind is MutationKind.DELETE

    def test_dcp_resume(self, kv):
        bucket = kv.bucket("travel")
        for i in range(5):
            bucket.upsert(f"k{i}", {"i": i})
        assert len(bucket.dcp_stream(3)) == 2

    def test_queueing_model(self, kv):
        bucket = kv.bucket("travel")
        for i in range(10):
            bucket.upsert(f"k{i}", {}, now_us=0.0)
        # FIFO: the 10th op waits behind 9 others
        assert bucket.op_latencies_us[-1] > bucket.op_latencies_us[0]


class TestShadowDatasets:
    def test_sync_applies_upserts(self, analytics, kv):
        bucket = kv.bucket("travel")
        bucket.upsert("hotel_1", {"name": "Inn", "city": "Irvine"})
        bucket.upsert("hotel_2", {"name": "Lodge", "city": "Riverside"})
        assert analytics.sync() == 2
        rows = analytics.query(
            "SELECT VALUE t.name FROM travel t ORDER BY t.name;")
        assert rows == ["Inn", "Lodge"]

    def test_sync_applies_updates_and_deletes(self, analytics, kv):
        bucket = kv.bucket("travel")
        bucket.upsert("h", {"stars": 2})
        analytics.sync()
        bucket.upsert("h", {"stars": 5})
        bucket.upsert("gone", {"stars": 1})
        bucket.delete("gone")
        analytics.sync()
        rows = analytics.query("SELECT VALUE t.stars FROM travel t;")
        assert rows == [5]

    def test_lag_tracking(self, analytics, kv):
        bucket = kv.bucket("travel")
        for i in range(7):
            bucket.upsert(f"k{i}", {})
        assert analytics.lag("travel") == 7
        analytics.sync(max_mutations=3)
        assert analytics.lag("travel") == 4
        analytics.sync()
        assert analytics.lag("travel") == 0

    def test_duplicate_connect(self, analytics):
        with pytest.raises(DuplicateError):
            analytics.connect_bucket("travel")

    def test_unknown_bucket(self, db, kv):
        service = AnalyticsService(db, kv)
        with pytest.raises(UnknownEntityError):
            service.connect_bucket("nope")

    def test_key_preserved(self, analytics, kv):
        kv.bucket("travel").upsert("hotel_42", {"x": 1})
        analytics.sync()
        rows = analytics.query(
            "SELECT VALUE t._key FROM travel t;")
        assert rows == ["hotel_42"]


class TestHTAPIsolation:
    """The architectural claim of Fig. 7: analytics on the shadow copy
    does not perturb front-end operation latency, whereas scanning the
    data service inline does."""

    def test_shadow_analytics_leaves_frontend_alone(self, analytics, kv):
        bucket = kv.bucket("travel")
        for i in range(200):
            bucket.upsert(f"k{i}", {"v": i}, now_us=i * 20.0)
        analytics.sync()
        busy_before = bucket.busy_until_us
        analytics.query("SELECT COUNT(*) AS n FROM travel t;")
        assert bucket.busy_until_us == busy_before   # untouched

    def test_inline_scan_stalls_frontend(self, kv):
        bucket = kv.bucket("travel")
        for i in range(200):
            bucket.upsert(f"k{i}", {"v": i}, now_us=i * 20.0)
        t0 = bucket.busy_until_us
        bucket.scan_inline(now_us=t0)      # pre-Analytics baseline
        latency = bucket.upsert("late", {}, now_us=t0 + 1)
        assert latency > bucket.op_service_time_us * 5
