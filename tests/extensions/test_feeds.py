"""Tests for data feeds (continuous ingestion)."""

import pytest

from repro import connect
from repro.common.errors import AsterixError, DuplicateError, UnknownEntityError
from repro.datagen import GleambookGenerator
from repro.feeds import FeedManager, FileTailSource, GeneratorSource


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    instance.execute("""
        CREATE TYPE MsgType AS { messageId: int, authorId: int,
                                 message: string };
        CREATE DATASET Messages(MsgType) PRIMARY KEY messageId;
    """)
    yield instance
    instance.close()


@pytest.fixture
def feeds(db):
    return FeedManager(db)


def message_stream(n):
    gen = GleambookGenerator(seed=3)
    for m in gen.messages(n, num_users=20):
        yield {"messageId": m["messageId"], "authorId": m["authorId"],
               "message": m["message"]}


class TestLifecycle:
    def test_create_connect_start(self, feeds):
        feeds.create_feed("msgs", GeneratorSource(message_stream(10)))
        feeds.connect_feed("msgs", "Messages")
        feeds.start_feed("msgs")
        assert feeds.feeds["msgs"].state == "running"

    def test_duplicate_feed(self, feeds):
        feeds.create_feed("f", GeneratorSource([]))
        with pytest.raises(DuplicateError):
            feeds.create_feed("f", GeneratorSource([]))

    def test_start_unconnected_rejected(self, feeds):
        feeds.create_feed("f", GeneratorSource([]))
        with pytest.raises(AsterixError, match="not connected"):
            feeds.start_feed("f")

    def test_unknown_feed(self, feeds):
        with pytest.raises(UnknownEntityError):
            feeds.start_feed("nope")

    def test_feed_requires_internal_dataset(self, db, feeds, tmp_path):
        data = tmp_path / "x.adm"
        data.write_text('{"id": 1}\n')
        db.execute(f"""
            CREATE TYPE ET AS {{ id: int }};
            CREATE EXTERNAL DATASET Ext(ET) USING localfs
            (("path"="{data}"), ("format"="adm"));
        """)
        feeds.create_feed("f", GeneratorSource([]))
        with pytest.raises(AsterixError, match="internal"):
            feeds.connect_feed("f", "Ext")


class TestIngestion:
    def test_pump_ingests_everything(self, db, feeds):
        feeds.create_feed("msgs", GeneratorSource(message_stream(150)),
                          batch_size=32)
        feeds.connect_feed("msgs", "Messages")
        feeds.start_feed("msgs")
        ingested = feeds.pump("msgs")
        assert ingested == 150
        assert db.query("SELECT VALUE COUNT(*) FROM Messages m;") == [150]
        stats = feeds.feeds["msgs"].stats
        assert stats.batches == 150 // 32 + 1
        assert stats.failures == 0

    def test_incremental_pumping(self, db, feeds):
        feeds.create_feed("msgs", GeneratorSource(message_stream(100)),
                          batch_size=10)
        feeds.connect_feed("msgs", "Messages")
        feeds.start_feed("msgs")
        assert feeds.pump("msgs", max_batches=3) == 30
        assert db.query("SELECT VALUE COUNT(*) FROM Messages m;") == [30]
        assert feeds.pump("msgs") == 70

    def test_stopped_feed_does_not_ingest(self, db, feeds):
        feeds.create_feed("msgs", GeneratorSource(message_stream(10)))
        feeds.connect_feed("msgs", "Messages")
        feeds.start_feed("msgs")
        feeds.stop_feed("msgs")
        assert feeds.pump() == 0

    def test_upsert_semantics_idempotent(self, db, feeds):
        """At-least-once delivery: replaying records is harmless."""
        records = list(message_stream(20))
        feeds.create_feed("a", GeneratorSource(records))
        feeds.connect_feed("a", "Messages")
        feeds.start_feed("a")
        feeds.pump("a")
        feeds.create_feed("b", GeneratorSource(records))  # the "retry"
        feeds.connect_feed("b", "Messages")
        feeds.start_feed("b")
        feeds.pump("b")
        assert db.query("SELECT VALUE COUNT(*) FROM Messages m;") == [20]

    def test_fed_data_is_queryable_and_recoverable(self, db, feeds,
                                                   tmp_path):
        feeds.create_feed("msgs", GeneratorSource(message_stream(40)))
        feeds.connect_feed("msgs", "Messages")
        feeds.start_feed("msgs")
        feeds.pump("msgs")
        rows = db.query("""
            SELECT a, COUNT(*) AS n FROM Messages m
            GROUP BY m.authorId AS a ORDER BY a LIMIT 3;
        """)
        assert len(rows) == 3


class TestFileTail:
    def test_tail_picks_up_appends(self, db, feeds, tmp_path):
        path = tmp_path / "stream.adm"
        path.write_text('{"messageId": 1, "authorId": 1, '
                        '"message": "first"}\n')
        feeds.create_feed("tail", FileTailSource(str(path)))
        feeds.connect_feed("tail", "Messages")
        feeds.start_feed("tail")
        assert feeds.pump("tail") == 1
        with open(path, "a") as f:
            f.write('{"messageId": 2, "authorId": 1, '
                    '"message": "second"}\n')
        assert feeds.pump("tail") == 1
        assert sorted(db.query(
            "SELECT VALUE m.messageId FROM Messages m;")) == [1, 2]

    def test_partial_line_waits(self, db, feeds, tmp_path):
        path = tmp_path / "stream.adm"
        path.write_text('{"messageId": 1, "authorId": 1, "message": "x"}')
        feeds.create_feed("tail", FileTailSource(str(path)))
        feeds.connect_feed("tail", "Messages")
        feeds.start_feed("tail")
        assert feeds.pump("tail") == 0       # no newline yet: incomplete
        with open(path, "a") as f:
            f.write("\n")
        assert feeds.pump("tail") == 1

    def test_missing_file_is_quiet(self, feeds, db, tmp_path):
        feeds.create_feed("tail",
                          FileTailSource(str(tmp_path / "nope.adm")))
        feeds.connect_feed("tail", "Messages")
        feeds.start_feed("tail")
        assert feeds.pump("tail") == 0
