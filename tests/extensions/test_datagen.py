"""Tests for the synthetic data generators."""

from repro.adm import ADateTime, AInterval, APoint, Multiset
from repro.datagen import GleambookGenerator, activity_log


class TestGleambookUsers:
    def test_deterministic(self):
        a = list(GleambookGenerator(seed=1).users(50))
        b = list(GleambookGenerator(seed=1).users(50))
        assert a == b

    def test_seed_changes_data(self):
        a = list(GleambookGenerator(seed=1).users(50))
        b = list(GleambookGenerator(seed=2).users(50))
        assert a != b

    def test_schema_shape(self):
        users = list(GleambookGenerator().users(30))
        assert len(users) == 30
        for u in users:
            assert isinstance(u["friendIds"], Multiset)
            assert isinstance(u["userSince"], ADateTime)
            for job in u["employment"]:
                assert "organizationName" in job and "startDate" in job

    def test_friend_counts_skewed(self):
        users = list(GleambookGenerator().users(500))
        counts = sorted(len(u["friendIds"]) for u in users)
        assert counts[len(counts) // 2] <= 2   # median small
        assert counts[-1] >= 5                 # head heavy

    def test_some_open_fields(self):
        users = list(GleambookGenerator().users(100))
        assert any("nickname" in u for u in users)
        assert not all("nickname" in u for u in users)


class TestGleambookMessages:
    def test_shape(self):
        gen = GleambookGenerator()
        messages = list(gen.messages(100, num_users=20))
        assert len(messages) == 100
        for m in messages:
            assert 0 <= m["authorId"] < 20
            if "senderLocation" in m:
                p = m["senderLocation"]
                assert isinstance(p, APoint)
                assert 0 <= p.x <= 100 and 0 <= p.y <= 100

    def test_most_have_locations(self):
        messages = list(GleambookGenerator().messages(200, 10))
        with_loc = sum("senderLocation" in m for m in messages)
        assert with_loc > 150


class TestAccessLog:
    def test_format(self):
        gen = GleambookGenerator()
        users = list(gen.users(10))
        aliases = [u["alias"] for u in users]
        lines = list(gen.access_log_lines(50, aliases))
        assert len(lines) == 50
        for line in lines:
            parts = line.split("|")
            assert len(parts) == 7
            assert parts[2] in aliases
            int(parts[5])
            int(parts[6])


class TestActivityLog:
    def test_intervals_ordered_per_student(self):
        records = activity_log(200, num_students=5)
        by_student: dict = {}
        for r in records:
            by_student.setdefault(r["student"], []).append(r["activity"])
        for intervals in by_student.values():
            for a, b in zip(intervals, intervals[1:]):
                assert a.end <= b.start

    def test_interval_type(self):
        for r in activity_log(20):
            assert isinstance(r["activity"], AInterval)
            assert 1 <= r["stress"] <= 5
