"""Shared fixtures: a small simulated cluster."""

import pytest

from repro.common.config import ClusterConfig, NodeConfig
from repro.hyracks import ClusterController


@pytest.fixture
def cluster(tmp_path):
    config = ClusterConfig(
        num_nodes=2,
        partitions_per_node=2,
        node=NodeConfig(buffer_cache_pages=128, memory_component_pages=64,
                        sort_memory_frames=4, join_memory_frames=4,
                        group_memory_frames=4),
        frame_size=16,
    )
    cc = ClusterController(str(tmp_path / "cluster"), config)
    yield cc
    cc.close()


@pytest.fixture
def single_node_cluster(tmp_path):
    config = ClusterConfig(num_nodes=1, partitions_per_node=1, frame_size=16)
    cc = ClusterController(str(tmp_path / "single"), config)
    yield cc
    cc.close()
