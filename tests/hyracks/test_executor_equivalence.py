"""Serial / parallel / pipelined executor equivalence (ISSUE-2, ISSUE-6).

The pipelined, parallel executor must be *observably identical* to the
serial materialize-everything executor in every dimension except
wall-clock time: result tuples (including order), the simulated clock
(``profile.simulated_us``), and per-operator tuple counts.  Every job
shape that exercises a distinct code path runs here under every executor
variant and is compared field by field against the serial,
non-pipelined baseline.

ISSUE-6 adds per-job expression compilation
(``ExecutorConfig.compile_expressions``); the interpreted variants here
pin its invariant: compiled and interpreted execution are byte-identical
in everything but wall-clock time.
"""

from repro import connect
from repro.common.config import ClusterConfig, ExecutorConfig, NodeConfig
from repro.hyracks import (
    ClusterController,
    ColumnRef,
    Const,
    FunctionCall,
    HashPartitionConnector,
    JobSpecification,
    MergeConnector,
    OneToOneConnector,
    build_stages,
)
from repro.hyracks.operators import (
    AssignOp,
    DatasetScanOp,
    DistinctOp,
    ExternalSortOp,
    HashGroupByOp,
    AggregateCall,
    HybridHashJoinOp,
    InMemorySourceOp,
    LimitOp,
    ProjectOp,
    ResultWriterOp,
    SelectOp,
    UnnestOp,
)

VARIANTS = [
    ("serial", ExecutorConfig(mode="serial", pipelining=False)),
    ("serial-pipelined", ExecutorConfig(mode="serial", pipelining=True)),
    ("parallel", ExecutorConfig(mode="parallel", pipelining=False)),
    ("parallel-pipelined", ExecutorConfig(mode="parallel", pipelining=True)),
    ("serial-interpreted",
     ExecutorConfig(mode="serial", pipelining=False,
                    compile_expressions=False)),
    ("parallel-interpreted",
     ExecutorConfig(mode="parallel", pipelining=True,
                    compile_expressions=False)),
    # ISSUE-7: batched frame-at-a-time execution off — the per-tuple
    # reference paths must match the batched default byte for byte
    ("serial-unbatched",
     ExecutorConfig(mode="serial", pipelining=False,
                    batch_execution=False)),
    ("parallel-unbatched",
     ExecutorConfig(mode="parallel", pipelining=True,
                    batch_execution=False)),
]


def make_config(executor: ExecutorConfig) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=2,
        partitions_per_node=2,
        node=NodeConfig(buffer_cache_pages=128, memory_component_pages=64,
                        sort_memory_frames=4, join_memory_frames=4,
                        group_memory_frames=4),
        frame_size=16,
        executor=executor,
    )


def observe(result):
    """Everything two executor runs must agree on, ready to compare."""
    profile = result.profile
    return {
        "tuples": list(result.tuples),
        "simulated_us": profile.simulated_us,
        "operators": [
            (op.name,
             {p: (c.tuples_in, c.tuples_out, c.cpu_us, c.io_us,
                  c.network_us)
              for p, c in sorted(op.partitions.items())})
            for op in profile.operators
        ],
        "network_tuples": profile.connector_network_tuples,
    }


def run_all_variants(tmp_path, job_factory, setup=None):
    """Run ``job_factory(cluster)`` under every executor variant and
    assert each observation matches the serial baseline exactly."""
    observations = {}
    for name, executor in VARIANTS:
        cluster = ClusterController(str(tmp_path / name),
                                    make_config(executor))
        try:
            if setup is not None:
                setup(cluster)
            result = cluster.run_job(job_factory(cluster))
            observations[name] = observe(result)
        finally:
            cluster.close()
    baseline = observations["serial"]
    for name, _ in VARIANTS[1:]:
        assert observations[name] == baseline, (
            f"{name} diverged from the serial executor")
    return baseline


def chain(*ops_and_connectors):
    job = JobSpecification()
    prev = None
    for item in ops_and_connectors:
        if prev is None:
            prev = job.add_operator(item)
            continue
        connector, op = item
        op_id = job.add_operator(op)
        job.connect(connector, prev, op_id)
        prev = op_id
    return job


class TestStreamingChains:
    def test_scan_select_project_limit(self, tmp_path):
        data = [(i, i * 3 % 97, [i, i + 1]) for i in range(200)]
        baseline = run_all_variants(tmp_path, lambda cluster: chain(
            InMemorySourceOp(data),
            (OneToOneConnector(),
             SelectOp(FunctionCall("gt", [ColumnRef(1), Const(10)]))),
            (OneToOneConnector(), AssignOp([
                FunctionCall("numeric_add", [ColumnRef(0), Const(1)]),
            ])),
            (OneToOneConnector(), ProjectOp([0, 1, 3])),
            (OneToOneConnector(), LimitOp(50, offset=5)),
            (OneToOneConnector(), ResultWriterOp()),
        ))
        assert len(baseline["tuples"]) == 50

    def test_unnest_and_distinct(self, tmp_path):
        data = [(i % 7, list(range(i % 4))) for i in range(120)]
        baseline = run_all_variants(tmp_path, lambda cluster: chain(
            InMemorySourceOp(data),
            (OneToOneConnector(), UnnestOp(ColumnRef(1))),
            (OneToOneConnector(), ProjectOp([0, 2])),
            (HashPartitionConnector([0]), DistinctOp()),
            (OneToOneConnector(), ResultWriterOp()),
        ))
        assert baseline["tuples"]

    def test_fused_chain_charges_like_serial(self, tmp_path):
        """A long 1:1 streaming chain is one stage when pipelining, yet
        the costs must be identical anyway."""
        data = [(i,) for i in range(300)]
        run_all_variants(tmp_path, lambda cluster: chain(
            InMemorySourceOp(data),
            (OneToOneConnector(), SelectOp(Const(True))),
            (OneToOneConnector(), AssignOp([
                FunctionCall("numeric_multiply",
                             [ColumnRef(0), Const(2)])])),
            (OneToOneConnector(), ProjectOp([1])),
            (OneToOneConnector(), ResultWriterOp()),
        ))


class TestBreakers:
    def test_spilling_sort_with_merge(self, tmp_path):
        """Multi-partition spill sort + global sort-merge gather."""
        data = [(i * 7919 % 500, i) for i in range(500)]
        baseline = run_all_variants(tmp_path, lambda cluster: chain(
            InMemorySourceOp(data),
            (HashPartitionConnector([0]),
             ExternalSortOp([0], memory_frames=4)),
            (MergeConnector([0]), ResultWriterOp()),
        ))
        keys = [t[0] for t in baseline["tuples"]]
        assert keys == sorted(keys) and len(keys) == 500

    def test_spilling_hash_join(self, tmp_path):
        left = [(i % 80, i) for i in range(400)]
        right = [(i, i * 10) for i in range(80)]

        def factory(cluster):
            job = JobSpecification()
            l_id = job.add_operator(InMemorySourceOp(left))
            r_id = job.add_operator(InMemorySourceOp(right))
            join = job.add_operator(
                HybridHashJoinOp([0], [0], memory_frames=2))
            sink = job.add_operator(ResultWriterOp())
            job.connect(HashPartitionConnector([0]), l_id, join, 0)
            job.connect(HashPartitionConnector([0]), r_id, join, 1)
            job.connect(OneToOneConnector(), join, sink)
            return job

        baseline = run_all_variants(tmp_path, factory)
        assert len(baseline["tuples"]) == 400

    def test_spilling_group_by(self, tmp_path):
        data = [(i % 150, i) for i in range(600)]
        baseline = run_all_variants(tmp_path, lambda cluster: chain(
            InMemorySourceOp(data),
            (HashPartitionConnector([0]), HashGroupByOp(
                [0], [AggregateCall("count", ColumnRef(1))], memory_frames=2)),
            (OneToOneConnector(), ResultWriterOp()),
        ))
        assert len(baseline["tuples"]) == 150


class TestDatasetScans:
    def test_scan_over_lsm_partitions(self, tmp_path):
        def setup(cluster):
            cluster.create_dataset("Users", ("id",))
            for i in range(300):
                cluster.insert_record(
                    "Users", {"id": i, "grp": i % 9, "name": f"u{i}"})
            cluster.flush_dataset("Users")

        baseline = run_all_variants(tmp_path, lambda cluster: chain(
            DatasetScanOp("Users"),
            (OneToOneConnector(), ResultWriterOp()),
        ), setup=setup)
        assert len(baseline["tuples"]) == 300


class TestSqlppEquivalence:
    """Full-stack equivalence: SQL++ through the optimizer, with a
    secondary-index scan, under each executor variant."""

    DDL = """
        CREATE TYPE ItemType AS { id: int, cat: string, price: int };
        CREATE DATASET Items(ItemType) PRIMARY KEY id;
        CREATE INDEX byCat ON Items(cat);
    """
    QUERIES = [
        "SELECT VALUE i.id FROM Items i WHERE i.cat = 'c3';",
        "SELECT cat, COUNT(*) AS n FROM Items i "
        "GROUP BY i.cat AS cat ORDER BY cat;",
        "SELECT VALUE i.price FROM Items i ORDER BY i.price DESC LIMIT 7;",
        "SELECT a.id AS x, b.id AS y FROM Items a, Items b "
        "WHERE a.id = b.id AND a.price > 900 ORDER BY x;",
    ]

    def _observed(self, tmp_path, name, executor):
        config = make_config(executor)
        out = []
        with connect(str(tmp_path / name), config) as db:
            db.execute(self.DDL)
            for i in range(120):
                db.execute(
                    'INSERT INTO Items ({"id": %d, "cat": "c%d", '
                    '"price": %d});' % (i, i % 5, i * 13 % 1000))
            db.flush_dataset("Items")
            for query in self.QUERIES:
                result = db.execute(query)
                out.append((result.rows, result.profile.simulated_us))
        return out

    def test_sqlpp_queries_identical_across_executors(self, tmp_path):
        baseline = self._observed(tmp_path, *VARIANTS[0])
        for name, executor in VARIANTS[1:]:
            assert self._observed(tmp_path, name, executor) == baseline, (
                f"{name} diverged on the SQL++ suite")


class TestStagePlanning:
    def test_streaming_chain_fuses_into_one_stage(self):
        job = chain(
            InMemorySourceOp([(1,)]),
            (OneToOneConnector(), SelectOp(Const(True))),
            (OneToOneConnector(), ProjectOp([0])),
            (OneToOneConnector(), ResultWriterOp()),
        )
        job.validate()
        # at width 1, source+select+project all match and fuse; the
        # result writer is a breaker and gets its own stage
        stages = build_stages(job, num_partitions=1, pipelining=True)
        assert [len(s.op_ids) for s in stages] == [3, 1]
        # at width 4 the width-1 source can't fuse with the full-width
        # select, but select+project still do
        stages = build_stages(job, num_partitions=4, pipelining=True)
        assert [len(s.op_ids) for s in stages] == [1, 2, 1]

    def test_width_change_breaks_fusion(self):
        job = chain(
            DatasetScanOp("D"),                       # full width
            (OneToOneConnector(), SelectOp(Const(True))),
            (HashPartitionConnector([0]), DistinctOp()),
            (OneToOneConnector(), ResultWriterOp()),
        )
        job.validate()
        stages = build_stages(job, num_partitions=4, pipelining=True)
        assert [len(s.op_ids) for s in stages] == [2, 1, 1]

    def test_pipelining_off_means_one_stage_per_operator(self):
        job = chain(
            InMemorySourceOp([(1,)]),
            (OneToOneConnector(), SelectOp(Const(True))),
            (OneToOneConnector(), ResultWriterOp()),
        )
        job.validate()
        stages = build_stages(job, num_partitions=4, pipelining=False)
        assert [len(s.op_ids) for s in stages] == [1, 1, 1]

    def test_breakers_declare_themselves(self):
        assert not ExternalSortOp([0]).streaming
        assert not HashGroupByOp([0], [AggregateCall("count", ColumnRef(1))]).streaming
        assert not HybridHashJoinOp([0], [0]).streaming
        assert not ResultWriterOp().streaming
        assert SelectOp(Const(True)).streaming
        assert ProjectOp([0]).streaming


class TestGovernorEquivalence:
    """ISSUE-5 serial-equivalence guarantee: with one query at a time,
    the memory governor — sized either amply or exactly to the old
    per-operator defaults — must change nothing observable.  Grants
    charge no simulated time and an uncontended request receives its
    full ask, so results, tuple counts, and the simulated clock stay
    byte-identical across every executor variant and both sizings."""

    def _observe(self, tmp_path, name, executor, frames):
        config = make_config(executor)
        config.node.query_memory_frames = frames
        data = [(i * 7919 % 500, i) for i in range(500)]
        cluster = ClusterController(str(tmp_path / name), config)
        try:
            job = chain(
                InMemorySourceOp(data),
                (HashPartitionConnector([0]),
                 ExternalSortOp([0], memory_frames=4)),
                (MergeConnector([0]), ResultWriterOp()),
            )
            return observe(cluster.run_job(job))
        finally:
            cluster.close()

    def test_governor_sizing_changes_nothing(self, tmp_path):
        # tight = the admission floor (4) + the sort's 4-frame request
        observations = {
            (name, frames): self._observe(
                tmp_path, f"{name}-{frames}", executor, frames)
            for name, executor in VARIANTS
            for frames in (4096, 8)
        }
        baseline = observations[("serial", 4096)]
        keys = [t[0] for t in baseline["tuples"]]
        assert keys == sorted(keys) and len(keys) == 500
        for key, observation in observations.items():
            assert observation == baseline, (
                f"{key} diverged under the memory governor")


class TestExecutorKnobs:
    def test_default_mode_is_parallel_pipelined(self):
        config = ClusterConfig()
        assert config.executor.parallel
        assert config.executor.pipelining

    def test_worker_pool_sizing(self, tmp_path):
        config = make_config(ExecutorConfig(workers=3))
        cluster = ClusterController(str(tmp_path / "c"), config)
        try:
            pool = cluster.worker_pool()
            assert pool._max_workers == 3
            assert pool is cluster.worker_pool()   # cached
        finally:
            cluster.close()

    def test_config_round_trips_through_instance_marker(self, tmp_path):
        config = make_config(ExecutorConfig(mode="serial", workers=2,
                                            pipelining=False))
        base = str(tmp_path / "db")
        with connect(base, config):
            pass
        with connect(base) as db:   # reopen: config comes from the marker
            executor = db.cluster.config.executor
            assert (executor.mode, executor.workers, executor.pipelining) \
                == ("serial", 2, False)

    def test_pipeline_metrics_emitted(self, tmp_path):
        from repro.observability.metrics import get_registry

        registry = get_registry()
        registry.counter("hyracks.pipeline.frames").reset()
        registry.counter("hyracks.executor.stages").reset()
        # single partition so the width-1 source fuses with the select
        config = ClusterConfig(
            num_nodes=1, partitions_per_node=1, frame_size=16,
            executor=ExecutorConfig(mode="serial", pipelining=True))
        cluster = ClusterController(str(tmp_path / "m"), config)
        try:
            job = chain(
                InMemorySourceOp([(i,) for i in range(100)]),
                (OneToOneConnector(), SelectOp(Const(True))),
                (OneToOneConnector(), ResultWriterOp()),
            )
            cluster.run_job(job)
        finally:
            cluster.close()
        assert registry.counter("hyracks.executor.stages").value >= 2
        # 100 tuples / frame_size 16 -> 7 frames through the fused chain
        assert registry.counter("hyracks.pipeline.frames").value == 7
