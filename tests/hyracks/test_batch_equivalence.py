"""Batched execution equivalence (ISSUE-7).

``ExecutorConfig.batch_execution`` swaps per-tuple dispatch for
frame-at-a-time folds (bulk aggregate stepping, compiled sort keys,
batched key bytes).  The toggle must be invisible in everything but
wall-clock time, which this suite pins at three levels:

* **Value level** (hypothesis): ``AggregateState.step_many`` — whole or
  chunked — finishes with exactly what the sequential ``step`` fold
  produces, including tie-breaking (``1`` vs ``1.0`` in MIN/MAX);
  ``order_part``/``compile_order_key`` order exactly like the ``_Key``
  based ``order_key``.
* **Operator level** (hypothesis): group-by/aggregate/top-k operators
  run twice over random frames, batched on and off, and must agree on
  output tuples *and* every simulated-clock charge.
* **Observability**: the ``agg.batched_steps`` and
  ``sort.key_cache_hits`` counters tick on the batched paths, and the
  top-k cost model charges ``n * ceil(log2 k)`` comparisons.

Executor-level coverage (serial/parallel/pipelined x batched on/off)
lives in ``test_executor_equivalence.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm.comparators import (
    compare,
    order_part,
    tuple_key,
    tuple_key_many,
)
from repro.adm.values import MISSING
from repro.common.config import ClusterConfig, ExecutorConfig, NodeConfig
from repro.functions.aggregates import AggregateState
from repro.functions.registry import resolve_aggregate
from repro.hyracks.connectors import MergeConnector
from repro.hyracks.expressions import ColumnRef
from repro.hyracks.operators.base import TaskContext
from repro.hyracks.operators.group import (
    AggregateCall,
    AggregateOp,
    HashGroupByOp,
    PreclusteredGroupByOp,
)
from repro.hyracks.operators.sort import (
    TopKSortOp,
    _compile_sort_plan,
    compile_order_key,
    order_key,
)
from repro.hyracks.profiler import PartitionCost
from repro.observability.metrics import get_registry

GENERAL_VALUES = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.floats(min_value=-20, max_value=20,
              allow_nan=False, allow_infinity=False),
    st.sampled_from(["", "a", "bb", "zz"]),
    st.booleans(),
    st.none(),
    st.just(MISSING),
    st.lists(st.integers(min_value=0, max_value=3), max_size=2),
)

NUMERIC_VALUES = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.floats(min_value=-20, max_value=20,
              allow_nan=False, allow_infinity=False),
    st.none(),
    st.just(MISSING),
)


def canon(x):
    """Strict equality token: distinguishes 1 / 1.0 / True, so the
    tie-breaking of bulk folds is checked, not just ADM equality."""
    return (type(x).__name__, repr(x))


class TestStepManyAgreement:
    def _check(self, name, values, chunk):
        func = resolve_aggregate(name)
        ref = AggregateState(func)
        for v in values:
            ref.step(v)
        whole = AggregateState(func)
        whole.step_many(list(values))
        chunked = AggregateState(func)
        for i in range(0, len(values), chunk):
            chunked.step_many(values[i:i + chunk])
        expected = canon(ref.finish())
        assert canon(whole.finish()) == expected
        assert canon(chunked.finish()) == expected

    @settings(max_examples=150, deadline=None)
    @given(name=st.sampled_from(
               ["count", "count_star", "min", "max", "listify"]),
           values=st.lists(GENERAL_VALUES, max_size=30),
           chunk=st.integers(min_value=1, max_value=7))
    def test_general_aggregates(self, name, values, chunk):
        self._check(name, values, chunk)

    @settings(max_examples=150, deadline=None)
    @given(name=st.sampled_from(["sum", "avg"]),
           values=st.lists(NUMERIC_VALUES, max_size=30),
           chunk=st.integers(min_value=1, max_value=7))
    def test_numeric_aggregates(self, name, values, chunk):
        self._check(name, values, chunk)

    def test_min_max_keep_earliest_of_ties(self):
        for name in ("min", "max"):
            state = AggregateState(resolve_aggregate(name))
            state.step_many([1, 1.0])
            assert canon(state.finish()) == canon(1)


WIDTH = 3
FRAMES = st.lists(
    st.lists(GENERAL_VALUES, min_size=WIDTH, max_size=WIDTH).map(tuple),
    max_size=25)
FIELD_SPECS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=WIDTH - 1), st.booleans()),
    min_size=1, max_size=WIDTH)


class TestSortKeyAgreement:
    @settings(max_examples=150, deadline=None)
    @given(a=GENERAL_VALUES, b=GENERAL_VALUES)
    def test_order_part_agrees_with_compare(self, a, b):
        pa, pb = order_part(a), order_part(b)
        c = compare(a, b)
        assert (pa < pb) == (c < 0)
        assert (pa == pb) == (c == 0)

    @settings(max_examples=100, deadline=None)
    @given(data=FRAMES)
    def test_tuple_key_many_orders_like_tuple_key(self, data):
        ref = sorted(range(len(data)), key=lambda i: tuple_key(data[i]))
        many = tuple_key_many(data)
        assert sorted(range(len(data)), key=lambda i: many[i]) == ref

    @settings(max_examples=150, deadline=None)
    @given(data=FRAMES, spec=FIELD_SPECS)
    def test_compiled_key_sorts_like_order_key(self, data, spec):
        fields = [f for f, _ in spec]
        descending = [d for _, d in spec]
        ref = sorted(data, key=lambda t: order_key(t, fields, descending))
        compiled = compile_order_key(fields, descending, data)
        assert sorted(data, key=compiled) == ref
        sort_key, reverse, heap_key = _compile_sort_plan(
            fields, descending, data)
        assert sorted(data, key=sort_key, reverse=reverse) == ref
        assert min(data, key=heap_key, default=None) == (
            ref[0] if ref else None)


def _config(batched: bool) -> ClusterConfig:
    return ClusterConfig(num_nodes=1, partitions_per_node=1,
                         node=NodeConfig(),
                         executor=ExecutorConfig(batch_execution=batched))


def _ctx(batched: bool) -> TaskContext:
    # node=None: these operators never touch node services on the
    # in-memory path exercised here
    return TaskContext(None, _config(batched), PartitionCost())


def _aggs():
    return [AggregateCall("count", ColumnRef(0)),
            AggregateCall("sum", ColumnRef(1)),
            AggregateCall("min", ColumnRef(2))]


def _run_both(runner):
    """``runner(ctx)`` under batched off/on: identical output (strictly,
    via :func:`canon`) and identical simulated-clock charges."""
    results = []
    for batched in (False, True):
        ctx = _ctx(batched)
        out = runner(ctx)
        results.append((out, ctx.cost.cpu_us, ctx.cost.io_us,
                        ctx.cost.network_us))
    off, on = results
    assert [canon(v) for t in off[0] for v in t] == \
        [canon(v) for t in on[0] for v in t]
    assert len(off[0]) == len(on[0])
    assert off[1:] == on[1:]
    return on[0]


OP_FRAMES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              NUMERIC_VALUES,
              GENERAL_VALUES),
    max_size=25)


class TestOperatorEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=OP_FRAMES)
    def test_global_aggregate(self, data):
        def runner(ctx):
            op = AggregateOp(_aggs())
            op.prepare(ctx.config)
            return op.run(ctx, 0, [list(data)])
        out = _run_both(runner)
        assert len(out) == 1

    @settings(max_examples=60, deadline=None)
    @given(data=OP_FRAMES)
    def test_hash_group_by(self, data):
        def runner(ctx):
            op = HashGroupByOp([0], _aggs())
            op.prepare(ctx.config)
            # budget too large to spill: the spill path needs node temp
            # files and is covered by the executor-level suite
            return op._aggregate(ctx, list(data), 10 ** 9, 0)
        _run_both(runner)

    @settings(max_examples=60, deadline=None)
    @given(data=OP_FRAMES)
    def test_preclustered_group_by(self, data):
        clustered = sorted(data, key=lambda t: tuple_key((t[0],)))

        def runner(ctx):
            op = PreclusteredGroupByOp([0], _aggs())
            op.prepare(ctx.config)
            return op.run(ctx, 0, [clustered])
        _run_both(runner)

    @settings(max_examples=60, deadline=None)
    @given(data=FRAMES, spec=FIELD_SPECS,
           k=st.integers(min_value=1, max_value=8))
    def test_topk_sort(self, data, spec, k):
        fields = [f for f, _ in spec]
        descending = [d for _, d in spec]

        def runner(ctx):
            return TopKSortOp(fields, k, descending).run(
                ctx, 0, [list(data)])
        out = _run_both(runner)
        ref = sorted(data, key=lambda t: order_key(t, fields, descending))
        assert out == ref[:k]


class TestCostModelAndCounters:
    def test_topk_charges_heap_sift_comparisons(self):
        # satellite fix: n tuples through a k-bounded heap cost
        # n * max(1, ceil(log2 k)) comparisons, not n
        n, k = 100, 5
        ctx = _ctx(True)
        TopKSortOp([0], k).run(ctx, 0, [[(i,) for i in range(n)]])
        cost = ctx.config.cost
        expected = (n * cost.tuple_cpu_us
                    + n * max(1, k.bit_length()) * cost.compare_us)
        assert ctx.cost.cpu_us == expected

    def test_batched_steps_counter(self):
        counter = get_registry().counter("agg.batched_steps")
        before = counter.value
        ctx = _ctx(True)
        op = AggregateOp(_aggs())
        op.prepare(ctx.config)
        op.run(ctx, 0, [[(i, i, i) for i in range(10)]])
        assert counter.value - before == 10 * 3

    def test_unbatched_does_not_tick_counter(self):
        counter = get_registry().counter("agg.batched_steps")
        before = counter.value
        ctx = _ctx(False)
        op = AggregateOp(_aggs())
        op.prepare(ctx.config)
        op.run(ctx, 0, [[(i, i, i) for i in range(10)]])
        assert counter.value == before

    def test_merge_connector_key_cache_hits(self):
        class Ctx:
            batch_execution = True

            def charge_network(self, n):
                pass

            def charge_compare(self, n):
                pass

        counter = get_registry().counter("sort.key_cache_hits")
        before = counter.value
        parts = [[(0,), (2,)], [(1,), (3,)]]
        merged = MergeConnector([0]).route(parts, 1, Ctx())
        assert merged == [[(0,), (1,), (2,), (3,)]]
        # every heap push reused a precomputed compiled key
        assert counter.value - before == 4
