"""End-to-end Hyracks job tests built by hand (no SQL++ involved)."""

import pytest

from repro.common.errors import CompilationError
from repro.hyracks import (
    BroadcastConnector,
    ColumnRef,
    Const,
    FunctionCall,
    HashPartitionConnector,
    JobSpecification,
    MergeConnector,
    OneToOneConnector,
)
from repro.hyracks.operators import (
    AggregateCall,
    AggregateOp,
    AssignOp,
    DatasetScanOp,
    DistinctOp,
    ExternalSortOp,
    HashGroupByOp,
    HybridHashJoinOp,
    InMemorySourceOp,
    LimitOp,
    NestedLoopJoinOp,
    PreclusteredGroupByOp,
    ProjectOp,
    ResultWriterOp,
    SelectOp,
    TopKSortOp,
    UnionAllOp,
    UnnestOp,
)


def run(cluster, job):
    return cluster.run_job(job)


def simple_job(*ops_and_connectors):
    """Chain ops linearly with the given connectors between them."""
    job = JobSpecification()
    prev = None
    for item in ops_and_connectors:
        if prev is None:
            prev = job.add_operator(item)
            continue
        connector, op = item
        op_id = job.add_operator(op)
        job.connect(connector, prev, op_id)
        prev = op_id
    return job


class TestJobValidation:
    def test_cycle_detected(self, cluster):
        job = JobSpecification()
        a = job.add_operator(SelectOp(Const(True)))
        b = job.add_operator(SelectOp(Const(True)))
        job.connect(OneToOneConnector(), a, b)
        job.connect(OneToOneConnector(), b, a)
        with pytest.raises(CompilationError, match="cycle"):
            cluster.run_job(job)

    def test_missing_input_detected(self, cluster):
        job = JobSpecification()
        job.add_operator(SelectOp(Const(True)))  # select has 1 input port
        with pytest.raises(CompilationError, match="input"):
            cluster.run_job(job)


class TestSimplePipeline:
    def test_source_filter_project(self, cluster):
        source = InMemorySourceOp([(i, i * 10) for i in range(10)])
        job = simple_job(
            source,
            (OneToOneConnector(),
             SelectOp(FunctionCall("gt", [ColumnRef(0), Const(6)]))),
            (OneToOneConnector(), ProjectOp([1])),
            (OneToOneConnector(), ResultWriterOp()),
        )
        result = run(cluster, job)
        assert sorted(result.tuples) == [(70,), (80,), (90,)]

    def test_assign(self, cluster):
        source = InMemorySourceOp([(2,), (3,)])
        job = simple_job(
            source,
            (OneToOneConnector(), AssignOp([
                FunctionCall("numeric_multiply", [ColumnRef(0), Const(10)]),
            ])),
            (OneToOneConnector(), ResultWriterOp()),
        )
        assert sorted(run(cluster, job).tuples) == [(2, 20), (3, 30)]

    def test_limit_offset(self, cluster):
        source = InMemorySourceOp([(i,) for i in range(10)])
        job = simple_job(
            source,
            (OneToOneConnector(), LimitOp(3, offset=2)),
            (OneToOneConnector(), ResultWriterOp()),
        )
        assert run(cluster, job).tuples == [(2,), (3,), (4,)]

    def test_unnest(self, cluster):
        source = InMemorySourceOp([(1, [10, 20]), (2, [])])
        job = simple_job(
            source,
            (OneToOneConnector(), UnnestOp(ColumnRef(1))),
            (OneToOneConnector(), ProjectOp([0, 2])),
            (OneToOneConnector(), ResultWriterOp()),
        )
        assert sorted(run(cluster, job).tuples) == [(1, 10), (1, 20)]

    def test_union_all(self, cluster):
        a = InMemorySourceOp([(1,)])
        b = InMemorySourceOp([(2,)])
        job = JobSpecification()
        ia = job.add_operator(a)
        ib = job.add_operator(b)
        union = job.add_operator(UnionAllOp())
        sink = job.add_operator(ResultWriterOp())
        job.connect(OneToOneConnector(), ia, union, port=0)
        job.connect(OneToOneConnector(), ib, union, port=1)
        job.connect(OneToOneConnector(), union, sink)
        assert sorted(run(cluster, job).tuples) == [(1,), (2,)]

    def test_distinct(self, cluster):
        source = InMemorySourceOp([(1,), (1,), (2,), (1.0,)])
        job = simple_job(
            source,
            (HashPartitionConnector([0]), DistinctOp()),
            (OneToOneConnector(), ResultWriterOp()),
        )
        assert sorted(run(cluster, job).tuples) == [(1,), (2,)]


class TestSort:
    def test_sort_with_merge_connector(self, cluster):
        data = [(i * 7919 % 100, i) for i in range(100)]
        source = InMemorySourceOp(data)
        job = simple_job(
            source,
            (HashPartitionConnector([0]), ExternalSortOp([0])),
            (MergeConnector([0]), ResultWriterOp()),
        )
        got = [t[0] for t in run(cluster, job).tuples]
        assert got == sorted(got)
        assert len(got) == 100

    def test_sort_descending(self, cluster):
        source = InMemorySourceOp([(3,), (1,), (2,)])
        job = simple_job(
            source,
            (OneToOneConnector(), ExternalSortOp([0], descending=[True])),
            (MergeConnector([0], descending=[True]), ResultWriterOp()),
        )
        assert run(cluster, job).tuples == [(3,), (2,), (1,)]

    def test_external_sort_spills(self, cluster):
        """Budget of 4 frames * 16 tuples = 64; 500 tuples must spill."""
        data = [(i * 31 % 500,) for i in range(500)]
        sort_op = ExternalSortOp([0], memory_frames=4)
        source = InMemorySourceOp(data)
        job = simple_job(
            source,
            (OneToOneConnector(), sort_op),
            (OneToOneConnector(), ResultWriterOp()),
        )
        result = run(cluster, job)
        got = [t[0] for t in result.tuples]
        assert got == sorted(d[0] for d in data)
        assert max(sort_op.last_run_counts) > 1     # it really spilled
        assert result.profile.physical_writes > 0   # spill I/O counted

    def test_topk(self, cluster):
        source = InMemorySourceOp([(i,) for i in range(100)])
        job = simple_job(
            source,
            (OneToOneConnector(), TopKSortOp([0], k=3)),
            (OneToOneConnector(), ResultWriterOp()),
        )
        assert run(cluster, job).tuples == [(0,), (1,), (2,)]


class TestJoin:
    def make_join_job(self, join_op, left_data, right_data,
                      left_conn=None, right_conn=None):
        job = JobSpecification()
        left = job.add_operator(InMemorySourceOp(left_data))
        right = job.add_operator(InMemorySourceOp(right_data))
        join = job.add_operator(join_op)
        sink = job.add_operator(ResultWriterOp())
        job.connect(left_conn or HashPartitionConnector([0]), left, join, 0)
        job.connect(right_conn or HashPartitionConnector([0]), right, join, 1)
        job.connect(OneToOneConnector(), join, sink)
        return job

    def test_inner_hash_join(self, cluster):
        left = [(i, f"l{i}") for i in range(10)]
        right = [(i, f"r{i}") for i in range(5, 15)]
        job = self.make_join_job(HybridHashJoinOp([0], [0]), left, right)
        got = sorted(run(cluster, job).tuples)
        assert got == [(i, f"l{i}", i, f"r{i}") for i in range(5, 10)]

    def test_left_outer_join(self, cluster):
        from repro.adm import MISSING

        left = [(1, "a"), (2, "b")]
        right = [(1, "x")]
        job = self.make_join_job(
            HybridHashJoinOp([0], [0], kind="leftouter", right_width=2),
            left, right)
        got = sorted(run(cluster, job).tuples,
                     key=lambda t: t[0])
        assert got[0] == (1, "a", 1, "x")
        assert got[1] == (2, "b", MISSING, MISSING)

    def test_semi_join(self, cluster):
        left = [(1,), (2,), (3,)]
        right = [(2, "x"), (2, "y")]
        job = self.make_join_job(
            HybridHashJoinOp([0], [0], kind="leftsemi"), left, right)
        assert sorted(run(cluster, job).tuples) == [(2,)]

    def test_anti_join(self, cluster):
        left = [(1,), (2,), (3,)]
        right = [(2, "x")]
        job = self.make_join_job(
            HybridHashJoinOp([0], [0], kind="leftanti"), left, right)
        assert sorted(run(cluster, job).tuples) == [(1,), (3,)]

    def test_join_spills_under_budget(self, cluster):
        n = 2000
        left = [(i,) for i in range(n)]
        right = [(i, i) for i in range(n)]
        join_op = HybridHashJoinOp([0], [0], memory_frames=2)
        job = self.make_join_job(join_op, left, right)
        result = run(cluster, job)
        assert len(result.tuples) == n
        assert join_op.spill_rounds > 0
        assert result.profile.physical_writes > 0

    def test_nested_loop_join_non_equi(self, cluster):
        left = [(1,), (5,)]
        right = [(3,), (7,)]
        cond = FunctionCall("lt", [ColumnRef(0), ColumnRef(1)])
        job = self.make_join_job(
            NestedLoopJoinOp(cond), left, right,
            left_conn=OneToOneConnector(),
            right_conn=BroadcastConnector(),
        )
        got = sorted(run(cluster, job).tuples)
        assert got == [(1, 3), (1, 7), (5, 7)]


class TestGroupBy:
    def test_hash_group_by(self, cluster):
        data = [(i % 3, i) for i in range(30)]
        job = simple_job(
            InMemorySourceOp(data),
            (HashPartitionConnector([0]), HashGroupByOp(
                [0], [AggregateCall("count", ColumnRef(1)),
                      AggregateCall("sum", ColumnRef(1))])),
            (OneToOneConnector(), ResultWriterOp()),
        )
        got = sorted(run(cluster, job).tuples)
        assert got == [
            (0, 10, sum(range(0, 30, 3))),
            (1, 10, sum(range(1, 30, 3))),
            (2, 10, sum(range(2, 30, 3))),
        ]

    def test_hash_group_by_spills(self, cluster):
        data = [(i, 1) for i in range(3000)]   # all distinct keys
        gb = HashGroupByOp([0], [AggregateCall("count", ColumnRef(1))],
                           memory_frames=2)
        job = simple_job(
            InMemorySourceOp(data),
            (HashPartitionConnector([0]), gb),
            (OneToOneConnector(), ResultWriterOp()),
        )
        result = run(cluster, job)
        assert len(result.tuples) == 3000
        assert gb.spill_rounds > 0

    def test_preclustered_group_by(self, cluster):
        data = sorted([(i % 4, i) for i in range(20)])
        job = simple_job(
            InMemorySourceOp(data),
            (OneToOneConnector(), PreclusteredGroupByOp(
                [0], [AggregateCall("count", ColumnRef(1))])),
            (OneToOneConnector(), ResultWriterOp()),
        )
        got = sorted(run(cluster, job).tuples)
        assert got == [(0, 5), (1, 5), (2, 5), (3, 5)]

    def test_global_aggregate(self, cluster):
        data = [(i,) for i in range(10)]
        job = simple_job(
            InMemorySourceOp(data),
            (OneToOneConnector(), AggregateOp([
                AggregateCall("count", ColumnRef(0)),
                AggregateCall("avg", ColumnRef(0)),
            ])),
            (OneToOneConnector(), ResultWriterOp()),
        )
        assert run(cluster, job).tuples == [(10, 4.5)]


class TestDatasetIntegration:
    def test_scan_over_partitions(self, cluster):
        cluster.create_dataset("ds", ("id",))
        for i in range(40):
            cluster.insert_record("ds", {"id": i, "v": i * 2})
        job = simple_job(
            DatasetScanOp("ds"),
            (OneToOneConnector(), ProjectOp([0])),
            (OneToOneConnector(), ResultWriterOp()),
        )
        got = sorted(t[0] for t in run(cluster, job).tuples)
        assert got == list(range(40))

    def test_records_hash_distributed(self, cluster):
        cluster.create_dataset("ds", ("id",))
        for i in range(100):
            cluster.insert_record("ds", {"id": i})
        counts = []
        for p in range(cluster.num_partitions):
            node = cluster.node_of_partition(p)
            counts.append(node.get_partition("ds", p).count())
        assert sum(counts) == 100
        assert min(counts) > 5  # roughly balanced

    def test_profile_reports_simulated_time(self, cluster):
        cluster.create_dataset("ds", ("id",))
        for i in range(50):
            cluster.insert_record("ds", {"id": i})
        cluster.flush_dataset("ds")
        for node in cluster.nodes:
            node.cache.flush_all()
            for (dsname, p), storage in node.partitions.items():
                for comp in storage.primary.components:
                    node.cache.evict_file(comp.handle)
        job = simple_job(
            DatasetScanOp("ds"),
            (OneToOneConnector(), ResultWriterOp()),
        )
        result = run(cluster, job)
        assert result.profile.simulated_us > 0
        assert result.profile.physical_reads > 0
        assert "dataset-scan" in result.profile.describe()
