"""Unit tests for the runtime expression IR."""

import pytest

from repro.adm import MISSING, Multiset
from repro.common.errors import CompilationError
from repro.hyracks.expressions import (
    CaseExpr,
    CollectionConstructor,
    ColumnRef,
    Comprehension,
    Const,
    FunctionCall,
    ObjectConstructor,
    Quantified,
    VarRef,
    evaluate_predicate,
)


class TestBasics:
    def test_const_and_column(self):
        assert Const(42).evaluate(()) == 42
        assert ColumnRef(1).evaluate((10, 20)) == 20

    def test_var_ref_env(self):
        assert VarRef("x").evaluate((), {"x": 7}) == 7

    def test_unbound_var_raises(self):
        with pytest.raises(CompilationError, match="unbound"):
            VarRef("x").evaluate((), {})

    def test_function_call(self):
        e = FunctionCall("numeric_add", [ColumnRef(0), Const(5)])
        assert e.evaluate((10,)) == 15

    def test_bad_arity_at_construction(self):
        with pytest.raises(CompilationError):
            FunctionCall("abs", [Const(1), Const(2)])

    def test_unknown_propagation(self):
        e = FunctionCall("numeric_add", [ColumnRef(0), Const(1)])
        assert e.evaluate((MISSING,)) is MISSING
        assert e.evaluate((None,)) is None

    def test_columns_collection(self):
        e = FunctionCall("numeric_add", [
            ColumnRef(0),
            FunctionCall("numeric_multiply", [ColumnRef(2), Const(2)]),
        ])
        assert e.columns() == {0, 2}


class TestQuantified:
    def q(self, some=True):
        return Quantified(
            some, "f", ColumnRef(0),
            FunctionCall("gt", [VarRef("f"), Const(10)]),
        )

    def test_some_true(self):
        assert self.q().evaluate(([5, 20],)) is True

    def test_some_false(self):
        assert self.q().evaluate(([1, 2],)) is False

    def test_some_empty_is_false(self):
        assert self.q().evaluate(([],)) is False

    def test_every_empty_is_true(self):
        assert self.q(some=False).evaluate(([],)) is True

    def test_every(self):
        assert self.q(some=False).evaluate(([11, 12],)) is True
        assert self.q(some=False).evaluate(([11, 2],)) is False

    def test_non_collection_is_null(self):
        assert self.q().evaluate((42,)) is None

    def test_missing_propagates(self):
        assert self.q().evaluate((MISSING,)) is MISSING


class TestConstructors:
    def test_object_drops_missing(self):
        e = ObjectConstructor([
            (Const("a"), ColumnRef(0)),
            (Const("b"), ColumnRef(1)),
        ])
        assert e.evaluate((1, MISSING)) == {"a": 1}

    def test_object_null_name_skipped(self):
        e = ObjectConstructor([(Const(None), Const(1)),
                               (Const("k"), Const(2))])
        assert e.evaluate(()) == {"k": 2}

    def test_collection_multiset(self):
        e = CollectionConstructor([Const(1), Const(2)], multiset=True)
        out = e.evaluate(())
        assert isinstance(out, Multiset)

    def test_case(self):
        e = CaseExpr(
            [(FunctionCall("gt", [ColumnRef(0), Const(0)]), Const("pos"))],
            Const("nonpos"),
        )
        assert e.evaluate((5,)) == "pos"
        assert e.evaluate((-5,)) == "nonpos"
        assert e.evaluate((None,)) == "nonpos"   # unknown cond != True


class TestComprehension:
    def test_map_filter(self):
        e = Comprehension(
            "x", ColumnRef(0),
            FunctionCall("gt", [VarRef("x"), Const(1)]),
            FunctionCall("numeric_multiply", [VarRef("x"), Const(10)]),
        )
        assert e.evaluate(([1, 2, 3],)) == [20, 30]

    def test_nested_flattens(self):
        inner = Comprehension("y", VarRef("x"), None, VarRef("y"))
        outer = Comprehension("x", ColumnRef(0), None, inner)
        assert outer.evaluate(([[1, 2], [3]],)) == [1, 2, 3]

    def test_null_missing(self):
        e = Comprehension("x", ColumnRef(0), None, VarRef("x"))
        assert e.evaluate((None,)) is None
        assert e.evaluate((MISSING,)) is MISSING

    def test_scalar_source_iterates_once(self):
        e = Comprehension("x", ColumnRef(0), None, VarRef("x"))
        assert e.evaluate((7,)) == [7]


class TestPredicateSemantics:
    def test_only_true_passes(self):
        assert evaluate_predicate(Const(True), ())
        assert not evaluate_predicate(Const(False), ())
        assert not evaluate_predicate(Const(None), ())
        assert not evaluate_predicate(Const(MISSING), ())
        assert not evaluate_predicate(Const(1), ())
