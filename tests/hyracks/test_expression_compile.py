"""Per-job expression compilation (ISSUE-6).

Two invariants are pinned here:

* **Agreement.**  For any expression tree, the closure returned by
  ``compile_expr`` produces exactly what the tree-walking ``evaluate``
  produces — including MISSING/null propagation order (MISSING beats
  null), cross-type comparisons (incomparable -> SQL++ null), and
  three-valued logic.  A hypothesis sweep generates random trees over
  mixed-type tuples; structured nodes (quantifiers, CASE, constructors,
  comprehensions) get targeted cases.

* **Observability.**  Compilation happens once per job (``prepare_job``),
  surfaced by the ``expr.compile_*`` counters, and the job-wide key
  cache's reuse is visible via ``hyracks.batch.key_cache_hits``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm.values import MISSING, Multiset
from repro.common.config import ClusterConfig, ExecutorConfig, NodeConfig
from repro.hyracks import (
    ClusterController,
    ColumnRef,
    Const,
    FunctionCall,
    HashPartitionConnector,
    JobSpecification,
    OneToOneConnector,
)
from repro.hyracks.expressions import (
    CaseExpr,
    CollectionConstructor,
    Comprehension,
    ObjectConstructor,
    Quantified,
    VarRef,
    compile_expr,
    compile_predicate,
    evaluate_predicate,
    expr_size,
)
from repro.hyracks.keys import KeyCache, plain_key_bytes
from repro.hyracks.operators import (
    AssignOp,
    HybridHashJoinOp,
    InMemorySourceOp,
    ResultWriterOp,
    SelectOp,
)
from repro.observability.metrics import get_registry

WIDTH = 6

# mixed types on purpose: cross-type comparisons must agree too
VALUES = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50,
              allow_nan=False, allow_infinity=False),
    st.sampled_from(["", "a", "bb", "zz"]),
    st.booleans(),
    st.none(),
    st.just(MISSING),
    st.lists(st.integers(min_value=0, max_value=3), max_size=3),
)

TUPLES = st.lists(VALUES, min_size=WIDTH, max_size=WIDTH).map(tuple)

# total functions only: every registered impl here returns a value (no
# type errors) for arbitrary operands, so interpreter and closure can be
# compared on anything the generators produce
_BINARY = ["eq", "neq", "lt", "le", "gt", "ge", "deep_equal", "and", "or"]
_UNARY = ["not", "is_null", "is_missing", "is_unknown",
          "is_boolean", "is_number", "is_string"]

_LEAVES = st.one_of(
    VALUES.map(Const),
    st.integers(min_value=0, max_value=WIDTH - 1).map(ColumnRef),
)

EXPRS = st.recursive(
    _LEAVES,
    lambda child: st.one_of(
        st.builds(lambda f, a, b: FunctionCall(f, [a, b]),
                  st.sampled_from(_BINARY), child, child),
        st.builds(lambda f, a: FunctionCall(f, [a]),
                  st.sampled_from(_UNARY), child),
        st.builds(lambda c, t, d: CaseExpr([(c, t)], d),
                  child, child, child),
    ),
    max_leaves=12,
)


class TestCompiledAgreement:
    @settings(max_examples=200, deadline=None)
    @given(expr=EXPRS, tup=TUPLES)
    def test_compiled_matches_interpreted(self, expr, tup):
        fn = expr._compile()
        assert fn(tup) == expr.evaluate(tup)

    @settings(max_examples=100, deadline=None)
    @given(expr=EXPRS, tup=TUPLES)
    def test_compiled_predicate_matches(self, expr, tup):
        pred = compile_predicate(expr)
        assert pred(tup) == evaluate_predicate(expr, tup)

    def test_missing_beats_null_in_argument_propagation(self):
        # numeric_add doesn't handle unknowns: all args evaluate first,
        # then MISSING wins over null regardless of argument order
        for args in ([Const(None), Const(MISSING)],
                     [Const(MISSING), Const(None)]):
            expr = FunctionCall("numeric_add", args)
            assert expr.evaluate(()) is MISSING
            assert expr._compile()(()) is MISSING
        expr = FunctionCall("numeric_add", [Const(None), Const(1)])
        assert expr.evaluate(()) is None
        assert expr._compile()(()) is None

    def test_cross_type_comparison_is_null(self):
        expr = FunctionCall("eq", [Const(1), Const("a")])
        assert expr.evaluate(()) is None
        assert expr._compile()(()) is None

    def test_unknown_handling_functions_see_raw_unknowns(self):
        expr = FunctionCall("is_missing", [Const(MISSING)])
        assert expr.evaluate(()) is True
        assert expr._compile()(()) is True
        expr = FunctionCall("and", [Const(False), Const(MISSING)])
        assert expr.evaluate(()) is False
        assert expr._compile()(()) is False


class TestStructuredNodes:
    def _agree(self, expr, tup):
        assert expr._compile()(tup) == expr.evaluate(tup)

    def test_quantified(self):
        for some in (True, False):
            for coll in ([1, 2, 3], [], None, MISSING, 5):
                expr = Quantified(
                    some, "x", Const(coll),
                    FunctionCall("gt", [VarRef("x"), Const(1)]))
                assert expr._compile()((0,)) == expr.evaluate((0,))

    def test_object_constructor_drops_missing_fields(self):
        expr = ObjectConstructor([
            (Const("a"), Const(1)),
            (Const("b"), Const(MISSING)),       # dropped
            (Const(None), Const(2)),            # unknown name: dropped
        ])
        assert expr.evaluate(()) == {"a": 1}
        self._agree(expr, ())

    def test_collection_constructors(self):
        expr = CollectionConstructor([Const(1), ColumnRef(0)])
        self._agree(expr, (9,))
        bag = CollectionConstructor([Const(1), Const(1)], multiset=True)
        assert bag._compile()(()) == Multiset([1, 1])
        self._agree(bag, ())

    def test_comprehension_including_nested(self):
        inner = Comprehension(
            "y", VarRef("x"), None,
            FunctionCall("numeric_add", [VarRef("y"), Const(1)]))
        nested = Comprehension("x", ColumnRef(0), None, inner)
        tup = ([[1, 2], [3]],)
        assert nested.evaluate(tup) == [2, 3, 4]
        self._agree(nested, tup)
        filtered = Comprehension(
            "x", ColumnRef(0),
            FunctionCall("gt", [VarRef("x"), Const(1)]), VarRef("x"))
        self._agree(filtered, ([1, 2, 3],))
        for bad in (None, MISSING):
            self._agree(Comprehension("x", Const(bad), None, VarRef("x")),
                        ())


class TestKeyCache:
    def test_hits_and_misses(self):
        cache = KeyCache()
        tup = (1, "a", 2)
        kb = cache.key_bytes(tup, (0, 1))
        assert kb == plain_key_bytes(tup, (0, 1))
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.key_bytes(tup, (0, 1)) == kb
        assert cache.hits == 1
        # the hash memoizes in the same entry
        h1 = cache.key_hash(tup, (0, 1))
        h2 = cache.key_hash(tup, (0, 1))
        assert h1 == h2 and cache.hits == 3

    def test_distinct_columns_are_distinct_entries(self):
        cache = KeyCache()
        tup = (1, 2)
        assert cache.key_bytes(tup, (0,)) != cache.key_bytes(tup, (1,))

    def test_cap_still_computes(self):
        cache = KeyCache(max_entries=1)
        a, b = (1,), (2,)
        assert cache.key_bytes(a, None) == plain_key_bytes(a, None)
        assert cache.key_bytes(b, None) == plain_key_bytes(b, None)

    def test_flush_metrics(self):
        registry = get_registry()
        hits = registry.counter("hyracks.batch.key_cache_hits")
        misses = registry.counter("hyracks.batch.key_cache_misses")
        h0, m0 = hits.value, misses.value
        cache = KeyCache()
        cache.key_bytes((1,), None)
        cache.key_bytes((1,), None)
        cache.flush_metrics(registry)
        assert (hits.value - h0, misses.value - m0) == (1, 1)
        assert (cache.hits, cache.misses) == (0, 0)


def _config(**executor_kwargs):
    return ClusterConfig(
        num_nodes=1, partitions_per_node=2,
        node=NodeConfig(buffer_cache_pages=64),
        executor=ExecutorConfig(**executor_kwargs),
    )


def _join_job():
    job = JobSpecification()
    l_id = job.add_operator(InMemorySourceOp([(i % 10, i) for i in range(60)]))
    r_id = job.add_operator(InMemorySourceOp([(i, i * 2) for i in range(10)]))
    assign = job.add_operator(AssignOp([
        FunctionCall("numeric_add", [ColumnRef(0), Const(1)])]))
    select = job.add_operator(SelectOp(
        FunctionCall("gt", [ColumnRef(1), Const(5)])))
    join = job.add_operator(HybridHashJoinOp([0], [0]))
    sink = job.add_operator(ResultWriterOp())
    job.connect(OneToOneConnector(), l_id, assign)
    job.connect(OneToOneConnector(), assign, select)
    job.connect(HashPartitionConnector([0]), select, join, 0)
    job.connect(HashPartitionConnector([0]), r_id, join, 1)
    job.connect(OneToOneConnector(), join, sink)
    return job


class TestJobCompilation:
    def test_compiled_once_per_job_and_cache_hits_observable(self, tmp_path):
        registry = get_registry()
        jobs = registry.counter("expr.compile_jobs")
        exprs = registry.counter("expr.compile_exprs")
        nodes = registry.counter("expr.compile_nodes")
        cache_hits = registry.counter("hyracks.batch.key_cache_hits")
        j0, e0, n0, h0 = jobs.value, exprs.value, nodes.value, \
            cache_hits.value
        cluster = ClusterController(str(tmp_path / "c"), _config())
        try:
            result = cluster.run_job(_join_job())
        finally:
            cluster.close()
        # left keeps i = 6..59 (select on $1 > 5); every key matches
        assert len(result.tuples) == 54
        # one prepared job; its assign + select + (empty residual) compile
        # exactly once each, regardless of partition count
        assert jobs.value - j0 == 1
        assert exprs.value - e0 == 2
        # each expr is call(col, const): 3 IR nodes
        assert nodes.value - n0 == 2 * 3
        # the partitioning connectors canonicalized every routed tuple;
        # the join's build/probe reused those bytes through the job cache
        assert cache_hits.value - h0 > 0

    def test_toggle_off_compiles_nothing_same_results(self, tmp_path):
        registry = get_registry()
        jobs = registry.counter("expr.compile_jobs")
        j0 = jobs.value
        cluster = ClusterController(
            str(tmp_path / "off"), _config(compile_expressions=False))
        try:
            off = cluster.run_job(_join_job())
        finally:
            cluster.close()
        assert jobs.value == j0
        cluster = ClusterController(str(tmp_path / "on"), _config())
        try:
            on = cluster.run_job(_join_job())
        finally:
            cluster.close()
        assert list(off.tuples) == list(on.tuples)
        assert off.profile.simulated_us == on.profile.simulated_us

    def test_expr_size_counts_nodes(self):
        expr = FunctionCall("eq", [ColumnRef(0), Const(1)])
        assert expr_size(expr) == 3
        assert expr_size(Const(1)) == 1

    def test_compile_expr_bumps_counters(self):
        registry = get_registry()
        e0 = registry.counter("expr.compile_exprs").value
        n0 = registry.counter("expr.compile_nodes").value
        compile_expr(FunctionCall("eq", [ColumnRef(0), Const(1)]))
        assert registry.counter("expr.compile_exprs").value - e0 == 1
        assert registry.counter("expr.compile_nodes").value - n0 == 3
