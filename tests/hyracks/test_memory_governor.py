"""The node-level memory governor (ISSUE-5 tentpole).

Unit coverage of :class:`repro.hyracks.memory.MemoryGovernor` — grants,
reductions, reservation borrowing, admission queueing, crash reset — plus
cluster-level contention tests: concurrent spilled queries must all
complete with granted frames never exceeding ``query_memory_frames``,
and over-capacity admission must fail with a typed 35xx error, never a
hang.
"""

import threading
import time

import pytest

from repro.common.config import ClusterConfig, NodeConfig
from repro.hyracks import (
    ClusterController,
    ColumnRef,
    JobSpecification,
    MemoryGovernor,
    MergeConnector,
    OneToOneConnector,
)
from repro.hyracks.operators import (
    AggregateCall,
    ExternalSortOp,
    HashGroupByOp,
    InMemorySourceOp,
    ResultWriterOp,
)
from repro.hyracks.connectors import HashPartitionConnector
from repro.observability.metrics import get_registry
from repro.resilience import MemoryBudgetFault, MemoryPressureFault


class TestGrants:
    def test_uncontended_request_gets_everything(self):
        gov = MemoryGovernor(64)
        grant = gov.acquire(16, label="sort")
        assert grant.frames == 16 and gov.used == 16
        grant.release()
        assert gov.used == 0

    def test_contended_request_is_reduced_not_queued(self):
        gov = MemoryGovernor(10)
        first = gov.acquire(8)
        started = time.perf_counter()
        second = gov.acquire(8)
        assert time.perf_counter() - started < 0.5   # never waits
        assert second.frames == 2                     # reduced grant
        assert gov.used == 10
        first.release()
        second.release()

    def test_empty_pool_without_reservation_raises_typed(self):
        gov = MemoryGovernor(4)
        hog = gov.acquire(4)
        with pytest.raises(MemoryPressureFault) as e:
            gov.acquire(2)
        assert e.value.code == 3505
        hog.release()

    def test_release_is_idempotent(self):
        gov = MemoryGovernor(8)
        grant = gov.acquire(4)
        grant.release()
        grant.release()
        assert gov.used == 0

    def test_grant_is_a_context_manager(self):
        gov = MemoryGovernor(8)
        with gov.acquire(4) as grant:
            assert grant.frames == 4
        assert gov.used == 0

    def test_peak_tracks_high_water_mark(self):
        gov = MemoryGovernor(32, node_id=77)
        a = gov.acquire(10)
        b = gov.acquire(12)
        a.release()
        b.release()
        assert gov.peak == 22 and gov.used == 0
        assert get_registry().gauge(
            "memory.node77.peak_frames").value == 22


class TestReservations:
    def test_operator_borrows_reservation_floor_first(self):
        gov = MemoryGovernor(10)
        res = gov.admit(4)
        hog = gov.acquire(6)              # drains the free pool
        grant = gov.acquire(8, reservation=res)
        # nothing free, but the admission floor guarantees progress
        assert grant.frames == 4 and grant.borrowed == 4
        assert res.available == 0
        grant.release()
        assert res.available == 4          # floor restored, not leaked
        assert gov.used == 10              # hog + reservation still out
        hog.release()
        res.release()
        assert gov.used == 0

    def test_borrowed_frames_do_not_double_count(self):
        gov = MemoryGovernor(10)
        res = gov.admit(4)
        grant = gov.acquire(10, reservation=res)
        assert grant.borrowed == 4 and grant.frames == 10
        assert gov.used == 10              # 4 reserved + 6 extra, once
        grant.release()
        res.release()
        assert gov.used == 0


class TestAdmission:
    def test_over_capacity_rejected_immediately(self):
        gov = MemoryGovernor(16)
        started = time.perf_counter()
        with pytest.raises(MemoryBudgetFault) as e:
            gov.admit(17, timeout_ms=60_000)
        assert time.perf_counter() - started < 1.0    # no queueing
        assert e.value.code == 3506

    def test_capped_wait_expires_as_pressure_fault(self):
        gov = MemoryGovernor(8)
        hog = gov.admit(8)
        with pytest.raises(MemoryPressureFault) as e:
            gov.admit(4, timeout_ms=50)
        assert e.value.code == 3505
        hog.release()

    def test_queued_admission_completes_on_release(self):
        gov = MemoryGovernor(8)
        hog = gov.admit(8)
        admitted = []

        def waiter():
            admitted.append(gov.admit(4, timeout_ms=5000))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not admitted                # genuinely queued
        hog.release()
        thread.join(timeout=5)
        assert admitted and admitted[0].frames == 4
        admitted[0].release()
        assert gov.used == 0


class TestCrashReset:
    def test_stale_release_after_reset_is_dropped(self):
        gov = MemoryGovernor(16)
        grant = gov.acquire(8)
        gov.reset()
        assert gov.used == 0
        grant.release()                    # pre-crash lease: no-op
        assert gov.used == 0

    def test_stale_reservation_not_borrowed_after_reset(self):
        gov = MemoryGovernor(16)
        res = gov.admit(4)
        gov.reset()
        grant = gov.acquire(8, reservation=res)
        assert grant.borrowed == 0 and grant.frames == 8
        grant.release()
        assert gov.used == 0


def contended_config(**node_overrides):
    node = NodeConfig(buffer_cache_pages=128, memory_component_pages=64,
                      sort_memory_frames=32, group_memory_frames=32,
                      **node_overrides)
    return ClusterConfig(num_nodes=2, partitions_per_node=2,
                         frame_size=16, node=node)


def sort_job(data):
    job = JobSpecification()
    src = job.add_operator(InMemorySourceOp(data))
    sort = job.add_operator(ExternalSortOp([0]))
    sink = job.add_operator(ResultWriterOp())
    job.connect(HashPartitionConnector([0]), src, sort)
    job.connect(MergeConnector([0]), sort, sink)
    return job


class TestClusterContention:
    def test_concurrent_queries_stay_under_budget(self, tmp_path):
        """Three spilled sorts race; every grant fits under
        ``query_memory_frames``, at least one is reduced, and all three
        queries complete correctly (reduced grants mean more spilling,
        never failure).  Capacity 30 < admission floor + the sort's
        32-frame request, so reduction is guaranteed even before the
        concurrent admissions tighten the pool further."""
        registry = get_registry()
        registry.counter("memory.reduced_grants").reset()
        config = contended_config(query_memory_frames=30,
                                  query_admission_frames=4)
        cluster = ClusterController(str(tmp_path / "c"), config)
        try:
            datasets = [
                [(i * 7919 % 400, q) for i in range(400)]
                for q in range(3)
            ]
            results: dict = {}
            errors: list = []

            def run(q):
                try:
                    results[q] = cluster.run_job(sort_job(datasets[q]))
                except Exception as exc:  # lint: allow-swallow
                    errors.append(exc)

            threads = [threading.Thread(target=run, args=(q,))
                       for q in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for q in range(3):
                keys = [t[0] for t in results[q].tuples]
                assert keys == sorted(keys) and len(keys) == 400
            for node in cluster.nodes:
                assert node.memory.peak <= node.memory.capacity
                assert node.memory.used == 0      # everything released
                assert node.live_temp_files() == []
            assert registry.counter("memory.reduced_grants").value >= 1
        finally:
            cluster.close()

    def test_over_capacity_admission_fails_typed_not_hang(self, tmp_path):
        config = contended_config(query_memory_frames=8,
                                  query_admission_frames=16,
                                  admission_timeout_ms=100.0)
        cluster = ClusterController(str(tmp_path / "c"), config)
        try:
            started = time.perf_counter()
            with pytest.raises(MemoryBudgetFault) as e:
                cluster.run_job(sort_job([(i, i) for i in range(50)]))
            assert e.value.code == 3506
            # rejected immediately: no admission wait, no retry backoff
            assert time.perf_counter() - started < 2.0
            for node in cluster.nodes:
                assert node.memory.used == 0       # rollback complete
        finally:
            cluster.close()

    def test_saturated_pool_times_out_typed(self, tmp_path):
        config = contended_config(query_memory_frames=16,
                                  query_admission_frames=4,
                                  admission_timeout_ms=50.0)
        cluster = ClusterController(str(tmp_path / "c"), config)
        try:
            hogs = [node.memory.admit(16) for node in cluster.nodes]
            with pytest.raises(MemoryPressureFault) as e:
                cluster.run_job(sort_job([(i, i) for i in range(50)]))
            assert e.value.code == 3505
            for hog in hogs:
                hog.release()
            # pool drained: the same job is admitted and runs through
            result = cluster.run_job(sort_job([(i, i) for i in range(50)]))
            assert len(result.tuples) == 50
        finally:
            cluster.close()

    def test_governor_sized_to_defaults_changes_nothing(self, tmp_path):
        """Serial-equivalence: one query at a time, the governor sized
        ample vs. exactly tight, must produce identical observations."""
        data = [(i * 31 % 200, i) for i in range(300)]

        def observed(name, frames):
            config = contended_config(query_memory_frames=frames,
                                      query_admission_frames=4)
            cluster = ClusterController(str(tmp_path / name), config)
            try:
                job = JobSpecification()
                src = job.add_operator(InMemorySourceOp(data))
                grp = job.add_operator(HashGroupByOp(
                    [0], [AggregateCall("count", ColumnRef(1))],
                    memory_frames=2))
                sink = job.add_operator(ResultWriterOp())
                job.connect(HashPartitionConnector([0]), src, grp)
                job.connect(OneToOneConnector(), grp, sink)
                result = cluster.run_job(job)
                return (sorted(result.tuples),
                        result.profile.simulated_us)
            finally:
                cluster.close()

        # tight = admission floor + the operator's 2-frame request
        assert observed("ample", 4096) == observed("tight", 6)


class TestFeedBackpressure:
    def test_feed_batches_take_and_release_grants(self, tmp_path):
        from repro import connect
        from repro.feeds import FeedManager, GeneratorSource

        with connect(str(tmp_path / "db")) as db:
            db.execute("""
                CREATE TYPE T AS { id: int };
                CREATE DATASET D(T) PRIMARY KEY id;
            """)
            feeds = FeedManager(db)
            feeds.create_feed(
                "f", GeneratorSource({"id": i} for i in range(40)),
                batch_size=16)
            feeds.connect_feed("f", "D")
            feeds.start_feed("f")
            assert feeds.pump("f") == 40
            for node in db.cluster.nodes:
                assert node.memory.used == 0

    def test_saturated_node_backpressures_feed(self, tmp_path):
        from repro import connect
        from repro.common.config import ClusterConfig, NodeConfig
        from repro.feeds import FeedManager, GeneratorSource

        config = ClusterConfig(
            num_nodes=1, partitions_per_node=1,
            node=NodeConfig(query_memory_frames=8, feed_memory_frames=4,
                            admission_timeout_ms=50.0))
        with connect(str(tmp_path / "db"), config) as db:
            db.execute("""
                CREATE TYPE T AS { id: int };
                CREATE DATASET D(T) PRIMARY KEY id;
            """)
            feeds = FeedManager(db)
            feeds.create_feed(
                "f", GeneratorSource({"id": i} for i in range(10)),
                batch_size=10)
            feeds.connect_feed("f", "D")
            feeds.start_feed("f")
            hog = db.cluster.nodes[0].memory.admit(8)
            with pytest.raises(MemoryPressureFault):
                feeds.pump("f")
            # the staged batch survived the backpressure fault ...
            assert len(feeds.feeds["f"].pending) == 10
            hog.release()
            # ... and replays in full once the pool drains
            assert feeds.pump("f") == 10
            assert db.query("SELECT VALUE COUNT(*) FROM D d;") == [10]
