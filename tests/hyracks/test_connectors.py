"""Unit tests for the Hyracks connectors."""

import pytest

from repro.common.config import CostModel
from repro.hyracks.connectors import (
    BroadcastConnector,
    HashPartitionConnector,
    MergeConnector,
    OneToOneConnector,
    RangePartitionConnector,
)


class FakeCtx:
    def __init__(self):
        self.cost = CostModel()
        self.network = 0
        self.hashes = 0
        self.compares = 0

    def charge_network(self, n):
        self.network += n

    def charge_hash(self, n):
        self.hashes += n

    def charge_compare(self, n):
        self.compares += n


@pytest.fixture
def ctx():
    return FakeCtx()


class TestOneToOne:
    def test_same_width_passthrough(self, ctx):
        out = OneToOneConnector().route([[(1,)], [(2,)]], 2, ctx)
        assert out == [[(1,)], [(2,)]]
        assert ctx.network == 0

    def test_widen_singleton(self, ctx):
        out = OneToOneConnector().route([[(1,), (2,)]], 3, ctx)
        assert out[0] == [(1,), (2,)]
        assert out[1] == [] and out[2] == []

    def test_gather_to_one(self, ctx):
        out = OneToOneConnector().route([[(1,)], [(2,)], [(3,)]], 1, ctx)
        assert out == [[(1,), (2,), (3,)]]
        assert ctx.network == 2   # partitions 1 and 2 moved

    def test_incompatible_widths_rejected(self, ctx):
        with pytest.raises(ValueError):
            OneToOneConnector().route([[], [], []], 2, ctx)


class TestHashPartition:
    def test_deterministic_routing(self, ctx):
        conn = HashPartitionConnector([0])
        data = [[(i, "x") for i in range(50)]]
        out1 = conn.route(data, 4, ctx)
        out2 = conn.route(data, 4, FakeCtx())
        assert out1 == out2
        assert sum(len(p) for p in out1) == 50

    def test_same_key_same_partition(self, ctx):
        conn = HashPartitionConnector([0])
        out = conn.route([[(7, "a"), (7, "b"), (8, "c")]], 4, ctx)
        homes = [i for i, p in enumerate(out)
                 if any(t[0] == 7 for t in p)]
        assert len(homes) == 1

    def test_composite_keys(self, ctx):
        conn = HashPartitionConnector([0, 1])
        out = conn.route([[("a", 1, "x"), ("a", 1, "y"), ("b", 2, "z")]],
                         8, ctx)
        assert sum(len(p) for p in out) == 3


class TestBroadcast:
    def test_everyone_gets_everything(self, ctx):
        out = BroadcastConnector().route([[(1,)], [(2,)]], 3, ctx)
        assert all(sorted(p) == [(1,), (2,)] for p in out)
        assert ctx.network == 2 * 2   # 2 tuples x (3-1) extra copies


class TestMerge:
    def test_sorted_merge(self, ctx):
        conn = MergeConnector([0])
        out = conn.route([[(1,), (4,)], [(2,), (3,)]], 1, ctx)
        assert out == [[(1,), (2,), (3,), (4,)]]

    def test_descending_merge(self, ctx):
        conn = MergeConnector([0], descending=[True])
        out = conn.route([[(4,), (1,)], [(3,), (2,)]], 1, ctx)
        assert out == [[(4,), (3,), (2,), (1,)]]

    def test_requires_single_consumer(self, ctx):
        with pytest.raises(ValueError):
            MergeConnector([0]).route([[(1,)]], 2, ctx)


class TestRangePartition:
    def test_split_points(self, ctx):
        conn = RangePartitionConnector(0, [10, 20])
        out = conn.route([[(5,), (15,), (25,), (10,)]], 3, ctx)
        assert out[0] == [(5,), (10,)]     # <= 10
        assert out[1] == [(15,)]
        assert out[2] == [(25,)]
