"""Run-file lifecycle: spill files never outlive their consumers.

ISSUE-5's bugfix surface: the page codec round-trips (including an
exactly-full page and the oversized-tuple error), readers delete their
temp file on exhaustion and refuse iteration after release, the merge
schedule is pass-structured (``ceil(log_fan_in(runs))`` passes, not the
old quadratic prepend schedule), and after any spilled job — sort,
group-by, join, LIMIT early-abandon, serial or parallel, even with
faults injected mid-spill — zero temp files remain on any node.
"""

import pytest

from repro.adm.serializer import serialize_tuple
from repro.common.config import ClusterConfig, ExecutorConfig, NodeConfig
from repro.common.errors import StorageError
from repro.hyracks import ClusterController, ColumnRef, JobSpecification
from repro.hyracks.connectors import (
    HashPartitionConnector,
    MergeConnector,
    OneToOneConnector,
)
from repro.hyracks.operators import (
    AggregateCall,
    ExternalSortOp,
    HashGroupByOp,
    HybridHashJoinOp,
    InMemorySourceOp,
    LimitOp,
    ResultWriterOp,
)
from repro.hyracks.operators.base import TaskContext
from repro.hyracks.operators.sort import order_key
from repro.hyracks.profiler import PartitionCost
from repro.hyracks.runfile import RunFileWriter
from repro.observability.metrics import get_registry
from repro.resilience import (
    DiskIOFault,
    FaultInjector,
    FaultRule,
    FaultSchedule,
    NodeCrashFault,
)


def make_ctx(cluster):
    return TaskContext(cluster.nodes[0], cluster.config, PartitionCost())


def no_temp_files(cluster):
    return all(node.live_temp_files() == [] for node in cluster.nodes)


class TestPageCodec:
    def test_round_trip(self, single_node_cluster):
        ctx = make_ctx(single_node_cluster)
        data = [(i, f"val{i}", [i, i * 2]) for i in range(100)]
        writer = RunFileWriter(ctx, "rt")
        for tup in data:
            writer.write(tup)
        reader = writer.finish()
        assert list(reader) == data
        assert reader.num_tuples == 100

    def test_exactly_full_page(self, single_node_cluster):
        """Entries that fill a page to the last byte before the
        terminator word still round-trip on a single page."""
        cluster = single_node_cluster
        ctx = make_ctx(cluster)
        page_size = cluster.config.page_size

        def entry_len(s):
            return 4 + len(serialize_tuple((s,)))

        base = "abcd"
        e = entry_len(base)
        capacity = page_size - 4            # terminator word
        n = capacity // e
        rem = capacity - n * e
        data = [(base,)] * (n - 1)
        last = base + "x" * rem             # absorb the remainder
        assert entry_len(last) == e + rem   # serializer is byte-linear
        data.append((last,))

        writer = RunFileWriter(ctx, "full")
        for tup in data:
            writer.write(tup)
        reader = writer.finish()
        assert reader.num_pages == 1
        assert list(reader) == data

    def test_oversized_tuple_rejected(self, single_node_cluster):
        cluster = single_node_cluster
        ctx = make_ctx(cluster)
        writer = RunFileWriter(ctx, "big")
        with pytest.raises(StorageError, match="exceeds"):
            writer.write(("x" * cluster.config.page_size,))
        writer.finish().close()

    def test_empty_run_round_trips(self, single_node_cluster):
        ctx = make_ctx(single_node_cluster)
        reader = RunFileWriter(ctx, "empty").finish()
        assert list(reader) == []
        assert no_temp_files(single_node_cluster)


class TestReaderLifecycle:
    def test_exhaustion_deletes_the_file(self, single_node_cluster):
        cluster = single_node_cluster
        ctx = make_ctx(cluster)
        writer = RunFileWriter(ctx, "ex")
        for i in range(50):
            writer.write((i,))
        reader = writer.finish()
        assert cluster.nodes[0].live_temp_files()   # exists while live
        assert len(list(reader)) == 50
        assert reader.released
        assert no_temp_files(cluster)

    def test_close_is_idempotent(self, single_node_cluster):
        ctx = make_ctx(single_node_cluster)
        reader = RunFileWriter(ctx, "idem").finish()
        reader.close()
        reader.close()
        assert no_temp_files(single_node_cluster)

    def test_iterating_after_release_raises(self, single_node_cluster):
        ctx = make_ctx(single_node_cluster)
        writer = RunFileWriter(ctx, "late")
        writer.write((1,))
        reader = writer.finish()
        reader.close()
        with pytest.raises(StorageError, match="after release"):
            list(reader)

    def test_release_mid_read_raises_on_next_page(self,
                                                  single_node_cluster):
        cluster = single_node_cluster
        ctx = make_ctx(cluster)
        writer = RunFileWriter(ctx, "mid")
        for i in range(2000):               # guaranteed multi-page
            writer.write((i, f"payload{i}"))
        reader = writer.finish()
        assert reader.num_pages > 1
        it = iter(reader)
        next(it)
        reader.close()
        with pytest.raises(StorageError, match="released mid-read"):
            for _ in it:
                pass

    def test_partial_consumer_leaks_nothing_when_closed(
            self, single_node_cluster):
        cluster = single_node_cluster
        ctx = make_ctx(cluster)
        writer = RunFileWriter(ctx, "part")
        for i in range(100):
            writer.write((i,))
        reader = writer.finish()
        it = iter(reader)
        next(it)
        reader.close()                      # LIMIT-style early abandon
        assert no_temp_files(cluster)


class TestMergeSchedule:
    def _spilled_sort(self, cluster, data, memory_frames):
        op = ExternalSortOp([0], memory_frames=memory_frames)
        job = JobSpecification()
        src = job.add_operator(InMemorySourceOp(data))
        sort = job.add_operator(op)
        sink = job.add_operator(ResultWriterOp())
        job.connect(OneToOneConnector(), src, sort)
        job.connect(OneToOneConnector(), sort, sink)
        result = cluster.run_job(job)
        return op, result

    def test_pass_count_is_logarithmic(self, single_node_cluster):
        """budget 32 tuples, 500 input tuples -> 16 runs at fan-in 2:
        exactly ceil(log2(16)) = 4 passes, not the 15 chained merges
        the old prepend schedule degenerated into."""
        before = get_registry().counter("sort.merge_passes").value
        data = [(i * 7919 % 500, i) for i in range(500)]
        op, result = self._spilled_sort(single_node_cluster, data,
                                        memory_frames=2)
        runs = op.last_run_counts[-1]
        assert runs == 16
        expected = ExternalSortOp.expected_merge_passes(runs, fan_in=2)
        assert op.last_merge_passes == expected == 4
        assert get_registry().counter("sort.merge_passes").value \
            == before + expected
        keys = [t[0] for t in result.tuples]
        assert keys == sorted(keys) and len(keys) == 500
        assert no_temp_files(single_node_cluster)

    def test_single_pass_when_runs_fit_fan_in(self, single_node_cluster):
        data = [(i * 31 % 97, i) for i in range(150)]
        op, result = self._spilled_sort(single_node_cluster, data,
                                        memory_frames=4)   # fan-in 4
        runs = op.last_run_counts[-1]
        assert 1 < runs <= 4
        assert op.last_merge_passes == 1
        assert no_temp_files(single_node_cluster)

    def test_expected_merge_passes_math(self):
        expected = ExternalSortOp.expected_merge_passes
        assert expected(1, 4) == 1
        assert expected(4, 4) == 1
        assert expected(5, 4) == 2
        assert expected(16, 4) == 2        # exact power: no float slop
        assert expected(17, 4) == 3
        assert expected(1024, 2) == 10

    def test_merge_iter_early_abandon_releases_runs(
            self, single_node_cluster):
        cluster = single_node_cluster
        ctx = make_ctx(cluster)
        op = ExternalSortOp([0])
        runs = []
        for r in range(3):
            writer = RunFileWriter(ctx, f"run{r}")
            for i in range(50):
                writer.write((r * 50 + i,))
            runs.append(writer.finish())
        key = lambda t: order_key(t, [0], [False])  # noqa: E731
        it = op._merge_iter(ctx, runs, key)
        assert next(it) == (0,)
        it.close()                          # LIMIT abandons the merge
        assert no_temp_files(cluster)


def spill_config(executor=None, injector=None):
    return ClusterConfig(
        num_nodes=2, partitions_per_node=2, frame_size=16,
        node=NodeConfig(buffer_cache_pages=128, memory_component_pages=64,
                        sort_memory_frames=2, join_memory_frames=2,
                        group_memory_frames=2),
        executor=executor or ExecutorConfig(),
    )


EXECUTORS = [
    ExecutorConfig(mode="serial", pipelining=False),
    ExecutorConfig(mode="parallel", pipelining=True),
]


class TestEndToEndZeroLeaks:
    @pytest.mark.parametrize("executor", EXECUTORS,
                             ids=["serial", "parallel"])
    def test_spilled_sort_leaves_no_temp_files(self, tmp_path, executor):
        cluster = ClusterController(str(tmp_path / "c"),
                                    spill_config(executor))
        try:
            job = JobSpecification()
            src = job.add_operator(InMemorySourceOp(
                [(i * 7919 % 600, i) for i in range(600)]))
            sort = job.add_operator(ExternalSortOp([0]))
            sink = job.add_operator(ResultWriterOp())
            job.connect(HashPartitionConnector([0]), src, sort)
            job.connect(MergeConnector([0]), sort, sink)
            result = cluster.run_job(job)
            assert len(result.tuples) == 600
            assert no_temp_files(cluster)
        finally:
            cluster.close()

    @pytest.mark.parametrize("executor", EXECUTORS,
                             ids=["serial", "parallel"])
    def test_spilled_sort_with_limit(self, tmp_path, executor):
        cluster = ClusterController(str(tmp_path / "c"),
                                    spill_config(executor))
        try:
            job = JobSpecification()
            src = job.add_operator(InMemorySourceOp(
                [(i * 13 % 400, i) for i in range(400)]))
            sort = job.add_operator(ExternalSortOp([0]))
            limit = job.add_operator(LimitOp(5))
            sink = job.add_operator(ResultWriterOp())
            job.connect(HashPartitionConnector([0]), src, sort)
            job.connect(MergeConnector([0]), sort, limit)
            job.connect(OneToOneConnector(), limit, sink)
            result = cluster.run_job(job)
            assert len(result.tuples) == 5
            assert no_temp_files(cluster)
        finally:
            cluster.close()

    def test_spilled_group_by_leaves_no_temp_files(self, tmp_path):
        cluster = ClusterController(str(tmp_path / "c"), spill_config())
        try:
            job = JobSpecification()
            src = job.add_operator(InMemorySourceOp(
                [(i % 200, i) for i in range(800)]))
            grp = job.add_operator(HashGroupByOp(
                [0], [AggregateCall("count", ColumnRef(1))]))
            sink = job.add_operator(ResultWriterOp())
            job.connect(HashPartitionConnector([0]), src, grp)
            job.connect(OneToOneConnector(), grp, sink)
            result = cluster.run_job(job)
            assert len(result.tuples) == 200
            assert no_temp_files(cluster)
        finally:
            cluster.close()

    def test_spilled_join_leaves_no_temp_files(self, tmp_path):
        cluster = ClusterController(str(tmp_path / "c"), spill_config())
        try:
            job = JobSpecification()
            left = job.add_operator(InMemorySourceOp(
                [(i % 100, i) for i in range(500)]))
            right = job.add_operator(InMemorySourceOp(
                [(i, i * 10) for i in range(100)]))
            join = job.add_operator(HybridHashJoinOp([0], [0]))
            sink = job.add_operator(ResultWriterOp())
            job.connect(HashPartitionConnector([0]), left, join, 0)
            job.connect(HashPartitionConnector([0]), right, join, 1)
            job.connect(OneToOneConnector(), join, sink)
            result = cluster.run_job(job)
            assert len(result.tuples) == 500
            assert no_temp_files(cluster)
        finally:
            cluster.close()


class TestFaultedSpills:
    """A fault striking mid-spill abandons run files; the retry loop's
    between-attempt purge (plus crash cleanup) must leave zero temp
    files once the job succeeds."""

    def _sort_job(self, n=600):
        job = JobSpecification()
        src = job.add_operator(InMemorySourceOp(
            [(i * 7919 % n, i) for i in range(n)]))
        sort = job.add_operator(ExternalSortOp([0]))
        sink = job.add_operator(ResultWriterOp())
        job.connect(HashPartitionConnector([0]), src, sort)
        job.connect(MergeConnector([0]), sort, sink)
        return job

    def test_disk_fault_mid_spill_purges_run_files(self, tmp_path):
        injector = FaultInjector(FaultSchedule(rules=[
            # the only disk.write_page hits in this job are run-file
            # pages, so hit 5 lands mid-spill with runs already on disk
            FaultRule(site="disk.write_page", fault=DiskIOFault,
                      at_hit=5),
        ]))
        cluster = ClusterController(str(tmp_path / "c"), spill_config(),
                                    injector=injector)
        try:
            before = get_registry().snapshot()
            result = cluster.run_job(self._sort_job())
            delta = get_registry().delta(before)
            assert delta.get("resilience.job_retries") == 1
            assert delta.get("hyracks.temp_files_purged", 0) >= 1
            assert len(result.tuples) == 600
            assert no_temp_files(cluster)
        finally:
            injector.disarm()
            cluster.close()

    def test_node_crash_mid_spill_leaves_no_temp_files(self, tmp_path):
        injector = FaultInjector(FaultSchedule(rules=[
            FaultRule(site="disk.write_page", fault=NodeCrashFault,
                      at_hit=5, node=0),
        ]))
        cluster = ClusterController(str(tmp_path / "c"), spill_config(),
                                    injector=injector)
        try:
            result = cluster.run_job(self._sort_job())
            assert len(result.tuples) == 600
            assert no_temp_files(cluster)
            for node in cluster.nodes:
                assert node.memory.used == 0
        finally:
            injector.disarm()
            cluster.close()
