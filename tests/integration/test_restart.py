"""Instance restart: the database comes back from its directory.

The catalog is data (Metadata.* datasets), so restart is bootstrapped
recovery — system datasets first, then the user datasets they describe,
with WAL replay restoring whatever only lived in memory components.
"""

import pytest

from repro import connect
from repro.common.errors import DuplicateKeyError


def build(path):
    db = connect(path)
    db.execute("""
        CREATE TYPE UserType AS {
            id: int, alias: string, age: int
        };
        CREATE TYPE MsgType AS CLOSED {
            messageId: int, text: string
        };
        CREATE DATASET Users(UserType) PRIMARY KEY id;
        CREATE DATASET Msgs(MsgType) PRIMARY KEY messageId;
        CREATE INDEX byAlias ON Users(alias);
        CREATE INDEX byText ON Msgs(text) TYPE KEYWORD;
    """)
    for i in range(40):
        db.execute(
            f'INSERT INTO Users ({{"id": {i}, "alias": "u{i:02d}", '
            f'"age": {20 + i % 7}}});'
        )
    db.execute('INSERT INTO Msgs ({"messageId": 1, '
               '"text": "restart survivability matters"});')
    return db


class TestRestart:
    def test_data_survives_restart(self, tmp_path):
        path = str(tmp_path / "db")
        db = build(path)
        db.flush_dataset("Users")            # some data durable...
        db.execute('INSERT INTO Users ({"id": 100, "alias": "late", '
                   '"age": 1});')            # ...some only in the WAL
        db.close()

        db2 = connect(path)
        assert db2.query("SELECT VALUE COUNT(*) FROM Users u;") == [41]
        assert db2.query(
            "SELECT VALUE u.alias FROM Users u WHERE u.id = 100;"
        ) == ["late"]
        db2.close()

    def test_catalog_survives(self, tmp_path):
        path = str(tmp_path / "db")
        build(path).close()
        db2 = connect(path)
        datasets = db2.query("""
            SELECT VALUE d.DatasetName FROM Metadata.Dataset d
            WHERE d.DataverseName = 'Default';
        """)
        assert sorted(datasets) == ["Msgs", "Users"]
        indexes = db2.query(
            "SELECT VALUE i.IndexName FROM Metadata.`Index` i;")
        assert sorted(indexes) == ["byAlias", "byText"]
        db2.close()

    def test_secondary_indexes_work_after_restart(self, tmp_path):
        path = str(tmp_path / "db")
        build(path).close()
        db2 = connect(path)
        result = db2.execute(
            "SELECT VALUE u.id FROM Users u WHERE u.alias = 'u07';")
        assert result.rows == [7]
        assert "index-search" in result.plan
        kw = db2.query("SELECT VALUE m.messageId FROM Msgs m "
                       "WHERE ftcontains(m.text, 'survivability');")
        assert kw == [1]
        db2.close()

    def test_type_validation_survives(self, tmp_path):
        from repro.common.errors import TypeError_

        path = str(tmp_path / "db")
        build(path).close()
        db2 = connect(path)
        with pytest.raises(TypeError_):     # Msgs is CLOSED
            db2.execute('INSERT INTO Msgs ({"messageId": 9, '
                        '"text": "x", "extra": 1});')
        db2.close()

    def test_pk_uniqueness_survives(self, tmp_path):
        path = str(tmp_path / "db")
        build(path).close()
        db2 = connect(path)
        with pytest.raises(DuplicateKeyError):
            db2.execute('INSERT INTO Users ({"id": 5, "alias": "dup", '
                        '"age": 0});')
        db2.close()

    def test_writes_after_restart_and_second_restart(self, tmp_path):
        path = str(tmp_path / "db")
        build(path).close()
        db2 = connect(path)
        db2.execute('INSERT INTO Users ({"id": 200, "alias": "gen2", '
                    '"age": 2});')
        db2.execute("DELETE FROM Users u WHERE u.id = 0;")
        db2.close()
        db3 = connect(path)
        assert db3.query("SELECT VALUE COUNT(*) FROM Users u;") == [40]
        assert db3.query("SELECT VALUE u.alias FROM Users u "
                         "WHERE u.id = 200;") == ["gen2"]
        assert db3.query("SELECT VALUE u FROM Users u "
                         "WHERE u.id = 0;") == []
        db3.close()

    def test_dataverses_survive(self, tmp_path):
        path = str(tmp_path / "db")
        db = connect(path)
        db.execute("""
            CREATE DATAVERSE lab; USE lab;
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            INSERT INTO D ({"id": 7, "note": "in lab"});
        """)
        db.close()
        db2 = connect(path)
        assert db2.query("SELECT VALUE d.note FROM lab.D d;") == ["in lab"]
        db2.close()

    def test_external_dataset_survives(self, tmp_path):
        data = tmp_path / "ext.adm"
        data.write_text('{"id": 1, "v": "external"}\n')
        path = str(tmp_path / "db")
        db = connect(path)
        db.execute(f"""
            CREATE TYPE ET AS {{ id: int }};
            CREATE EXTERNAL DATASET Ext(ET) USING localfs
            (("path"="{data}"), ("format"="adm"));
        """)
        db.close()
        db2 = connect(path)
        assert db2.query("SELECT VALUE e.v FROM Ext e;") == ["external"]
        db2.close()

    def test_config_persisted(self, tmp_path):
        from repro import ClusterConfig

        path = str(tmp_path / "db")
        db = connect(path, ClusterConfig(num_nodes=3,
                                         partitions_per_node=1))
        db.close()
        db2 = connect(path)   # config comes from instance.json
        assert db2.cluster.config.num_nodes == 3
        assert db2.cluster.num_partitions == 3
        db2.close()
