"""Array (UNNEST) secondary indexes end to end.

The contract under test is *byte identity*: a query answered through an
array index must return exactly what the forced-scan plan returns — per
element multiplicity, duplicate elements, MISSING arrays and all — while
EXPLAIN shows the access method actually changed.  Data is the TPC-CH
order/orderline shape from :mod:`repro.datagen.tpcch`.
"""

import pytest

from repro import connect
from repro.common.errors import InvalidIndexDDLError
from repro.datagen.tpcch import TPCCHGenerator
from repro.observability.metrics import get_registry

SCHEMA = """
    CREATE TYPE OrderType AS { o_id: int };
    CREATE DATASET Orders(OrderType) PRIMARY KEY o_id;
    CREATE INDEX oDelivery ON Orders (UNNEST o_orderline
                                      SELECT ol_delivery_d);
"""


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    instance = connect(str(tmp_path_factory.mktemp("arr") / "db"))
    instance.execute(SCHEMA)
    gen = TPCCHGenerator(seed=7, scale=1)
    for rec in gen.orders():
        instance.cluster.insert_record("Default.Orders", rec)
    instance.flush_dataset("Orders")
    yield instance
    instance.close()


def both_ways(db, query):
    """(index-path rows, scan-path rows, index actually used?)."""
    via_index = db.query(query)
    via_scan = db.query(query, enable_index_access=False)
    methods = db.explain(query).access_methods
    used = any(m["method"] == "array-index" for m in methods)
    return via_index, via_scan, used


class TestEquivalence:
    CUTOFF = TPCCHGenerator().delivery_day_cutoff(0.25)

    QUERIES = [
        ("SELECT VALUE [o.o_id, ol.ol_number] FROM Orders o "
         "UNNEST o.o_orderline ol WHERE ol.ol_delivery_d < {c} "
         "ORDER BY o.o_id, ol.ol_number;"),
        ("SELECT VALUE o.o_id FROM Orders o UNNEST o.o_orderline ol "
         "WHERE ol.ol_delivery_d = {c} ORDER BY o.o_id;"),
        ("SELECT VALUE COUNT(*) FROM Orders o "
         "UNNEST o.o_orderline ol WHERE ol.ol_delivery_d >= {c};"),
        ("SELECT VALUE [o.o_id, ol.ol_amount] FROM Orders o "
         "UNNEST o.o_orderline ol "
         "WHERE ol.ol_delivery_d > {c} AND ol.ol_delivery_d < {c2} "
         "AND ol.ol_quantity > 5 ORDER BY o.o_id, ol.ol_number;"),
    ]

    @pytest.mark.parametrize("template", QUERIES)
    def test_index_path_matches_scan_path(self, db, template):
        query = template.format(c=self.CUTOFF, c2=self.CUTOFF + 400)
        via_index, via_scan, used = both_ways(db, query)
        assert used, "query should be answered through the array index"
        assert via_index == via_scan

    def test_duplicate_elements_keep_multiplicity(self, db):
        # a record matching through two identical elements emits two
        # tuples on both paths (the residual Unnest re-derives it)
        db.execute('INSERT INTO Orders ({"o_id": 90001, "o_orderline": ['
                   '{"ol_number": 1, "ol_delivery_d": 11, "ol_quantity": 1,'
                   ' "ol_amount": 1.0, "ol_i_id": 1},'
                   '{"ol_number": 2, "ol_delivery_d": 11, "ol_quantity": 1,'
                   ' "ol_amount": 1.0, "ol_i_id": 1}]});')
        q = ("SELECT VALUE ol.ol_number FROM Orders o "
             "UNNEST o.o_orderline ol WHERE o.o_id = 90001 AND "
             "ol.ol_delivery_d = 11 ORDER BY ol.ol_number;")
        via_index, via_scan, _ = both_ways(db, q)
        assert via_index == via_scan == [1, 2]

    def test_unindexed_field_predicate_stays_on_scan(self, db):
        q = ("SELECT VALUE o.o_id FROM Orders o "
             "UNNEST o.o_orderline ol WHERE ol.ol_quantity = 3 "
             "ORDER BY o.o_id;")
        via_index, via_scan, used = both_ways(db, q)
        assert not used
        assert via_index == via_scan


class TestMaintenance:
    def test_dml_keeps_index_and_scan_identical(self, tmp_path):
        inst = connect(str(tmp_path / "db"))
        inst.execute(SCHEMA)
        inst.execute('INSERT INTO Orders ({"o_id": 1, "o_orderline": ['
                     '{"ol_number": 1, "ol_delivery_d": 10}, '
                     '{"ol_number": 2, "ol_delivery_d": 20}]});')
        inst.execute('INSERT INTO Orders ({"o_id": 2, "o_orderline": []});')
        inst.execute('INSERT INTO Orders ({"o_id": 3});')
        # shrink order 1's array, then delete order 3
        inst.execute('UPSERT INTO Orders ({"o_id": 1, "o_orderline": ['
                     '{"ol_number": 1, "ol_delivery_d": 20}]});')
        inst.execute("DELETE FROM Orders o WHERE o.o_id = 3;")
        q = ("SELECT VALUE [o.o_id, ol.ol_number] FROM Orders o "
             "UNNEST o.o_orderline ol WHERE ol.ol_delivery_d < 50 "
             "ORDER BY o.o_id, ol.ol_number;")
        via_index, via_scan, used = both_ways(inst, q)
        assert used
        assert via_index == via_scan == [[1, 1]]
        # the shrunk-away day-10 entry must be gone from the index path
        q10 = ("SELECT VALUE o.o_id FROM Orders o "
               "UNNEST o.o_orderline ol WHERE ol.ol_delivery_d = 10;")
        assert inst.query(q10) == inst.query(
            q10, enable_index_access=False) == []
        inst.close()


class TestObservability:
    def test_explain_names_index_and_counters_move(self, db):
        q = ("SELECT VALUE o.o_id FROM Orders o "
             "UNNEST o.o_orderline ol WHERE ol.ol_delivery_d < 1100;")
        methods = db.explain(q).access_methods
        assert {"dataset": "Default.Orders", "method": "array-index",
                "index": "oDelivery"} in methods
        reg = get_registry()
        lookups = reg.counter("index.array.lookups").value
        postings = reg.counter("index.array.postings").value
        db.query(q)
        assert reg.counter("index.array.lookups").value > lookups
        assert reg.counter("index.array.postings").value >= postings

    def test_forced_scan_explain_shows_primary_scan(self, db):
        q = ("SELECT VALUE o.o_id FROM Orders o "
             "UNNEST o.o_orderline ol WHERE ol.ol_delivery_d < 1100;")
        methods = db.explain(q, enable_index_access=False).access_methods
        assert methods == [{"dataset": "Default.Orders",
                            "method": "primary-scan"}]


class TestDDL:
    def test_array_index_rejects_non_btree_type(self, tmp_path):
        inst = connect(str(tmp_path / "db"))
        inst.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
        """)
        with pytest.raises(InvalidIndexDDLError):
            inst.execute(
                "CREATE INDEX bad ON D(UNNEST tags) TYPE KEYWORD;")
        inst.close()

    def test_aql_ddl_parity(self, tmp_path):
        inst = connect(str(tmp_path / "db"))
        inst.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            CREATE INDEX byDay ON D(UNNEST lines SELECT day);
        """, language="aql")
        (spec,) = inst.metadata.secondary_indexes("D")
        assert spec.kind == "array" and spec.array_path == "lines"
        inst.close()


class TestRestart:
    def test_array_index_survives_restart(self, tmp_path):
        path = str(tmp_path / "db")
        inst = connect(path)
        inst.execute(SCHEMA)
        gen = TPCCHGenerator(seed=11, scale=1)
        for rec in gen.orders():
            inst.cluster.insert_record("Default.Orders", rec)
        inst.flush_dataset("Orders")
        q = ("SELECT VALUE [o.o_id, ol.ol_number] FROM Orders o "
             "UNNEST o.o_orderline ol WHERE ol.ol_delivery_d < 1500 "
             "ORDER BY o.o_id, ol.ol_number;")
        expected = inst.query(q)
        inst.close()

        inst2 = connect(path)
        via_index, via_scan, used = both_ways(inst2, q)
        assert used, "recovered catalog should still expose the index"
        assert via_index == via_scan == expected
        inst2.close()
