"""Every example script must run clean end to end (they are the README's
promises)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they do"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "social_analytics.py",
        "multitasking_study.py",
        "big_active_data.py",
        "htap_analytics.py",
        "continuous_ingestion.py",
    } <= set(EXAMPLES)
