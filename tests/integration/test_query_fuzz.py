"""Metamorphic query fuzzing: plans must not change answers.

Two oracles over randomly generated predicates:
* index consistency — the same query with the access-method rules on and
  off returns the same rows;
* partition-count consistency — 1-partition and 4-partition clusters
  return the same rows.

This is the "common ground for evaluating alternative approaches" the
paper argues real systems provide (§V-A): the optimizer can only cheat if
a different plan can produce a different answer, and these tests hunt
exactly that.
"""

import random

import pytest

from repro import ClusterConfig, connect
from repro.datagen import GleambookGenerator

FIELDS = ["age", "score", "city"]
CITIES = ["irvine", "riverside", "sandiego", "la", "sf"]


def seed_data(db, n=120):
    db.execute("""
        CREATE TYPE RecType AS { id: int, age: int, score: double,
                                 city: string };
        CREATE DATASET Recs(RecType) PRIMARY KEY id;
        CREATE INDEX byAge ON Recs(age);
        CREATE INDEX byScore ON Recs(score);
        CREATE INDEX byCity ON Recs(city);
    """)
    rng = random.Random(99)
    for i in range(n):
        db.cluster.insert_record("Default.Recs", {
            "id": i,
            "age": rng.randint(18, 60),
            "score": round(rng.uniform(0, 10), 2),
            "city": rng.choice(CITIES),
        })
    db.flush_dataset("Recs")


def random_predicate(rng):
    field = rng.choice(FIELDS + ["id"])
    if field == "city":
        op = rng.choice(["=", "!=", ">=", "<"])
        value = f"'{rng.choice(CITIES)}'"
    elif field == "score":
        op = rng.choice(["<", "<=", ">", ">=", "="])
        value = f"{rng.uniform(0, 10):.2f}"
    else:
        op = rng.choice(["=", "<", "<=", ">", ">=", "!="])
        value = str(rng.randint(0, 70))
    return f"r.{field} {op} {value}"


def random_query(rng):
    conjuncts = [random_predicate(rng)
                 for _ in range(rng.randint(1, 3))]
    where = " AND ".join(conjuncts)
    return (f"SELECT VALUE r.id FROM Recs r WHERE {where};")


class TestIndexConsistency:
    def test_100_random_queries(self, tmp_path):
        db = connect(str(tmp_path / "db"))
        seed_data(db)
        rng = random.Random(7)
        for trial in range(100):
            query = random_query(rng)
            with_index = sorted(db.query(query))
            without = sorted(db.query(query,
                                      enable_index_access=False))
            assert with_index == without, f"trial {trial}: {query}"
        db.close()

    def test_range_boundaries(self, tmp_path):
        """Exhaustive inclusive/exclusive boundary matrix on one field."""
        db = connect(str(tmp_path / "db"))
        seed_data(db, n=60)
        for lo_op in (">", ">="):
            for hi_op in ("<", "<="):
                q = (f"SELECT VALUE r.id FROM Recs r "
                     f"WHERE r.age {lo_op} 30 AND r.age {hi_op} 40;")
                a = sorted(db.query(q))
                b = sorted(db.query(q, enable_index_access=False))
                assert a == b, q
        db.close()


class TestPartitionConsistency:
    def test_same_rows_at_any_width(self, tmp_path):
        dbs = []
        for nodes in (1, 2):
            db = connect(
                str(tmp_path / f"db{nodes}"),
                ClusterConfig(num_nodes=nodes, partitions_per_node=2),
            )
            seed_data(db)
            dbs.append(db)
        rng = random.Random(13)
        queries = [random_query(rng) for _ in range(30)]
        queries += [
            "SELECT age, COUNT(*) AS n FROM Recs r GROUP BY r.age AS age"
            " ORDER BY age;",
            "SELECT VALUE r.city FROM Recs r ORDER BY r.score DESC"
            " LIMIT 7;",
            "SELECT DISTINCT VALUE r.city FROM Recs r;",
        ]
        for query in queries:
            results = [sorted(db.query(query), key=repr) for db in dbs]
            assert results[0] == results[1], query
        for db in dbs:
            db.close()
