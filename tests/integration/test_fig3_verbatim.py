"""The paper's Figure 3, as a regression test, character for character.

If this file fails, the reproduction no longer speaks the paper's
language.  Covers: (a) open types with multisets/lists/optional fields +
all four index kinds, (b) a CLOSED type + localfs external dataset,
(c) the WITH/LET/quantified/GROUP BY analysis query, (d) UPSERT.
"""

import pytest

from repro import connect
from repro.adm import ADate, ADateTime, Multiset

FIG_3A = """
CREATE TYPE GleambookUserType AS {
   id: int,
   alias: string,
   name: string,
   userSince: datetime,
   friendIds: {{ int }},
   employment: [EmploymentType]
};

CREATE TYPE GleambookMessageType AS {
   messageId: int,
   authorId: int,
   inResponseTo: int?,
   senderLocation: point?,
   message: string
};

CREATE TYPE EmploymentType AS {
   organizationName: string,
   startDate: date,
   endDate: date?
};

CREATE DATASET GleambookUsers(GleambookUserType)
PRIMARY KEY id;

CREATE DATASET GleambookMessages(GleambookMessageType)
PRIMARY KEY messageId;

CREATE INDEX gbUserSinceIdx ON GleambookUsers(userSince);
CREATE INDEX gbAuthorIdx ON GleambookMessages(authorId)
   TYPE BTREE;

CREATE INDEX gbSenderLocIndex ON
            GleambookMessages(senderLocation)
   TYPE RTREE;

CREATE INDEX gbMessageIdx ON GleambookMessages(message)
   TYPE KEYWORD;
"""

FIG_3B = """
CREATE TYPE AccessLogType AS CLOSED {{
    ip: string,
    time: string,
    user: string,
    verb: string,
    `path`: string,
    stat: int32,
    size: int32
}};

CREATE EXTERNAL DATASET AccessLog(AccessLogType)
USING localfs
(("path"="{path}"),
 ("format"="delimited-text"), ("delimiter"="|"));
"""

FIG_3C = """
WITH endTime AS current_datetime(),
     startTime AS endTime - duration("P30D")
SELECT nf AS numFriends, COUNT(user) AS activeUsers
FROM GleambookUsers user
LET nf = COLL_COUNT(user.friendIds)
WHERE SOME logrec IN AccessLog SATISFIES
          user.alias = logrec.user
 AND datetime(logrec.time) >=
startTime
 AND datetime(logrec.time) <=
endTime
GROUP BY nf;
"""

FIG_3D = """
UPSERT INTO GleambookUsers (
   {"id":667,
    "alias":"dfrump",
    "name":"DonaldFrump",
    "nickname":"Frumpkin",
    "userSince":datetime("2017-01-01T00:00:00"),
    "friendIds":{{}},
    "employment":[{"organizationName":"USA",
    "startDate":date("2017-01-20")}],
    "gender":"M"}
);
"""


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    instance.set_session_now("2019-04-08T00:00:00")
    log_path = tmp_path / "accesses.txt"
    log_path.write_text(
        "1.2.3.4|2019-04-01T10:00:00|dfrump|GET|/home|200|1024\n"
        "5.6.7.8|2019-04-02T11:00:00|ann1|GET|/feed|200|2048\n"
        "9.9.9.9|2018-06-01T00:00:00|bob2|GET|/old|404|100\n"
    )
    instance.execute(FIG_3A)
    instance.execute(FIG_3B.format(path=log_path))
    yield instance
    instance.close()


def seed_users(db):
    db.execute("""
        UPSERT INTO GleambookUsers (
          {"id":1, "alias":"ann1", "name":"Ann One",
           "userSince":datetime("2015-05-05T00:00:00"),
           "friendIds":{{2, 3}}, "employment":[]});
        UPSERT INTO GleambookUsers (
          {"id":2, "alias":"bob2", "name":"Bob Two",
           "userSince":datetime("2016-06-06T00:00:00"),
           "friendIds":{{1}}, "employment":[]});
    """)


class TestFig3A:
    def test_all_entities_created(self, db):
        datasets = db.query("""
            SELECT VALUE d.DatasetName FROM Metadata.Dataset d
            WHERE d.DataverseName = 'Default';
        """)
        assert set(datasets) >= {"GleambookUsers", "GleambookMessages",
                                 "AccessLog"}
        indexes = db.query("""
            SELECT VALUE i.IndexName FROM Metadata.`Index` i;
        """)
        assert set(indexes) == {"gbUserSinceIdx", "gbAuthorIdx",
                                "gbSenderLocIndex", "gbMessageIdx"}

    def test_optional_field_semantics(self, db):
        db.execute("""
            UPSERT INTO GleambookMessages (
              {"messageId": 1, "authorId": 1,
               "message": "no location, no reply-to"});
        """)
        rows = db.query(
            "SELECT VALUE m FROM GleambookMessages m;")
        assert "senderLocation" not in rows[0]

    def test_closed_type_rejects_extras(self, db):
        from repro.common.errors import TypeError_

        db.execute("""
            CREATE TYPE Probe AS CLOSED { id: int };
            CREATE DATASET ProbeDs(Probe) PRIMARY KEY id;
        """)
        with pytest.raises(TypeError_):
            db.execute('INSERT INTO ProbeDs ({"id": 1, "extra": true});')


class TestFig3D:
    def test_upsert_record_contents(self, db):
        db.execute(FIG_3D)
        row = db.query("SELECT VALUE u FROM GleambookUsers u "
                       "WHERE u.id = 667;")[0]
        assert row["alias"] == "dfrump"
        assert row["nickname"] == "Frumpkin"         # open field kept
        assert row["gender"] == "M"
        assert row["friendIds"] == Multiset()
        assert row["userSince"] == ADateTime.parse("2017-01-01T00:00:00")
        assert row["employment"][0]["startDate"] == \
            ADate.parse("2017-01-20")

    def test_upsert_twice_replaces(self, db):
        db.execute(FIG_3D)
        db.execute(FIG_3D.replace('"gender":"M"', '"gender":"X"'))
        rows = db.query("SELECT VALUE u.gender FROM GleambookUsers u "
                        "WHERE u.id = 667;")
        assert rows == ["X"]


class TestFig3C:
    def test_active_users_by_friend_count(self, db):
        seed_users(db)
        db.execute(FIG_3D)
        rows = db.query(FIG_3C)
        by_nf = {r["numFriends"]: r["activeUsers"] for r in rows}
        # dfrump (0 friends) and ann1 (2 friends) have recent accesses;
        # bob2's access is older than 30 days
        assert by_nf == {0: 1, 2: 1}

    def test_quantifier_becomes_semijoin(self, db):
        seed_users(db)
        plan = db.execute(FIG_3C, explain=True).plan
        assert "join[leftsemi]" in plan
        assert "external-scan" in plan

    def test_with_clause_constant_folded(self, db):
        seed_users(db)
        plan = db.execute(FIG_3C, explain=True).plan
        assert "current_datetime" not in plan       # folded to a constant
        assert "datetime(" in plan                  # the folded values
