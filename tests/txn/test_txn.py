"""Tests for the WAL, locks, entity transactions, and crash recovery."""

import pytest

from repro.adm import serialize
from repro.common.errors import TransactionError
from repro.storage import BufferCache, FileManager, IODevice
from repro.storage.dataset_storage import PartitionStorage, SecondaryIndexSpec
from repro.txn import (
    LockManager,
    LogManager,
    LogRecord,
    LogRecordType,
    RecoveryManager,
    TransactionManager,
    TransactionalPartition,
)


@pytest.fixture
def log(tmp_path):
    manager = LogManager(str(tmp_path / "txnlog" / "log"))
    yield manager
    manager.close()


class TestLogManager:
    def test_append_and_scan(self, log):
        r1 = LogRecord(LogRecordType.UPDATE, txn_id=1, dataset="ds",
                       partition=0, key=(1,), value=serialize({"id": 1}))
        r2 = LogRecord(LogRecordType.ENTITY_COMMIT, txn_id=1, dataset="ds",
                       key=(1,))
        lsn1 = log.append(r1)
        lsn2 = log.append(r2)
        assert lsn1 < lsn2
        records = list(log.scan())
        assert [r.type for r in records] == [LogRecordType.UPDATE,
                                             LogRecordType.ENTITY_COMMIT]
        assert records[0].key == (1,)
        assert records[0].lsn == lsn1

    def test_scan_from_lsn(self, log):
        log.append(LogRecord(LogRecordType.UPDATE, txn_id=1, key=(1,)))
        lsn2 = log.append(LogRecord(LogRecordType.UPDATE, txn_id=2, key=(2,)))
        got = list(log.scan(lsn2))
        assert len(got) == 1 and got[0].txn_id == 2

    def test_delete_flag_roundtrip(self, log):
        log.append(LogRecord(LogRecordType.UPDATE, txn_id=1, key=(9,),
                             is_delete=True))
        assert list(log.scan())[0].is_delete is True

    def test_checkpoint_low_water(self, log):
        lsn = log.append(LogRecord(LogRecordType.UPDATE, txn_id=1, key=(1,)))
        log.checkpoint(lsn)
        assert log.last_checkpoint_lsn() == lsn

    def test_checkpoint_beyond_tail_rejected(self, log):
        with pytest.raises(TransactionError):
            log.checkpoint(10**9)

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "log2")
        log = LogManager(path)
        log.append(LogRecord(LogRecordType.UPDATE, txn_id=7, key=(1,)))
        log.flush()
        log.close()
        log2 = LogManager(path)
        assert [r.txn_id for r in log2.scan()] == [7]
        log2.append(LogRecord(LogRecordType.UPDATE, txn_id=8, key=(2,)))
        assert [r.txn_id for r in log2.scan()] == [7, 8]
        log2.close()

    def test_torn_tail_ignored(self, tmp_path):
        path = str(tmp_path / "log3")
        log = LogManager(path)
        log.append(LogRecord(LogRecordType.UPDATE, txn_id=1, key=(1,)))
        log.flush()
        log.close()
        with open(path, "ab") as f:
            f.write(b"\x00\x00\x01\x00partial")  # truncated record
        log2 = LogManager(path)
        assert len(list(log2.scan())) == 1
        log2.close()


class TestLockManager:
    def test_acquire_release(self):
        lm = LockManager()
        lm.acquire(1, "ds", 0, (1,))
        assert lm.holds(1, "ds", 0, (1,))
        lm.release_all(1)
        assert not lm.holds(1, "ds", 0, (1,))
        assert lm.active_locks == 0

    def test_conflict_raises(self):
        lm = LockManager()
        lm.acquire(1, "ds", 0, (1,))
        with pytest.raises(TransactionError, match="conflict"):
            lm.acquire(2, "ds", 0, (1,))

    def test_reentrant(self):
        lm = LockManager()
        lm.acquire(1, "ds", 0, (1,))
        lm.acquire(1, "ds", 0, (1,))  # same txn, fine

    def test_different_keys_no_conflict(self):
        lm = LockManager()
        lm.acquire(1, "ds", 0, (1,))
        lm.acquire(2, "ds", 0, (2,))
        lm.acquire(3, "ds", 1, (1,))  # other partition
        assert lm.active_locks == 3


@pytest.fixture
def stack(tmp_path):
    fm = FileManager([IODevice(0, str(tmp_path / "dev"))], page_size=2048)
    cache = BufferCache(fm, num_pages=128)
    log = LogManager(str(tmp_path / "log" / "wal"))
    yield fm, cache, log
    log.close()
    fm.close()


def make_partition(fm, cache, budget=1 << 20):
    return PartitionStorage(fm, cache, "ds", 0, ("id",),
                            memory_budget_bytes=budget)


class TestEntityTransactions:
    def test_ops_produce_update_and_commit(self, stack):
        fm, cache, log = stack
        txn = TransactionManager(log)
        tp = TransactionalPartition(make_partition(fm, cache), txn)
        tp.insert({"id": 1, "x": "a"})
        tp.upsert({"id": 1, "x": "b"})
        tp.delete((1,))
        types = [r.type for r in log.scan()]
        assert types == [LogRecordType.UPDATE, LogRecordType.ENTITY_COMMIT] * 3
        assert txn.commits == 3

    def test_locks_released_after_op(self, stack):
        fm, cache, log = stack
        txn = TransactionManager(log)
        tp = TransactionalPartition(make_partition(fm, cache), txn)
        tp.insert({"id": 1})
        assert txn.locks.active_locks == 0

    def test_failed_op_releases_lock(self, stack):
        from repro.common.errors import DuplicateKeyError

        fm, cache, log = stack
        txn = TransactionManager(log)
        tp = TransactionalPartition(make_partition(fm, cache), txn)
        tp.insert({"id": 1})
        with pytest.raises(DuplicateKeyError):
            tp.insert({"id": 1})
        assert txn.locks.active_locks == 0


class TestTransactionStateMachine:
    def test_abort_is_idempotent(self, stack):
        from repro.txn import TxnState

        _, _, log = stack
        manager = TransactionManager(log)
        txn = manager.begin()
        assert txn.abort("ds", 0, (1,)) is True
        assert txn.state is TxnState.ABORTED
        assert txn.abort("ds", 0, (1,)) is False   # no-op, not an error
        assert manager.aborts == 1                 # counted once

    def test_abort_after_commit_is_noop(self, stack):
        from repro.txn import TxnState

        _, _, log = stack
        manager = TransactionManager(log)
        txn = manager.begin()
        txn.commit("ds", 0, (1,))
        assert txn.abort("ds", 0, (1,)) is False
        assert txn.state is TxnState.COMMITTED     # commit stands
        assert manager.aborts == 0

    def test_commit_after_abort_raises(self, stack):
        from repro.common.errors import TransactionStateError

        _, _, log = stack
        manager = TransactionManager(log)
        txn = manager.begin()
        txn.abort("ds", 0, (1,))
        with pytest.raises(TransactionStateError, match="aborted"):
            txn.commit("ds", 0, (1,))

    def test_double_commit_raises(self, stack):
        from repro.common.errors import TransactionStateError

        _, _, log = stack
        manager = TransactionManager(log)
        txn = manager.begin()
        txn.commit("ds", 0, (1,))
        with pytest.raises(TransactionStateError, match="committed"):
            txn.commit("ds", 0, (1,))

    def test_failed_op_writes_abort_record(self, stack):
        from repro.common.errors import DuplicateKeyError

        fm, cache, log = stack
        txn = TransactionManager(log)
        tp = TransactionalPartition(make_partition(fm, cache), txn)
        tp.insert({"id": 1})
        with pytest.raises(DuplicateKeyError):
            tp.insert({"id": 1})
        types = [r.type for r in log.scan()]
        assert types == [LogRecordType.UPDATE, LogRecordType.ENTITY_COMMIT,
                         LogRecordType.UPDATE, LogRecordType.ABORT]
        assert txn.aborts == 1

    def test_recovery_skips_aborted_transactions(self, stack, tmp_path):
        fm, cache, log = stack
        txn = TransactionManager(log)
        tp = TransactionalPartition(make_partition(fm, cache), txn)
        tp.insert({"id": 1, "x": "keep"})
        # a hand-rolled aborted transaction whose UPDATE is in the log
        bad = txn.begin()
        log.append(LogRecord(LogRecordType.UPDATE, txn_id=bad.txn_id,
                             dataset="ds", partition=0, key=(2,),
                             value=serialize({"id": 2, "x": "drop"})))
        bad.abort("ds", 0, (2,))
        log.flush()
        ps, recovery, fm2 = crash_and_recover(tmp_path, fm, cache, log)
        assert recovery.replayed == 1
        assert ps.get((1,)) is not None
        assert ps.get((2,)) is None
        fm2.close()


def crash_and_recover(tmp_path, fm, cache, log, *, with_secondary=False):
    """Simulate a crash: drop all in-memory state, reopen from disk +
    manifest, replay the WAL."""
    from repro.storage.lsm import LSMBTree

    fm.close()
    fm2 = FileManager([IODevice(0, str(tmp_path / "dev"))], page_size=2048)
    cache2 = BufferCache(fm2, num_pages=128)
    ps = PartitionStorage.__new__(PartitionStorage)
    ps.fm, ps.cache = fm2, cache2
    ps.dataset_name, ps.partition_id = "ds", 0
    ps.pk_fields = ("id",)
    ps.memory_budget_bytes = 1 << 20
    ps.merge_policy = None
    ps.device_hint = 0
    ps.validator = None
    ps.primary = LSMBTree.recover(fm2, cache2, "ds/p0/primary",
                                  memory_budget_bytes=1 << 20)
    ps.secondaries = {}
    if with_secondary:
        spec = SecondaryIndexSpec("byX", "btree", ("x",))
        ps.secondaries[spec.name] = (
            spec,
            LSMBTree.recover(fm2, cache2, "ds/p0/idx_byX",
                             memory_budget_bytes=1 << 20),
        )
    recovery = RecoveryManager(log)
    recovery.recover({("ds", 0): ps})
    return ps, recovery, fm2


class TestRecovery:
    def test_unflushed_committed_data_survives(self, stack, tmp_path):
        fm, cache, log = stack
        txn = TransactionManager(log)
        tp = TransactionalPartition(make_partition(fm, cache), txn)
        for i in range(20):
            tp.insert({"id": i, "x": f"v{i}"})
        # no flush: everything lives in the memory component only
        ps, recovery, fm2 = crash_and_recover(tmp_path, fm, cache, log)
        assert recovery.replayed == 20
        assert ps.get((7,))["x"] == "v7"
        assert ps.count() == 20
        fm2.close()

    def test_flushed_data_not_replayed(self, stack, tmp_path):
        fm, cache, log = stack
        txn = TransactionManager(log)
        storage = make_partition(fm, cache)
        tp = TransactionalPartition(storage, txn)
        for i in range(10):
            tp.insert({"id": i, "x": "flushed"})
        storage.flush_all()
        for i in range(10, 15):
            tp.insert({"id": i, "x": "unflushed"})
        ps, recovery, fm2 = crash_and_recover(tmp_path, fm, cache, log)
        assert recovery.replayed == 5
        assert ps.count() == 15
        fm2.close()

    def test_deletes_replayed(self, stack, tmp_path):
        fm, cache, log = stack
        txn = TransactionManager(log)
        storage = make_partition(fm, cache)
        tp = TransactionalPartition(storage, txn)
        for i in range(5):
            tp.insert({"id": i})
        storage.flush_all()
        tp.delete((2,))
        ps, recovery, fm2 = crash_and_recover(tmp_path, fm, cache, log)
        assert ps.get((2,)) is None
        assert ps.count() == 4
        fm2.close()

    def test_secondary_rebuilt_by_replay(self, stack, tmp_path):
        fm, cache, log = stack
        txn = TransactionManager(log)
        storage = make_partition(fm, cache)
        storage.create_secondary(SecondaryIndexSpec("byX", "btree", ("x",)))
        tp = TransactionalPartition(storage, txn)
        tp.insert({"id": 1, "x": "alpha"})
        ps, recovery, fm2 = crash_and_recover(tmp_path, fm, cache, log,
                                              with_secondary=True)
        assert list(ps.search_btree("byX", ("alpha",), ("alpha",))) == [(1,)]
        fm2.close()

    def test_checkpoint_limits_scan(self, stack, tmp_path):
        fm, cache, log = stack
        txn = TransactionManager(log)
        storage = make_partition(fm, cache)
        tp = TransactionalPartition(storage, txn)
        for i in range(10):
            tp.insert({"id": i})
        storage.flush_all()
        txn.checkpoint([storage])
        tp.insert({"id": 100})
        ps, recovery, fm2 = crash_and_recover(tmp_path, fm, cache, log)
        assert recovery.replayed == 1
        assert ps.count() == 11
        fm2.close()

    def test_replay_idempotent_under_rerun(self, stack, tmp_path):
        fm, cache, log = stack
        txn = TransactionManager(log)
        tp = TransactionalPartition(make_partition(fm, cache), txn)
        for i in range(5):
            tp.insert({"id": i, "x": "v"})
        ps, recovery, fm2 = crash_and_recover(tmp_path, fm, cache, log)
        # run recovery again on the same partition: nothing double-applied
        RecoveryManager(log).recover({("ds", 0): ps})
        assert ps.count() == 5
        fm2.close()
