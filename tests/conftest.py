"""Suite-wide configuration.

Plan verification (repro.analysis) is ON for the whole tier-1 suite:
every plan any test compiles — and every rewrite-rule firing along the
way — doubles as a verifier test case.  Tests that need the production
default (off) use the ``plan_verification(False)`` context manager.
"""

from repro.analysis import set_plan_verification

set_plan_verification(True)
