"""Tests for the builtin function library."""

import pytest

from repro.adm import (
    MISSING,
    ADate,
    ADateTime,
    ADuration,
    AInterval,
    APoint,
    ARectangle,
    ATime,
    Multiset,
    TypeTag,
)
from repro.common.errors import IdentifierError, TypeError_
from repro.functions import call, is_aggregate, resolve_aggregate
from repro.functions.aggregates import AggregateState


class TestRegistry:
    def test_unknown_function(self):
        with pytest.raises(IdentifierError):
            call("frobnicate", 1)

    def test_case_and_dash_insensitive(self):
        assert call("COLL-COUNT", [1, 2]) == 2
        assert call("coll_count", [1, 2]) == 2

    def test_wrong_arity(self):
        with pytest.raises(IdentifierError, match="arguments"):
            call("abs", 1, 2)

    def test_is_aggregate(self):
        assert is_aggregate("count")
        assert not is_aggregate("abs")


class TestUnknownPropagation:
    def test_missing_propagates(self):
        assert call("numeric_add", MISSING, 1) is MISSING

    def test_null_propagates(self):
        assert call("numeric_add", None, 1) is None

    def test_missing_beats_null(self):
        assert call("numeric_add", MISSING, None) is MISSING

    def test_is_missing_sees_raw(self):
        assert call("is_missing", MISSING) is True
        assert call("is_null", None) is True
        assert call("is_unknown", MISSING) is True

    def test_if_missing_or_null(self):
        assert call("if_missing_or_null", MISSING, None, 42) == 42


class TestArithmetic:
    def test_add(self):
        assert call("numeric_add", 2, 3) == 5

    def test_divide_by_zero_is_null(self):
        assert call("numeric_divide", 1, 0) is None
        assert call("numeric_mod", 1, 0) is None

    def test_idiv(self):
        assert call("numeric_idiv", 7, 2) == 3

    def test_type_error_on_string(self):
        with pytest.raises(TypeError_):
            call("numeric_multiply", "a", 2)

    def test_round_floor_ceiling(self):
        assert call("floor", 2.7) == 2
        assert call("ceiling", 2.1) == 3
        assert call("abs", -5) == 5

    def test_sqrt_negative_null(self):
        assert call("sqrt", -1) is None


class TestComparison:
    def test_numeric_cross_type(self):
        assert call("eq", 1, 1.0) is True
        assert call("lt", 1, 1.5) is True

    def test_incomparable_types_yield_null(self):
        assert call("eq", 1, "one") is None
        assert call("lt", "a", 2) is None

    def test_string_compare(self):
        assert call("le", "apple", "banana") is True

    def test_between(self):
        assert call("between", 5, 1, 10) is True
        assert call("between", 11, 1, 10) is False


class TestLogic:
    def test_and_truth_table(self):
        assert call("and", True, True) is True
        assert call("and", True, False) is False
        assert call("and", False, None) is False   # false dominates
        assert call("and", True, None) is None

    def test_or_truth_table(self):
        assert call("or", False, True) is True
        assert call("or", None, True) is True      # true dominates
        assert call("or", False, None) is None

    def test_not(self):
        assert call("not", True) is False
        assert call("not", None) is None


class TestStrings:
    def test_basics(self):
        assert call("lower", "ABC") == "abc"
        assert call("string_length", "héllo") == 5
        assert call("substr", "hello", 1, 3) == "ell"
        assert call("contains", "asterixdb", "rix") is True

    def test_substr_negative(self):
        assert call("substr", "hello", -2) == "lo"

    def test_like(self):
        assert call("like", "GleambookUsers", "Gleam%") is True
        assert call("like", "abc", "a_c") is True
        assert call("like", "abc", "a_d") is False

    def test_concat(self):
        assert call("string_concat", "a", "b", "c") == "abc"

    def test_edit_distance(self):
        assert call("edit_distance", "asterix", "asterisk") == 2
        assert call("edit_distance", "", "abc") == 3


class TestCollections:
    def test_coll_count_multiset(self):
        assert call("coll_count", Multiset([1, 2, 3])) == 3

    def test_coll_sum_skips_nulls(self):
        assert call("coll_sum", [1, None, 2]) == 3
        assert call("coll_sum", []) is None

    def test_min_max(self):
        assert call("coll_min", [3, 1, 2]) == 1
        assert call("coll_max", ["a", "c", "b"]) == "c"

    def test_get_item(self):
        assert call("get_item", [10, 20], 1) == 20
        assert call("get_item", [10, 20], 5) is MISSING
        assert call("get_item", [10, 20], -1) == 20

    def test_range(self):
        assert call("range", 1, 4) == [1, 2, 3, 4]

    def test_array_functions(self):
        assert call("array_distinct", [1, 1.0, 2]) == [1, 2]
        assert call("array_contains", [1, 2], 2) is True
        assert call("array_flatten", [[1], 2, [3]]) == [1, 2, 3]


class TestObjects:
    def test_field_access(self):
        assert call("field_access", {"a": 1}, "a") == 1
        assert call("field_access", {"a": 1}, "b") is MISSING
        assert call("field_access", "notobj", "a") is MISSING

    def test_object_merge_remove(self):
        assert call("object_merge", {"a": 1}, {"b": 2}) == {"a": 1, "b": 2}
        assert call("object_remove", {"a": 1, "b": 2}, "a") == {"b": 2}


class TestTemporal:
    def test_constructors(self):
        assert call("datetime", "2017-01-01T00:00:00") == \
            ADateTime.parse("2017-01-01T00:00:00")
        assert call("date", "2017-01-20") == ADate.parse("2017-01-20")
        assert call("duration", "P30D") == ADuration.parse("P30D")

    def test_current_datetime_deterministic(self):
        assert call("current_datetime") == call("current_datetime")

    def test_fig3c_arithmetic(self):
        """endTime - duration('P30D'), the paper's Fig. 3(c) WITH clause."""
        end = call("current_datetime")
        start = call("numeric_subtract", end, ADuration.parse("P30D"))
        assert isinstance(start, ADateTime)
        assert end.millis - start.millis == 30 * 86_400_000

    def test_extractors(self):
        dt = ADateTime.parse("2017-06-15T13:45:30")
        assert call("get_year", dt) == 2017
        assert call("get_month", dt) == 6
        assert call("get_day", dt) == 15
        assert call("get_hour", dt) == 13
        assert call("get_minute", dt) == 45
        assert call("get_second", dt) == 30

    def test_interval(self):
        iv = call("interval", ADateTime(100), ADateTime(200))
        assert call("get_interval_start", iv) == ADateTime(100)
        assert call("get_interval_end", iv) == ADateTime(200)
        assert call("duration_from_interval", iv) == ADuration(0, 100)

    def test_interval_bin(self):
        hour = ADuration.parse("PT1H")
        anchor = ADateTime.parse("2014-01-01T00:00:00")
        dt = ADateTime.parse("2014-01-01T10:30:00")
        bin_ = call("interval_bin", dt, anchor, hour)
        assert call("get_interval_start", bin_) == \
            ADateTime.parse("2014-01-01T10:00:00")

    def test_overlap_bins_spanning_activity(self):
        """The §V-D case: an activity from 10:30 to 12:15 spans 3 bins."""
        hour = ADuration.parse("PT1H")
        anchor = ADateTime.parse("2014-01-01T00:00:00")
        activity = call(
            "interval",
            ADateTime.parse("2014-01-01T10:30:00"),
            ADateTime.parse("2014-01-01T12:15:00"),
        )
        bins = call("overlap_bins", activity, anchor, hour)
        assert len(bins) == 3
        # the overlap with the middle bin is the whole hour
        mid = call("get_overlapping_interval", activity, bins[1])
        assert call("duration_from_interval", mid) == \
            ADuration.parse("PT1H")
        # the first bin gets only 30 minutes
        first = call("get_overlapping_interval", activity, bins[0])
        assert call("duration_from_interval", first) == \
            ADuration.parse("PT30M")

    def test_overlap_bins_within_one_bin(self):
        hour = ADuration.parse("PT1H")
        anchor = ADateTime(0)
        activity = call("interval", ADateTime(100), ADateTime(200))
        assert len(call("overlap_bins", activity, anchor, hour)) == 1


class TestSpatial:
    def test_point_accessors(self):
        p = call("create_point", 1.5, 2.5)
        assert call("get_x", p) == 1.5
        assert call("get_y", p) == 2.5

    def test_distance(self):
        assert call("spatial_distance", APoint(0, 0), APoint(3, 4)) == 5.0

    def test_intersect_point_rect(self):
        rect = ARectangle(APoint(0, 0), APoint(10, 10))
        assert call("spatial_intersect", APoint(5, 5), rect) is True
        assert call("spatial_intersect", rect, APoint(50, 5)) is False

    def test_intersect_unsupported(self):
        with pytest.raises(TypeError_):
            call("spatial_intersect", 1, 2)


class TestAggregates:
    def run_agg(self, name, values):
        state = AggregateState(resolve_aggregate(name))
        for v in values:
            state.step(v)
        return state.finish()

    def test_count_skips_unknowns(self):
        assert self.run_agg("count", [1, None, MISSING, 2]) == 2

    def test_count_star_counts_all(self):
        assert self.run_agg("count_star", [1, None, MISSING]) == 3

    def test_sum_empty_is_null(self):
        assert self.run_agg("sum", []) is None
        assert self.run_agg("sum", [None]) is None

    def test_avg(self):
        assert self.run_agg("avg", [1, 2, None, 3]) == 2.0

    def test_min_max_mixed(self):
        assert self.run_agg("min", [3, 1.5, 2]) == 1.5
        assert self.run_agg("max", [3, 1.5, 2]) == 3

    def test_listify_keeps_unknowns(self):
        assert self.run_agg("listify", [1, None, 2]) == [1, None, 2]
