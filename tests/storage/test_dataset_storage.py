"""Tests for PartitionStorage: primary + secondary maintenance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import ADateTime, APoint, ARectangle
from repro.common.errors import (
    DuplicateKeyError,
    InvalidArgumentError,
    MetadataError,
)
from repro.storage import BufferCache, FileManager, IODevice
from repro.storage.dataset_storage import (
    PartitionStorage,
    SecondaryIndexSpec,
    field_value,
)


def user(i, alias=None, since=0, loc=None):
    rec = {
        "id": i,
        "alias": alias or f"user{i}",
        "userSince": ADateTime(since),
        "message": f"hello from user {i}",
    }
    if loc is not None:
        rec["senderLocation"] = APoint(*loc)
    return rec


@pytest.fixture
def part(fm, cache):
    return PartitionStorage(fm, cache, "GleambookUsers", 0, ("id",),
                            memory_budget_bytes=1 << 20)


class TestFieldValue:
    def test_simple(self):
        assert field_value({"a": 1}, "a") == 1

    def test_dotted(self):
        assert field_value({"a": {"b": 2}}, "a.b") == 2

    def test_missing(self):
        from repro.adm import MISSING

        assert field_value({"a": 1}, "b") is MISSING
        assert field_value({"a": 1}, "a.b") is MISSING


class TestPrimary:
    def test_insert_get(self, part):
        part.insert(user(1))
        assert part.get((1,))["alias"] == "user1"
        assert part.get((2,)) is None

    def test_insert_duplicate(self, part):
        part.insert(user(1))
        with pytest.raises(DuplicateKeyError):
            part.insert(user(1))

    def test_upsert_replaces(self, part):
        part.insert(user(1, alias="old"))
        old = part.upsert(user(1, alias="new"))
        assert old["alias"] == "old"
        assert part.get((1,))["alias"] == "new"

    def test_upsert_fresh_returns_none(self, part):
        assert part.upsert(user(5)) is None

    def test_delete(self, part):
        part.insert(user(1))
        deleted = part.delete((1,))
        assert deleted["id"] == 1
        assert part.get((1,)) is None
        assert part.delete((1,)) is None

    def test_pk_required(self, part):
        with pytest.raises(InvalidArgumentError, match="primary key"):
            part.insert({"alias": "nokey"})

    def test_scan_ordered_by_pk(self, part):
        for i in [5, 1, 3]:
            part.insert(user(i))
        assert [pk[0] for pk, _ in part.scan()] == [1, 3, 5]

    def test_count(self, part):
        for i in range(7):
            part.insert(user(i))
        part.delete((3,))
        assert part.count() == 6

    def test_composite_pk(self, fm, cache):
        ps = PartitionStorage(fm, cache, "ds", 0, ("org", "id"))
        ps.insert({"org": "uci", "id": 1, "x": "a"})
        ps.insert({"org": "uci", "id": 2, "x": "b"})
        assert ps.get(("uci", 2))["x"] == "b"


class TestBTreeSecondary:
    def test_create_and_search(self, part):
        part.create_secondary(SecondaryIndexSpec("byAlias", "btree",
                                                 ("alias",)))
        part.insert(user(1, alias="bob"))
        part.insert(user(2, alias="alice"))
        got = list(part.search_btree("byAlias", ("alice",), ("alice",)))
        assert got == [(2,)]

    def test_build_from_existing_data(self, part):
        for i in range(10):
            part.insert(user(i, since=i * 1000))
        part.create_secondary(SecondaryIndexSpec("bySince", "btree",
                                                 ("userSince",)))
        got = list(part.search_btree(
            "bySince", (ADateTime(3000),), (ADateTime(5000),)))
        assert sorted(got) == [(3,), (4,), (5,)]

    def test_maintained_on_upsert(self, part):
        part.create_secondary(SecondaryIndexSpec("byAlias", "btree",
                                                 ("alias",)))
        part.insert(user(1, alias="old"))
        part.upsert(user(1, alias="new"))
        assert list(part.search_btree("byAlias", ("old",), ("old",))) == []
        assert list(part.search_btree("byAlias", ("new",), ("new",))) == [(1,)]

    def test_maintained_on_delete(self, part):
        part.create_secondary(SecondaryIndexSpec("byAlias", "btree",
                                                 ("alias",)))
        part.insert(user(1, alias="gone"))
        part.delete((1,))
        assert list(part.search_btree("byAlias", ("gone",), ("gone",))) == []

    def test_null_missing_not_indexed(self, part):
        part.create_secondary(SecondaryIndexSpec("byNick", "btree",
                                                 ("nickname",)))
        part.insert(user(1))  # no nickname
        rec = user(2)
        rec["nickname"] = None
        part.insert(rec)
        rec3 = user(3)
        rec3["nickname"] = "frump"
        part.insert(rec3)
        assert list(part.search_btree("byNick")) == [(3,)]

    def test_range_scan_secondary(self, part):
        part.create_secondary(SecondaryIndexSpec("byAlias", "btree",
                                                 ("alias",)))
        for i, a in enumerate(["ann", "bob", "cat", "dan"]):
            part.insert(user(i, alias=a))
        got = list(part.search_btree("byAlias", ("b",), ("d",)))
        assert sorted(got) == [(1,), (2,)]

    def test_duplicate_index_name(self, part):
        spec = SecondaryIndexSpec("i", "btree", ("alias",))
        part.create_secondary(spec)
        with pytest.raises(MetadataError):
            part.create_secondary(spec)

    def test_drop_secondary(self, part):
        part.create_secondary(SecondaryIndexSpec("i", "btree", ("alias",)))
        part.drop_secondary("i")
        with pytest.raises(MetadataError):
            list(part.search_btree("i"))


class TestRTreeSecondary:
    def test_window_search(self, part):
        part.create_secondary(SecondaryIndexSpec("byLoc", "rtree",
                                                 ("senderLocation",)))
        part.insert(user(1, loc=(1.0, 1.0)))
        part.insert(user(2, loc=(50.0, 50.0)))
        window = ARectangle(APoint(0, 0), APoint(10, 10))
        assert list(part.search_rtree("byLoc", window)) == [(1,)]

    def test_non_point_field_rejected(self, part):
        part.create_secondary(SecondaryIndexSpec("byLoc", "rtree",
                                                 ("alias",)))
        with pytest.raises(InvalidArgumentError, match="point"):
            part.insert(user(1))

    def test_maintained_on_delete(self, part):
        part.create_secondary(SecondaryIndexSpec("byLoc", "rtree",
                                                 ("senderLocation",)))
        part.insert(user(1, loc=(5.0, 5.0)))
        part.delete((1,))
        window = ARectangle(APoint(0, 0), APoint(10, 10))
        assert list(part.search_rtree("byLoc", window)) == []


class TestInvertedSecondary:
    def test_keyword_search(self, part):
        part.create_secondary(SecondaryIndexSpec("byMsg", "keyword",
                                                 ("message",)))
        part.insert({"id": 1, "message": "big data systems"})
        part.insert({"id": 2, "message": "tiny scripts"})
        assert part.search_keyword("byMsg", "big data") == [(1,)]

    def test_maintained_on_upsert(self, part):
        part.create_secondary(SecondaryIndexSpec("byMsg", "keyword",
                                                 ("message",)))
        part.insert({"id": 1, "message": "alpha beta"})
        part.upsert({"id": 1, "message": "gamma delta"})
        assert part.search_keyword("byMsg", "alpha") == []
        assert part.search_keyword("byMsg", "gamma") == [(1,)]


class TestFetchMany:
    def test_fetch_resolves_pks(self, part):
        for i in range(10):
            part.insert(user(i))
        got = dict(part.fetch_many([(3,), (7,), (99,)]))
        assert set(got) == {(3,), (7,)}

    def test_sorted_fetch_order(self, part):
        for i in range(10):
            part.insert(user(i))
        pks = [pk for pk, _ in part.fetch_many([(7,), (3,), (5,)])]
        assert pks == [(3,), (5,), (7,)]

    def test_unsorted_fetch_preserves_order(self, part):
        for i in range(10):
            part.insert(user(i))
        pks = [pk for pk, _ in part.fetch_many([(7,), (3,)], sort=False)]
        assert pks == [(7,), (3,)]


class TestSpecValidation:
    def test_bad_kind(self):
        with pytest.raises(MetadataError):
            SecondaryIndexSpec("i", "hash", ("f",))

    def test_no_fields(self):
        with pytest.raises(MetadataError):
            SecondaryIndexSpec("i", "btree", ())

    def test_rtree_single_field(self):
        with pytest.raises(MetadataError):
            SecondaryIndexSpec("i", "rtree", ("a", "b"))


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del", "flush"]),
                  st.integers(0, 15), st.text("ab", max_size=2)),
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_partition_with_secondary_matches_model(tmp_path_factory, ops):
    """Primary + btree secondary stay mutually consistent under churn."""
    root = tmp_path_factory.mktemp("dsprop")
    fm = FileManager([IODevice(0, str(root))], page_size=1024)
    cache = BufferCache(fm, num_pages=64)
    ps = PartitionStorage(fm, cache, "ds", 0, ("id",),
                          memory_budget_bytes=1 << 20)
    ps.create_secondary(SecondaryIndexSpec("byA", "btree", ("a",)))
    model = {}
    for op, k, a in ops:
        if op == "ins":
            ps.upsert({"id": k, "a": a})
            model[k] = a
        elif op == "del":
            ps.delete((k,))
            model.pop(k, None)
        else:
            ps.flush_all()
    assert {pk[0]: rec["a"] for pk, rec in ps.scan()} == model
    for k, a in model.items():
        assert (k,) in set(ps.search_btree("byA", (a,), (a,)))
    fm.close()
