"""Shared fixtures: a one-node storage stack over a temp directory."""

import pytest

from repro.storage import BufferCache, FileManager, IODevice


@pytest.fixture
def device(tmp_path):
    return IODevice(0, str(tmp_path / "dev0"))


@pytest.fixture
def fm(device):
    manager = FileManager([device], page_size=4096)
    yield manager
    manager.close()


@pytest.fixture
def cache(fm):
    return BufferCache(fm, num_pages=64)


@pytest.fixture
def small_cache(fm):
    """A tiny cache to force evictions."""
    return BufferCache(fm, num_pages=8)
