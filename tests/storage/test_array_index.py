"""Multi-valued (array) secondary index: maintenance + file hygiene.

One (element key..., pk...) entry per array element, upsert maintenance
keyed on the OLD record (shrinking arrays included), and drop releasing
every LSM file — the PR 5 temp-file hygiene applied to index DDL.
"""

import pytest

from repro.adm import MISSING
from repro.common.errors import InvalidIndexDDLError, MetadataError
from repro.storage.dataset_storage import (
    PartitionStorage,
    SecondaryIndexSpec,
    array_element_keys,
)

DELIV = SecondaryIndexSpec("byDeliv", "array", ("ol_delivery_d",),
                           array_path="o_orderline")


def order(o_id, days):
    """An order whose orderlines carry the given delivery days; ``None``
    means the o_orderline field is absent entirely."""
    rec = {"o_id": o_id}
    if days is not None:
        rec["o_orderline"] = [
            {"ol_number": n, "ol_delivery_d": d}
            for n, d in enumerate(days, start=1)
        ]
    return rec


@pytest.fixture
def part(fm, cache):
    storage = PartitionStorage(fm, cache, "Orders", 0, ("o_id",),
                               memory_budget_bytes=1 << 20)
    storage.create_secondary(DELIV)
    return storage


def pks(part, lo=None, hi=None, **kw):
    return sorted(set(part.search_btree("byDeliv", lo, hi, **kw)))


class TestSpecValidation:
    def test_array_requires_path(self):
        with pytest.raises(InvalidIndexDDLError):
            SecondaryIndexSpec("bad", "array", ("f",))

    def test_non_array_rejects_path(self):
        with pytest.raises(InvalidIndexDDLError):
            SecondaryIndexSpec("bad", "btree", ("f",), array_path="arr")

    def test_elementwise_key_allowed(self):
        spec = SecondaryIndexSpec("ok", "array", (), array_path="tags")
        assert spec.key_width == 1

    def test_composite_element_keys_allowed(self):
        spec = SecondaryIndexSpec("ok", "array", ("a", "b"),
                                  array_path="arr")
        assert spec.key_width == 2


class TestElementKeys:
    def test_per_element(self):
        keys = list(array_element_keys(DELIV, order(1, [10, 20])))
        assert keys == [(10,), (20,)]

    def test_missing_array_field(self):
        assert list(array_element_keys(DELIV, order(1, None))) == []

    def test_non_array_value(self):
        assert list(array_element_keys(
            DELIV, {"o_id": 1, "o_orderline": "oops"})) == []

    def test_element_missing_key_field_skipped(self):
        rec = {"o_id": 1, "o_orderline": [{"ol_number": 1},
                                          {"ol_number": 2,
                                           "ol_delivery_d": 5}]}
        assert list(array_element_keys(DELIV, rec)) == [(5,)]

    def test_scalar_elements_with_field_spec_skipped(self):
        rec = {"o_id": 1, "o_orderline": [7, {"ol_delivery_d": 5}]}
        assert list(array_element_keys(DELIV, rec)) == [(5,)]

    def test_elementwise_spec_indexes_values(self):
        spec = SecondaryIndexSpec("tags", "array", (), array_path="tags")
        rec = {"id": 1, "tags": ["a", "b", None, "a"]}
        assert list(array_element_keys(spec, rec)) == [("a",), ("b",),
                                                       ("a",)]


class TestMaintenance:
    def test_insert_indexes_every_element(self, part):
        part.insert(order(1, [10, 20]))
        part.insert(order(2, [20, 30]))
        assert pks(part, (20,), (20,)) == [(1,), (2,)]
        assert pks(part, (10,), (10,)) == [(1,)]

    def test_duplicate_elements_collapse(self, part):
        part.insert(order(1, [10, 10, 10]))
        assert list(part.search_btree("byDeliv", (10,), (10,))) == [(1,)]

    def test_empty_and_missing_arrays(self, part):
        part.insert(order(1, []))
        part.insert(order(2, None))
        assert pks(part) == []

    def test_delete_removes_all_entries(self, part):
        part.insert(order(1, [10, 20, 30]))
        part.delete((1,))
        assert pks(part) == []

    def test_upsert_shrinking_array(self, part):
        part.insert(order(1, [10, 20, 30]))
        part.upsert(order(1, [20]))
        assert pks(part, (10,), (10,)) == []
        assert pks(part, (30,), (30,)) == []
        assert pks(part, (20,), (20,)) == [(1,)]

    def test_upsert_growing_array(self, part):
        part.insert(order(1, [10]))
        part.upsert(order(1, [10, 40]))
        assert pks(part, (40,), (40,)) == [(1,)]

    def test_upsert_to_empty_array(self, part):
        part.insert(order(1, [10, 20]))
        part.upsert(order(1, []))
        assert pks(part) == []

    def test_upsert_drops_array_field(self, part):
        part.insert(order(1, [10]))
        part.upsert(order(1, None))
        assert pks(part) == []

    def test_backfill_on_create(self, fm, cache):
        storage = PartitionStorage(fm, cache, "Orders", 0, ("o_id",),
                                   memory_budget_bytes=1 << 20)
        storage.insert(order(1, [10]))
        storage.insert(order(2, [20]))
        storage.create_secondary(DELIV)
        assert pks(storage, (10,), (25,)) == [(1,), (2,)]

    def test_search_range_semantics(self, part):
        for i, d in enumerate([5, 10, 15, 20]):
            part.insert(order(i, [d]))
        assert pks(part, (10,), (15,)) == [(1,), (2,)]
        assert pks(part, (10,), (15,), lo_inclusive=False) == [(2,)]
        assert pks(part, None, (10,), hi_inclusive=False) == [(0,)]

    def test_search_skips_incomparable_keys(self, part):
        part.insert(order(1, [10]))
        part.insert({"o_id": 2,
                     "o_orderline": [{"ol_number": 1,
                                      "ol_delivery_d": "soon"}]})
        assert pks(part, (5,), (15,)) == [(1,)]

    def test_wrong_kind_rejected(self, part):
        part.create_secondary(
            SecondaryIndexSpec("loc", "rtree", ("where",)), build=False)
        with pytest.raises(MetadataError):
            list(part.search_btree("loc", (1,), (2,)))


class TestRecovery:
    def test_array_index_recovers_from_manifest(self, fm, cache, part):
        part.insert(order(1, [10, 20]))
        part.insert(order(2, [30]))
        part.flush_all()
        reopened = PartitionStorage.recover(
            fm, cache, "Orders", 0, ("o_id",), specs=[DELIV],
            memory_budget_bytes=1 << 20)
        assert pks(reopened, (10,), (30,)) == [(1,), (2,)]


class TestDropHygiene:
    def test_drop_secondary_releases_all_handles(self, fm, part):
        for i in range(40):
            part.insert(order(i, [i % 7, (i * 3) % 11]))
        part.flush_all()
        prefix = "Orders/p0/idx_byDeliv"
        assert fm.handles_under(prefix)
        part.drop_secondary("byDeliv")
        assert fm.handles_under(prefix) == []
        with pytest.raises(MetadataError):
            part.drop_secondary("byDeliv")

    def test_dataset_drop_releases_all_handles(self, fm, part):
        for i in range(40):
            part.insert(order(i, [i % 7]))
        part.flush_all()
        part.drop()
        assert fm.handles_under("Orders/") == []

    def test_drop_removes_bloom_sidecars(self, fm, device, part):
        import glob
        import os

        for i in range(40):
            part.insert(order(i, [i % 7]))
        part.flush_all()
        pattern = os.path.join(device.root, "Orders", "p0", "idx_byDeliv*")
        assert glob.glob(pattern)
        part.drop_secondary("byDeliv")
        leftovers = [p for p in glob.glob(pattern)
                     if not os.path.isdir(p)]
        assert leftovers == []
