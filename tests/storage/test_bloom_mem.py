"""Tests for bloom filters and the in-memory LSM components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import APoint, ARectangle
from repro.storage import MemBTree, MemRTree
from repro.storage.bloom import BloomFilter


class TestBloom:
    def test_no_false_negatives(self):
        bf = BloomFilter(1000, fpr=0.01)
        for i in range(1000):
            bf.add((i,))
        assert all(bf.may_contain((i,)) for i in range(1000))

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(1000, fpr=0.01)
        for i in range(1000):
            bf.add((i,))
        fps = sum(bf.may_contain((i,)) for i in range(10_000, 20_000))
        assert fps < 500  # ~1% expected; allow generous slack

    def test_composite_keys(self):
        bf = BloomFilter(10)
        bf.add(("alice", 3))
        assert bf.may_contain(("alice", 3))

    def test_sizes_scale(self):
        assert BloomFilter(10_000).size_bytes > BloomFilter(100).size_bytes


class TestMemBTree:
    def test_put_get(self):
        m = MemBTree()
        m.put((1,), b"a")
        m.put((1,), b"b")
        assert m.get((1,)) == b"b"
        assert len(m) == 1

    def test_items_sorted(self):
        m = MemBTree()
        for k in [5, 1, 3, 2, 4]:
            m.put((k,), b"")
        assert [k[0] for k, _ in m.items()] == [1, 2, 3, 4, 5]

    def test_range_items(self):
        m = MemBTree()
        for k in range(10):
            m.put((k,), b"")
        assert [k[0] for k, _ in m.range_items((3,), (6,))] == [3, 4, 5, 6]
        assert [k[0] for k, _ in m.range_items(
            (3,), (6,), lo_inclusive=False, hi_inclusive=False)] == [4, 5]

    def test_bytes_tracking(self):
        m = MemBTree()
        m.put((1,), b"x" * 100)
        used = m.bytes_used
        assert used > 100
        m.put((1,), b"x" * 50)
        assert m.bytes_used < used
        m.clear()
        assert m.bytes_used == 0

    def test_mixed_type_keys(self):
        m = MemBTree()
        m.put(("z",), b"")
        m.put((1,), b"")
        assert [k[0] for k, _ in m.items()] == [1, "z"]

    @given(st.lists(st.tuples(st.integers(0, 30), st.binary(max_size=4)),
                    max_size=50))
    @settings(max_examples=50)
    def test_matches_dict(self, ops):
        m = MemBTree()
        model = {}
        for k, v in ops:
            m.put((k,), v)
            model[k] = v
        assert [k[0] for k, _ in m.items()] == sorted(model)
        for k in model:
            assert m.get((k,)) == model[k]


class TestMemRTree:
    def window(self, x0, y0, x1, y1):
        return ARectangle(APoint(x0, y0), APoint(x1, y1))

    def pt(self, x, y):
        p = APoint(x, y)
        return ARectangle(p, p)

    def test_insert_search(self):
        m = MemRTree()
        m.insert(self.pt(1, 1), (1, 1, 10), b"")
        m.insert(self.pt(5, 5), (5, 5, 20), b"")
        hits = [k for _, k, _ in m.search(self.window(0, 0, 2, 2))]
        assert hits == [(1, 1, 10)]

    def test_duplicate_key_ignored(self):
        m = MemRTree()
        m.insert(self.pt(1, 1), (1,), b"")
        m.insert(self.pt(1, 1), (1,), b"")
        assert len(m) == 1

    def test_contains(self):
        m = MemRTree()
        m.insert(self.pt(1, 1), (7,), b"")
        assert (7,) in m
        assert (8,) not in m

    def test_bytes_tracking_and_clear(self):
        m = MemRTree()
        m.insert(self.pt(0, 0), (1,), b"abc")
        assert m.bytes_used > 0
        m.clear()
        assert m.bytes_used == 0 and len(m) == 0
