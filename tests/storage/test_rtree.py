"""Tests for the page-based R-tree."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import APoint, ARectangle, serialize_tuple
from repro.storage import BufferCache, RTree


def pt_rect(x, y):
    p = APoint(x, y)
    return ARectangle(p, p)


def make_points(n, seed=0):
    rng = random.Random(seed)
    return [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)]


def reference_query(points, window):
    return sorted(
        i for i, (x, y) in enumerate(points)
        if window.contains_point(APoint(x, y))
    )


class TestInsertSearch:
    def test_empty(self, fm, cache):
        tree = RTree.create(cache, fm.create_file("r"))
        assert list(tree.search(ARectangle(APoint(0, 0), APoint(1, 1)))) == []

    def test_insert_and_window_query(self, fm, cache):
        tree = RTree.create(cache, fm.create_file("r"))
        points = make_points(500, seed=1)
        for i, (x, y) in enumerate(points):
            tree.insert(pt_rect(x, y), serialize_tuple((i,)))
        window = ARectangle(APoint(20, 20), APoint(40, 40))
        got = sorted(
            int.from_bytes(p[2:3], "big")  # placeholder, replaced below
            for _, p in []
        )
        from repro.adm import deserialize_tuple

        got = sorted(
            deserialize_tuple(payload)[0]
            for _, payload in tree.search(window)
        )
        assert got == reference_query(points, window)

    def test_rectangles_not_just_points(self, fm, cache):
        tree = RTree.create(cache, fm.create_file("r"))
        tree.insert(ARectangle(APoint(0, 0), APoint(10, 10)), b"big")
        tree.insert(ARectangle(APoint(50, 50), APoint(60, 60)), b"far")
        hits = [p for _, p in tree.search(
            ARectangle(APoint(5, 5), APoint(7, 7)))]
        assert hits == [b"big"]

    def test_splits_preserve_entries(self, fm, cache):
        tree = RTree.create(cache, fm.create_file("r"))
        points = make_points(2000, seed=2)
        for i, (x, y) in enumerate(points):
            tree.insert(pt_rect(x, y), serialize_tuple((i,)))
        assert tree.height > 1
        everything = ARectangle(APoint(-1, -1), APoint(101, 101))
        assert len(list(tree.search(everything))) == 2000


class TestBulkLoad:
    def test_str_bulk_load_query_equivalence(self, fm, cache):
        points = make_points(3000, seed=3)
        entries = [
            (pt_rect(x, y), serialize_tuple((i,)))
            for i, (x, y) in enumerate(points)
        ]
        tree = RTree.bulk_load(cache, fm.create_file("r"), entries)
        assert tree.count == 3000
        from repro.adm import deserialize_tuple

        for seed in range(3):
            rng = random.Random(seed)
            x0, y0 = rng.uniform(0, 80), rng.uniform(0, 80)
            window = ARectangle(APoint(x0, y0), APoint(x0 + 15, y0 + 15))
            got = sorted(
                deserialize_tuple(p)[0] for _, p in tree.search(window)
            )
            assert got == reference_query(points, window)

    def test_bulk_load_empty(self, fm, cache):
        tree = RTree.bulk_load(cache, fm.create_file("r"), [])
        assert tree.count == 0

    def test_str_locality_beats_random_inserts(self, fm, cache, device):
        """STR-packed trees touch fewer pages per window query."""
        points = make_points(4000, seed=4)
        entries = [
            (pt_rect(x, y), serialize_tuple((i,)))
            for i, (x, y) in enumerate(points)
        ]
        bulk = RTree.bulk_load(cache, fm.create_file("bulk"), entries)
        rand_tree = RTree.create(cache, fm.create_file("rand"))
        shuffled = list(entries)
        random.Random(5).shuffle(shuffled)
        for mbr, payload in shuffled:
            rand_tree.insert(mbr, payload)
        cache.flush_all()

        def pages_touched(tree):
            cache.evict_file(tree.handle)
            before = device.stats.snapshot()
            window = ARectangle(APoint(30, 30), APoint(50, 50))
            list(tree.search(window))
            return device.stats.diff(before).total_reads

        assert pages_touched(bulk) <= pages_touched(rand_tree)

    def test_point_encoding_compact(self, fm, cache):
        """Points are stored with 2 doubles, not degenerate boxes (the
        paper's §V-B storage optimization): the same entries as true
        rectangles take more pages."""
        points = make_points(3000, seed=6)
        as_points = [
            (pt_rect(x, y), serialize_tuple((i,)))
            for i, (x, y) in enumerate(points)
        ]
        as_boxes = [
            (ARectangle(APoint(x, y), APoint(x + 1e-9, y + 1e-9)),
             serialize_tuple((i,)))
            for i, (x, y) in enumerate(points)
        ]
        t1 = RTree.bulk_load(cache, fm.create_file("pts"), as_points)
        t2 = RTree.bulk_load(cache, fm.create_file("boxes"), as_boxes)
        assert t1.handle.num_pages < t2.handle.num_pages

    def test_reopen(self, fm, cache):
        entries = [(pt_rect(i, i), serialize_tuple((i,))) for i in range(50)]
        handle = fm.create_file("r")
        RTree.bulk_load(cache, handle, entries)
        cache.evict_file(handle)
        tree = RTree.open(cache, handle)
        assert tree.count == 50
        window = ARectangle(APoint(10, 10), APoint(12, 12))
        assert len(list(tree.search(window))) == 3


@given(
    coords=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)),
        min_size=1, max_size=40,
    ),
    wx=st.integers(0, 25), wy=st.integers(0, 25),
    ww=st.integers(1, 10), wh=st.integers(1, 10),
)
@settings(max_examples=40, deadline=None)
def test_rtree_matches_linear_scan(tmp_path_factory, coords, wx, wy, ww, wh):
    from repro.adm import deserialize_tuple
    from repro.storage import FileManager, IODevice

    root = tmp_path_factory.mktemp("rprop")
    fm = FileManager([IODevice(0, str(root))], page_size=512)
    cache = BufferCache(fm, num_pages=32)
    tree = RTree.create(cache, fm.create_file("r"))
    for i, (x, y) in enumerate(coords):
        tree.insert(pt_rect(x, y), serialize_tuple((i,)))
    window = ARectangle(APoint(wx, wy), APoint(wx + ww, wy + wh))
    got = sorted(deserialize_tuple(p)[0] for _, p in tree.search(window))
    expect = sorted(
        i for i, (x, y) in enumerate(coords)
        if window.contains_point(APoint(x, y))
    )
    assert got == expect
    fm.close()
