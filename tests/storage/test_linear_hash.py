"""Tests for Linear Hashing (the §V-C/E2 structure)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DuplicateKeyError
from repro.storage import BufferCache, LinearHashIndex


class TestBasics:
    def test_insert_search(self, fm, cache):
        idx = LinearHashIndex.create(cache, fm.create_file("h"))
        idx.insert((1,), b"one")
        idx.insert(("two",), b"2")
        assert idx.search((1,)) == b"one"
        assert idx.search(("two",)) == b"2"
        assert idx.search((3,)) is None

    def test_duplicate_rejected(self, fm, cache):
        idx = LinearHashIndex.create(cache, fm.create_file("h"))
        idx.insert((1,), b"a")
        with pytest.raises(DuplicateKeyError):
            idx.insert((1,), b"b")

    def test_items_complete(self, fm, cache):
        idx = LinearHashIndex.create(cache, fm.create_file("h"))
        for i in range(100):
            idx.insert((i,), bytes([i % 256]))
        assert len(list(idx.items())) == 100


class TestSplitting:
    def test_buckets_grow_with_data(self, fm, cache):
        idx = LinearHashIndex.create(cache, fm.create_file("h"),
                                     initial_buckets=4)
        for i in range(5000):
            idx.insert((i,), b"v" * 20)
        assert idx.num_buckets > 4
        assert idx.level >= 1

    def test_all_keys_findable_after_splits(self, fm, cache):
        idx = LinearHashIndex.create(cache, fm.create_file("h"))
        n = 3000
        for i in range(n):
            idx.insert((i,), str(i).encode())
        for i in range(0, n, 37):
            assert idx.search((i,)) == str(i).encode()

    def test_lookup_io_stays_flat(self, fm, device):
        """O(1) expected lookups: page reads per probe don't grow with N."""
        cache = BufferCache(fm, num_pages=4)  # effectively no caching
        idx = LinearHashIndex.create(cache, fm.create_file("h"))

        def probe_cost(n_probes, n):
            before = device.stats.snapshot()
            for i in range(0, n, max(1, n // n_probes)):
                idx.search((i,))
            reads = device.stats.diff(before).total_reads
            return reads / n_probes

        for i in range(500):
            idx.insert((i,), b"v" * 16)
        small_cost = probe_cost(50, 500)
        for i in range(500, 5000):
            idx.insert((i,), b"v" * 16)
        big_cost = probe_cost(50, 5000)
        assert big_cost <= small_cost * 2 + 1


@given(
    keys=st.lists(st.integers(0, 500), unique=True, min_size=1, max_size=80)
)
@settings(max_examples=30, deadline=None)
def test_hash_matches_dict_model(tmp_path_factory, keys):
    from repro.storage import FileManager, IODevice

    root = tmp_path_factory.mktemp("hprop")
    fm = FileManager([IODevice(0, str(root))], page_size=512)
    cache = BufferCache(fm, num_pages=32)
    idx = LinearHashIndex.create(cache, fm.create_file("h"),
                                 initial_buckets=2)
    model = {}
    for k in keys:
        idx.insert((k,), str(k).encode())
        model[k] = str(k).encode()
    for k in model:
        assert idx.search((k,)) == model[k]
    assert idx.search((501,)) is None
    assert len(list(idx.items())) == len(model)
    fm.close()
