"""Tests for the CLOCK buffer cache."""

import pytest

from repro.common.errors import BufferCacheError
from repro.storage import BufferCache


def make_file(fm, cache, name, num_pages, fill=0xAB):
    handle = fm.create_file(name)
    for i in range(num_pages):
        fm.append_page(handle)
        page = cache.pin(handle, i, new=True)
        page.data[:4] = bytes([fill, i % 256, 0, 0])
        cache.unpin(page, dirty=True)
    cache.flush_file(handle)
    return handle


class TestPinUnpin:
    def test_miss_then_hit(self, fm, cache):
        handle = make_file(fm, cache, "f", 4)
        cache.evict_file(handle)
        cache.stats.hits = cache.stats.misses = 0
        page = cache.pin(handle, 2)
        cache.unpin(page)
        again = cache.pin(handle, 2)
        cache.unpin(again)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert page is again

    def test_data_survives_roundtrip(self, fm, cache):
        handle = make_file(fm, cache, "f", 3, fill=0xCD)
        cache.evict_file(handle)
        page = cache.pin(handle, 1)
        assert page.data[0] == 0xCD and page.data[1] == 1
        cache.unpin(page)

    def test_unpin_unpinned_raises(self, fm, cache):
        handle = make_file(fm, cache, "f", 1)
        page = cache.pin(handle, 0)
        cache.unpin(page)
        with pytest.raises(BufferCacheError):
            cache.unpin(page)

    def test_read_past_end_raises(self, fm, cache):
        from repro.common.errors import StorageError

        handle = make_file(fm, cache, "f", 1)
        with pytest.raises(StorageError):
            cache.pin(handle, 5)


class TestEviction:
    def test_eviction_under_pressure(self, fm, small_cache):
        handle = make_file(fm, small_cache, "f", 32)
        for i in range(32):
            page = small_cache.pin(handle, i)
            small_cache.unpin(page)
        assert small_cache.stats.evictions > 0

    def test_dirty_page_written_back_on_eviction(self, fm, small_cache):
        handle = make_file(fm, small_cache, "f", 32)
        page = small_cache.pin(handle, 0)
        page.data[0] = 0x77
        small_cache.unpin(page, dirty=True)
        for i in range(1, 32):  # force page 0 out
            p = small_cache.pin(handle, i)
            small_cache.unpin(p)
        reread = small_cache.pin(handle, 0)
        assert reread.data[0] == 0x77
        small_cache.unpin(reread)

    def test_pinned_pages_never_evicted(self, fm, small_cache):
        handle = make_file(fm, small_cache, "f", 32)
        pinned = [small_cache.pin(handle, i) for i in range(7)]
        page = small_cache.pin(handle, 20)
        small_cache.unpin(page)
        assert all((p.file_id, p.page_no) in small_cache._pages
                   for p in pinned)
        for p in pinned:
            small_cache.unpin(p)

    def test_all_pinned_raises(self, fm, small_cache):
        handle = make_file(fm, small_cache, "f", 16)
        pinned = [small_cache.pin(handle, i) for i in range(8)]
        with pytest.raises(BufferCacheError, match="pinned"):
            small_cache.pin(handle, 9)
        for p in pinned:
            small_cache.unpin(p)


class TestStats:
    def test_hit_ratio(self, fm, cache):
        handle = make_file(fm, cache, "f", 2)
        cache.stats.hits = cache.stats.misses = 0
        for _ in range(9):
            p = cache.pin(handle, 0)
            cache.unpin(p)
        assert cache.stats.hit_ratio > 0.85

    def test_io_counters_reflect_physical_io(self, fm, cache, device):
        handle = make_file(fm, cache, "f", 4)
        cache.evict_file(handle)
        before = device.stats.snapshot()
        p = cache.pin(handle, 0)
        cache.unpin(p)
        p = cache.pin(handle, 0)  # hit: no physical read
        cache.unpin(p)
        diff = device.stats.diff(before)
        assert diff.total_reads == 1

    def test_min_cache_size_enforced(self, fm):
        with pytest.raises(BufferCacheError):
            BufferCache(fm, num_pages=2)
