"""LSM statistics synopses: histogram math, flush/merge harvest,
manifest persistence, and the per-dataset rollup the optimizer reads."""

import pytest

from repro.storage.dataset_storage import PartitionStorage
from repro.storage.lsm import LSMBTree, NoMergePolicy
from repro.storage.lsm.synopsis import (
    ComponentSynopsis,
    EquiDepthHistogram,
    FieldSynopsis,
    SynopsisBuilder,
    merge_field_synopses,
)


class TestEquiDepthHistogram:
    def test_build_uniform(self):
        h = EquiDepthHistogram.build(range(100), buckets=4)
        assert h.total == 100
        assert len(h.counts) == 4
        # equi-depth: every bucket holds the same number of values
        assert h.counts == [25, 25, 25, 25]
        assert h.bounds[0] == 0 and h.bounds[-1] == 99

    def test_build_skewed_refines_dense_region(self):
        # 90 values at 0..9, 10 values spread over 1000..1009: most
        # bucket boundaries should land inside the dense region
        values = list(range(10)) * 9 + list(range(1000, 1010))
        h = EquiDepthHistogram.build(values, buckets=10)
        dense_bounds = sum(1 for b in h.bounds if b < 100)
        assert dense_bounds >= 8

    def test_build_empty_and_non_numeric(self):
        assert EquiDepthHistogram.build([]) is None
        assert EquiDepthHistogram.build(["a", "b"]) is None
        assert EquiDepthHistogram.build([True, False]) is None

    def test_range_estimate_uniform(self):
        h = EquiDepthHistogram.build(range(1000), buckets=16)
        est = h.estimate_range(100, 299)
        assert est == pytest.approx(0.2, abs=0.05)
        assert h.estimate_range(None, None) == pytest.approx(1.0)
        assert h.estimate_range(2000, None) == 0.0
        assert h.estimate_range(None, -5) == 0.0

    def test_range_estimate_open_bounds(self):
        h = EquiDepthHistogram.build(range(1000), buckets=16)
        assert h.estimate_range(None, 499) == pytest.approx(0.5, abs=0.05)
        assert h.estimate_range(500, None) == pytest.approx(0.5, abs=0.05)

    def test_eq_estimate_uses_distinct(self):
        h = EquiDepthHistogram.build(range(100), buckets=4)
        est = h.estimate_eq(42, distinct=100)
        assert est == pytest.approx(1 / 100, abs=0.02)
        # values outside the domain estimate to zero
        assert h.estimate_eq(5000, distinct=100) == 0.0

    def test_degenerate_single_value(self):
        h = EquiDepthHistogram.build([7] * 50, buckets=8)
        assert h.estimate_range(7, 7) == pytest.approx(1.0)
        assert h.estimate_range(0, 6) == 0.0

    def test_round_trip_dict(self):
        h = EquiDepthHistogram.build(range(40), buckets=4)
        again = EquiDepthHistogram.from_dict(h.to_dict())
        assert again.bounds == h.bounds
        assert again.counts == h.counts
        assert EquiDepthHistogram.from_dict(None) is None

    def test_merge_preserves_total_and_bounds(self):
        h1 = EquiDepthHistogram.build(range(0, 500), buckets=8)
        h2 = EquiDepthHistogram.build(range(500, 1000), buckets=8)
        merged = EquiDepthHistogram.merge([h1, h2], buckets=8)
        assert merged.total == 1000
        assert merged.bounds[0] == 0
        assert merged.bounds[-1] == 999
        # the merged estimate should still see ~half below 500
        assert merged.estimate_range(None, 499) == pytest.approx(0.5,
                                                                 abs=0.15)

    def test_merge_with_none_parts(self):
        h = EquiDepthHistogram.build(range(10), buckets=2)
        merged = EquiDepthHistogram.merge([None, h, None])
        assert merged.total == 10
        assert EquiDepthHistogram.merge([None, None]) is None


class TestFieldSynopsis:
    def test_builder_scalars(self):
        b = SynopsisBuilder()
        for v in [5, 1, 3, 3, 9]:
            b.add({"x": v})
        syn = b.build()
        assert syn.record_count == 5
        fs = syn.fields["x"]
        assert (fs.count, fs.min, fs.max, fs.distinct) == (5, 1, 9, 4)
        assert fs.histogram is not None

    def test_builder_arrays_and_missing(self):
        b = SynopsisBuilder()
        b.add({"tags": [1, 2, 3]})
        b.add({"tags": [4]})
        b.add({})                      # record without the field
        b.add(None)                    # extractor returned nothing
        syn = b.build()
        assert syn.record_count == 4
        fs = syn.fields["tags"]
        assert fs.array_count == 2
        assert fs.array_elements == 4
        assert fs.avg_array_length == 2.0

    def test_builder_strings_no_histogram(self):
        b = SynopsisBuilder()
        for s in ["b", "a", "c", "a"]:
            b.add({"name": s})
        fs = b.build().fields["name"]
        assert (fs.min, fs.max, fs.distinct) == ("a", "c", 3)
        assert fs.histogram is None
        assert fs.selectivity_eq("a") == pytest.approx(1 / 3)

    def test_merge_field_synopses(self):
        b1, b2 = SynopsisBuilder(), SynopsisBuilder()
        for v in range(100):
            b1.add({"x": v})
        for v in range(100, 200):
            b2.add({"x": v})
        merged = merge_field_synopses(
            [b1.build().fields["x"], b2.build().fields["x"], None])
        assert merged.count == 200
        assert (merged.min, merged.max) == (0, 199)
        assert merged.distinct == 200
        assert merged.selectivity_range(None, 99) == pytest.approx(0.5,
                                                                   abs=0.15)

    def test_merge_distinct_clamped_to_count(self):
        parts = [FieldSynopsis(count=10, distinct=10),
                 FieldSynopsis(count=10, distinct=10)]
        # same 10 values in both parts: sum overestimates, clamp to count
        assert merge_field_synopses(parts).distinct == 20
        parts[1].count = 2
        assert merge_field_synopses(parts).distinct == 12


class TestLSMHarvest:
    """Synopses are built where the data streams by: flush and merge."""

    @pytest.fixture
    def lsm(self, fm, cache):
        tree = LSMBTree(fm, cache, "t", memory_budget_bytes=4096,
                        merge_policy=NoMergePolicy())
        tree.synopsis_extractor = lambda key, payload: {"pk": key[0]}
        return tree

    def test_flush_builds_component_synopsis(self, lsm):
        for k in range(50):
            lsm.upsert((k,), b"v")
        comp = lsm.flush()
        assert comp.synopsis.record_count == 50
        assert comp.synopsis.fields["pk"].min == 0
        assert comp.synopsis.fields["pk"].max == 49

    def test_memory_component_counted_without_flush(self, lsm):
        for k in range(10):
            lsm.upsert((k,), b"v")
        syn = lsm.synopsis()
        assert syn.record_count == 10

    def test_merge_rebuilds_synopsis_excluding_antimatter(self, lsm):
        for k in range(30):
            lsm.upsert((k,), b"v")
        lsm.flush()
        for k in range(10):            # delete 0..9 -> antimatter
            lsm.delete((k,))
        lsm.flush()
        comp = lsm.merge()
        assert comp.synopsis.record_count == 20
        assert comp.synopsis.fields["pk"].min == 10

    def test_synopsis_survives_restart(self, fm, cache, lsm):
        for k in range(25):
            lsm.upsert((k,), b"v")
        lsm.flush()
        again = LSMBTree.recover(fm, cache, "t",
                                 memory_budget_bytes=4096,
                                 merge_policy=NoMergePolicy())
        again.synopsis_extractor = lsm.synopsis_extractor
        syn = again.synopsis()
        assert syn.record_count == 25
        assert syn.fields["pk"].max == 24

    def test_no_extractor_no_synopsis(self, fm, cache):
        tree = LSMBTree(fm, cache, "bare", memory_budget_bytes=4096)
        tree.upsert((1,), b"v")
        assert tree.flush().synopsis is None
        assert tree.synopsis() is None


class TestPartitionStatistics:
    """The dataset-level view: record extractor + rollup + versioning."""

    @pytest.fixture
    def part(self, fm, cache):
        return PartitionStorage(fm, cache, "dv.ds", 0, ("id",),
                                merge_policy=NoMergePolicy())

    def test_record_fields_tracked(self, part):
        for i in range(20):
            part.upsert({"id": i, "amount": i * 10,
                         "meta": {"depth": i % 3},
                         "tags": list(range(i % 4))})
        syn = part.statistics()
        assert syn.record_count == 20
        assert syn.fields["amount"].max == 190
        assert syn.fields["meta.depth"].distinct == 3
        assert syn.fields["tags"].array_count > 0

    def test_rollup_across_flush_and_memory(self, part):
        for i in range(15):
            part.upsert({"id": i})
        part.primary.flush()
        for i in range(15, 20):
            part.upsert({"id": i})
        syn = part.statistics()
        assert syn.record_count == 20
        assert (syn.fields["id"].min, syn.fields["id"].max) == (0, 19)

    def test_statistics_version_changes_on_writes(self, part):
        v0 = part.statistics_version()
        part.upsert({"id": 1})
        v1 = part.statistics_version()
        assert v1 != v0
        part.primary.flush()
        assert part.statistics_version() != v1

    def test_component_synopsis_merge_multi_partition(self, part):
        for i in range(10):
            part.upsert({"id": i})
        other = ComponentSynopsis(
            record_count=5, fields={"id": FieldSynopsis(
                count=5, min=100, max=104, distinct=5)})
        rolled = ComponentSynopsis.merge([part.statistics(), other, None])
        assert rolled.record_count == 15
        assert rolled.fields["id"].max == 104
