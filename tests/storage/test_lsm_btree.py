"""Tests for the LSM B+ tree: flush, antimatter, merge policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DuplicateKeyError
from repro.storage import BufferCache
from repro.storage.lsm import (
    ConstantMergePolicy,
    LSMBTree,
    NoMergePolicy,
    PrefixMergePolicy,
)


@pytest.fixture
def lsm(fm, cache):
    return LSMBTree(fm, cache, "t", memory_budget_bytes=4096,
                    merge_policy=NoMergePolicy())


class TestWriteRead:
    def test_upsert_search(self, lsm):
        lsm.upsert((1,), b"one")
        assert lsm.search((1,)) == b"one"
        lsm.upsert((1,), b"uno")
        assert lsm.search((1,)) == b"uno"

    def test_insert_unique(self, lsm):
        lsm.insert_unique((1,), b"a")
        with pytest.raises(DuplicateKeyError):
            lsm.insert_unique((1,), b"b")

    def test_delete(self, lsm):
        lsm.upsert((1,), b"a")
        lsm.delete((1,))
        assert lsm.search((1,)) is None
        assert list(lsm.scan()) == []

    def test_delete_of_absent_key_is_noop_logically(self, lsm):
        lsm.delete((99,))
        assert lsm.search((99,)) is None

    def test_scan_ordered(self, lsm):
        for k in [5, 1, 3]:
            lsm.upsert((k,), str(k).encode())
        assert [k[0] for k, _ in lsm.scan()] == [1, 3, 5]

    def test_scan_range(self, lsm):
        for k in range(20):
            lsm.upsert((k,), b"")
        got = [k[0] for k, _ in lsm.scan((5,), (8,))]
        assert got == [5, 6, 7, 8]


class TestFlush:
    def test_explicit_flush_preserves_data(self, lsm):
        for k in range(50):
            lsm.upsert((k,), str(k).encode())
        lsm.flush()
        assert lsm.num_disk_components == 1
        assert len(lsm.memory) == 0
        assert lsm.search((25,)) == b"25"
        assert len(list(lsm.scan())) == 50

    def test_auto_flush_on_budget(self, fm, cache):
        lsm = LSMBTree(fm, cache, "t", memory_budget_bytes=2048,
                       merge_policy=NoMergePolicy())
        for k in range(500):
            lsm.upsert((k,), b"v" * 20)
        assert lsm.num_disk_components >= 2
        assert lsm.search((499,)) == b"v" * 20

    def test_flush_empty_is_noop(self, lsm):
        assert lsm.flush() is None

    def test_newest_component_wins(self, lsm):
        lsm.upsert((1,), b"old")
        lsm.flush()
        lsm.upsert((1,), b"new")
        lsm.flush()
        assert lsm.num_disk_components == 2
        assert lsm.search((1,)) == b"new"
        assert [v for _, v in lsm.scan()] == [b"new"]

    def test_antimatter_across_components(self, lsm):
        lsm.upsert((1,), b"a")
        lsm.upsert((2,), b"b")
        lsm.flush()
        lsm.delete((1,))
        lsm.flush()
        assert lsm.search((1,)) is None
        assert lsm.search((2,)) == b"b"
        assert [k[0] for k, _ in lsm.scan()] == [2]

    def test_reinsert_after_delete(self, lsm):
        lsm.upsert((1,), b"a")
        lsm.flush()
        lsm.delete((1,))
        lsm.flush()
        lsm.upsert((1,), b"back")
        assert lsm.search((1,)) == b"back"

    def test_component_lsn_recorded(self, lsm):
        lsm.upsert((1,), b"a", lsn=17)
        lsm.upsert((2,), b"b", lsn=23)
        comp = lsm.flush()
        assert comp.lsn == 23

    def test_bloom_skips_counted(self, lsm):
        for k in range(100):
            lsm.upsert((k,), b"x")
        lsm.flush()
        for k in range(200, 220):
            lsm.upsert((k,), b"y")
        lsm.flush()
        lsm.stats.bloom_skips = 0
        for k in range(100):
            lsm.search((k,))
        assert lsm.stats.bloom_skips > 50


class TestMerge:
    def test_full_merge_drops_antimatter(self, fm, cache):
        lsm = LSMBTree(fm, cache, "t", memory_budget_bytes=1 << 20,
                       merge_policy=NoMergePolicy())
        for k in range(10):
            lsm.upsert((k,), b"x")
        lsm.flush()
        for k in range(5):
            lsm.delete((k,))
        lsm.flush()
        merged = lsm.merge()
        assert lsm.num_disk_components == 1
        assert merged.num_entries == 5  # tombstones purged
        assert [k[0] for k, _ in lsm.scan()] == [5, 6, 7, 8, 9]

    def test_partial_merge_keeps_antimatter(self, fm, cache):
        lsm = LSMBTree(fm, cache, "t", memory_budget_bytes=1 << 20,
                       merge_policy=NoMergePolicy())
        lsm.upsert((1,), b"old")
        lsm.flush()                      # oldest component
        lsm.delete((1,))
        lsm.flush()
        lsm.upsert((2,), b"x")
        lsm.flush()
        lsm.merge(slice(0, 2))           # merge the two newest only
        assert lsm.num_disk_components == 2
        assert lsm.search((1,)) is None  # tombstone still effective

    def test_merged_files_deleted(self, fm, cache, tmp_path):
        lsm = LSMBTree(fm, cache, "t", memory_budget_bytes=1 << 20,
                       merge_policy=NoMergePolicy())
        for batch in range(3):
            for k in range(batch * 10, batch * 10 + 10):
                lsm.upsert((k,), b"x")
            lsm.flush()
        handles = [c.handle for c in lsm.components]
        lsm.merge()
        assert all(h.deleted for h in handles)

    def test_constant_policy_bounds_components(self, fm, cache):
        lsm = LSMBTree(fm, cache, "t", memory_budget_bytes=1024,
                       merge_policy=ConstantMergePolicy(3))
        for k in range(2000):
            lsm.upsert((k,), b"v" * 16)
        assert lsm.num_disk_components <= 3 + 1
        assert lsm.stats.merges > 0

    def test_prefix_policy_merges_small_runs(self, fm, cache):
        lsm = LSMBTree(
            fm, cache, "t", memory_budget_bytes=1024,
            merge_policy=PrefixMergePolicy(max_mergable_size=100_000,
                                           max_tolerance_count=3),
        )
        for k in range(3000):
            lsm.upsert((k,), b"v" * 16)
        assert lsm.stats.merges > 0
        assert lsm.num_disk_components <= 4
        # data integrity after all that churn
        assert lsm.search((1500,)) == b"v" * 16

    def test_component_id_spans(self, fm, cache):
        lsm = LSMBTree(fm, cache, "t", memory_budget_bytes=1 << 20,
                       merge_policy=NoMergePolicy())
        for batch in range(3):
            lsm.upsert((batch,), b"x")
            lsm.flush()
        lsm.merge()
        assert lsm.components[0].component_id == (0, 2)


class TestNoMergeAccumulates:
    def test_components_accumulate(self, fm, cache):
        lsm = LSMBTree(fm, cache, "t", memory_budget_bytes=512,
                       merge_policy=NoMergePolicy())
        for k in range(500):
            lsm.upsert((k,), b"v" * 16)
        assert lsm.num_disk_components > 3
        assert lsm.stats.merges == 0


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "del", "flush"]),
                  st.integers(0, 25)),
        max_size=60,
    )
)
@settings(max_examples=40, deadline=None)
def test_lsm_matches_dict_model(tmp_path_factory, ops):
    """Property: LSM upsert/delete/flush/merge behaves like a dict."""
    from repro.storage import FileManager, IODevice

    root = tmp_path_factory.mktemp("lprop")
    fm = FileManager([IODevice(0, str(root))], page_size=512)
    cache = BufferCache(fm, num_pages=64)
    lsm = LSMBTree(fm, cache, "t", memory_budget_bytes=1 << 20,
                   merge_policy=ConstantMergePolicy(2))
    model = {}
    for op, k in ops:
        if op == "put":
            lsm.upsert((k,), str(k).encode())
            model[k] = str(k).encode()
        elif op == "del":
            lsm.delete((k,))
            model.pop(k, None)
        else:
            lsm.flush()
    assert [k[0] for k, _ in lsm.scan()] == sorted(model)
    for k in range(26):
        assert lsm.search((k,)) == model.get(k)
    fm.close()
