"""Tests for the page-based B+ tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import serialize
from repro.common.errors import DuplicateKeyError, StorageError
from repro.storage import BTree, BufferCache


def val(i):
    return serialize({"v": i})


class TestBasics:
    def test_empty_search(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        assert tree.search((1,)) is None
        assert list(tree.range_scan()) == []

    def test_insert_and_search(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        tree.insert((5,), b"five")
        tree.insert((3,), b"three")
        assert tree.search((5,)) == b"five"
        assert tree.search((3,)) == b"three"
        assert tree.search((4,)) is None
        assert tree.count == 2

    def test_unique_violation(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        tree.insert((1,), b"a", unique=True)
        with pytest.raises(DuplicateKeyError):
            tree.insert((1,), b"b", unique=True)

    def test_replace(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        tree.insert((1,), b"a")
        tree.insert((1,), b"b", replace=True)
        assert tree.search((1,)) == b"b"
        assert tree.count == 1

    def test_composite_keys(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        tree.insert(("alice", 2), b"a2")
        tree.insert(("alice", 1), b"a1")
        tree.insert(("bob", 1), b"b1")
        keys = [k for k, _ in tree.range_scan(lo=("alice",), hi=("alice", 99))]
        assert keys == [("alice", 1), ("alice", 2)]

    def test_string_and_mixed_keys(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        tree.insert(("zeta",), b"z")
        tree.insert((10,), b"i")
        tree.insert((2.5,), b"f")
        keys = [k[0] for k, _ in tree.range_scan()]
        assert keys == [2.5, 10, "zeta"]  # numerics before strings


class TestSplits:
    def test_many_inserts_force_splits(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        n = 2000
        order = list(range(n))
        random.Random(42).shuffle(order)
        for i in order:
            tree.insert((i,), val(i))
        assert tree.height > 1
        assert tree.count == n
        for i in random.Random(7).sample(range(n), 50):
            assert tree.search((i,)) == val(i)
        keys = [k[0] for k, _ in tree.range_scan()]
        assert keys == list(range(n))

    def test_descending_inserts(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        for i in reversed(range(500)):
            tree.insert((i,), b"x")
        assert [k[0] for k, _ in tree.range_scan()] == list(range(500))

    def test_large_values(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        big = b"x" * 1000
        for i in range(20):
            tree.insert((i,), big)
        assert tree.search((7,)) == big

    def test_oversized_value_rejected(self, fm, cache):
        tree = BTree.create(cache, fm.create_file("t"))
        with pytest.raises(StorageError):
            tree.insert((1,), b"x" * 5000)


class TestRangeScan:
    @pytest.fixture
    def tree(self, fm, cache):
        t = BTree.create(cache, fm.create_file("t"))
        for i in range(0, 100, 2):  # evens 0..98
            t.insert((i,), val(i))
        return t

    def test_full_scan(self, tree):
        assert len(list(tree.range_scan())) == 50

    def test_bounded_inclusive(self, tree):
        keys = [k[0] for k, _ in tree.range_scan(lo=(10,), hi=(20,))]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_bounded_exclusive(self, tree):
        keys = [k[0] for k, _ in tree.range_scan(
            lo=(10,), hi=(20,), lo_inclusive=False, hi_inclusive=False)]
        assert keys == [12, 14, 16, 18]

    def test_bounds_between_keys(self, tree):
        keys = [k[0] for k, _ in tree.range_scan(lo=(9,), hi=(15,))]
        assert keys == [10, 12, 14]

    def test_open_ended_high(self, tree):
        keys = [k[0] for k, _ in tree.range_scan(lo=(94,))]
        assert keys == [94, 96, 98]

    def test_open_ended_low(self, tree):
        keys = [k[0] for k, _ in tree.range_scan(hi=(4,))]
        assert keys == [0, 2, 4]

    def test_empty_range(self, tree):
        assert list(tree.range_scan(lo=(51,), hi=(51,))) == []


class TestBulkLoad:
    def test_bulk_load_and_search(self, fm, cache):
        pairs = [((i,), val(i)) for i in range(5000)]
        tree = BTree.bulk_load(cache, fm.create_file("t"), pairs)
        assert tree.count == 5000
        assert tree.height >= 2
        for i in (0, 1, 2499, 4999):
            assert tree.search((i,)) == val(i)
        assert [k[0] for k, _ in tree.range_scan(lo=(100,), hi=(105,))] == \
            [100, 101, 102, 103, 104, 105]

    def test_bulk_load_empty(self, fm, cache):
        tree = BTree.bulk_load(cache, fm.create_file("t"), [])
        assert tree.count == 0
        assert tree.search((1,)) is None

    def test_bulk_load_rejects_unsorted(self, fm, cache):
        with pytest.raises(StorageError, match="sorted"):
            BTree.bulk_load(cache, fm.create_file("t"),
                            [((2,), b"b"), ((1,), b"a")])

    def test_bulk_load_cheaper_than_inserts(self, fm, device):
        """The Graefe lesson's load half (E2): loading sorted data writes
        far fewer pages than one-at-a-time inserts."""
        from repro.storage import BufferCache, FileManager

        pairs = [((i,), val(i)) for i in range(3000)]

        fm_bulk = fm
        cache = BufferCache(fm_bulk, num_pages=16)
        before = device.stats.snapshot()
        BTree.bulk_load(cache, fm_bulk.create_file("bulk"), pairs)
        bulk_writes = device.stats.diff(before).total_writes

        shuffled = list(pairs)
        random.Random(3).shuffle(shuffled)
        cache2 = BufferCache(fm_bulk, num_pages=16)
        tree = BTree.create(cache2, fm_bulk.create_file("onebyone"))
        before = device.stats.snapshot()
        for k, v in shuffled:
            tree.insert(k, v)
        cache2.flush_all()
        after = device.stats.diff(before)
        insert_io = after.total_writes + after.total_reads

        assert bulk_writes * 2 < insert_io

    def test_reopen(self, fm, cache):
        handle = fm.create_file("t")
        pairs = [((i,), val(i)) for i in range(100)]
        BTree.bulk_load(cache, handle, pairs)
        cache.evict_file(handle)
        reopened = BTree.open(cache, handle)
        assert reopened.count == 100
        assert reopened.search((42,)) == val(42)


class TestSmallCachePressure:
    def test_works_with_tiny_cache(self, fm, small_cache):
        tree = BTree.create(small_cache, fm.create_file("t"))
        for i in range(800):
            tree.insert((i,), val(i))
        assert tree.search((777,)) == val(777)
        assert len(list(tree.range_scan())) == 800


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "search"]),
            st.integers(0, 50),
        ),
        max_size=60,
    )
)
@settings(max_examples=40, deadline=None)
def test_btree_matches_dict_model(tmp_path_factory, ops):
    """Property: a B+ tree behaves like a dict (modulo ordering)."""
    from repro.storage import FileManager, IODevice

    root = tmp_path_factory.mktemp("prop")
    fm = FileManager([IODevice(0, str(root))], page_size=512)
    cache = BufferCache(fm, num_pages=32)
    tree = BTree.create(cache, fm.create_file("t"))
    model = {}
    for op, k in ops:
        if op == "insert":
            tree.insert((k,), val(k), replace=True)
            model[k] = val(k)
        else:
            expect = model.get(k)
            assert tree.search((k,)) == expect
    assert [k[0] for k, _ in tree.range_scan()] == sorted(model)
    fm.close()
