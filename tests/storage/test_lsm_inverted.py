"""Tests for the LSM inverted indexes (keyword and n-gram)."""

import pytest

from repro.storage.lsm import (
    LSMInvertedIndex,
    NoMergePolicy,
    ngram_tokens,
    word_tokens,
)


class TestTokenizers:
    def test_word_tokens(self):
        assert word_tokens("Hello, World! hello") == {"hello", "world"}

    def test_word_tokens_alnum(self):
        assert word_tokens("v2.0 beta-3") == {"v2", "0", "beta", "3"}

    def test_ngram_tokens(self):
        grams = ngram_tokens("ab", n=3)
        # padded: \1\1 a b \2\2 -> 4 grams
        assert len(grams) == 4

    def test_ngram_case_folding(self):
        assert ngram_tokens("AB") == ngram_tokens("ab")


@pytest.fixture
def keyword_index(fm, cache):
    return LSMInvertedIndex(fm, cache, "kw", tokenizer="keyword",
                            memory_budget_bytes=1 << 20,
                            merge_policy=NoMergePolicy())


@pytest.fixture
def ngram_index(fm, cache):
    return LSMInvertedIndex(fm, cache, "ng", tokenizer="ngram",
                            gram_length=2,
                            memory_budget_bytes=1 << 20,
                            merge_policy=NoMergePolicy())


class TestKeywordSearch:
    def test_single_token(self, keyword_index):
        keyword_index.insert_document("big data management", (1,))
        keyword_index.insert_document("small data", (2,))
        assert list(keyword_index.search_token("big")) == [(1,)]
        assert sorted(keyword_index.search_token("data")) == [(1,), (2,)]

    def test_conjunctive(self, keyword_index):
        keyword_index.insert_document("big data management", (1,))
        keyword_index.insert_document("big active data", (2,))
        keyword_index.insert_document("tiny systems", (3,))
        assert keyword_index.search_conjunctive("big data") == [(1,), (2,)]
        assert keyword_index.search_conjunctive("big management") == [(1,)]
        assert keyword_index.search_conjunctive("nonexistent") == []

    def test_delete_document(self, keyword_index):
        keyword_index.insert_document("hello world", (1,))
        keyword_index.delete_document("hello world", (1,))
        assert list(keyword_index.search_token("hello")) == []

    def test_survives_flush(self, keyword_index):
        keyword_index.insert_document("asterix rules", (1,))
        keyword_index.flush()
        keyword_index.insert_document("asterix and hyracks", (2,))
        assert sorted(keyword_index.search_token("asterix")) == [(1,), (2,)]
        assert keyword_index.num_disk_components == 1

    def test_composite_pk(self, fm, cache):
        idx = LSMInvertedIndex(fm, cache, "kw2",
                               merge_policy=NoMergePolicy())
        idx.insert_document("hello", ("p0", 7))
        assert list(idx.search_token("hello")) == [("p0", 7)]


class TestSimilaritySearch:
    def test_candidates_include_close_strings(self, ngram_index):
        words = ["asterix", "asterisk", "obelix", "hyracks"]
        for i, w in enumerate(words):
            ngram_index.insert_document(w, (i,))
        candidates = ngram_index.search_similarity("asterix", 2)
        assert (0,) in candidates
        assert (1,) in candidates          # edit distance 1
        assert (3,) not in candidates      # hyracks is far away

    def test_similarity_requires_ngram(self, keyword_index):
        with pytest.raises(ValueError, match="ngram"):
            keyword_index.search_similarity("x", 1)

    def test_threshold_guard(self, ngram_index):
        with pytest.raises(ValueError, match="threshold"):
            ngram_index.search_similarity("ab", 5)
