"""Tests for the LSM R-tree and its deleted-key design (§V-B)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import APoint, ARectangle
from repro.storage import BufferCache
from repro.storage.lsm import LSMRTree, NoMergePolicy, ConstantMergePolicy


def pt(x, y):
    p = APoint(x, y)
    return ARectangle(p, p)


def window(x0, y0, x1, y1):
    return ARectangle(APoint(x0, y0), APoint(x1, y1))


@pytest.fixture
def lsm(fm, cache):
    return LSMRTree(fm, cache, "r", memory_budget_bytes=1 << 20,
                    merge_policy=NoMergePolicy())


class TestBasics:
    def test_insert_search(self, lsm):
        lsm.insert(pt(1, 1), (1.0, 1.0, 10))
        lsm.insert(pt(9, 9), (9.0, 9.0, 20))
        got = list(lsm.search(window(0, 0, 5, 5)))
        assert got == [(1.0, 1.0, 10)]

    def test_delete_in_memory(self, lsm):
        lsm.insert(pt(1, 1), (1.0, 1.0, 10))
        lsm.delete((1.0, 1.0, 10))
        assert list(lsm.search(window(0, 0, 5, 5))) == []

    def test_reinsert_after_delete(self, lsm):
        key = (1.0, 1.0, 10)
        lsm.insert(pt(1, 1), key)
        lsm.delete(key)
        lsm.insert(pt(1, 1), key)
        assert list(lsm.search(window(0, 0, 5, 5))) == [key]

    def test_len(self, lsm):
        for i in range(10):
            lsm.insert(pt(i, i), (float(i), float(i), i))
        lsm.delete((3.0, 3.0, 3))
        assert len(lsm) == 9


class TestFlushAndDeletedKeys:
    def test_flush_preserves_entries(self, lsm):
        for i in range(100):
            lsm.insert(pt(i % 10, i // 10), (float(i % 10), float(i // 10), i))
        lsm.flush()
        assert lsm.num_disk_components == 1
        assert len(list(lsm.search(window(0, 0, 9, 9)))) == 100

    def test_delete_across_components(self, lsm):
        key = (2.0, 2.0, 7)
        lsm.insert(pt(2, 2), key)
        lsm.flush()
        lsm.delete(key)           # tombstone in memory kills disk entry
        assert list(lsm.search(window(0, 0, 5, 5))) == []
        lsm.flush()               # tombstone now in deleted-key B+ tree
        assert list(lsm.search(window(0, 0, 5, 5))) == []

    def test_delete_then_reinsert_across_flushes(self, lsm):
        key = (2.0, 2.0, 7)
        lsm.insert(pt(2, 2), key)
        lsm.flush()
        lsm.delete(key)
        lsm.flush()
        lsm.insert(pt(2, 2), key)
        lsm.flush()
        assert list(lsm.search(window(0, 0, 5, 5))) == [key]

    def test_auto_flush_on_budget(self, fm, cache):
        lsm = LSMRTree(fm, cache, "r", memory_budget_bytes=4096,
                       merge_policy=NoMergePolicy())
        for i in range(300):
            lsm.insert(pt(i % 20, i % 17), (float(i % 20), float(i % 17), i))
        assert lsm.num_disk_components >= 1


class TestMerge:
    def test_full_merge_purges_tombstones(self, lsm):
        keys = [(float(i), float(i), i) for i in range(10)]
        for i, key in enumerate(keys):
            lsm.insert(pt(i, i), key)
        lsm.flush()
        for key in keys[:5]:
            lsm.delete(key)
        lsm.flush()
        merged = lsm.merge()
        assert lsm.num_disk_components == 1
        assert merged.num_entries == 5
        assert merged.deleted_keys.count == 0
        assert sorted(k[2] for k in lsm.search(window(0, 0, 20, 20))) == \
            [5, 6, 7, 8, 9]

    def test_partial_merge_keeps_tombstones(self, lsm):
        key = (1.0, 1.0, 1)
        lsm.insert(pt(1, 1), key)
        lsm.flush()                    # oldest, holds the matter
        lsm.delete(key)
        lsm.flush()
        lsm.insert(pt(5, 5), (5.0, 5.0, 5))
        lsm.flush()
        lsm.merge(slice(0, 2))
        assert lsm.num_disk_components == 2
        assert list(lsm.search(window(0, 0, 2, 2))) == []

    def test_merge_policy_runs(self, fm, cache):
        lsm = LSMRTree(fm, cache, "r", memory_budget_bytes=2048,
                       merge_policy=ConstantMergePolicy(2))
        for i in range(400):
            lsm.insert(pt(i % 20, i % 19), (float(i % 20), float(i % 19), i))
        assert lsm.stats.merges > 0
        assert lsm.num_disk_components <= 3


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["ins", "del", "flush"]),
            st.integers(0, 9), st.integers(0, 9),
        ),
        max_size=50,
    )
)
@settings(max_examples=40, deadline=None)
def test_lsm_rtree_matches_set_model(tmp_path_factory, ops):
    from repro.storage import FileManager, IODevice

    root = tmp_path_factory.mktemp("rprop")
    fm = FileManager([IODevice(0, str(root))], page_size=1024)
    cache = BufferCache(fm, num_pages=64)
    lsm = LSMRTree(fm, cache, "r", memory_budget_bytes=1 << 20,
                   merge_policy=ConstantMergePolicy(2))
    model = set()
    for op, x, y in ops:
        key = (float(x), float(y), x * 10 + y)
        if op == "ins":
            lsm.insert(pt(x, y), key)
            model.add(key)
        elif op == "del":
            lsm.delete(key)
            model.discard(key)
        else:
            lsm.flush()
    got = set(lsm.search(window(0, 0, 9, 9)))
    assert got == model
    fm.close()
