"""Unit tests for the metadata catalog."""

import pytest

from repro import connect
from repro.common.errors import (
    DuplicateError,
    MetadataError,
    UnknownEntityError,
)
from repro.lang import core_ast as ast


@pytest.fixture
def db(tmp_path):
    instance = connect(str(tmp_path / "db"))
    yield instance
    instance.close()


@pytest.fixture
def md(db):
    return db.metadata


class TestDataverses:
    def test_default_exists(self, md):
        assert md.current == "Default"
        assert "Metadata" in md.dataverses

    def test_create_use_drop(self, db, md):
        db.execute("CREATE DATAVERSE lab; USE lab;")
        assert md.current == "lab"
        db.execute("DROP DATAVERSE lab;")
        assert md.current == "Default"
        assert "lab" not in md.dataverses

    def test_duplicate_rejected(self, db):
        db.execute("CREATE DATAVERSE x;")
        with pytest.raises(DuplicateError):
            db.execute("CREATE DATAVERSE x;")
        db.execute("CREATE DATAVERSE x IF NOT EXISTS;")   # idempotent

    def test_metadata_dataverse_protected(self, db):
        with pytest.raises(MetadataError):
            db.execute("DROP DATAVERSE Metadata;")

    def test_drop_dataverse_drops_datasets(self, db, md):
        db.execute("""
            CREATE DATAVERSE lab; USE lab;
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
        """)
        db.execute("DROP DATAVERSE lab;")
        assert not md.dataset_exists("lab.D")


class TestTypesAndDatasets:
    def test_dataset_requires_type(self, db):
        with pytest.raises(UnknownEntityError):
            db.execute("CREATE DATASET D(NoSuchType) PRIMARY KEY id;")

    def test_drop_type(self, db, md):
        db.execute("CREATE TYPE T AS { id: int };")
        db.execute("DROP TYPE T;")
        with pytest.raises(UnknownEntityError):
            md.type_registry("Default").resolve("T")

    def test_dataset_entry_fields(self, db, md):
        db.execute("""
            CREATE TYPE T AS { a: int, b: string };
            CREATE DATASET D(T) PRIMARY KEY a, b;
        """)
        entry = md.dataset_entry("D")
        assert entry.pk_fields == ("a", "b")
        assert entry.kind == "internal"
        assert entry.name == "Default.D"

    def test_drop_dataset_frees_storage(self, db, md):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            INSERT INTO D ({"id": 1});
        """)
        db.execute("DROP DATASET D;")
        assert not md.dataset_exists("D")
        # recreating works and starts empty
        db.execute("CREATE DATASET D(T) PRIMARY KEY id;")
        assert db.query("SELECT VALUE COUNT(*) FROM D d;") == [0]

    def test_if_exists_variants(self, db):
        db.execute("DROP DATASET Nope IF EXISTS;")
        with pytest.raises(UnknownEntityError):
            db.execute("DROP DATASET Nope;")


class TestIndexes:
    def test_index_metadata_mirrored(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int, x: string };
            CREATE DATASET D(T) PRIMARY KEY id;
            CREATE INDEX byX ON D(x);
        """)
        rows = db.query("""
            SELECT VALUE i.IndexStructure FROM Metadata.`Index` i
            WHERE i.IndexName = 'byX';
        """)
        assert rows == ["BTREE"]

    def test_drop_index(self, db, md):
        db.execute("""
            CREATE TYPE T AS { id: int, x: string };
            CREATE DATASET D(T) PRIMARY KEY id;
            CREATE INDEX byX ON D(x);
            DROP INDEX D.byX;
        """)
        assert md.secondary_indexes("D") == []

    def test_duplicate_index(self, db):
        db.execute("""
            CREATE TYPE T AS { id: int, x: string };
            CREATE DATASET D(T) PRIMARY KEY id;
            CREATE INDEX byX ON D(x);
        """)
        with pytest.raises(DuplicateError):
            db.execute("CREATE INDEX byX ON D(x);")
        db.execute("CREATE INDEX byX ON D(x) IF NOT EXISTS;")

    def test_array_index_mirrored_with_unnest_list(self, db, md):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            CREATE INDEX byDay ON D(UNNEST lines SELECT day);
        """)
        rows = db.query("""
            SELECT VALUE [i.IndexStructure, i.UnnestList, i.SearchKey]
            FROM Metadata.`Index` i WHERE i.IndexName = 'byDay';
        """)
        assert rows == [["ARRAY", ["lines"], ["day"]]]
        (spec,) = md.secondary_indexes("D")
        assert spec.kind == "array"
        assert spec.array_path == "lines"
        assert spec.fields == ("day",)

    def test_array_index_drop(self, db, md):
        db.execute("""
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            CREATE INDEX byDay ON D(UNNEST lines SELECT day);
            DROP INDEX D.byDay;
        """)
        assert md.secondary_indexes("D") == []


class TestQualification:
    def test_qualify(self, md):
        assert md.qualify("Ds") == "Default.Ds"
        assert md.qualify("Other.Ds") == "Other.Ds"

    def test_cross_dataverse_reference(self, db):
        db.execute("""
            CREATE DATAVERSE a; USE a;
            CREATE TYPE T AS { id: int };
            CREATE DATASET D(T) PRIMARY KEY id;
            INSERT INTO D ({"id": 5});
            USE Default;
        """)
        assert db.query("SELECT VALUE d.id FROM a.D d;") == [5]
