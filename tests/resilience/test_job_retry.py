"""Job-level failure detection and retry, driven through the SQL++ API.

Faults injected into an executing job must abort the attempt, recover
whatever broke (node restart + WAL replay for crashes, nothing for
transient faults), and transparently retry — the caller sees correct
results, and only the ``resilience.*`` metrics betray that anything
happened.
"""

import pytest

from repro import connect
from repro.observability.metrics import get_registry
from repro.resilience import (
    DiskIOFault,
    FaultInjector,
    FaultRule,
    FaultSchedule,
    NodeCrashFault,
    OperatorFault,
)


@pytest.fixture
def db(tmp_path):
    injector = FaultInjector()
    instance = connect(str(tmp_path / "db"), injector=injector)
    instance.execute("""
        CREATE TYPE UserType AS { id: int, alias: string };
        CREATE DATASET Users(UserType) PRIMARY KEY id;
    """)
    for i in range(10):
        instance.execute(
            f'INSERT INTO Users ({{"id": {i}, "alias": "u{i}"}});')
    yield instance, injector
    injector.disarm()
    instance.close()


COUNT = "SELECT VALUE COUNT(*) FROM Users u;"


class TestJobRetry:
    def test_operator_fault_retries_transparently(self, db):
        instance, injector = db
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="executor.operator", fault=OperatorFault,
                      at_hit=1),
        ]))
        before = get_registry().snapshot()
        assert instance.query(COUNT) == [10]
        delta = get_registry().delta(before)
        assert delta.get("resilience.faults.operator") == 1
        assert delta.get("resilience.job_retries") == 1
        assert "resilience.job_failures" not in delta

    def test_disk_fault_retries_transparently(self, db):
        instance, injector = db
        instance.flush_dataset("Users")      # seal records into pages
        for node in instance.cluster.nodes:  # cold caches: reads go to
            instance.cluster.crash_node(node.node_id)     # real files
            instance.cluster.restart_node(node.node_id)
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="disk.read_page", fault=DiskIOFault, at_hit=1),
        ]))
        before = get_registry().snapshot()
        assert instance.query(COUNT) == [10]
        delta = get_registry().delta(before)
        assert delta.get("resilience.faults.disk_io") == 1
        assert delta.get("resilience.job_retries") == 1

    def test_node_crash_mid_query_recovers_and_retries(self, db):
        instance, injector = db
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="executor.operator", fault=NodeCrashFault,
                      at_hit=1, node=0),
        ]))
        before = get_registry().snapshot()
        assert instance.query(COUNT) == [10]
        delta = get_registry().delta(before)
        assert delta.get("resilience.node_crashes") == 1
        assert delta.get("resilience.node_restarts") == 1
        assert delta.get("resilience.wal_replays") == 1
        assert delta.get("resilience.job_retries") == 1
        # no records lost: the WAL replayed the memory-resident ones
        assert instance.query(COUNT) == [10]

    def test_retry_exhaustion_raises_and_counts_failure(self, db):
        instance, injector = db
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="executor.operator", fault=OperatorFault,
                      probability=1.0, max_fires=10_000),
        ]))
        before = get_registry().snapshot()
        with pytest.raises(OperatorFault):
            instance.query(COUNT)
        delta = get_registry().delta(before)
        assert delta.get("resilience.job_failures") == 1
        max_attempts = instance.cluster.config.resilience.max_job_attempts
        assert delta.get("resilience.job_retries") == max_attempts - 1
        # disarm: the instance is healthy again
        injector.disarm()
        assert instance.query(COUNT) == [10]

    def test_backoff_runs_on_simulated_clock(self, db):
        instance, injector = db
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="executor.operator", fault=OperatorFault,
                      at_hit=1),
        ]))
        clock_before = instance.cluster.clock.now_us
        instance.query(COUNT)
        assert instance.cluster.clock.now_us > clock_before

    def test_retry_events_land_on_trace_span(self, db):
        instance, injector = db
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="executor.operator", fault=OperatorFault,
                      at_hit=1),
        ]))
        result = instance.execute(COUNT, trace=True)
        assert result.rows == [10]
        execute_span = next(s for s in result.trace.phases
                            if s.name == "execute")
        events = [e["name"] for e in execute_span.events]
        assert "job_retry" in events
