"""Unit tests for the fault injector, schedules, and retry policy."""

import pytest

from repro.resilience import (
    DiskIOFault,
    FaultInjector,
    FaultRule,
    FaultSchedule,
    FaultScheduleError,
    NodeCrashFault,
    OperatorFault,
    ResilienceFault,
    RetryPolicy,
    SimulatedClock,
    call_with_retry,
)


class TestFaultRuleValidation:
    def test_needs_exactly_one_trigger(self):
        with pytest.raises(FaultScheduleError, match="exactly one"):
            FaultRule(site="s")
        with pytest.raises(FaultScheduleError, match="exactly one"):
            FaultRule(site="s", at_hit=1, probability=0.5)

    def test_at_hit_is_one_based(self):
        with pytest.raises(FaultScheduleError, match="1-based"):
            FaultRule(site="s", at_hit=0)

    def test_probability_bounds(self):
        with pytest.raises(FaultScheduleError):
            FaultRule(site="s", probability=0.0)
        with pytest.raises(FaultScheduleError):
            FaultRule(site="s", probability=1.5)

    def test_site_required(self):
        with pytest.raises(FaultScheduleError, match="site"):
            FaultRule(site="", at_hit=1)

    def test_fault_must_be_resilience_fault(self):
        with pytest.raises(FaultScheduleError, match="subclass"):
            FaultRule(site="s", at_hit=1, fault=ValueError)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultScheduleError, match="unknown fault kind"):
            FaultRule.from_dict({"site": "s", "fault": "gremlin",
                                 "at_hit": 1})


class TestScheduleRoundTrip:
    def test_dict_round_trip(self):
        schedule = FaultSchedule(seed=7, rules=[
            FaultRule(site="wal.flush", fault=NodeCrashFault, at_hit=3,
                      node=1),
            FaultRule(site="disk.read_page", fault=DiskIOFault,
                      probability=0.25, max_fires=5),
        ])
        clone = FaultSchedule.from_dict(schedule.to_dict())
        assert clone.seed == 7
        assert clone.rules == schedule.rules


class TestInjector:
    def test_disarmed_is_noop(self):
        injector = FaultInjector()
        for _ in range(100):
            injector.hit("disk.read_page", node=0)
        assert injector.history == []

    def test_fires_on_exact_nth_hit(self):
        injector = FaultInjector(FaultSchedule(rules=[
            FaultRule(site="s", fault=OperatorFault, at_hit=3),
        ]))
        injector.hit("s", node=0)
        injector.hit("s", node=0)
        with pytest.raises(OperatorFault) as exc:
            injector.hit("s", node=0)
        assert exc.value.site == "s"
        assert exc.value.node == 0
        # max_fires=1 consumed: later hits pass
        injector.hit("s", node=0)
        assert [h["hit"] for h in injector.history] == [3]

    def test_streams_are_per_site_and_node(self):
        injector = FaultInjector(FaultSchedule(rules=[
            FaultRule(site="s", fault=OperatorFault, at_hit=2, node=1),
        ]))
        # node 0's stream never matches the node-pinned rule
        for _ in range(5):
            injector.hit("s", node=0)
        injector.hit("s", node=1)
        with pytest.raises(OperatorFault):
            injector.hit("s", node=1)

    def test_probability_is_deterministic_per_seed(self):
        def firing_pattern():
            injector = FaultInjector(FaultSchedule(seed=42, rules=[
                FaultRule(site="s", fault=DiskIOFault, probability=0.3,
                          max_fires=1000),
            ]))
            pattern = []
            for _ in range(50):
                try:
                    injector.hit("s", node=0)
                    pattern.append(0)
                except DiskIOFault:
                    pattern.append(1)
            return pattern

        first = firing_pattern()
        assert first == firing_pattern()
        assert 1 in first   # p=0.3 over 50 draws fires at least once

    def test_arm_resets_counters(self):
        injector = FaultInjector()
        schedule = FaultSchedule(rules=[
            FaultRule(site="s", fault=OperatorFault, at_hit=2),
        ])
        injector.arm(schedule)
        injector.hit("s", node=0)
        injector.arm(schedule)       # re-arm: hit counter back to zero
        injector.hit("s", node=0)    # hit 1 again, no fire
        with pytest.raises(OperatorFault):
            injector.hit("s", node=0)

    def test_scoped_injector_merges_context(self):
        injector = FaultInjector(FaultSchedule(rules=[
            FaultRule(site="s", fault=OperatorFault, at_hit=1, node=2),
        ]))
        scoped = injector.bind(node=2)
        with pytest.raises(OperatorFault) as exc:
            scoped.hit("s", extra="x")
        assert exc.value.node == 2
        assert exc.value.context["extra"] == "x"

    def test_fault_carries_typed_code(self):
        assert NodeCrashFault.code == 3501
        assert not NodeCrashFault.transient
        assert DiskIOFault.transient
        assert issubclass(NodeCrashFault, ResilienceFault)


class TestRetryPolicy:
    def test_capped_exponential_delays(self):
        policy = RetryPolicy(max_attempts=5, base_delay_us=100.0,
                             multiplier=2.0, cap_us=350.0)
        assert [policy.delay_us(a) for a in (1, 2, 3, 4)] == \
            [100.0, 200.0, 350.0, 350.0]

    def test_backoff_advances_simulated_clock_only(self):
        clock = SimulatedClock()
        policy = RetryPolicy(base_delay_us=500.0)
        delay = policy.backoff(1, clock)
        assert delay == 500.0
        assert clock.now_us == 500.0

    def test_call_with_retry_succeeds_after_transients(self):
        clock = SimulatedClock()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise DiskIOFault(site="s")
            return "ok"

        result = call_with_retry(
            flaky, RetryPolicy(max_attempts=4), clock,
            retry_on=(DiskIOFault,))
        assert result == "ok"
        assert len(attempts) == 3
        assert clock.now_us > 0

    def test_call_with_retry_exhausts(self):
        def always():
            raise DiskIOFault(site="s")

        with pytest.raises(DiskIOFault):
            call_with_retry(always, RetryPolicy(max_attempts=2),
                            SimulatedClock(), retry_on=(DiskIOFault,))
