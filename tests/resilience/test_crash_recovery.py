"""Crash-point tests: kill a node at every WAL flush boundary.

Each entity transaction forces the log exactly once (at ENTITY_COMMIT),
so during a K-record insert sequence the ``wal.flush`` site is hit K
times — and a crash scheduled at hit N must leave exactly the first
N - 1 records durable.  The parameterized sweep below proves that for
every boundary: post-recovery contents == the committed prefix, and the
at-least-once retry of the interrupted insert then converges to the full
dataset.
"""

import pytest

from repro.common.config import ClusterConfig
from repro.hyracks.cluster import ClusterController
from repro.observability.metrics import get_registry
from repro.resilience import (
    FaultInjector,
    FaultRule,
    FaultSchedule,
    NodeCrashFault,
    NodeState,
)

RECORDS = 6


@pytest.fixture
def single_node(tmp_path):
    injector = FaultInjector()
    cluster = ClusterController(
        str(tmp_path / "cluster"),
        ClusterConfig(num_nodes=1, partitions_per_node=1),
        injector=injector,
    )
    cluster.create_dataset("Users", ("id",))
    yield cluster, injector
    cluster.close()


def crash_at_flush(injector, hit, node=0):
    injector.arm(FaultSchedule(rules=[
        FaultRule(site="wal.flush", fault=NodeCrashFault, at_hit=hit,
                  node=node),
    ]))


class TestEveryFlushBoundary:
    @pytest.mark.parametrize("crash_at", range(1, RECORDS + 1))
    def test_post_recovery_contents_equal_committed_prefix(
            self, single_node, crash_at):
        cluster, injector = single_node
        crash_at_flush(injector, crash_at)
        before = get_registry().snapshot()

        interrupted = None
        for i in range(RECORDS):
            record = {"id": i, "alias": f"u{i}"}
            try:
                cluster.insert_record("Users", record)
            except NodeCrashFault as fault:
                interrupted = i
                assert fault.node == 0
                cluster.handle_fault(fault)   # crash + restart + replay
                # the recovered node holds exactly the committed prefix:
                # commits 1..crash_at-1 were fsynced, the interrupted
                # transaction's records died in the truncated WAL tail
                ids = sorted(rec["id"] for _, rec in
                             cluster.scan_dataset("Users"))
                assert ids == list(range(crash_at - 1))
                # at-least-once: retry the interrupted insert
                cluster.insert_record("Users", record)

        assert interrupted == crash_at - 1   # hit N fires in insert N
        assert cluster.nodes[0].state is NodeState.ALIVE
        ids = sorted(rec["id"] for _, rec in cluster.scan_dataset("Users"))
        assert ids == list(range(RECORDS))

        delta = get_registry().delta(before)
        assert delta.get("resilience.node_crashes") == 1
        assert delta.get("resilience.node_restarts") == 1
        assert delta.get("resilience.wal_replays") == 1
        assert delta.get("resilience.wal_records_replayed",
                         0) == crash_at - 1
        assert delta.get("resilience.faults.node_crash") == 1

    def test_flushed_components_survive_without_replay(self, single_node):
        """Records sealed into a disk component before the crash are not
        re-replayed from the WAL — only the memory-resident suffix is."""
        cluster, injector = single_node
        for i in range(4):
            cluster.insert_record("Users", {"id": i, "alias": f"u{i}"})
        cluster.flush_dataset("Users")       # ids 0..3 now durable (LSM)
        for i in range(4, RECORDS):
            cluster.insert_record("Users", {"id": i, "alias": f"u{i}"})

        injector.arm(FaultSchedule())        # nothing scheduled
        before = get_registry().snapshot()
        cluster.crash_node(0)
        assert cluster.nodes[0].state is NodeState.FAILED
        replayed = cluster.restart_node(0)

        assert replayed == RECORDS - 4       # only the WAL-only suffix
        ids = sorted(rec["id"] for _, rec in cluster.scan_dataset("Users"))
        assert ids == list(range(RECORDS))
        delta = get_registry().delta(before)
        assert delta.get("resilience.wal_records_replayed") == RECORDS - 4

    def test_crash_and_restart_are_idempotent(self, single_node):
        cluster, _ = single_node
        cluster.insert_record("Users", {"id": 1, "alias": "a"})
        cluster.crash_node(0)
        cluster.crash_node(0)                # second crash: no-op
        cluster.restart_node(0)
        assert cluster.restart_node(0) == 0  # already alive: no-op
        assert [rec["id"] for _, rec in cluster.scan_dataset("Users")] == [1]


class TestMultiNode:
    def test_surviving_node_keeps_serving(self, tmp_path):
        injector = FaultInjector()
        cluster = ClusterController(
            str(tmp_path / "cluster"),
            ClusterConfig(num_nodes=2, partitions_per_node=1),
            injector=injector,
        )
        cluster.create_dataset("Users", ("id",))
        records = [{"id": i, "alias": f"u{i}"} for i in range(20)]
        # split by the cluster's own routing
        on_node0 = [r for r in records
                    if cluster.node_of_partition(
                        cluster.partition_of_key((r["id"],))).node_id == 0]
        assert on_node0 and len(on_node0) < len(records)

        for r in records:
            cluster.insert_record("Users", r)
        cluster.crash_node(0)

        # node 1's partitions are untouched by node 0's death
        survivor = [r for r in records if r not in on_node0]
        for r in survivor:
            assert cluster.get_record("Users", (r["id"],)) is not None
        # node 0's are unreachable until restart
        with pytest.raises(NodeCrashFault):
            cluster.get_record("Users", (on_node0[0]["id"],))

        cluster.restart_node(0)
        ids = sorted(rec["id"] for _, rec in cluster.scan_dataset("Users"))
        assert ids == list(range(20))
        cluster.close()
