"""Feed intake resilience: source faults, mid-batch crashes, replay.

The contract is at-least-once delivery de-duplicated by primary key:
whatever combination of source drops and node crashes interrupts a pump,
every record eventually lands exactly once in the dataset.
"""

import pytest

from repro import connect
from repro.common.config import ClusterConfig, ResilienceConfig
from repro.feeds import FeedManager, GeneratorSource
from repro.observability.metrics import get_registry
from repro.resilience import (
    FaultInjector,
    FaultRule,
    FaultSchedule,
    FeedSourceFault,
    NodeCrashFault,
)


def records(n):
    return [{"messageId": i, "text": f"msg-{i}"} for i in range(n)]


@pytest.fixture
def db(tmp_path):
    injector = FaultInjector()
    instance = connect(str(tmp_path / "db"), injector=injector)
    instance.execute("""
        CREATE TYPE MsgType AS { messageId: int, text: string };
        CREATE DATASET Messages(MsgType) PRIMARY KEY messageId;
    """)
    yield instance, injector
    injector.disarm()
    instance.close()


def start_feed(instance, data, batch_size=8):
    feeds = FeedManager(instance)
    feeds.create_feed("msgs", GeneratorSource(iter(data)),
                      batch_size=batch_size)
    feeds.connect_feed("msgs", "Messages")
    feeds.start_feed("msgs")
    return feeds


COUNT = "SELECT VALUE COUNT(*) FROM Messages m;"


class TestSourceFaults:
    def test_source_fault_backs_off_and_repulls(self, db):
        instance, injector = db
        feeds = start_feed(instance, records(20))
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="feed.next_batch", fault=FeedSourceFault,
                      at_hit=2),
        ]))
        before = get_registry().snapshot()
        clock_before = instance.cluster.clock.now_us
        assert feeds.pump("msgs") == 20
        assert instance.query(COUNT) == [20]

        stats = feeds.feeds["msgs"].stats
        assert stats.source_faults == 1
        delta = get_registry().delta(before)
        assert delta.get("resilience.feed_source_faults") == 1
        # the retry cost simulated time, not records
        assert instance.cluster.clock.now_us > clock_before

    def test_source_fault_exhaustion_propagates(self, db):
        instance, injector = db
        feeds = start_feed(instance, records(8))
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="feed.next_batch", fault=FeedSourceFault,
                      probability=1.0, max_fires=10_000),
        ]))
        with pytest.raises(FeedSourceFault):
            feeds.pump("msgs")
        # the source never yielded: nothing half-ingested
        assert instance.query(COUNT) == [0]


class TestCrashDuringIngest:
    def test_crash_mid_batch_replays_without_duplicates(self, db):
        instance, injector = db
        feeds = start_feed(instance, records(24))
        # kill node 0 at its 5th entity commit during the pump
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="wal.flush", fault=NodeCrashFault, at_hit=5,
                      node=0),
        ]))
        before = get_registry().snapshot()
        feeds.pump("msgs")
        # at-least-once, PK-deduplicated: exactly one copy of each
        assert instance.query(COUNT) == [24]
        assert sorted(
            instance.query("SELECT VALUE m.messageId FROM Messages m;")
        ) == list(range(24))

        stats = feeds.feeds["msgs"].stats
        assert stats.replays >= 1
        delta = get_registry().delta(before)
        assert delta.get("resilience.feed_replays", 0) >= 1
        assert delta.get("resilience.node_crashes") == 1
        assert delta.get("resilience.wal_replays") == 1

    def test_pending_batch_survives_exhausted_pump(self, tmp_path):
        # one retry budget: the first fault inside ingest exhausts it
        injector = FaultInjector()
        config = ClusterConfig(
            resilience=ResilienceConfig(feed_retry_attempts=1))
        instance = connect(str(tmp_path / "db"), config,
                           injector=injector)
        instance.execute("""
            CREATE TYPE MsgType AS { messageId: int, text: string };
            CREATE DATASET Messages(MsgType) PRIMARY KEY messageId;
        """)
        feeds = start_feed(instance, records(8))
        injector.arm(FaultSchedule(rules=[
            FaultRule(site="wal.flush", fault=NodeCrashFault, at_hit=3,
                      node=0),
        ]))
        with pytest.raises(NodeCrashFault):
            feeds.pump("msgs")
        feed = feeds.feeds["msgs"]
        assert len(feed.pending) == 8        # batch staged, not lost

        # recover the cluster, then the next pump replays the buffer
        injector.disarm()
        instance.cluster.ensure_alive()
        assert feeds.pump("msgs") >= 0
        assert feed.pending == []
        assert sorted(
            instance.query("SELECT VALUE m.messageId FROM Messages m;")
        ) == list(range(8))
        assert feed.stats.records_replayed >= 8
        instance.close()
