"""The write-ahead log (paper feature 9).

AsterixDB offers "basic NoSQL-like transactional capabilities similar to
those of popular NoSQL stores": record-level *entity transactions* — each
insert/upsert/delete of one record (plus its secondary-index maintenance) is
atomic and durable, but there are no multi-record ACID transactions.  The
log accordingly has four record types:

* ``UPDATE`` — one primary-index mutation (key + new value, or a delete).
* ``ENTITY_COMMIT`` — seals the entity transaction that wrote the UPDATE.
* ``FLUSH`` — an LSM component flush: everything up to ``lsn`` for that
  index is now durable in a disk component.
* ``CHECKPOINT`` — a low-water mark; recovery starts scanning here.

LSNs are byte offsets into the log file, so they are monotone and directly
seekable.  Records are length-prefixed and CRC-free (simulated disks don't
tear); the log itself is a real append-only file so recovery tests exercise
real re-reads.
"""

from __future__ import annotations

import enum
import os
import struct
from dataclasses import dataclass

from repro.adm.serializer import deserialize_tuple, serialize_tuple
from repro.common.errors import TransactionError


class LogRecordType(enum.IntEnum):
    UPDATE = 1
    ENTITY_COMMIT = 2
    FLUSH = 3
    CHECKPOINT = 4
    ABORT = 5


@dataclass
class LogRecord:
    """One WAL record.

    For UPDATE: ``dataset``/``partition``/``key``/``value`` describe the
    primary-index mutation; ``is_delete`` marks antimatter.  For FLUSH:
    ``dataset``/``partition`` name the index and ``flush_lsn`` the newest
    LSN contained in the flushed component.  For CHECKPOINT: ``flush_lsn``
    is the low-water mark.
    """

    type: LogRecordType
    txn_id: int = 0
    dataset: str = ""
    partition: int = 0
    key: tuple = ()
    value: bytes = b""
    is_delete: bool = False
    flush_lsn: int = 0
    lsn: int = -1  # assigned by append()

    def encode(self) -> bytes:
        body = bytearray()
        body.append(self.type)
        body.extend(struct.pack(">QI", self.txn_id, self.partition))
        ds = self.dataset.encode("utf-8")
        body.extend(struct.pack(">H", len(ds)))
        body.extend(ds)
        kb = serialize_tuple(self.key)
        body.extend(struct.pack(">I", len(kb)))
        body.extend(kb)
        body.extend(struct.pack(">I", len(self.value)))
        body.extend(self.value)
        body.append(1 if self.is_delete else 0)
        body.extend(struct.pack(">q", self.flush_lsn))
        return struct.pack(">I", len(body)) + bytes(body)

    @classmethod
    def decode(cls, body: bytes, lsn: int) -> "LogRecord":
        rtype = LogRecordType(body[0])
        txn_id, partition = struct.unpack_from(">QI", body, 1)
        pos = 13
        (dlen,) = struct.unpack_from(">H", body, pos)
        pos += 2
        dataset = body[pos:pos + dlen].decode("utf-8")
        pos += dlen
        (klen,) = struct.unpack_from(">I", body, pos)
        pos += 4
        key = deserialize_tuple(body[pos:pos + klen]) if klen else ()
        pos += klen
        (vlen,) = struct.unpack_from(">I", body, pos)
        pos += 4
        value = bytes(body[pos:pos + vlen])
        pos += vlen
        is_delete = bool(body[pos])
        pos += 1
        (flush_lsn,) = struct.unpack_from(">q", body, pos)
        return cls(rtype, txn_id, dataset, partition, key, value,
                   is_delete, flush_lsn, lsn)


class LogManager:
    """Append-only WAL over one real file."""

    MAGIC = b"ALOG0001"

    def __init__(self, path: str, injector=None):
        self.path = path
        #: Optional fault injector (duck-typed: anything with
        #: ``hit(site, **ctx)``); the ``wal.flush`` site fires *before*
        #: the fsync, so a scheduled crash there loses exactly the
        #: commits since the previous flush — the crash-point boundary
        #: tests/resilience/test_crash_recovery.py sweeps.
        self.injector = injector
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fd = open(path, "a+b")
        self._fd.seek(0, os.SEEK_END)
        if self._fd.tell() == 0:
            # header keeps LSN 0 unused: "durable LSN 0" always means
            # "nothing durable", never "durable through the first record"
            self._fd.write(self.MAGIC)
        self._append_lsn = self._fd.tell()
        #: Everything at offsets < durable_lsn has been fsynced (existing
        #: bytes at open time count: they survived their writer).
        self.durable_lsn = self._append_lsn
        self.appends = 0
        self.flushes = 0
        self.crashed = False

    @property
    def tail_lsn(self) -> int:
        return self._append_lsn

    def append(self, record: LogRecord) -> int:
        """Append a record; returns its LSN (byte offset)."""
        record.lsn = self._append_lsn
        data = record.encode()
        self._fd.write(data)
        self._append_lsn += len(data)
        self.appends += 1
        return record.lsn

    def flush(self) -> None:
        """Force the log to stable storage (entity-commit durability)."""
        if self.injector is not None:
            self.injector.hit("wal.flush", lsn=self._append_lsn)
        self._fd.flush()
        os.fsync(self._fd.fileno())
        self.durable_lsn = self._append_lsn
        self.flushes += 1

    def crash(self) -> None:
        """Simulate losing the process: discard every appended-but-not-
        fsynced byte, exactly what a real crash does to a buffered WAL
        tail.  The manager is unusable afterwards; node restart opens a
        fresh :class:`LogManager` on the same path."""
        if self.crashed:
            return
        self.crashed = True
        # closing flushes Python's buffer into the file; truncating back
        # to the durable tail then drops everything past the last fsync
        self._fd.close()
        with open(self.path, "r+b") as f:
            f.truncate(self.durable_lsn)

    def scan(self, from_lsn: int = 0):
        """Yield records with lsn >= from_lsn, in order."""
        self._fd.flush()  # make buffered appends visible to the read handle
        from_lsn = max(from_lsn, len(self.MAGIC))
        with open(self.path, "rb") as f:
            f.seek(from_lsn)
            pos = from_lsn
            while True:
                header = f.read(4)
                if len(header) < 4:
                    return
                (length,) = struct.unpack(">I", header)
                body = f.read(length)
                if len(body) < length:
                    return  # torn tail after a crash: ignore
                yield LogRecord.decode(body, pos)
                pos += 4 + length

    def last_checkpoint_lsn(self) -> int:
        """LSN recorded by the most recent CHECKPOINT (0 if none)."""
        low_water = 0
        for record in self.scan(0):
            if record.type is LogRecordType.CHECKPOINT:
                low_water = record.flush_lsn
        return low_water

    def checkpoint(self, low_water_lsn: int) -> int:
        """Write a checkpoint: recovery may start scanning at
        ``low_water_lsn`` (the min durable LSN across all indexes)."""
        if low_water_lsn > self._append_lsn:
            raise TransactionError(
                f"checkpoint beyond log tail: {low_water_lsn}"
            )
        lsn = self.append(
            LogRecord(LogRecordType.CHECKPOINT, flush_lsn=low_water_lsn)
        )
        self.flush()
        return lsn

    def close(self) -> None:
        if not self.crashed:
            self._fd.close()
