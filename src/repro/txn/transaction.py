"""Entity transactions: the NoSQL-style atomicity unit (feature 9).

Every record mutation (INSERT/UPSERT/DELETE, including its secondary-index
maintenance) runs as one *entity transaction*: lock the record, write the
UPDATE log record, apply the mutation to the LSM memory components, write
ENTITY_COMMIT, force the log, release the lock.  The
:class:`TransactionalPartition` wrapper enforces this protocol around a
:class:`~repro.storage.dataset_storage.PartitionStorage`.

Each entity transaction is an explicit :class:`EntityTransaction` state
machine (ACTIVE -> COMMITTED | ABORTED).  A failed operation — a
duplicate key, an injected :class:`~repro.resilience.faults.DiskIOFault`,
a node crash mid-commit — aborts it, appending an ABORT record so the log
tells the whole story.  ``abort`` is **idempotent**: retry and resilience
paths abort defensively without knowing whether the fault struck before
or after the commit, and re-aborting a finished transaction is a no-op.
``commit`` on a finished transaction raises
:class:`~repro.common.errors.TransactionStateError` — committing twice,
or after an abort, is a protocol bug, never silently absorbed.
"""

from __future__ import annotations

import enum
import itertools

from repro.adm.serializer import deserialize, serialize
from repro.common.errors import TransactionStateError
from repro.observability.metrics import get_registry
from repro.storage.dataset_storage import PartitionStorage
from repro.txn.lock_manager import LockManager
from repro.txn.log_manager import LogManager, LogRecord, LogRecordType


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class EntityTransaction:
    """One record-level transaction with an explicit lifecycle."""

    def __init__(self, manager: "TransactionManager", txn_id: int):
        self.manager = manager
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE

    def commit(self, dataset: str, partition: int, key: tuple) -> None:
        """Seal the transaction: append ENTITY_COMMIT and force the log.

        Raises :class:`TransactionStateError` unless ACTIVE — commit is
        not idempotent; a double commit (or commit-after-abort) means the
        entity protocol was violated.
        """
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"cannot commit txn {self.txn_id}: already "
                f"{self.state.value}"
            )
        self.manager.log.append(LogRecord(
            LogRecordType.ENTITY_COMMIT, txn_id=self.txn_id,
            dataset=dataset, partition=partition, key=key,
        ))
        self.manager.log.flush()
        self.state = TxnState.COMMITTED
        self.manager.commits += 1

    def abort(self, dataset: str = "", partition: int = 0,
              key: tuple = ()) -> bool:
        """Abort if still ACTIVE; returns whether this call aborted.

        Idempotent by design: aborting an already-aborted *or committed*
        transaction is a no-op returning False, so recovery/retry code
        can abort defensively after any failure without corrupting a
        commit that already happened.  The ABORT record is appended but
        not forced — aborted transactions are skipped by recovery whether
        or not the record survives.
        """
        if self.state is not TxnState.ACTIVE:
            return False
        self.manager.log.append(LogRecord(
            LogRecordType.ABORT, txn_id=self.txn_id,
            dataset=dataset, partition=partition, key=key,
        ))
        self.state = TxnState.ABORTED
        self.manager.aborts += 1
        get_registry().counter("resilience.txn_aborts").inc()
        return True


class TransactionManager:
    """Per-node transaction service: ids, locks, the WAL."""

    def __init__(self, log: LogManager):
        self.log = log
        self.locks = LockManager()
        self._ids = itertools.count(1)
        self.commits = 0
        self.aborts = 0

    def next_txn_id(self) -> int:
        return next(self._ids)

    def begin(self) -> EntityTransaction:
        """Start a new entity transaction."""
        return EntityTransaction(self, self.next_txn_id())

    def seed_ids(self, min_txn_id: int) -> None:
        """Restart the id sequence at ``min_txn_id``.

        Recovery calls this after scanning the WAL so new transaction ids
        continue past the log's maximum — an old uncommitted entity
        transaction can then never be confused with a new committed one
        during a later recovery pass.
        """
        self._ids = itertools.count(min_txn_id)

    def checkpoint(self, partitions) -> int:
        """Write a checkpoint at the min durable LSN over ``partitions``."""
        low_water = min(
            (p.durable_lsn() for p in partitions), default=0
        )
        return self.log.checkpoint(low_water)


class TransactionalPartition:
    """A PartitionStorage with the entity-transaction protocol applied."""

    def __init__(self, storage: PartitionStorage, txn: TransactionManager):
        self.storage = storage
        self.txn = txn

    def _entity_op(self, pk: tuple, value: bytes, is_delete: bool,
                   apply_fn):
        txn = self.txn.begin()
        ds, part = self.storage.dataset_name, self.storage.partition_id
        self.txn.locks.acquire(txn.txn_id, ds, part, pk)
        try:
            lsn = self.txn.log.append(LogRecord(
                LogRecordType.UPDATE, txn_id=txn.txn_id, dataset=ds,
                partition=part, key=pk, value=value, is_delete=is_delete,
            ))
            result = apply_fn(lsn)
            txn.commit(ds, part, pk)
            return result
        except BaseException:
            # defensive, idempotent: a fault raised from inside commit's
            # log flush leaves the txn ACTIVE (aborted here); any error
            # after the commit sealed is a no-op
            txn.abort(ds, part, pk)
            raise
        finally:
            self.txn.locks.release_all(txn.txn_id)

    def insert(self, record: dict):
        pk = self.storage.extract_pk(record)
        return self._entity_op(
            pk, serialize(record), False,
            lambda lsn: self.storage.insert(record, lsn),
        )

    def upsert(self, record: dict):
        pk = self.storage.extract_pk(record)
        return self._entity_op(
            pk, serialize(record), False,
            lambda lsn: self.storage.upsert(record, lsn),
        )

    def delete(self, pk: tuple):
        return self._entity_op(
            pk, b"", True,
            lambda lsn: self.storage.delete(pk, lsn),
        )

    # reads need no locks in this snapshot-free, single-writer model
    def get(self, pk: tuple):
        return self.storage.get(pk)

    def scan(self, *args, **kwargs):
        return self.storage.scan(*args, **kwargs)


class RecoveryManager:
    """Crash recovery: replay committed entity operations into the LSM
    memory components of any partition whose durable LSN predates them.

    Replay is idempotent: UPDATEs re-apply as upserts/deletes through the
    normal PartitionStorage path (which also re-derives secondary-index
    maintenance), so a partition whose primary was more durable than one of
    its secondaries simply re-applies a few no-op upserts."""

    def __init__(self, log: LogManager):
        self.log = log
        self.replayed = 0
        self.skipped = 0

    def recover(self, partitions: dict) -> int:
        """``partitions`` maps (dataset, partition_id) -> PartitionStorage
        (freshly reopened via the LSM manifests).  Returns the number of
        operations replayed."""
        start = self.log.last_checkpoint_lsn()
        committed: set[int] = set()
        aborted: set[int] = set()
        updates: list[LogRecord] = []
        for record in self.log.scan(start):
            if record.type is LogRecordType.ENTITY_COMMIT:
                committed.add(record.txn_id)
            elif record.type is LogRecordType.ABORT:
                aborted.add(record.txn_id)
            elif record.type is LogRecordType.UPDATE:
                updates.append(record)
        self.replayed = 0
        self.skipped = 0
        durable = {key: ps.durable_lsn() for key, ps in partitions.items()}
        for record in updates:
            if record.txn_id not in committed or record.txn_id in aborted:
                self.skipped += 1
                continue
            key = (record.dataset, record.partition)
            storage = partitions.get(key)
            if storage is None or record.lsn <= durable[key]:
                self.skipped += 1
                continue
            if record.is_delete:
                storage.delete(record.key, lsn=record.lsn)
            else:
                storage.upsert(deserialize(record.value), lsn=record.lsn)
            self.replayed += 1
        return self.replayed
