"""Transactions: WAL, record-level locks, entity transactions, recovery."""

from repro.txn.lock_manager import LockManager
from repro.txn.log_manager import LogManager, LogRecord, LogRecordType
from repro.txn.transaction import (
    EntityTransaction,
    RecoveryManager,
    TransactionManager,
    TransactionalPartition,
    TxnState,
)

__all__ = [
    "EntityTransaction",
    "LockManager",
    "LogManager",
    "LogRecord",
    "LogRecordType",
    "RecoveryManager",
    "TransactionManager",
    "TransactionalPartition",
    "TxnState",
]
