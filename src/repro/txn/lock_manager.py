"""Record-level lock manager.

Entity transactions lock exactly one resource — (dataset, partition,
primary key) — for their short lifetime, which is why AsterixDB's NoSQL-
style concurrency control cannot deadlock across records.  The execution
engine here is single-threaded, so a conflicting acquire is a logic error
(two in-flight entity transactions touching the same record) and raises
immediately rather than blocking.
"""

from __future__ import annotations

from repro.adm.serializer import serialize_tuple
from repro.common.errors import TransactionError


class LockManager:
    """Exclusive record-level locks keyed by (dataset, partition, pk)."""

    def __init__(self):
        self._owners: dict[tuple, int] = {}
        self._held_by_txn: dict[int, set] = {}
        self.acquires = 0
        self.conflicts = 0

    @staticmethod
    def _resource(dataset: str, partition: int, key: tuple) -> tuple:
        return (dataset, partition, serialize_tuple(key))

    def acquire(self, txn_id: int, dataset: str, partition: int,
                key: tuple) -> None:
        resource = self._resource(dataset, partition, key)
        owner = self._owners.get(resource)
        if owner is not None and owner != txn_id:
            self.conflicts += 1
            raise TransactionError(
                f"lock conflict on {dataset}/p{partition} key {key!r}: "
                f"held by txn {owner}, wanted by txn {txn_id}"
            )
        self._owners[resource] = txn_id
        self._held_by_txn.setdefault(txn_id, set()).add(resource)
        self.acquires += 1

    def release_all(self, txn_id: int) -> None:
        for resource in self._held_by_txn.pop(txn_id, ()):
            if self._owners.get(resource) == txn_id:
                del self._owners[resource]

    def holds(self, txn_id: int, dataset: str, partition: int,
              key: tuple) -> bool:
        resource = self._resource(dataset, partition, key)
        return self._owners.get(resource) == txn_id

    @property
    def active_locks(self) -> int:
        return len(self._owners)
