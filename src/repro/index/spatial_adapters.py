"""The spatial access-method zoo behind experiment E1 (§V-B, [23]).

Each adapter implements the same secondary-index contract — insert a point
with a primary key, delete, and answer a window query with primary keys —
over a different physical scheme:

* :class:`RTreeSpatialIndex` — LSM R-tree (what AsterixDB ships).
* :class:`ZOrderSpatialIndex` — Morton-linearized LSM B+ tree.
* :class:`HilbertSpatialIndex` — Hilbert-linearized LSM B+ tree.
* :class:`GridSpatialIndex` — static grid over an LSM B+ tree.

The linearized and grid schemes are filter-and-verify: their key ranges
over-approximate the window, so candidates carry their coordinates in the
key and are re-checked.  All adapters report the same stats, which is what
lets the benchmark compare *within-index* work fairly before the end-to-end
record fetch (the part the paper found dominates) is added on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import APoint, ARectangle
from repro.index.grid import GridScheme
from repro.index.linearization import (
    KeySpace,
    hilbert_key,
    hilbert_ranges,
    zorder_key,
    zorder_ranges,
)
from repro.storage.buffer_cache import BufferCache
from repro.storage.file_manager import FileManager
from repro.storage.lsm import LSMBTree, LSMRTree, MergePolicy


@dataclass
class SpatialQueryStats:
    """Per-query work counters, reset by the caller."""

    candidates: int = 0        # entries produced by the index structure
    verified: int = 0          # entries that actually fall in the window
    ranges_scanned: int = 0    # key ranges (linearized/grid) or 1 (R-tree)

    def reset(self) -> None:
        self.candidates = 0
        self.verified = 0
        self.ranges_scanned = 0


class SpatialIndex:
    """Common contract: point entries keyed by primary key."""

    name = "abstract"

    def insert(self, point: APoint, pk: tuple, lsn: int = 0) -> None:
        raise NotImplementedError

    def delete(self, point: APoint, pk: tuple, lsn: int = 0) -> None:
        raise NotImplementedError

    def query(self, window: ARectangle) -> list[tuple]:
        """Primary keys of points inside the window."""
        raise NotImplementedError

    def flush(self):
        raise NotImplementedError


class RTreeSpatialIndex(SpatialIndex):
    """The LSM R-tree adapter: entries keyed (x, y, pk...)."""

    name = "rtree"

    def __init__(self, fm: FileManager, cache: BufferCache, name: str, *,
                 memory_budget_bytes: int = 256 * 1024,
                 merge_policy: MergePolicy | None = None,
                 device_hint: int = 0):
        self.lsm = LSMRTree(fm, cache, name,
                            memory_budget_bytes=memory_budget_bytes,
                            merge_policy=merge_policy,
                            device_hint=device_hint)
        self.query_stats = SpatialQueryStats()

    @staticmethod
    def _mbr(point: APoint) -> ARectangle:
        return ARectangle(point, point)

    def insert(self, point, pk, lsn=0):
        self.lsm.insert(self._mbr(point), (point.x, point.y, *pk), lsn)

    def delete(self, point, pk, lsn=0):
        self.lsm.delete((point.x, point.y, *pk), lsn)

    def query(self, window):
        self.query_stats.ranges_scanned += 1
        out = []
        for key in self.lsm.search(window):
            self.query_stats.candidates += 1
            # R-trees never produce false positives for point data
            self.query_stats.verified += 1
            out.append(tuple(key[2:]))
        return out

    def flush(self):
        return self.lsm.flush()


class _LinearizedSpatialIndex(SpatialIndex):
    """Shared machinery for Z-order / Hilbert over an LSM B+ tree.

    Keys are (curve_key, x, y, pk...): the coordinates ride along so window
    verification needs no record fetch."""

    def __init__(self, fm: FileManager, cache: BufferCache, name: str,
                 space: KeySpace, *,
                 memory_budget_bytes: int = 256 * 1024,
                 merge_policy: MergePolicy | None = None,
                 device_hint: int = 0,
                 max_ranges: int = 64):
        self.space = space
        self.max_ranges = max_ranges
        self.lsm = LSMBTree(fm, cache, name,
                            memory_budget_bytes=memory_budget_bytes,
                            merge_policy=merge_policy,
                            device_hint=device_hint)
        self.query_stats = SpatialQueryStats()

    def _key_of(self, point: APoint) -> int:
        raise NotImplementedError

    def _ranges_of(self, window: ARectangle) -> list[tuple[int, int]]:
        raise NotImplementedError

    def insert(self, point, pk, lsn=0):
        key = (self._key_of(point), point.x, point.y, *pk)
        self.lsm.upsert(key, b"", lsn)

    def delete(self, point, pk, lsn=0):
        key = (self._key_of(point), point.x, point.y, *pk)
        self.lsm.delete(key, lsn)

    def query(self, window):
        out = []
        for lo, hi in self._ranges_of(window):
            self.query_stats.ranges_scanned += 1
            for key, _ in self.lsm.scan((lo,), (hi + 1,),
                                        hi_inclusive=False):
                self.query_stats.candidates += 1
                point = APoint(key[1], key[2])
                if window.contains_point(point):
                    self.query_stats.verified += 1
                    out.append(tuple(key[3:]))
        return out

    def flush(self):
        return self.lsm.flush()


class ZOrderSpatialIndex(_LinearizedSpatialIndex):
    name = "zorder-btree"

    def _key_of(self, point):
        return zorder_key(self.space, point)

    def _ranges_of(self, window):
        return zorder_ranges(self.space, window, self.max_ranges)


class HilbertSpatialIndex(_LinearizedSpatialIndex):
    name = "hilbert-btree"

    def _key_of(self, point):
        return hilbert_key(self.space, point)

    def _ranges_of(self, window):
        return hilbert_ranges(self.space, window, self.max_ranges)


class GridSpatialIndex(SpatialIndex):
    """Static grid over an LSM B+ tree: keys (cell, x, y, pk...)."""

    name = "grid-btree"

    def __init__(self, fm: FileManager, cache: BufferCache, name: str,
                 scheme: GridScheme, *,
                 memory_budget_bytes: int = 256 * 1024,
                 merge_policy: MergePolicy | None = None,
                 device_hint: int = 0):
        self.scheme = scheme
        self.lsm = LSMBTree(fm, cache, name,
                            memory_budget_bytes=memory_budget_bytes,
                            merge_policy=merge_policy,
                            device_hint=device_hint)
        self.query_stats = SpatialQueryStats()

    def insert(self, point, pk, lsn=0):
        key = (self.scheme.cell_of(point), point.x, point.y, *pk)
        self.lsm.upsert(key, b"", lsn)

    def delete(self, point, pk, lsn=0):
        key = (self.scheme.cell_of(point), point.x, point.y, *pk)
        self.lsm.delete(key, lsn)

    def query(self, window):
        out = []
        for lo, hi in self.scheme.cell_runs(window):
            self.query_stats.ranges_scanned += 1
            for key, _ in self.lsm.scan((lo,), (hi + 1,),
                                        hi_inclusive=False):
                self.query_stats.candidates += 1
                point = APoint(key[1], key[2])
                if window.contains_point(point):
                    self.query_stats.verified += 1
                    out.append(tuple(key[3:]))
        return out

    def flush(self):
        return self.lsm.flush()


def make_spatial_index(kind: str, fm, cache, name: str, *,
                       bounds: tuple = (0.0, 0.0, 100.0, 100.0),
                       **kwargs) -> SpatialIndex:
    """Factory used by the E1 benchmark and the dataset layer.

    ``kind`` is one of rtree / zorder / hilbert / grid.  ``bounds`` is the
    (min_x, min_y, max_x, max_y) domain the non-R-tree schemes need
    declared up front — itself one of their practical drawbacks."""
    if kind == "rtree":
        return RTreeSpatialIndex(fm, cache, name, **kwargs)
    if kind == "zorder":
        return ZOrderSpatialIndex(fm, cache, name, KeySpace(*bounds),
                                  **kwargs)
    if kind == "hilbert":
        return HilbertSpatialIndex(fm, cache, name, KeySpace(*bounds),
                                   **kwargs)
    if kind == "grid":
        return GridSpatialIndex(fm, cache, name, GridScheme(*bounds),
                                **kwargs)
    raise ValueError(f"unknown spatial index kind {kind!r}")
