"""A static grid spatial scheme (the third §V-B competitor).

"A third argued in a visit to UCI that a grid-based approach would probably
be better" — this module is that approach: partition the bounded domain into
fixed cells and key each point by its cell id.  Stored over an LSM B+ tree
keyed ``(cell_id, x, y, pk...)``, a window query enumerates the overlapping
cells and range-scans each cell's contiguous key run, verifying candidates
against the window (boundary cells contain non-qualifying points).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import APoint, ARectangle
from repro.common.errors import InvalidArgumentError


@dataclass(frozen=True)
class GridScheme:
    """A uniform grid over a bounded 2D domain."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    cells_per_side: int = 64

    def __post_init__(self):
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise InvalidArgumentError("empty grid domain")
        if self.cells_per_side < 1:
            raise InvalidArgumentError("need at least one cell per side")

    def cell_of(self, point: APoint) -> int:
        """Row-major cell id of a point (clamped to the domain)."""
        n = self.cells_per_side
        fx = (point.x - self.min_x) / (self.max_x - self.min_x)
        fy = (point.y - self.min_y) / (self.max_y - self.min_y)
        cx = min(n - 1, max(0, int(fx * n)))
        cy = min(n - 1, max(0, int(fy * n)))
        return cy * n + cx

    def cells_overlapping(self, window: ARectangle) -> list[int]:
        """Row-major ids of all cells intersecting a window."""
        n = self.cells_per_side
        c0 = self.cell_of(window.bottom_left)
        c1 = self.cell_of(window.top_right)
        x0, y0 = c0 % n, c0 // n
        x1, y1 = c1 % n, c1 // n
        return [
            cy * n + cx
            for cy in range(y0, y1 + 1)
            for cx in range(x0, x1 + 1)
        ]

    def cell_runs(self, window: ARectangle) -> list[tuple[int, int]]:
        """Contiguous (lo_cell, hi_cell) runs covering a window — one run
        per grid row, since row-major ids are contiguous within a row."""
        n = self.cells_per_side
        c0 = self.cell_of(window.bottom_left)
        c1 = self.cell_of(window.top_right)
        x0, y0 = c0 % n, c0 // n
        x1, y1 = c1 % n, c1 // n
        return [(cy * n + x0, cy * n + x1) for cy in range(y0, y1 + 1)]
