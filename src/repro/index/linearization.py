"""Space-filling-curve linearizations of 2D points.

The §V-B study ([23]) compared the LSM R-tree against "linearizing 2D data
(e.g., via Hilbert-ordering or Z-ordering) and using LSM-based B-trees on
the transformed spatial keys".  These are those transforms: each maps a
point in a bounded 2D domain to a single integer key such that spatial
locality is (approximately) preserved, turning any ordered index into a
spatial one.

Both curves quantize each coordinate to ``bits`` bits over a declared
bounding box and interleave them:

* Z-order (Morton): plain bit interleaving — cheap, but the curve makes
  long jumps at power-of-two boundaries.
* Hilbert: the rotation/reflection recurrence — better locality (adjacent
  curve positions are always adjacent cells), costlier to compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import APoint, ARectangle
from repro.common.errors import InvalidArgumentError


@dataclass(frozen=True)
class KeySpace:
    """A bounded 2D domain quantized to 2^bits x 2^bits cells."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    bits: int = 16

    def __post_init__(self):
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise InvalidArgumentError("empty key space")
        if not 1 <= self.bits <= 30:
            raise InvalidArgumentError("bits must be in [1, 30]")

    @property
    def side(self) -> int:
        return 1 << self.bits

    def quantize(self, x: float, y: float) -> tuple[int, int]:
        """Clamp and quantize a coordinate pair to cell indices."""
        fx = (x - self.min_x) / (self.max_x - self.min_x)
        fy = (y - self.min_y) / (self.max_y - self.min_y)
        qx = min(self.side - 1, max(0, int(fx * self.side)))
        qy = min(self.side - 1, max(0, int(fy * self.side)))
        return qx, qy

    def cell_ranges_overlapping(self, window: ARectangle):
        """Quantized index ranges (x0..x1, y0..y1) covering a window."""
        x0, y0 = self.quantize(window.bottom_left.x, window.bottom_left.y)
        x1, y1 = self.quantize(window.top_right.x, window.top_right.y)
        return x0, y0, x1, y1


def zorder_key(space: KeySpace, point: APoint) -> int:
    """Morton code of a point: bit-interleave the quantized coordinates."""
    qx, qy = space.quantize(point.x, point.y)
    return _interleave(qx) | (_interleave(qy) << 1)


def _interleave(v: int) -> int:
    """Spread the bits of v so they occupy even positions."""
    result = 0
    bit = 0
    while v:
        result |= (v & 1) << (2 * bit)
        v >>= 1
        bit += 1
    return result


def hilbert_key(space: KeySpace, point: APoint) -> int:
    """Hilbert curve index of a point (the classic xy2d transform)."""
    qx, qy = space.quantize(point.x, point.y)
    rx = ry = 0
    d = 0
    s = space.side // 2
    x, y = qx, qy
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


def zorder_ranges(space: KeySpace, window: ARectangle,
                  max_ranges: int = 64) -> list[tuple[int, int]]:
    """Decompose a query window into Z-order key ranges.

    Recursively subdivides the quad-tree implied by the Morton code: a quad
    fully inside the window contributes one contiguous range; partial quads
    recurse.  The result is then coalesced down to at most ``max_ranges``
    ranges by merging across the smallest key gaps — gap keys become false
    candidates that the caller's verify step filters (the filter-and-verify
    step every linearized scheme needs)."""
    x0, y0, x1, y1 = space.cell_ranges_overlapping(window)
    ranges: list[tuple[int, int]] = []

    def quad_intersects(qx, qy, size):
        return not (qx > x1 or qx + size - 1 < x0
                    or qy > y1 or qy + size - 1 < y0)

    def quad_inside(qx, qy, size):
        return (x0 <= qx and qx + size - 1 <= x1
                and y0 <= qy and qy + size - 1 <= y1)

    def key_of(qx, qy):
        return _interleave(qx) | (_interleave(qy) << 1)

    stack = [(0, 0, space.side)]
    work_cap = [8 * max_ranges]   # bounds decomposition effort
    while stack:
        qx, qy, size = stack.pop()
        if not quad_intersects(qx, qy, size):
            continue
        lo = key_of(qx, qy)
        hi = lo + size * size - 1
        if quad_inside(qx, qy, size) or size == 1 or work_cap[0] <= 1:
            ranges.append((lo, hi))
            work_cap[0] -= 1
            continue
        half = size // 2
        for dx in (0, half):
            for dy in (0, half):
                stack.append((qx + dx, qy + dy, half))
    return _coalesce(ranges, max_ranges)


def hilbert_ranges(space: KeySpace, window: ARectangle,
                   max_ranges: int = 64) -> list[tuple[int, int]]:
    """Decompose a query window into Hilbert key ranges.

    Same quad-tree subdivision as :func:`zorder_ranges`, but quads map to
    Hilbert index intervals via the curve recurrence (every aligned quad of
    size s x s is a contiguous Hilbert segment of length s*s)."""
    x0, y0, x1, y1 = space.cell_ranges_overlapping(window)
    ranges: list[tuple[int, int]] = []
    work_cap = [8 * max_ranges]

    def recurse(qx, qy, size, base, corner_x, corner_y, flip):
        """(qx, qy, size): the quad; base: Hilbert index of the quad's
        start; (corner_x, corner_y, flip) encode the curve orientation."""
        if qx > x1 or qx + size - 1 < x0 or qy > y1 or qy + size - 1 < y0:
            return
        inside = (x0 <= qx and qx + size - 1 <= x1
                  and y0 <= qy and qy + size - 1 <= y1)
        if inside or size == 1 or work_cap[0] <= 1:
            ranges.append((base, base + size * size - 1))
            work_cap[0] -= 1
            return
        half = size // 2
        quarter = half * half
        # Visit sub-quads in Hilbert order for this orientation.  We use the
        # standard table for the 4 orientations of the 2D Hilbert curve.
        for i in range(4):
            sub_x, sub_y, nx, ny, nflip = _HILBERT_SUBQUAD[
                (corner_x, corner_y, flip)
            ][i]
            recurse(qx + sub_x * half, qy + sub_y * half, half,
                    base + i * quarter, nx, ny, nflip)

    recurse(0, 0, space.side, 0, 0, 0, False)
    return _coalesce(ranges, max_ranges)


def _coalesce(ranges: list[tuple[int, int]],
              max_ranges: int) -> list[tuple[int, int]]:
    """Sort, merge touching ranges, then merge across the smallest gaps
    until at most ``max_ranges`` remain."""
    ranges.sort()
    merged: list[tuple[int, int]] = []
    for lo, hi in ranges:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    while len(merged) > max_ranges:
        gaps = [
            (merged[i + 1][0] - merged[i][1], i)
            for i in range(len(merged) - 1)
        ]
        _, i = min(gaps)
        merged[i] = (merged[i][0], merged[i + 1][1])
        del merged[i + 1]
    return merged


# Orientation table for the 2D Hilbert curve.  Key: (corner_x, corner_y,
# flip) names one of the 4 orientations; value: for each of the 4 curve
# steps, (sub-quad x, sub-quad y, child orientation).  Derived from the
# classic "U" shape and its rotations; validated against hilbert_key by the
# test suite (every point's key must land inside its quad's range).
_HILBERT_SUBQUAD = {
    (0, 0, False): [
        (0, 0, 0, 0, True), (0, 1, 0, 0, False),
        (1, 1, 0, 0, False), (1, 0, 1, 1, True),
    ],
    (0, 0, True): [
        (0, 0, 0, 0, False), (1, 0, 0, 0, True),
        (1, 1, 0, 0, True), (0, 1, 1, 1, False),
    ],
    (1, 1, False): [
        (1, 1, 1, 1, True), (1, 0, 1, 1, False),
        (0, 0, 1, 1, False), (0, 1, 0, 0, True),
    ],
    (1, 1, True): [
        (1, 1, 1, 1, False), (0, 1, 1, 1, True),
        (0, 0, 1, 1, True), (1, 0, 0, 0, False),
    ],
}
