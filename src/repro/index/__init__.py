"""Spatial access-method zoo (experiment E1) and key linearizations."""

from repro.index.grid import GridScheme
from repro.index.linearization import (
    KeySpace,
    hilbert_key,
    hilbert_ranges,
    zorder_key,
    zorder_ranges,
)
from repro.index.spatial_adapters import (
    GridSpatialIndex,
    HilbertSpatialIndex,
    RTreeSpatialIndex,
    SpatialIndex,
    SpatialQueryStats,
    ZOrderSpatialIndex,
    make_spatial_index,
)

__all__ = [
    "GridScheme",
    "GridSpatialIndex",
    "HilbertSpatialIndex",
    "KeySpace",
    "RTreeSpatialIndex",
    "SpatialIndex",
    "SpatialQueryStats",
    "ZOrderSpatialIndex",
    "hilbert_key",
    "hilbert_ranges",
    "make_spatial_index",
    "zorder_key",
    "zorder_ranges",
]
