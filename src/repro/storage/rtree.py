"""A page-based R-tree.

The R-tree is AsterixDB's spatial index — and, after the study the paper
recounts in Section V-B, the *only* spatial index it kept ("the 'right'
LSM-based spatial index to provide was simply the R-tree, as R-trees work
for both point and non-point data").  This implementation provides:

* Guttman-style insert with quadratic node split (used by tests and by the
  standalone index), and
* Sort-Tile-Recursive (STR) bulk loading, used when an LSM memory component
  flushes to an immutable disk component.

Leaf entries are ``(mbr, payload)`` where the payload is opaque bytes — for
a secondary index, the serialized (secondary key, primary key) tuple.  Point
data is stored with a degenerate MBR but, per the paper's storage
optimization ("not storing them as infinitely small bounding boxes"), the
page encoding writes points with 2 doubles instead of 4 (a 16-byte saving
per point entry).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.adm.values import APoint, ARectangle
from repro.common.errors import StorageError
from repro.storage.buffer_cache import BufferCache
from repro.storage.file_manager import FileHandle

_LEAF = 1
_INTERIOR = 2
_NO_PAGE = 0xFFFFFFFF
_META_MAGIC = b"ARTR"


def _mbr_union(a: ARectangle, b: ARectangle) -> ARectangle:
    return ARectangle(
        APoint(min(a.bottom_left.x, b.bottom_left.x),
               min(a.bottom_left.y, b.bottom_left.y)),
        APoint(max(a.top_right.x, b.top_right.x),
               max(a.top_right.y, b.top_right.y)),
    )


def _mbr_area(r: ARectangle) -> float:
    return ((r.top_right.x - r.bottom_left.x)
            * (r.top_right.y - r.bottom_left.y))


def _enlargement(r: ARectangle, add: ARectangle) -> float:
    return _mbr_area(_mbr_union(r, add)) - _mbr_area(r)


def _is_point(r: ARectangle) -> bool:
    return (r.bottom_left.x == r.top_right.x
            and r.bottom_left.y == r.top_right.y)


def _encode_mbr(out: bytearray, mbr: ARectangle) -> None:
    if _is_point(mbr):
        out.append(1)
        out.extend(struct.pack(">dd", mbr.bottom_left.x, mbr.bottom_left.y))
    else:
        out.append(0)
        out.extend(struct.pack(
            ">dddd", mbr.bottom_left.x, mbr.bottom_left.y,
            mbr.top_right.x, mbr.top_right.y,
        ))


def _decode_mbr(data, pos: int) -> tuple[ARectangle, int]:
    if data[pos] == 1:
        x, y = struct.unpack_from(">dd", data, pos + 1)
        p = APoint(x, y)
        return ARectangle(p, p), pos + 17
    x1, y1, x2, y2 = struct.unpack_from(">dddd", data, pos + 1)
    return ARectangle(APoint(x1, y1), APoint(x2, y2)), pos + 33


def _mbr_size(mbr: ARectangle) -> int:
    return 17 if _is_point(mbr) else 33


@dataclass
class _RLeaf:
    entries: list = field(default_factory=list)    # (mbr, payload_bytes)

    def encode(self, page_size: int) -> bytes:
        out = bytearray()
        out.append(_LEAF)
        out.extend(struct.pack(">H", len(self.entries)))
        for mbr, payload in self.entries:
            _encode_mbr(out, mbr)
            out.extend(struct.pack(">H", len(payload)))
            out.extend(payload)
        if len(out) > page_size:
            raise StorageError(f"R-tree leaf overflow: {len(out)} bytes")
        out.extend(b"\x00" * (page_size - len(out)))
        return bytes(out)

    @classmethod
    def decode(cls, data) -> "_RLeaf":
        (count,) = struct.unpack_from(">H", data, 1)
        pos = 3
        entries = []
        for _ in range(count):
            mbr, pos = _decode_mbr(data, pos)
            (plen,) = struct.unpack_from(">H", data, pos)
            pos += 2
            entries.append((mbr, bytes(data[pos:pos + plen])))
            pos += plen
        return cls(entries)

    def size(self) -> int:
        return 3 + sum(_mbr_size(m) + 2 + len(p) for m, p in self.entries)

    def mbr(self) -> ARectangle:
        box = self.entries[0][0]
        for mbr, _ in self.entries[1:]:
            box = _mbr_union(box, mbr)
        return box


@dataclass
class _RInterior:
    entries: list = field(default_factory=list)    # (mbr, child_page)

    def encode(self, page_size: int) -> bytes:
        out = bytearray()
        out.append(_INTERIOR)
        out.extend(struct.pack(">H", len(self.entries)))
        for mbr, child in self.entries:
            _encode_mbr(out, mbr)
            out.extend(struct.pack(">I", child))
        if len(out) > page_size:
            raise StorageError(f"R-tree interior overflow: {len(out)} bytes")
        out.extend(b"\x00" * (page_size - len(out)))
        return bytes(out)

    @classmethod
    def decode(cls, data) -> "_RInterior":
        (count,) = struct.unpack_from(">H", data, 1)
        pos = 3
        entries = []
        for _ in range(count):
            mbr, pos = _decode_mbr(data, pos)
            (child,) = struct.unpack_from(">I", data, pos)
            pos += 4
            entries.append((mbr, child))
        return cls(entries)

    def size(self) -> int:
        return 3 + sum(_mbr_size(m) + 4 for m, _ in self.entries)

    def mbr(self) -> ARectangle:
        box = self.entries[0][0]
        for mbr, _ in self.entries[1:]:
            box = _mbr_union(box, mbr)
        return box


def _decode(data):
    if data[0] == _LEAF:
        return _RLeaf.decode(data)
    if data[0] == _INTERIOR:
        return _RInterior.decode(data)
    raise StorageError(f"corrupt R-tree page (type byte {data[0]})")


class RTree:
    """An R-tree over one page file."""

    def __init__(self, cache: BufferCache, handle: FileHandle):
        self.cache = cache
        self.handle = handle
        self.page_size = cache.fm.page_size
        self.root_page = _NO_PAGE
        self.height = 0
        self.count = 0

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, cache: BufferCache, handle: FileHandle) -> "RTree":
        tree = cls(cache, handle)
        cache.fm.append_page(handle)
        root_no = cache.fm.append_page(handle)
        tree._write_node(root_no, _RLeaf())
        tree.root_page = root_no
        tree.height = 1
        tree._write_meta()
        return tree

    @classmethod
    def open(cls, cache: BufferCache, handle: FileHandle) -> "RTree":
        tree = cls(cache, handle)
        page = cache.pin(handle, 0)
        try:
            if bytes(page.data[:4]) != _META_MAGIC:
                raise StorageError(f"not an R-tree file: {handle.rel_path}")
            tree.root_page, tree.height, tree.count = struct.unpack_from(
                ">IIQ", page.data, 4
            )
        finally:
            cache.unpin(page)
        return tree

    def _write_meta(self) -> None:
        page = self.cache.pin(self.handle, 0, new=(self.handle.num_pages <= 1))
        try:
            page.data[:20] = _META_MAGIC + struct.pack(
                ">IIQ", self.root_page, self.height, self.count
            )
            page.parsed = None
        finally:
            self.cache.unpin(page, dirty=True)

    def _read_node(self, page_no: int, sequential: bool = False):
        page = self.cache.pin(self.handle, page_no, sequential=sequential)
        try:
            if page.parsed is None:
                page.parsed = _decode(page.data)
            return page.parsed
        finally:
            self.cache.unpin(page)

    def _write_node(self, page_no: int, node, *, new: bool = True) -> None:
        page = self.cache.pin(self.handle, page_no, new=new)
        try:
            page.data[:] = node.encode(self.page_size)
            page.parsed = node
        finally:
            self.cache.unpin(page, dirty=True)

    def _alloc(self) -> int:
        return self.cache.fm.append_page(self.handle)

    # -- search ----------------------------------------------------------------

    def search(self, window: ARectangle):
        """Yield (mbr, payload) for all leaf entries intersecting window."""
        if self.count == 0:
            return
        stack = [self.root_page]
        while stack:
            node = self._read_node(stack.pop())
            if isinstance(node, _RLeaf):
                for mbr, payload in node.entries:
                    if window.intersects(mbr):
                        yield mbr, payload
            else:
                for mbr, child in node.entries:
                    if window.intersects(mbr):
                        stack.append(child)

    def scan_all(self):
        """Yield every (mbr, payload) entry (component merges use this)."""
        if self.count == 0:
            return
        stack = [self.root_page]
        while stack:
            node = self._read_node(stack.pop(), sequential=True)
            if isinstance(node, _RLeaf):
                yield from node.entries
            else:
                stack.extend(child for _, child in node.entries)

    # -- insert ------------------------------------------------------------------

    def insert(self, mbr: ARectangle, payload: bytes) -> None:
        split = self._insert_rec(self.root_page, self.height, mbr, payload)
        if split is not None:
            entries = [
                (self._node_mbr(self.root_page), self.root_page),
                (self._node_mbr(split), split),
            ]
            new_root = _RInterior(entries)
            root_no = self._alloc()
            self._write_node(root_no, new_root)
            self.root_page = root_no
            self.height += 1
        self.count += 1
        self._write_meta()

    def _node_mbr(self, page_no: int) -> ARectangle:
        return self._read_node(page_no).mbr()

    def _insert_rec(self, page_no: int, level: int, mbr, payload):
        node = self._read_node(page_no)
        if isinstance(node, _RLeaf):
            node.entries.append((mbr, payload))
            if node.size() <= self.page_size:
                self._write_node(page_no, node, new=False)
                return None
            return self._split(page_no, node, _RLeaf)
        # choose subtree with least enlargement (ties: smaller area)
        best_i, best_cost = 0, None
        for i, (child_mbr, _) in enumerate(node.entries):
            cost = (_enlargement(child_mbr, mbr), _mbr_area(child_mbr))
            if best_cost is None or cost < best_cost:
                best_i, best_cost = i, cost
        child_mbr, child_page = node.entries[best_i]
        split = self._insert_rec(child_page, level - 1, mbr, payload)
        node.entries[best_i] = (_mbr_union(child_mbr, mbr), child_page)
        if split is not None:
            node.entries[best_i] = (self._node_mbr(child_page), child_page)
            node.entries.append((self._node_mbr(split), split))
        if node.size() <= self.page_size:
            self._write_node(page_no, node, new=False)
            return None
        return self._split(page_no, node, _RInterior)

    def _split(self, page_no: int, node, node_cls):
        """Quadratic split (Guttman): returns the new right page number."""
        entries = node.entries
        # pick seeds: the pair wasting the most area together
        worst, seeds = -1.0, (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    _mbr_area(_mbr_union(entries[i][0], entries[j][0]))
                    - _mbr_area(entries[i][0]) - _mbr_area(entries[j][0])
                )
                if waste > worst:
                    worst, seeds = waste, (i, j)
        i, j = seeds
        group1, group2 = [entries[i]], [entries[j]]
        mbr1, mbr2 = entries[i][0], entries[j][0]
        rest = [e for k, e in enumerate(entries) if k not in (i, j)]
        min_fill = max(1, len(entries) // 4)
        for entry in rest:
            remaining = len(rest) - (len(group1) + len(group2) - 2)
            if len(group1) + remaining <= min_fill:
                group1.append(entry)
                mbr1 = _mbr_union(mbr1, entry[0])
                continue
            if len(group2) + remaining <= min_fill:
                group2.append(entry)
                mbr2 = _mbr_union(mbr2, entry[0])
                continue
            d1 = _enlargement(mbr1, entry[0])
            d2 = _enlargement(mbr2, entry[0])
            if (d1, _mbr_area(mbr1)) <= (d2, _mbr_area(mbr2)):
                group1.append(entry)
                mbr1 = _mbr_union(mbr1, entry[0])
            else:
                group2.append(entry)
                mbr2 = _mbr_union(mbr2, entry[0])
        left = node_cls(group1)
        right = node_cls(group2)
        right_no = self._alloc()
        self._write_node(right_no, right)
        self._write_node(page_no, left, new=False)
        return right_no

    # -- STR bulk load --------------------------------------------------------

    @classmethod
    def bulk_load(cls, cache: BufferCache, handle: FileHandle, entries,
                  fill_factor: float = 1.0) -> "RTree":
        """Sort-Tile-Recursive bulk load from (mbr, payload) entries.

        STR packs spatially adjacent entries into the same leaf, which is
        what gives freshly-flushed/merged LSM R-tree components their good
        query locality.
        """
        tree = cls(cache, handle)
        cache.fm.append_page(handle)
        entries = list(entries)
        count = len(entries)
        limit = int(cache.fm.page_size * fill_factor)

        if not entries:
            root_no = cache.fm.append_page(handle)
            tree._write_node(root_no, _RLeaf())
            tree.root_page, tree.height, tree.count = root_no, 1, 0
            tree._write_meta()
            cache.flush_file(handle)
            return tree

        def center(mbr: ARectangle):
            return (
                (mbr.bottom_left.x + mbr.top_right.x) / 2,
                (mbr.bottom_left.y + mbr.top_right.y) / 2,
            )

        def entry_size(e, leaf: bool):
            return _mbr_size(e[0]) + (2 + len(e[1]) if leaf else 4)

        def str_pack(items, leaf: bool):
            """One STR level: returns list of node entry-lists."""
            avg = sum(entry_size(e, leaf) for e in items) / len(items)
            per_node = max(2, int((limit - 3) / avg))
            num_nodes = math.ceil(len(items) / per_node)
            num_slices = max(1, math.ceil(math.sqrt(num_nodes)))
            slice_len = math.ceil(len(items) / num_slices)
            items = sorted(items, key=lambda e: center(e[0])[0])
            nodes = []
            for s in range(0, len(items), slice_len):
                chunk = sorted(items[s:s + slice_len],
                               key=lambda e: center(e[0])[1])
                node_entries: list = []
                node_bytes = 3
                for e in chunk:
                    sz = entry_size(e, leaf)
                    if node_entries and node_bytes + sz > limit:
                        nodes.append(node_entries)
                        node_entries, node_bytes = [], 3
                    node_entries.append(e)
                    node_bytes += sz
                if node_entries:
                    nodes.append(node_entries)
            return nodes

        # leaves
        level_pages = []
        for node_entries in str_pack(entries, leaf=True):
            leaf = _RLeaf(node_entries)
            no = cache.fm.append_page(handle)
            tree._write_node(no, leaf)
            level_pages.append((leaf.mbr(), no))
        height = 1
        while len(level_pages) > 1:
            next_pages = []
            for node_entries in str_pack(level_pages, leaf=False):
                interior = _RInterior(node_entries)
                no = cache.fm.append_page(handle)
                tree._write_node(no, interior)
                next_pages.append((interior.mbr(), no))
            level_pages = next_pages
            height += 1

        tree.root_page = level_pages[0][1]
        tree.height = height
        tree.count = count
        tree._write_meta()
        cache.flush_file(handle)
        return tree
