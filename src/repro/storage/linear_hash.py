"""Linear Hashing — built to reproduce the Graefe lesson (paper §V-C, E2).

The paper recounts Goetz Graefe's answer to "why do real database systems
stop after offering B+ trees?": it is well known how to efficiently bulk-load
a B+ tree, it is *not* known how to do the same for Linear Hashing, and with
a modest memory allocation their lookup I/O costs in practice are the same.
This module exists so `benchmarks/bench_btree_vs_linear_hash.py` can measure
exactly that trade-off against :class:`repro.storage.btree.BTree`.

Classic Litwin linear hashing over page files: ``2^level + split_pointer``
primary buckets, overflow chains, and one bucket split per threshold
crossing.  There is deliberately **no** bulk-load path — records are
inserted one at a time, which is the point of the experiment.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.adm.serializer import serialize_tuple
from repro.adm.values import hash_value
from repro.common.errors import DuplicateKeyError, StorageError
from repro.storage.buffer_cache import BufferCache
from repro.storage.file_manager import FileHandle

_NO_PAGE = 0xFFFFFFFF
_META_MAGIC = b"ALHI"


@dataclass
class _Bucket:
    """One bucket page: entries plus an overflow-page pointer."""

    entries: list = field(default_factory=list)    # (key_bytes, value_bytes)
    overflow: int = _NO_PAGE

    def encode(self, page_size: int) -> bytes:
        out = bytearray()
        out.extend(struct.pack(">HI", len(self.entries), self.overflow))
        for kb, vb in self.entries:
            out.extend(struct.pack(">HH", len(kb), len(vb)))
            out.extend(kb)
            out.extend(vb)
        if len(out) > page_size:
            raise StorageError("linear-hash bucket overflow mis-sized")
        out.extend(b"\x00" * (page_size - len(out)))
        return bytes(out)

    @classmethod
    def decode(cls, data) -> "_Bucket":
        count, overflow = struct.unpack_from(">HI", data, 0)
        pos = 6
        entries = []
        for _ in range(count):
            klen, vlen = struct.unpack_from(">HH", data, pos)
            pos += 4
            kb = bytes(data[pos:pos + klen])
            pos += klen
            vb = bytes(data[pos:pos + vlen])
            pos += vlen
            entries.append((kb, vb))
        return cls(entries, overflow)

    def size(self) -> int:
        return 6 + sum(4 + len(k) + len(v) for k, v in self.entries)


class LinearHashIndex:
    """A Litwin linear-hash index: composite ADM key -> value bytes."""

    def __init__(self, cache: BufferCache, handle: FileHandle,
                 split_load_factor: float = 0.8):
        self.cache = cache
        self.handle = handle
        self.page_size = cache.fm.page_size
        self.split_load_factor = split_load_factor
        self.level = 0
        self.split_pointer = 0
        self.initial_buckets = 4
        self.count = 0
        self.bytes_used = 0
        # bucket directory: bucket index -> page number (the directory is
        # small and kept in memory, as real implementations do via the
        # file's page mapping)
        self._bucket_pages: list[int] = []
        self._overflow_free: list[int] = []

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, cache: BufferCache, handle: FileHandle,
               initial_buckets: int = 4) -> "LinearHashIndex":
        index = cls(cache, handle)
        index.initial_buckets = initial_buckets
        cache.fm.append_page(handle)  # meta page (unused placeholder)
        for _ in range(initial_buckets):
            no = cache.fm.append_page(handle)
            index._write_bucket(no, _Bucket())
            index._bucket_pages.append(no)
        return index

    @property
    def num_buckets(self) -> int:
        return len(self._bucket_pages)

    # -- hashing -----------------------------------------------------------

    def _bucket_of(self, key_bytes: bytes) -> int:
        h = hash_value(key_bytes)
        n = self.initial_buckets
        idx = h % (n << self.level)
        if idx < self.split_pointer:
            idx = h % (n << (self.level + 1))
        return idx

    # -- page I/O ----------------------------------------------------------

    def _read_bucket(self, page_no: int) -> _Bucket:
        page = self.cache.pin(self.handle, page_no)
        try:
            if page.parsed is None:
                page.parsed = _Bucket.decode(page.data)
            return page.parsed
        finally:
            self.cache.unpin(page)

    def _write_bucket(self, page_no: int, bucket: _Bucket,
                      *, new: bool = True) -> None:
        page = self.cache.pin(self.handle, page_no, new=new)
        try:
            page.data[:] = bucket.encode(self.page_size)
            page.parsed = bucket
        finally:
            self.cache.unpin(page, dirty=True)

    def _alloc(self) -> int:
        if self._overflow_free:
            return self._overflow_free.pop()
        return self.cache.fm.append_page(self.handle)

    # -- operations -----------------------------------------------------------

    def search(self, key) -> bytes | None:
        kb = serialize_tuple(key)
        page_no = self._bucket_pages[self._bucket_of(kb)]
        while page_no != _NO_PAGE:
            bucket = self._read_bucket(page_no)
            for ekb, evb in bucket.entries:
                if ekb == kb:
                    return evb
            page_no = bucket.overflow
        return None

    def insert(self, key, value: bytes, *, unique: bool = True) -> None:
        kb = serialize_tuple(key)
        if unique and self.search(key) is not None:
            raise DuplicateKeyError(f"duplicate key {key!r}")
        self._insert_raw(kb, value)
        self.count += 1
        self.bytes_used += 4 + len(kb) + len(value)
        self._maybe_split()

    def _insert_raw(self, kb: bytes, value: bytes) -> None:
        page_no = self._bucket_pages[self._bucket_of(kb)]
        entry_size = 4 + len(kb) + len(value)
        while True:
            bucket = self._read_bucket(page_no)
            if bucket.size() + entry_size <= self.page_size:
                bucket.entries.append((kb, value))
                self._write_bucket(page_no, bucket, new=False)
                return
            if bucket.overflow == _NO_PAGE:
                overflow_no = self._alloc()
                self._write_bucket(overflow_no, _Bucket([(kb, value)]))
                bucket.overflow = overflow_no
                self._write_bucket(page_no, bucket, new=False)
                return
            page_no = bucket.overflow

    def items(self):
        """Yield all (key_bytes, value_bytes) pairs (unordered)."""
        for head in self._bucket_pages:
            page_no = head
            while page_no != _NO_PAGE:
                bucket = self._read_bucket(page_no)
                yield from bucket.entries
                page_no = bucket.overflow

    # -- splitting -----------------------------------------------------------

    def _load_factor(self) -> float:
        # entries per primary bucket page's worth of capacity (approximate:
        # bytes stored / bytes available in primary buckets)
        capacity = self.num_buckets * (self.page_size - 6)
        return self.bytes_used / capacity if capacity else 1.0

    def _maybe_split(self) -> None:
        while self._load_factor() > self.split_load_factor:
            self._split_one()

    def _split_one(self) -> None:
        """Split the bucket at the split pointer (Litwin's scheme)."""
        n = self.initial_buckets
        old_idx = self.split_pointer
        new_idx = old_idx + (n << self.level)
        # collect old bucket's chain
        entries: list[tuple] = []
        page_no = self._bucket_pages[old_idx]
        chain = []
        while page_no != _NO_PAGE:
            bucket = self._read_bucket(page_no)
            entries.extend(bucket.entries)
            chain.append(page_no)
            page_no = bucket.overflow
        # free overflow pages of the old chain for reuse
        self._overflow_free.extend(chain[1:])
        new_page = self._alloc()
        self._bucket_pages.append(new_page)
        self._write_bucket(chain[0], _Bucket(), new=False)
        self._write_bucket(new_page, _Bucket())
        # advance split state before redistributing so _bucket_of uses the
        # extended address space for the split image
        self.split_pointer += 1
        if self.split_pointer == (n << self.level):
            self.split_pointer = 0
            self.level += 1
        mask = n << (self.level + (1 if self.split_pointer else 0))
        for kb, vb in entries:
            idx = hash_value(kb) % (n << self.level)
            if idx < self.split_pointer:
                idx = hash_value(kb) % (n << (self.level + 1))
            self._insert_raw_to(idx, kb, vb)
        del mask

    def _insert_raw_to(self, idx: int, kb: bytes, value: bytes) -> None:
        page_no = self._bucket_pages[idx]
        entry_size = 4 + len(kb) + len(value)
        while True:
            bucket = self._read_bucket(page_no)
            if bucket.size() + entry_size <= self.page_size:
                bucket.entries.append((kb, value))
                self._write_bucket(page_no, bucket, new=False)
                return
            if bucket.overflow == _NO_PAGE:
                overflow_no = self._alloc()
                self._write_bucket(overflow_no, _Bucket([(kb, value)]))
                bucket.overflow = overflow_no
                self._write_bucket(page_no, bucket, new=False)
                return
            page_no = bucket.overflow
