"""The per-node buffer cache (paper Fig. 2).

Each node uses part of its memory for "buffering of pages of LSM disk
components as they are accessed (via the buffer cache)".  This is a classic
pin/unpin buffer pool with CLOCK replacement:

* :meth:`BufferCache.pin` returns a :class:`CachedPage` whose ``data``
  bytearray the caller may read (and write, if it marks the page dirty on
  unpin).
* Victims must be unpinned; evicting a dirty page writes it back.
* Hit/miss and physical-I/O counters feed every storage benchmark, both
  as per-cache :class:`CacheStats` and mirrored into the process-wide
  metrics registry (``buffer_cache.hits`` / ``.misses`` / ``.evictions``
  / ``.writebacks`` — see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import BufferCacheError
from repro.observability.metrics import get_registry
from repro.storage.file_manager import FileHandle, FileManager


@dataclass
class CachedPage:
    """One buffer-pool frame."""

    file_id: int
    page_no: int
    data: bytearray
    pin_count: int = 0
    dirty: bool = False
    referenced: bool = True
    # Parsed-page cache: page structures (e.g. B+ tree nodes) may stash a
    # decoded view here; it is discarded on eviction and must be dropped by
    # writers when they change ``data``.
    parsed: object = None

    @property
    def key(self) -> tuple:
        return (self.file_id, self.page_no)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferCache:
    """A CLOCK-replacement buffer pool over a :class:`FileManager`."""

    def __init__(self, file_manager: FileManager, num_pages: int):
        if num_pages < 4:
            raise BufferCacheError(f"buffer cache too small: {num_pages}")
        self.fm = file_manager
        self.capacity = num_pages
        self.stats = CacheStats()
        self._pages: dict[tuple, CachedPage] = {}
        self._clock: list[tuple] = []
        self._hand = 0
        # registry mirrors (handles stay valid across registry.reset())
        registry = get_registry()
        self._m_hits = registry.counter("buffer_cache.hits")
        self._m_misses = registry.counter("buffer_cache.misses")
        self._m_evictions = registry.counter("buffer_cache.evictions")
        self._m_writebacks = registry.counter("buffer_cache.writebacks")

    # -- public API -----------------------------------------------------------

    def pin(self, handle: FileHandle, page_no: int, *, new: bool = False,
            sequential: bool = False) -> CachedPage:
        """Pin a page, reading it from disk on a miss.

        With ``new=True`` the page is freshly appended (zero-filled, no read
        I/O) — used by bulk loaders and the WAL.
        """
        key = (handle.file_id, page_no)
        page = self._pages.get(key)
        if page is not None:
            self.stats.hits += 1
            self._m_hits.inc()
            page.pin_count += 1
            page.referenced = True
            return page
        self.stats.misses += 1
        self._m_misses.inc()
        self._ensure_capacity()
        if new:
            data = bytearray(self.fm.page_size)
        else:
            data = self.fm.read_page(handle, page_no, sequential=sequential)
        page = CachedPage(handle.file_id, page_no, data, pin_count=1)
        self._pages[key] = page
        self._clock.append(key)
        return page

    def unpin(self, page: CachedPage, *, dirty: bool = False) -> None:
        if page.pin_count <= 0:
            raise BufferCacheError(
                f"unpin of unpinned page {page.key}"
            )
        page.pin_count -= 1
        if dirty:
            page.dirty = True

    def flush_file(self, handle: FileHandle) -> None:
        """Write back all dirty pages of a file (e.g. on component seal)."""
        for page in list(self._pages.values()):
            if page.file_id == handle.file_id and page.dirty:
                self._write_back(handle, page)
        self.fm.sync(handle)

    def evict_file(self, handle: FileHandle) -> None:
        """Drop all of a file's pages (after flush; used on file delete)."""
        for key in [k for k in self._pages if k[0] == handle.file_id]:
            page = self._pages[key]
            if page.pin_count:
                raise BufferCacheError(f"evicting pinned page {key}")
            if page.dirty:
                self._write_back(handle, page)
            del self._pages[key]
        self._clock = [k for k in self._clock if k[0] != handle.file_id]
        self._hand = 0

    def flush_all(self) -> None:
        for page in self._pages.values():
            if page.dirty:
                self._write_back(self.fm.get(page.file_id), page)

    @property
    def pinned_count(self) -> int:
        return sum(1 for p in self._pages.values() if p.pin_count > 0)

    # -- replacement ---------------------------------------------------------

    def _ensure_capacity(self) -> None:
        if len(self._pages) < self.capacity:
            return
        # CLOCK sweep: skip pinned pages, clear reference bits, evict the
        # first unreferenced unpinned page.
        sweeps = 0
        limit = 2 * len(self._clock) + 1
        while sweeps < limit:
            if not self._clock:
                break
            self._hand %= len(self._clock)
            key = self._clock[self._hand]
            page = self._pages[key]
            if page.pin_count == 0 and not page.referenced:
                if page.dirty:
                    self._write_back(self.fm.get(page.file_id), page)
                del self._pages[key]
                self._clock.pop(self._hand)
                self.stats.evictions += 1
                self._m_evictions.inc()
                return
            page.referenced = False
            self._hand += 1
            sweeps += 1
        raise BufferCacheError(
            f"all {self.capacity} buffer pages are pinned"
        )

    def _write_back(self, handle: FileHandle, page: CachedPage) -> None:
        self.fm.write_page(handle, page.page_no, page.data)
        page.dirty = False
        self.stats.writebacks += 1
        self._m_writebacks.inc()
