"""A page-based B+ tree.

This is the core ordered index of the system: LSM disk components (primary
and secondary), the linearized spatial competitors of experiment E1, and the
standalone B+ tree of the Graefe comparison (E2) are all instances.

Keys are tuples of ADM values (composite keys supported); values are opaque
byte strings.  Pages live in the buffer cache; each page caches a parsed
node object in ``CachedPage.parsed`` so keys are deserialized once per
residency, while the authoritative state is always the serialized page bytes
(what the I/O counters see).

Layout (all integers big-endian):

* page 0 is the metadata page: magic, root page, height, entry count.
* leaf: ``[0x01][count:u16][next_leaf:u32]`` then per entry
  ``[klen:u16][key][vlen:u16][value]``.
* interior: ``[0x02][count:u16]`` then ``count`` child page numbers (u32)
  followed by ``count-1`` separator keys ``[klen:u16][key]``; child ``i``
  holds keys < separator ``i`` (and the last child the rest).

Supported operations: point search, inclusive/exclusive range scans,
insert with node splits (including unique-key enforcement for primary
indexes), and sorted bulk load.  Physical deletion is not implemented —
deletes in this system are LSM antimatter records (see
:mod:`repro.storage.lsm`), exactly the design the paper describes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.adm.comparators import compare_tuples
from repro.adm.serializer import deserialize_tuple, serialize_tuple
from repro.common.errors import DuplicateKeyError, StorageError
from repro.storage.buffer_cache import BufferCache
from repro.storage.file_manager import FileHandle

_LEAF = 1
_INTERIOR = 2
_NO_PAGE = 0xFFFFFFFF
_META_MAGIC = b"ABTR"


@dataclass
class _Leaf:
    keys: list = field(default_factory=list)        # ADM tuples
    values: list = field(default_factory=list)      # bytes
    next_leaf: int = _NO_PAGE

    def encode(self, page_size: int) -> bytes:
        out = bytearray()
        out.append(_LEAF)
        out.extend(struct.pack(">HI", len(self.keys), self.next_leaf))
        for key, value in zip(self.keys, self.values):
            kb = serialize_tuple(key)
            out.extend(struct.pack(">H", len(kb)))
            out.extend(kb)
            out.extend(struct.pack(">H", len(value)))
            out.extend(value)
        if len(out) > page_size:
            raise StorageError(
                f"leaf overflow: {len(out)} bytes > page size {page_size}"
            )
        out.extend(b"\x00" * (page_size - len(out)))
        return bytes(out)

    @classmethod
    def decode(cls, data) -> "_Leaf":
        count, next_leaf = struct.unpack_from(">HI", data, 1)
        pos = 7
        keys, values = [], []
        for _ in range(count):
            (klen,) = struct.unpack_from(">H", data, pos)
            pos += 2
            keys.append(deserialize_tuple(bytes(data[pos:pos + klen])))
            pos += klen
            (vlen,) = struct.unpack_from(">H", data, pos)
            pos += 2
            values.append(bytes(data[pos:pos + vlen]))
            pos += vlen
        return cls(keys, values, next_leaf)

    def size(self) -> int:
        total = 7
        for key, value in zip(self.keys, self.values):
            total += 4 + len(serialize_tuple(key)) + len(value)
        return total


@dataclass
class _Interior:
    keys: list = field(default_factory=list)       # count-1 separators
    children: list = field(default_factory=list)   # count page numbers

    def encode(self, page_size: int) -> bytes:
        out = bytearray()
        out.append(_INTERIOR)
        out.extend(struct.pack(">H", len(self.children)))
        for child in self.children:
            out.extend(struct.pack(">I", child))
        for key in self.keys:
            kb = serialize_tuple(key)
            out.extend(struct.pack(">H", len(kb)))
            out.extend(kb)
        if len(out) > page_size:
            raise StorageError(
                f"interior overflow: {len(out)} > page size {page_size}"
            )
        out.extend(b"\x00" * (page_size - len(out)))
        return bytes(out)

    @classmethod
    def decode(cls, data) -> "_Interior":
        (count,) = struct.unpack_from(">H", data, 1)
        pos = 3
        children = []
        for _ in range(count):
            (child,) = struct.unpack_from(">I", data, pos)
            children.append(child)
            pos += 4
        keys = []
        for _ in range(count - 1):
            (klen,) = struct.unpack_from(">H", data, pos)
            pos += 2
            keys.append(deserialize_tuple(bytes(data[pos:pos + klen])))
            pos += klen
        return cls(keys, children)

    def size(self) -> int:
        total = 3 + 4 * len(self.children)
        for key in self.keys:
            total += 2 + len(serialize_tuple(key))
        return total


def _decode(data):
    if data[0] == _LEAF:
        return _Leaf.decode(data)
    if data[0] == _INTERIOR:
        return _Interior.decode(data)
    raise StorageError(f"corrupt B+ tree page (type byte {data[0]})")


def _lower_bound(keys, key) -> int:
    """First index i with keys[i] >= key."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if compare_tuples(keys[mid], key) < 0:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys, key) -> int:
    """First index i with keys[i] > key."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if compare_tuples(keys[mid], key) <= 0:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BTree:
    """A B+ tree over one page file."""

    def __init__(self, cache: BufferCache, handle: FileHandle):
        self.cache = cache
        self.handle = handle
        self.page_size = cache.fm.page_size
        self.root_page = _NO_PAGE
        self.height = 0
        self.count = 0

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, cache: BufferCache, handle: FileHandle) -> "BTree":
        tree = cls(cache, handle)
        cache.fm.append_page(handle)            # reserve page 0 for metadata
        root_no = cache.fm.append_page(handle)
        tree._write_node(root_no, _Leaf())
        tree.root_page = root_no
        tree.height = 1
        tree._write_meta()
        return tree

    @classmethod
    def open(cls, cache: BufferCache, handle: FileHandle) -> "BTree":
        tree = cls(cache, handle)
        page = cache.pin(handle, 0)
        try:
            magic = bytes(page.data[:4])
            if magic != _META_MAGIC:
                raise StorageError(f"not a B+ tree file: {handle.rel_path}")
            tree.root_page, tree.height, tree.count = struct.unpack_from(
                ">IIQ", page.data, 4
            )
        finally:
            cache.unpin(page)
        return tree

    def _write_meta(self) -> None:
        page = self.cache.pin(self.handle, 0, new=(self.handle.num_pages <= 1))
        try:
            page.data[:20] = _META_MAGIC + struct.pack(
                ">IIQ", self.root_page, self.height, self.count
            )
            page.parsed = None
        finally:
            self.cache.unpin(page, dirty=True)

    # -- node I/O -------------------------------------------------------------

    def _read_node(self, page_no: int, sequential: bool = False):
        page = self.cache.pin(self.handle, page_no, sequential=sequential)
        try:
            if page.parsed is None:
                page.parsed = _decode(page.data)
            return page.parsed
        finally:
            self.cache.unpin(page)

    def _write_node(self, page_no: int, node, *, new: bool = True) -> None:
        page = self.cache.pin(self.handle, page_no, new=new)
        try:
            page.data[:] = node.encode(self.page_size)
            page.parsed = node
        finally:
            self.cache.unpin(page, dirty=True)

    def _alloc(self) -> int:
        return self.cache.fm.append_page(self.handle)

    # -- search -----------------------------------------------------------------

    def _find_leaf(self, key) -> tuple[int, _Leaf]:
        page_no = self.root_page
        node = self._read_node(page_no)
        while isinstance(node, _Interior):
            idx = _upper_bound(node.keys, key)
            page_no = node.children[idx]
            node = self._read_node(page_no)
        return page_no, node

    def search(self, key) -> bytes | None:
        """Point lookup; returns the value bytes or None."""
        if self.count == 0:
            return None
        _, leaf = self._find_leaf(key)
        idx = _lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and compare_tuples(leaf.keys[idx], key) == 0:
            return leaf.values[idx]
        return None

    def range_scan(self, lo=None, hi=None, *, lo_inclusive: bool = True,
                   hi_inclusive: bool = True):
        """Yield (key, value) pairs with lo <= key <= hi (bounds optional)."""
        if self.count == 0:
            return
        if lo is None:
            page_no = self.root_page
            node = self._read_node(page_no)
            while isinstance(node, _Interior):
                page_no = node.children[0]
                node = self._read_node(page_no)
            leaf = node
            idx = 0
        else:
            page_no, leaf = self._find_leaf(lo)
            idx = (_lower_bound(leaf.keys, lo) if lo_inclusive
                   else _upper_bound(leaf.keys, lo))
        while True:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if hi is not None:
                    c = compare_tuples(key, hi)
                    if c > 0 or (c == 0 and not hi_inclusive):
                        return
                yield key, leaf.values[idx]
                idx += 1
            if leaf.next_leaf == _NO_PAGE:
                return
            page_no = leaf.next_leaf
            leaf = self._read_node(page_no, sequential=True)
            idx = 0

    def scan_all(self):
        return self.range_scan()

    # -- insert -----------------------------------------------------------------

    def insert(self, key, value: bytes, *, unique: bool = False,
               replace: bool = False) -> None:
        """Insert (key, value); splits propagate up to a new root as needed.

        ``unique=True`` raises :class:`DuplicateKeyError` on an existing key
        (primary-index semantics); ``replace=True`` overwrites in place
        (upsert semantics, used by LSM memory components).
        """
        split = self._insert_rec(self.root_page, self.height, key, value,
                                 unique, replace)
        if split is not None:
            sep_key, right_page = split
            new_root = _Interior([sep_key], [self.root_page, right_page])
            root_no = self._alloc()
            self._write_node(root_no, new_root)
            self.root_page = root_no
            self.height += 1
        self._write_meta()

    def _insert_rec(self, page_no: int, level: int, key, value,
                    unique: bool, replace: bool):
        node = self._read_node(page_no)
        if isinstance(node, _Leaf):
            idx = _lower_bound(node.keys, key)
            exists = (idx < len(node.keys)
                      and compare_tuples(node.keys[idx], key) == 0)
            if exists:
                if unique and not replace:
                    raise DuplicateKeyError(f"duplicate key {key!r}")
                node.values[idx] = value
                self._write_node(page_no, node, new=False)
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self.count += 1
            if node.size() <= self.page_size:
                self._write_node(page_no, node, new=False)
                return None
            return self._split_leaf(page_no, node)
        idx = _upper_bound(node.keys, key)
        split = self._insert_rec(node.children[idx], level - 1, key, value,
                                 unique, replace)
        if split is None:
            return None
        sep_key, right_page = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right_page)
        if node.size() <= self.page_size:
            self._write_node(page_no, node, new=False)
            return None
        return self._split_interior(page_no, node)

    def _split_leaf(self, page_no: int, node: _Leaf):
        mid = len(node.keys) // 2
        right = _Leaf(node.keys[mid:], node.values[mid:], node.next_leaf)
        right_no = self._alloc()
        left = _Leaf(node.keys[:mid], node.values[:mid], right_no)
        self._write_node(right_no, right)
        self._write_node(page_no, left, new=False)
        return right.keys[0], right_no

    def _split_interior(self, page_no: int, node: _Interior):
        mid = len(node.children) // 2
        sep_key = node.keys[mid - 1]
        right = _Interior(node.keys[mid:], node.children[mid:])
        left = _Interior(node.keys[: mid - 1], node.children[:mid])
        right_no = self._alloc()
        self._write_node(right_no, right)
        self._write_node(page_no, left, new=False)
        return sep_key, right_no

    # -- bulk load --------------------------------------------------------------

    @classmethod
    def bulk_load(cls, cache: BufferCache, handle: FileHandle, pairs,
                  fill_factor: float = 1.0) -> "BTree":
        """Build a tree from key-sorted (key, value) pairs.

        This is the well-known efficient B+ tree load the Graefe lesson (E2)
        relies on: leaves are packed left to right with sequential writes and
        interior levels built on top, one pass, no splits.
        """
        tree = cls(cache, handle)
        cache.fm.append_page(handle)  # metadata page
        limit = int(cache.fm.page_size * fill_factor)
        leaves: list[tuple] = []      # (first_key, page_no)
        current = _Leaf()
        current_no = cache.fm.append_page(handle)
        count = 0
        prev_key = None

        def seal_leaf(next_no: int):
            current.next_leaf = next_no
            tree._write_node(current_no, current)
            leaves.append((current.keys[0], current_no))

        for key, value in pairs:
            if prev_key is not None and compare_tuples(prev_key, key) > 0:
                raise StorageError("bulk load input not sorted")
            prev_key = key
            entry = 4 + len(serialize_tuple(key)) + len(value)
            if current.keys and current.size() + entry > limit:
                next_no = cache.fm.append_page(handle)
                seal_leaf(next_no)
                current = _Leaf()
                current_no = next_no
            current.keys.append(key)
            current.values.append(value)
            count += 1

        if current.keys:
            seal_leaf(_NO_PAGE)
        else:
            tree._write_node(current_no, current)
            leaves.append((None, current_no))

        # Build interior levels bottom-up.  Each level entry is
        # (first_key_under_subtree, page_no); a parent stores its children's
        # first keys (except the leftmost's) as separators.
        level = leaves
        height = 1
        while len(level) > 1:
            next_level = []
            node = _Interior(children=[level[0][1]])
            node_first = level[0][0]
            for first_key, page_no in level[1:]:
                extra = 6 + len(serialize_tuple(first_key))
                if node.size() + extra > limit and len(node.children) >= 2:
                    no = cache.fm.append_page(handle)
                    tree._write_node(no, node)
                    next_level.append((node_first, no))
                    node = _Interior(children=[page_no])
                    node_first = first_key
                else:
                    node.keys.append(first_key)
                    node.children.append(page_no)
            no = cache.fm.append_page(handle)
            tree._write_node(no, node)
            next_level.append((node_first, no))
            level = next_level
            height += 1

        tree.root_page = level[0][1]
        tree.height = height
        tree.count = count
        tree._write_meta()
        cache.flush_file(handle)
        return tree
