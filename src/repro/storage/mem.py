"""In-memory LSM components (paper Fig. 2: "ingestion buffering").

New and updated records land in a dataset's LSM *memory component*; when the
component exceeds its memory budget it is flushed to an immutable disk
component.  Two in-memory structures are provided:

* :class:`MemBTree` — a sorted map over composite ADM keys, used by the LSM
  B+ tree (primary and secondary) and by deleted-key sets.
* :class:`MemRTree` — an entry list with MBRs for the LSM R-tree's memory
  component (memory components are small by construction, so linear window
  evaluation is acceptable and keeps the structure simple).

Both track their approximate byte footprint so the LSM budget check
(``memory_component_pages * page_size``) is meaningful.
"""

from __future__ import annotations

import bisect

from repro.adm.comparators import tuple_key
from repro.adm.serializer import serialize_tuple
from repro.adm.values import ARectangle


class MemBTree:
    """A byte-budgeted sorted map: composite ADM key -> opaque value."""

    def __init__(self):
        self._by_key: dict[bytes, object] = {}
        self._sorted_keys: list = []        # ADM key tuples, kept sorted
        self._sort_wrappers: list = []      # parallel tuple_key wrappers
        self.bytes_used = 0

    def __len__(self):
        return len(self._by_key)

    def __contains__(self, key) -> bool:
        return serialize_tuple(key) in self._by_key

    def get(self, key, default=None):
        return self._by_key.get(serialize_tuple(key), default)

    def put(self, key, value) -> None:
        kb = serialize_tuple(key)
        vsize = len(value) if isinstance(value, (bytes, bytearray)) else 16
        if kb in self._by_key:
            old = self._by_key[kb]
            osize = len(old) if isinstance(old, (bytes, bytearray)) else 16
            self.bytes_used += vsize - osize
        else:
            wrapper = tuple_key(key)
            idx = bisect.bisect_left(self._sort_wrappers, wrapper)
            self._sort_wrappers.insert(idx, wrapper)
            self._sorted_keys.insert(idx, key)
            self.bytes_used += len(kb) + vsize + 32
        self._by_key[kb] = value

    def items(self):
        """Yield (key, value) in key order."""
        for key in self._sorted_keys:
            yield key, self._by_key[serialize_tuple(key)]

    def range_items(self, lo=None, hi=None, *, lo_inclusive: bool = True,
                    hi_inclusive: bool = True):
        """Yield (key, value) with lo <= key <= hi, in key order."""
        if lo is None:
            start = 0
        else:
            wrapper = tuple_key(lo)
            if lo_inclusive:
                start = bisect.bisect_left(self._sort_wrappers, wrapper)
            else:
                start = bisect.bisect_right(self._sort_wrappers, wrapper)
        if hi is None:
            end = len(self._sorted_keys)
        else:
            wrapper = tuple_key(hi)
            if hi_inclusive:
                end = bisect.bisect_right(self._sort_wrappers, wrapper)
            else:
                end = bisect.bisect_left(self._sort_wrappers, wrapper)
        for i in range(start, end):
            key = self._sorted_keys[i]
            yield key, self._by_key[serialize_tuple(key)]

    def clear(self) -> None:
        self._by_key.clear()
        self._sorted_keys.clear()
        self._sort_wrappers.clear()
        self.bytes_used = 0


class MemRTree:
    """A byte-budgeted spatial entry list: (mbr, key, value) triples."""

    def __init__(self):
        self._entries: list[tuple] = []
        self._present: set[bytes] = set()
        self.bytes_used = 0

    def __len__(self):
        return len(self._entries)

    def insert(self, mbr: ARectangle, key, value) -> None:
        kb = serialize_tuple(key)
        if kb in self._present:
            return
        self._present.add(kb)
        self._entries.append((mbr, key, value))
        vsize = len(value) if isinstance(value, (bytes, bytearray)) else 16
        self.bytes_used += 32 + len(kb) + vsize + 64

    def __contains__(self, key) -> bool:
        return serialize_tuple(key) in self._present

    def search(self, window: ARectangle):
        """Yield (mbr, key, value) for entries whose MBR intersects window."""
        for mbr, key, value in self._entries:
            if window.intersects(mbr):
                yield mbr, key, value

    def items(self):
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._present.clear()
        self.bytes_used = 0
