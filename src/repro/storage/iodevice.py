"""I/O devices: where LSM components live (paper Fig. 2).

Each AsterixDB node "can have multiple I/O devices, with each storing the LSM
components associated with a dataset partition".  A device here is a real
directory holding real page files, plus the counters that feed both the
benchmark reports and the simulated-time clock (DESIGN.md, Substitutions):
random and sequential page reads/writes are counted separately because the
cost model charges them differently.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Physical I/O counters for one device."""

    reads: int = 0
    writes: int = 0
    seq_reads: int = 0
    seq_writes: int = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.reads, self.writes, self.seq_reads,
                       self.seq_writes)

    def diff(self, before: "IOStats") -> "IOStats":
        return IOStats(
            self.reads - before.reads,
            self.writes - before.writes,
            self.seq_reads - before.seq_reads,
            self.seq_writes - before.seq_writes,
        )

    @property
    def total_reads(self) -> int:
        return self.reads + self.seq_reads

    @property
    def total_writes(self) -> int:
        return self.writes + self.seq_writes

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.reads + other.reads,
            self.writes + other.writes,
            self.seq_reads + other.seq_reads,
            self.seq_writes + other.seq_writes,
        )


@dataclass
class IODevice:
    """One storage device: a directory of page files with I/O accounting.

    ``latency_us`` emulates device latency: when non-zero, every physical
    page access additionally sleeps that many real microseconds (the sleep
    releases the GIL, so concurrent tasks on *different* nodes overlap
    their I/O waits the way a real cluster overlaps disks).  It has no
    effect on the simulated clock — only on wall-clock time.
    """

    device_id: int
    root: str
    stats: IOStats = field(default_factory=IOStats)
    latency_us: float = 0.0

    def __post_init__(self):
        os.makedirs(self.root, exist_ok=True)

    def path_of(self, rel_path: str) -> str:
        return os.path.join(self.root, rel_path)

    def reset_stats(self) -> None:
        self.stats = IOStats()
