"""Storage layer: devices, files, buffer cache, access methods, LSM."""

from repro.storage.bloom import BloomFilter
from repro.storage.btree import BTree
from repro.storage.buffer_cache import BufferCache, CacheStats, CachedPage
from repro.storage.file_manager import FileHandle, FileManager
from repro.storage.iodevice import IODevice, IOStats
from repro.storage.linear_hash import LinearHashIndex
from repro.storage.mem import MemBTree, MemRTree
from repro.storage.rtree import RTree

__all__ = [
    "BTree",
    "BloomFilter",
    "BufferCache",
    "CacheStats",
    "CachedPage",
    "FileHandle",
    "FileManager",
    "IODevice",
    "IOStats",
    "LinearHashIndex",
    "MemBTree",
    "MemRTree",
    "RTree",
]
