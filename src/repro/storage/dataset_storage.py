"""Per-partition dataset storage (paper Fig. 1/2, features 5 and 8).

"AsterixDB's data storage scales linearly through primary key-based hash
partitioning of all datasets.  The data objects in a given dataset are
stored in partitions of LSM-based B+ trees, and local secondary indexing of
the data partitions can be requested by creating any combination of B+
trees, R-trees, and inverted indexes."

A :class:`PartitionStorage` is one such partition on one node: a primary
LSM B+ tree keyed on the primary key holding the serialized records, plus
local secondary indexes that are maintained on every mutation.  Secondary
indexes store (secondary key, primary key) entries only; queries resolve
them to records through :meth:`fetch_many`, which sorts the PKs first — the
reference-[26] trick whose consequence (PK fetch dominating end-to-end
spatial query time) is the punchline of experiment E1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.comparators import tuple_key
from repro.adm.serializer import deserialize, serialize
from repro.adm.values import MISSING, APoint, ARectangle
from repro.common.errors import (
    InvalidArgumentError,
    InvalidIndexDDLError,
    MetadataError,
)
from repro.observability.metrics import get_registry
from repro.storage.buffer_cache import BufferCache
from repro.storage.file_manager import FileManager
from repro.storage.lsm import (
    LSMBTree,
    LSMInvertedIndex,
    LSMRTree,
    MergePolicy,
)

SECONDARY_KINDS = ("btree", "rtree", "keyword", "ngram", "array")


@dataclass(frozen=True)
class SecondaryIndexSpec:
    """A ``CREATE INDEX`` request: what to index and how (Fig. 3(a)).

    ``kind == "array"`` is the multi-valued case ("AsterixDB: A Scalable,
    Open Source BDMS"): ``array_path`` names the record field holding the
    array, ``fields`` name fields *of each element* (empty = index the
    element value itself), and every element contributes one
    (element key..., pk...) entry to an LSM B+ tree."""

    name: str
    kind: str                       # btree | rtree | keyword | ngram | array
    fields: tuple                   # field names (composite for btree/array)
    gram_length: int = 3
    array_path: str = ""            # UNNEST path (array kind only)

    def __post_init__(self):
        if self.kind not in SECONDARY_KINDS:
            raise MetadataError(f"unknown index type {self.kind!r}")
        if self.kind == "array":
            if not self.array_path:
                raise InvalidIndexDDLError(
                    "array index needs an UNNEST path")
        elif self.array_path:
            raise InvalidIndexDDLError(
                f"{self.kind} index cannot have an UNNEST path")
        elif not self.fields:
            raise MetadataError("index needs at least one field")
        if self.kind not in ("btree", "array") and len(self.fields) != 1:
            raise MetadataError(f"{self.kind} index takes exactly one field")

    @property
    def key_width(self) -> int:
        """Number of leading secondary-key parts in each stored entry."""
        if self.kind == "array" and not self.fields:
            return 1                # the element value itself is the key
        return len(self.fields)


def field_value(record: dict, path: str):
    """Resolve a (possibly dotted) field path against a record."""
    value = record
    for part in path.split("."):
        if not isinstance(value, dict):
            return MISSING
        value = value.get(part, MISSING)
    return value


def array_element_keys(spec: SecondaryIndexSpec, record: dict):
    """The secondary keys an array index derives from ``record``: one key
    tuple per element of the array at ``spec.array_path``.

    Mirrors UNNEST semantics so index maintenance agrees with the scan
    plan the index search replaces: a MISSING/null/non-array value
    unnests to nothing, and an element whose *first* key field is
    MISSING/null is skipped (no predicate prefix can match it).  Trailing
    MISSING/null key parts are stored verbatim: the ADM comparators give
    them a total order (so LSM merge and the B+ tree stay sorted) while
    ``search_btree``'s band filter drops them from any search that bounds
    those columns (``comparable(MISSING, const)`` is false — exactly the
    null-predicate semantics of the scan plan), and prefix-bounded
    searches never examine the padded columns at all.  That is what makes
    prefix-bounded composite searches sound: every element with a known
    first key field has an entry, so the index is a superset of any
    prefix match.  Duplicate elements yield duplicate keys; the caller's
    (key, pk) composite upsert collapses them, which is also what makes
    maintenance idempotent."""
    array = field_value(record, spec.array_path)
    if not isinstance(array, (list, tuple)):
        return
    for elem in array:
        if spec.fields:
            if not isinstance(elem, dict):
                continue
            key = tuple(field_value(elem, f) for f in spec.fields)
        else:
            key = (elem,)
        if key[0] is MISSING or key[0] is None:
            continue
        yield key


def _trackable(value) -> bool:
    return (isinstance(value, (int, float, str))
            and not isinstance(value, bool))


def _record_synopsis_fields(key, payload):
    """Synopsis extractor for primary indexes: deserializes the stored
    record and reports top-level scalar fields, one level of nested
    scalar fields (dotted paths, so stats cover typical secondary-index
    keys), and array-valued fields (tracked as Unnest fan-out).  Pure
    Python outside the charged I/O path, so flush/merge simulated costs
    are unchanged."""
    record = deserialize(payload)
    if not isinstance(record, dict):
        return None
    out = {}
    for name, value in record.items():
        if isinstance(value, dict):
            for sub, sv in value.items():
                if _trackable(sv):
                    out[f"{name}.{sub}"] = sv
        elif _trackable(value) or isinstance(value, (list, tuple)):
            out[name] = value
    return out


class PartitionStorage:
    """One dataset partition: primary LSM B+ tree + local secondaries."""

    def __init__(self, fm: FileManager, cache: BufferCache,
                 dataset_name: str, partition_id: int, pk_fields: tuple, *,
                 memory_budget_bytes: int = 256 * 1024,
                 merge_policy: MergePolicy | None = None,
                 device_hint: int | None = None):
        self.fm = fm
        self.cache = cache
        self.dataset_name = dataset_name
        self.partition_id = partition_id
        self.pk_fields = tuple(pk_fields)
        self.memory_budget_bytes = memory_budget_bytes
        self.merge_policy = merge_policy
        self.device_hint = (partition_id if device_hint is None
                            else device_hint)
        self.primary = LSMBTree(
            fm, cache, self._storage_name("primary"),
            memory_budget_bytes=memory_budget_bytes,
            merge_policy=merge_policy,
            device_hint=self.device_hint,
        )
        self.primary.synopsis_extractor = _record_synopsis_fields
        self.secondaries: dict[str, tuple] = {}   # name -> (spec, index)
        # optional record validator (the dataset's declared type check),
        # installed by the metadata manager at CREATE DATASET time
        self.validator = None

    def _storage_name(self, suffix: str) -> str:
        return f"{self.dataset_name}/p{self.partition_id}/{suffix}"

    @classmethod
    def recover(cls, fm: FileManager, cache: BufferCache,
                dataset_name: str, partition_id: int, pk_fields: tuple,
                specs=(), **kwargs) -> "PartitionStorage":
        """Reopen a partition after a crash: the primary and every
        secondary are rebuilt from their LSM manifests (memory components
        are gone; the caller replays the WAL afterwards)."""
        storage = cls.__new__(cls)
        storage.fm = fm
        storage.cache = cache
        storage.dataset_name = dataset_name
        storage.partition_id = partition_id
        storage.pk_fields = tuple(pk_fields)
        storage.memory_budget_bytes = kwargs.get(
            "memory_budget_bytes", 256 * 1024)
        storage.merge_policy = kwargs.get("merge_policy")
        storage.device_hint = kwargs.get("device_hint", partition_id)
        storage.validator = None
        common = dict(
            memory_budget_bytes=storage.memory_budget_bytes,
            merge_policy=storage.merge_policy,
            device_hint=storage.device_hint,
        )
        storage.primary = LSMBTree.recover(
            fm, cache, storage._storage_name("primary"), **common)
        storage.primary.synopsis_extractor = _record_synopsis_fields
        storage.secondaries = {}
        for spec in specs:
            name = storage._storage_name(f"idx_{spec.name}")
            if spec.kind in ("btree", "array"):
                index = LSMBTree.recover(fm, cache, name, **common)
            elif spec.kind == "rtree":
                index = LSMRTree.recover(fm, cache, name, **common)
            else:
                index = LSMInvertedIndex.recover(
                    fm, cache, name, tokenizer=spec.kind,
                    gram_length=spec.gram_length, **common)
            storage.secondaries[spec.name] = (spec, index)
        return storage

    # -- primary key handling ---------------------------------------------------

    def extract_pk(self, record: dict) -> tuple:
        pk = []
        for name in self.pk_fields:
            value = field_value(record, name)
            if value is MISSING or value is None:
                raise InvalidArgumentError(
                    f"record lacks primary key field {name!r}"
                )
            pk.append(value)
        return tuple(pk)

    # -- secondary index DDL -------------------------------------------------------

    def create_secondary(self, spec: SecondaryIndexSpec,
                         build: bool = True) -> None:
        if spec.name in self.secondaries:
            raise MetadataError(f"index {spec.name} already exists")
        name = self._storage_name(f"idx_{spec.name}")
        common = dict(
            memory_budget_bytes=self.memory_budget_bytes,
            merge_policy=self.merge_policy,
            device_hint=self.device_hint,
        )
        if spec.kind in ("btree", "array"):
            index = LSMBTree(self.fm, self.cache, name, **common)
        elif spec.kind == "rtree":
            index = LSMRTree(self.fm, self.cache, name, **common)
        else:
            index = LSMInvertedIndex(
                self.fm, self.cache, name, tokenizer=spec.kind,
                gram_length=spec.gram_length, **common
            )
        self.secondaries[spec.name] = (spec, index)
        if build:
            for pk, raw in self.primary.scan():
                self._secondary_insert(spec, index, deserialize(raw), pk, 0)

    def drop_secondary(self, name: str) -> None:
        spec_index = self.secondaries.pop(name, None)
        if spec_index is None:
            raise MetadataError(f"no such index {name}")
        spec_index[1].drop()

    # -- mutations ------------------------------------------------------------------

    def insert(self, record: dict, lsn: int = 0) -> tuple:
        """INSERT: duplicate primary keys are an error."""
        if self.validator is not None:
            self.validator(record)
        pk = self.extract_pk(record)
        self.primary.insert_unique(pk, serialize(record), lsn)
        for spec, index in self.secondaries.values():
            self._secondary_insert(spec, index, record, pk, lsn)
        return pk

    def upsert(self, record: dict, lsn: int = 0) -> dict | None:
        """UPSERT (Fig. 3(d)): replace any existing record with the same
        primary key; returns the replaced record (or None)."""
        if self.validator is not None:
            self.validator(record)
        pk = self.extract_pk(record)
        old_raw = self.primary.search(pk)
        old = deserialize(old_raw) if old_raw is not None else None
        if old is not None:
            for spec, index in self.secondaries.values():
                self._secondary_delete(spec, index, old, pk, lsn)
        self.primary.upsert(pk, serialize(record), lsn)
        for spec, index in self.secondaries.values():
            self._secondary_insert(spec, index, record, pk, lsn)
        return old

    def delete(self, pk: tuple, lsn: int = 0) -> dict | None:
        """DELETE by primary key; returns the deleted record (or None)."""
        old_raw = self.primary.search(pk)
        if old_raw is None:
            return None
        old = deserialize(old_raw)
        for spec, index in self.secondaries.values():
            self._secondary_delete(spec, index, old, pk, lsn)
        self.primary.delete(pk, lsn)
        return old

    def _secondary_insert(self, spec, index, record, pk, lsn):
        if spec.kind == "array":
            counter = get_registry().counter("index.array.maintenance.inserts")
            for key in array_element_keys(spec, record):
                index.upsert((*key, *pk), b"", lsn)
                counter.inc()
            return
        values = [field_value(record, f) for f in spec.fields]
        if any(v is MISSING or v is None for v in values):
            return  # null/missing keys are not indexed
        if spec.kind == "btree":
            index.upsert((*values, *pk), b"", lsn)
        elif spec.kind == "rtree":
            point = values[0]
            if not isinstance(point, APoint):
                raise InvalidArgumentError(
                    f"rtree index field {spec.fields[0]} must be a point, "
                    f"got {type(point).__name__}"
                )
            index.insert(ARectangle(point, point),
                         (point.x, point.y, *pk), lsn)
        else:
            index.insert_document(str(values[0]), pk, lsn)

    def _secondary_delete(self, spec, index, record, pk, lsn):
        if spec.kind == "array":
            # keyed on the OLD record's elements, so entries for elements
            # that a shrinking upsert removed are tombstoned too
            counter = get_registry().counter("index.array.maintenance.deletes")
            for key in array_element_keys(spec, record):
                index.delete((*key, *pk), lsn)
                counter.inc()
            return
        values = [field_value(record, f) for f in spec.fields]
        if any(v is MISSING or v is None for v in values):
            return
        if spec.kind == "btree":
            index.delete((*values, *pk), lsn)
        elif spec.kind == "rtree":
            point = values[0]
            index.delete((point.x, point.y, *pk), lsn)
        else:
            index.delete_document(str(values[0]), pk, lsn)

    # -- reads ------------------------------------------------------------------------

    def get(self, pk: tuple) -> dict | None:
        raw = self.primary.search(pk)
        return deserialize(raw) if raw is not None else None

    def scan(self, lo=None, hi=None, **kwargs):
        """Yield (pk, record) over the primary index."""
        for pk, raw in self.primary.scan(lo, hi, **kwargs):
            yield pk, deserialize(raw)

    def fetch_many(self, pks, *, sort: bool = True):
        """Resolve primary keys to records.

        ``sort=True`` is the [26] optimization: sorting references before
        fetching turns random primary-index probes into mostly-sequential,
        cache-friendly access.  E1 reports both settings."""
        if sort:
            pks = sorted(pks, key=tuple_key)
        for pk in pks:
            raw = self.primary.search(pk)
            if raw is not None:
                yield pk, deserialize(raw)

    # -- secondary searches ---------------------------------------------------------

    def _index(self, name: str) -> tuple:
        try:
            return self.secondaries[name]
        except KeyError:
            raise MetadataError(f"no such index {name}") from None

    def search_btree(self, index_name: str, lo=None, hi=None, *,
                     lo_inclusive: bool = True, hi_inclusive: bool = True):
        """PKs with lo <= secondary key <= hi.

        Bounds are *prefixes* of the stored (secondary key..., pk...)
        composite keys: a bound of ``("alice",)`` matches every entry whose
        secondary key equals "alice" regardless of primary key, which is why
        the upper bound cannot be passed to the raw scan directly (a longer
        tuple sorts after its prefix).

        Entries whose key is not type-comparable with a bound are skipped:
        the predicate this search stands in for evaluates to null on such
        records (open fields may hold any type), so the scan+select plan
        would drop them."""
        from repro.adm.comparators import comparable_tuples, compare_tuples

        spec, index = self._index(index_name)
        if spec.kind not in ("btree", "array"):
            raise MetadataError(f"{index_name} is not a btree index")
        nfields = spec.key_width
        for key, _ in index.scan(lo, None):
            if lo is not None and not lo_inclusive:
                if compare_tuples(key[:len(lo)], lo) == 0:
                    continue
            if hi is not None:
                c = compare_tuples(key[:len(hi)], hi)
                if c > 0 or (c == 0 and not hi_inclusive):
                    return
            if lo is not None and not comparable_tuples(key, lo):
                continue
            if hi is not None and not comparable_tuples(key, hi):
                continue
            yield tuple(key[nfields:])

    def search_rtree(self, index_name: str, window: ARectangle):
        """PKs of records whose indexed point lies in the window."""
        spec, index = self._index(index_name)
        if spec.kind != "rtree":
            raise MetadataError(f"{index_name} is not an rtree index")
        for key in index.search(window):
            point = APoint(key[0], key[1])
            if window.contains_point(point):
                yield tuple(key[2:])

    def search_keyword(self, index_name: str, text: str):
        """PKs of records containing all tokens of ``text``."""
        spec, index = self._index(index_name)
        if spec.kind not in ("keyword", "ngram"):
            raise MetadataError(f"{index_name} is not an inverted index")
        return index.search_conjunctive(text)

    # -- lifecycle --------------------------------------------------------------------

    def flush_all(self) -> None:
        self.primary.flush()
        for _, index in self.secondaries.values():
            index.flush()

    def durable_lsn(self) -> int:
        """Replay point for recovery: the min durable LSN across the
        primary and all secondaries (anything newer must be replayed)."""
        lsns = [self.primary.durable_lsn()]
        for spec, index in self.secondaries.values():
            if spec.kind in ("keyword", "ngram"):
                lsns.append(index.btree.durable_lsn())
            else:
                lsns.append(index.durable_lsn())
        return min(lsns)

    def count(self) -> int:
        return sum(1 for _ in self.primary.scan())

    def statistics(self):
        """This partition's primary-index synopsis (see
        :mod:`repro.storage.lsm.synopsis`), or None."""
        return self.primary.synopsis()

    def statistics_version(self) -> tuple:
        """A cheap fingerprint of the statistics-relevant state — used by
        the catalog to cache dataset rollups between mutations."""
        return (len(self.primary.components), len(self.primary.memory),
                self.primary.stats.flushes, self.primary.stats.merges)

    def drop(self) -> None:
        self.primary.drop()
        for _, index in self.secondaries.values():
            index.drop()
        self.secondaries.clear()
