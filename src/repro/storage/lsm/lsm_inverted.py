"""LSM inverted indexes: keyword and n-gram (paper feature 8).

AsterixDB offers "several variants of inverted keyword indexes" — Fig. 3(a)
creates one with ``CREATE INDEX ... TYPE KEYWORD`` on the message text.  An
inverted index maps tokens to the primary keys of the records containing
them; here the postings are stored in an :class:`LSMBTree` keyed by
``(token, pk...)``, which gives us flush/merge/antimatter behaviour for
free and mirrors AsterixDB's "inverted index as a B+ tree of (token, key)"
physical design.

Two tokenizers are provided: word tokens (KEYWORD indexes, conjunctive
keyword search) and character n-grams (NGRAM indexes, which also power
edit-distance similarity search: a string within edit distance *d* of the
query shares at least ``len(query) - n + 1 - d*n`` of its n-grams).
"""

from __future__ import annotations

import re

from repro.storage.buffer_cache import BufferCache
from repro.storage.file_manager import FileManager
from repro.storage.lsm.lsm_btree import LSMBTree
from repro.storage.lsm.merge_policy import MergePolicy

_WORD_RE = re.compile(r"[a-z0-9]+")


def word_tokens(text: str) -> set[str]:
    """Lowercased alphanumeric word tokens."""
    return set(_WORD_RE.findall(text.lower()))


def ngram_tokens(text: str, n: int = 3) -> set[str]:
    """Character n-grams of the lowercased text, padded at the edges."""
    padded = "\x01" * (n - 1) + text.lower() + "\x02" * (n - 1)
    return {padded[i:i + n] for i in range(len(padded) - n + 1)}


class LSMInvertedIndex:
    """Token -> primary-key postings over an LSM B+ tree."""

    def __init__(self, fm: FileManager, cache: BufferCache, name: str, *,
                 tokenizer: str = "keyword",
                 gram_length: int = 3,
                 memory_budget_bytes: int = 256 * 1024,
                 merge_policy: MergePolicy | None = None,
                 device_hint: int = 0):
        if tokenizer not in ("keyword", "ngram"):
            raise ValueError(f"unknown tokenizer {tokenizer!r}")
        self.tokenizer = tokenizer
        self.gram_length = gram_length
        self.btree = LSMBTree(
            fm, cache, name,
            memory_budget_bytes=memory_budget_bytes,
            merge_policy=merge_policy,
            device_hint=device_hint,
            bloom_fpr=0.05,
        )

    def tokens_of(self, text: str) -> set[str]:
        if self.tokenizer == "keyword":
            return word_tokens(text)
        return ngram_tokens(text, self.gram_length)

    # -- maintenance ----------------------------------------------------------

    def insert_document(self, text: str, pk: tuple, lsn: int = 0) -> None:
        for token in self.tokens_of(text):
            self.btree.upsert((token, *pk), b"", lsn)

    def delete_document(self, text: str, pk: tuple, lsn: int = 0) -> None:
        for token in self.tokens_of(text):
            self.btree.delete((token, *pk), lsn)

    # -- search -----------------------------------------------------------------

    def search_token(self, token: str):
        """Yield primary-key tuples of documents containing ``token``."""
        for key, _ in self.btree.scan(lo=(token,), hi=None):
            if key[0] != token:
                return
            yield key[1:]

    def search_conjunctive(self, text: str) -> list[tuple]:
        """PKs of documents containing *all* tokens of ``text`` (the
        semantics of SQL++'s ftcontains / keyword-index search)."""
        tokens = sorted(self.tokens_of(text))
        if not tokens:
            return []
        result = set(self.search_token(tokens[0]))
        for token in tokens[1:]:
            if not result:
                break
            result &= set(self.search_token(token))
        return sorted(result)

    def search_similarity(self, query: str, edit_distance: int) -> list[tuple]:
        """Candidate PKs for strings within ``edit_distance`` of ``query``
        (n-gram lower-bound filter; callers verify with the real edit
        distance — the standard filter-and-verify pipeline)."""
        if self.tokenizer != "ngram":
            raise ValueError("similarity search needs an ngram index")
        grams = ngram_tokens(query, self.gram_length)
        threshold = len(grams) - edit_distance * self.gram_length
        if threshold <= 0:
            raise ValueError(
                f"edit distance {edit_distance} too large for query "
                f"{query!r} with {self.gram_length}-grams (T-occurrence "
                f"threshold is non-positive; a scan would be required)"
            )
        counts: dict[tuple, int] = {}
        for gram in grams:
            for pk in self.search_token(gram):
                counts[pk] = counts.get(pk, 0) + 1
        return sorted(pk for pk, c in counts.items() if c >= threshold)

    # -- plumbing ------------------------------------------------------------------

    @classmethod
    def recover(cls, fm: FileManager, cache: BufferCache, name: str,
                **kwargs) -> "LSMInvertedIndex":
        """Reopen from the postings store's manifest after a crash."""
        index = cls(fm, cache, name, **kwargs)
        index.btree = LSMBTree.recover(
            fm, cache, name,
            memory_budget_bytes=index.btree.memory_budget_bytes,
            merge_policy=index.btree.merge_policy,
            device_hint=index.btree.device_hint,
            bloom_fpr=0.05,
        )
        return index

    def flush(self):
        return self.btree.flush()

    @property
    def stats(self):
        return self.btree.stats

    @property
    def num_disk_components(self) -> int:
        return self.btree.num_disk_components

    def drop(self) -> None:
        self.btree.drop()
