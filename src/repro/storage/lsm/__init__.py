"""LSM storage framework: components, merge policies, LSM indexes."""

from repro.storage.lsm.component import (
    ANTIMATTER,
    MATTER,
    DiskComponent,
    LSMStats,
    decode,
    encode_matter,
)
from repro.storage.lsm.lsm_btree import LSMBTree
from repro.storage.lsm.lsm_inverted import (
    LSMInvertedIndex,
    ngram_tokens,
    word_tokens,
)
from repro.storage.lsm.lsm_rtree import LSMRTree
from repro.storage.lsm.merge_policy import (
    ConstantMergePolicy,
    MergePolicy,
    NoMergePolicy,
    PrefixMergePolicy,
)

__all__ = [
    "ANTIMATTER",
    "MATTER",
    "ConstantMergePolicy",
    "DiskComponent",
    "LSMBTree",
    "LSMInvertedIndex",
    "LSMRTree",
    "LSMStats",
    "MergePolicy",
    "NoMergePolicy",
    "PrefixMergePolicy",
    "decode",
    "encode_matter",
    "ngram_tokens",
    "word_tokens",
]
