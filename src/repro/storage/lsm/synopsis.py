"""Per-component statistics synopses for cost-based optimization.

The paper's Algebricks layer is "data-partition-aware": join orders,
build sides, and connector strategies come from *data properties*, not
query syntax.  The data properties have to come from somewhere, and in
an LSM system the natural harvest point is component construction: flush
and merge both stream every record of the component exactly once, in key
order, so building a synopsis there is nearly free (PAPERS.md, LSM
storage management).

A :class:`ComponentSynopsis` records, per disk component:

* the record count;
* per tracked field: value count, min/max, an (approximate) distinct
  count, and a fixed-width **equi-depth histogram** over numeric values
  (every bucket holds ~the same number of records, so skewed data gets
  fine boundaries where the data is dense — the classic choice for
  selectivity estimation);
* for array-valued fields: element totals, so the optimizer can
  estimate Unnest fan-out.

Synopses are plain JSON-able dicts end to end: they persist inside the
LSM manifest (surviving restart via ``LSMBTree.recover``) and merge
cheaply at query-optimization time into a per-dataset rollup
(:meth:`MetadataManager.dataset_statistics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_BUCKETS = 16

#: scalar types histograms are built over (ADM ints/floats; bools are
#: min/max-only, strings get min/max + distinct but no histogram)
_NUMERIC = (int, float)


# -- equi-depth histogram -----------------------------------------------------


@dataclass
class EquiDepthHistogram:
    """Equi-depth histogram over numeric values.

    ``bounds`` has ``len(counts) + 1`` entries; bucket ``i`` covers
    ``(bounds[i], bounds[i+1]]`` except bucket 0 which is inclusive on
    the left.  ``counts[i]`` is the number of values in bucket ``i``.
    """

    bounds: list = field(default_factory=list)
    counts: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(self.counts)

    @classmethod
    def build(cls, values, buckets: int = DEFAULT_BUCKETS):
        """Build from an iterable of numeric values (need not be sorted)."""
        vals = sorted(v for v in values
                      if isinstance(v, _NUMERIC) and not isinstance(v, bool))
        if not vals:
            return None
        n = len(vals)
        buckets = max(1, min(buckets, n))
        bounds = [vals[0]]
        counts = []
        prev = 0
        for b in range(1, buckets + 1):
            # equi-depth boundary: the value at the b/buckets quantile
            cut = (n * b) // buckets
            if cut <= prev:
                continue
            bounds.append(vals[cut - 1])
            counts.append(cut - prev)
            prev = cut
        return cls(bounds, counts)

    # -- estimation ------------------------------------------------------------

    def _fraction_below(self, x, inclusive: bool) -> float:
        """Fraction of values <= x (inclusive) or < x (exclusive),
        interpolating linearly inside the containing bucket."""
        if not self.counts:
            return 0.0
        total = self.total
        if x < self.bounds[0]:
            return 0.0
        if x >= self.bounds[-1]:
            if inclusive or x > self.bounds[-1]:
                return 1.0
        seen = 0
        for i, count in enumerate(self.counts):
            lo, hi = self.bounds[i], self.bounds[i + 1]
            # a degenerate bucket (hi == lo) has all its mass AT hi, so
            # an exclusive bound x == hi must not count it; continuous
            # buckets put negligible mass at the exact boundary
            if x > hi or (x == hi and (inclusive or hi > lo)):
                seen += count
                continue
            width = hi - lo
            if width <= 0:           # degenerate bucket: one repeated value
                frac = 0.0           # x <= hi here, and exclusive at hi
            else:
                frac = (x - lo) / width
            return (seen + count * max(0.0, min(1.0, frac))) / total
        return seen / total

    def estimate_range(self, lo=None, hi=None, *, lo_inclusive=True,
                       hi_inclusive=True) -> float:
        """Estimated fraction of values in [lo, hi] (bounds optional)."""
        above = (self._fraction_below(hi, hi_inclusive)
                 if hi is not None else 1.0)
        below = (self._fraction_below(lo, not lo_inclusive)
                 if lo is not None else 0.0)
        return max(0.0, above - below)

    def estimate_eq(self, value, distinct: int = 0) -> float:
        """Estimated fraction of values equal to ``value``: uniform over
        the distinct values of the containing bucket when a distinct
        count is known, else the bucket-interpolated point mass."""
        if not self.counts:
            return 0.0
        if distinct > 0:
            in_range = self.estimate_range(value, value)
            return max(in_range, 1.0 / distinct) if in_range > 0 else 0.0
        return self.estimate_range(value, value)

    # -- persistence / merge ---------------------------------------------------

    def to_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts)}

    @classmethod
    def from_dict(cls, d):
        if not d:
            return None
        return cls(list(d["bounds"]), list(d["counts"]))

    @classmethod
    def merge(cls, histograms, buckets: int = DEFAULT_BUCKETS):
        """Merge several histograms by weighted-point resampling: each
        bucket contributes its upper bound with its count as weight, and
        an equi-depth partition is rebuilt over the combined points.
        Cheap (no raw values needed) and bounded error: boundaries can
        be off by at most one source bucket's width."""
        points = []                       # (value, weight)
        for h in histograms:
            if h is None or not h.counts:
                continue
            points.append((h.bounds[0], 0))
            for i, count in enumerate(h.counts):
                points.append((h.bounds[i + 1], count))
        if not points:
            return None
        points.sort(key=lambda p: p[0])
        total = sum(w for _, w in points)
        if total == 0:
            return None
        buckets = max(1, min(buckets, sum(1 for _, w in points if w)))
        bounds = [points[0][0]]
        counts = []
        acc = 0
        target_idx = 1
        carried = 0
        for value, weight in points:
            acc += weight
            carried += weight
            while target_idx <= buckets and \
                    acc >= (total * target_idx) // buckets and carried:
                bounds.append(value)
                counts.append(carried)
                carried = 0
                target_idx += 1
        if carried:
            bounds.append(points[-1][0])
            counts.append(carried)
        return cls(bounds, counts)


# -- per-field and per-component synopses -------------------------------------


@dataclass
class FieldSynopsis:
    """Statistics for one tracked field of a component."""

    count: int = 0                  # records with a known value
    min: object = None
    max: object = None
    distinct: int = 0               # exact at build time, approx on merge
    histogram: EquiDepthHistogram | None = None
    array_count: int = 0            # records where the value is an array
    array_elements: int = 0         # total elements across those arrays

    @property
    def avg_array_length(self) -> float:
        if self.array_count == 0:
            return 0.0
        return self.array_elements / self.array_count

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "distinct": self.distinct,
            "histogram": (self.histogram.to_dict()
                          if self.histogram is not None else None),
            "array_count": self.array_count,
            "array_elements": self.array_elements,
        }

    @classmethod
    def from_dict(cls, d) -> "FieldSynopsis":
        return cls(
            count=d.get("count", 0),
            min=d.get("min"),
            max=d.get("max"),
            distinct=d.get("distinct", 0),
            histogram=EquiDepthHistogram.from_dict(d.get("histogram")),
            array_count=d.get("array_count", 0),
            array_elements=d.get("array_elements", 0),
        )

    # -- estimation (what the optimizer asks) ---------------------------------

    def selectivity_eq(self, value) -> float:
        if self.count == 0:
            return 0.0
        if self.histogram is not None and isinstance(value, _NUMERIC) \
                and not isinstance(value, bool):
            return self.histogram.estimate_eq(value, self.distinct)
        if self.distinct > 0:
            return 1.0 / self.distinct
        return 0.1

    def selectivity_range(self, lo=None, hi=None, *, lo_inclusive=True,
                          hi_inclusive=True) -> float:
        if self.histogram is not None:
            numeric = all(
                b is None or (isinstance(b, _NUMERIC)
                              and not isinstance(b, bool))
                for b in (lo, hi))
            if numeric:
                return self.histogram.estimate_range(
                    lo, hi, lo_inclusive=lo_inclusive,
                    hi_inclusive=hi_inclusive)
        return 0.3


def merge_field_synopses(parts) -> FieldSynopsis:
    """Roll several component-level field synopses into one.

    min/max combine exactly; counts add; the distinct count is
    approximated as ``min(sum of parts, total count)`` — exact for
    unique keys (each component's values are disjoint-ish) and an
    overestimate for low-cardinality fields, which errs toward smaller
    join-output estimates (the safe direction for build-side and
    broadcast choices)."""
    out = FieldSynopsis()
    comparable = []
    for p in parts:
        if p is None:
            continue
        out.count += p.count
        out.distinct += p.distinct
        out.array_count += p.array_count
        out.array_elements += p.array_elements
        for bound, pick in (("min", min), ("max", max)):
            value = getattr(p, bound)
            if value is None:
                continue
            current = getattr(out, bound)
            try:
                setattr(out, bound,
                        value if current is None else pick(current, value))
            except TypeError:        # cross-type min/max: keep first seen
                pass
        if p.histogram is not None:
            comparable.append(p.histogram)
    out.distinct = min(out.distinct, out.count)
    out.histogram = EquiDepthHistogram.merge(comparable)
    return out


@dataclass
class ComponentSynopsis:
    """Statistics for one LSM disk component: record count plus a
    :class:`FieldSynopsis` per tracked field path."""

    record_count: int = 0
    fields: dict = field(default_factory=dict)    # path -> FieldSynopsis

    def to_dict(self) -> dict:
        return {
            "record_count": self.record_count,
            "fields": {p: f.to_dict() for p, f in self.fields.items()},
        }

    @classmethod
    def from_dict(cls, d):
        if not d:
            return None
        return cls(
            record_count=d.get("record_count", 0),
            fields={p: FieldSynopsis.from_dict(f)
                    for p, f in d.get("fields", {}).items()},
        )

    @classmethod
    def merge(cls, parts) -> "ComponentSynopsis":
        parts = list(parts)          # iterated twice; accept generators
        out = cls()
        paths = set()
        for p in parts:
            if p is None:
                continue
            out.record_count += p.record_count
            paths.update(p.fields)
        for path in paths:
            out.fields[path] = merge_field_synopses(
                p.fields.get(path) for p in parts if p is not None)
        return out


class SynopsisBuilder:
    """Accumulates field values while a flush/merge streams records,
    then builds the :class:`ComponentSynopsis` in one pass."""

    def __init__(self, buckets: int = DEFAULT_BUCKETS):
        self.buckets = buckets
        self.record_count = 0
        self._values: dict = {}      # path -> list of scalar values
        self._arrays: dict = {}      # path -> (array_count, element_count)

    def add(self, fields: dict | None) -> None:
        """Record one record's extracted ``{path: value}`` mapping.
        Lists are tracked as array fan-out; scalars feed min/max,
        distinct, and the histogram.  ``None``/unknown values are simply
        absent from ``fields``."""
        self.record_count += 1
        if not fields:
            return
        for path, value in fields.items():
            if isinstance(value, (list, tuple)):
                count, elements = self._arrays.get(path, (0, 0))
                self._arrays[path] = (count + 1, elements + len(value))
            elif isinstance(value, (int, float, str)) \
                    and not isinstance(value, bool):
                self._values.setdefault(path, []).append(value)

    def build(self) -> ComponentSynopsis:
        synopsis = ComponentSynopsis(record_count=self.record_count)
        for path, values in self._values.items():
            fs = FieldSynopsis(
                count=len(values),
                distinct=len(set(values)),
                histogram=EquiDepthHistogram.build(values, self.buckets),
            )
            try:
                fs.min, fs.max = min(values), max(values)
            except TypeError:        # mixed types (int + str): skip bounds
                pass
            synopsis.fields[path] = fs
        for path, (count, elements) in self._arrays.items():
            fs = synopsis.fields.setdefault(path, FieldSynopsis())
            fs.array_count = count
            fs.array_elements = elements
        return synopsis
