"""The LSM R-tree — AsterixDB's spatial secondary index.

Entries are (mbr, key) pairs where ``key`` is the full logical entry key —
for a secondary index on a point field, ``(x, y, pk...)`` — so an entry is
uniquely identified by its key tuple.  R-trees don't support antimatter
in-place (entries aren't totally ordered), so each component carries a
companion *deleted-key B+ tree*: a delete writes the victim's key there, and
searches suppress entries whose key appears in any newer component's
deleted-key set.  This is exactly the LSM-deletion design change the paper
says was folded back into Apache AsterixDB after the spatial-index study
(§V-B), along with the point-storage optimization implemented in
:mod:`repro.storage.rtree` (points stored as 2 doubles, not degenerate
4-double boxes).

Flushes STR-bulk-load an immutable disk R-tree; merges consolidate matter
entries and deleted-key sets with the same newest-wins rules as the LSM B+
tree.
"""

from __future__ import annotations

from repro.adm.serializer import deserialize_tuple, serialize_tuple
from repro.adm.values import ARectangle
from repro.storage.btree import BTree
from repro.storage.buffer_cache import BufferCache
from repro.storage.file_manager import FileManager
from repro.storage.lsm.component import ANTIMATTER, DiskComponent, LSMStats
from repro.storage.lsm.merge_policy import MergePolicy, PrefixMergePolicy
from repro.storage.mem import MemBTree, MemRTree


class LSMRTree:
    """An LSM-structured R-tree: (mbr, key tuple) entries with window search."""

    def __init__(self, fm: FileManager, cache: BufferCache, name: str, *,
                 memory_budget_bytes: int = 256 * 1024,
                 merge_policy: MergePolicy | None = None,
                 device_hint: int = 0):
        self.fm = fm
        self.cache = cache
        self.name = name
        self.memory_budget_bytes = memory_budget_bytes
        self.merge_policy = merge_policy or PrefixMergePolicy()
        self.device_hint = device_hint
        self.memory = MemRTree()
        self.memory_deleted = MemBTree()
        self.memory_lsn = 0
        self.components: list[DiskComponent] = []   # newest first
        self.stats = LSMStats()
        self._next_seq = 0

    # -- write path -----------------------------------------------------------

    def insert(self, mbr: ARectangle, key, lsn: int = 0) -> None:
        # A re-insert of a previously deleted key resurrects it: drop the
        # pending tombstone (the duplicate-suppressing search dedupe makes
        # the surviving older copy indistinguishable from the new one).
        if key in self.memory_deleted:
            self.memory_deleted.put(key, b"+")
        self.memory.insert(mbr, key, b"")
        self.memory_lsn = max(self.memory_lsn, lsn)
        self._maybe_flush()

    def delete(self, key, lsn: int = 0) -> None:
        self.memory_deleted.put(key, b"-")
        self.memory_lsn = max(self.memory_lsn, lsn)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        used = self.memory.bytes_used + self.memory_deleted.bytes_used
        if used >= self.memory_budget_bytes:
            self.flush()

    # -- read path --------------------------------------------------------------

    def search(self, window: ARectangle):
        """Yield key tuples of live entries whose MBR intersects window."""
        self.stats.searches += 1
        seen: set[bytes] = set()
        killed: set[bytes] = set()
        # memory component first
        mem_deleted = {
            serialize_tuple(k)
            for k, v in self.memory_deleted.items() if v == b"-"
        }
        for _, key, _ in self.memory.search(window):
            kb = serialize_tuple(key)
            if kb in mem_deleted or kb in seen:
                continue
            seen.add(kb)
            yield key
        killed |= mem_deleted
        for comp in self.components:
            self.stats.components_searched += 1
            for _, payload in comp.index.search(window):
                if payload in killed or payload in seen:
                    continue
                seen.add(payload)
                yield deserialize_tuple(payload)
            if comp.deleted_keys is not None:
                for dkey, _ in comp.deleted_keys.range_scan():
                    killed.add(serialize_tuple(dkey))

    def scan_all(self):
        """Yield (mbr, key) for every live entry (used by tests/merges)."""
        seen: set[bytes] = set()
        killed: set[bytes] = set()
        mem_deleted = {
            serialize_tuple(k)
            for k, v in self.memory_deleted.items() if v == b"-"
        }
        for mbr, key, _ in self.memory.items():
            kb = serialize_tuple(key)
            if kb in mem_deleted or kb in seen:
                continue
            seen.add(kb)
            yield mbr, key
        killed |= mem_deleted
        for comp in self.components:
            for mbr, payload in comp.index.scan_all():
                if payload in killed or payload in seen:
                    continue
                seen.add(payload)
                yield mbr, deserialize_tuple(payload)
            if comp.deleted_keys is not None:
                for dkey, _ in comp.deleted_keys.range_scan():
                    killed.add(serialize_tuple(dkey))

    def __len__(self):
        return sum(1 for _ in self.scan_all())

    # -- flush -------------------------------------------------------------------

    def flush(self) -> DiskComponent | None:
        has_matter = len(self.memory) > 0
        has_deletes = any(v == b"-" for _, v in self.memory_deleted.items())
        if not has_matter and not has_deletes:
            return None
        seq = self._next_seq
        self._next_seq += 1
        handle = self.fm.create_file(f"{self.name}_c{seq}.rtree",
                                     self.device_hint)
        # annihilate within the memory component: an entry deleted after
        # being inserted in the same component must not be flushed as
        # matter (its tombstone, living in the same component, would only
        # apply to *older* components and the entry would resurrect)
        deleted_now = {
            serialize_tuple(k)
            for k, v in self.memory_deleted.items() if v == b"-"
        }
        entries = [
            (mbr, serialize_tuple(key))
            for mbr, key, _ in self.memory.items()
            if serialize_tuple(key) not in deleted_now
        ]
        tree = self._bulk_load_rtree(handle, entries)
        dhandle = self.fm.create_file(f"{self.name}_c{seq}.deleted",
                                      self.device_hint)
        deleted_items = [
            (k, ANTIMATTER) for k, v in self.memory_deleted.items()
            if v == b"-"
        ]
        dtree = BTree.bulk_load(self.cache, dhandle, deleted_items)
        comp = DiskComponent(
            component_id=(seq, seq),
            index=tree,
            handle=handle,
            num_entries=len(entries),
            lsn=self.memory_lsn,
            deleted_keys=dtree,
            deleted_handle=dhandle,
        )
        self.components.insert(0, comp)
        self.memory.clear()
        self.memory_deleted.clear()
        self.memory_lsn = 0
        self.stats.flushes += 1
        self.stats.entries_flushed += len(entries)
        self._maybe_merge()
        self._save_manifest()
        return comp

    def _bulk_load_rtree(self, handle, entries):
        from repro.storage.rtree import RTree

        return RTree.bulk_load(self.cache, handle, entries)

    # -- merge ----------------------------------------------------------------------

    def _maybe_merge(self) -> None:
        selection = self.merge_policy.select(self.components)
        if selection is not None:
            self.merge(selection)

    def merge(self, selection: slice | None = None) -> DiskComponent | None:
        if selection is None:
            selection = slice(0, len(self.components))
        merged = self.components[selection]
        if len(merged) < 2:
            return None
        includes_oldest = selection.stop >= len(self.components)
        # matter: newest-first walk with kill sets, as in search()
        seen: set[bytes] = set()
        killed: set[bytes] = set()
        entries = []
        deleted_union: dict[bytes, tuple] = {}
        for comp in merged:
            for mbr, payload in comp.index.scan_all():
                if payload in killed or payload in seen:
                    continue
                seen.add(payload)
                entries.append((mbr, payload))
            if comp.deleted_keys is not None:
                for dkey, _ in comp.deleted_keys.range_scan():
                    kb = serialize_tuple(dkey)
                    killed.add(kb)
                    deleted_union.setdefault(kb, dkey)

        seq_lo = min(c.min_seq for c in merged)
        seq_hi = max(c.max_seq for c in merged)
        handle = self.fm.create_file(f"{self.name}_c{seq_lo}-{seq_hi}.rtree",
                                     self.device_hint)
        tree = self._bulk_load_rtree(handle, entries)
        dhandle = self.fm.create_file(
            f"{self.name}_c{seq_lo}-{seq_hi}.deleted", self.device_hint
        )
        if includes_oldest:
            deleted_items = []
        else:
            # tombstones must survive to kill entries in older components;
            # ones whose key re-appeared as matter here are spent
            deleted_items = sorted(
                ((dkey, ANTIMATTER) for kb, dkey in deleted_union.items()
                 if kb not in seen),
                key=lambda kv: _sortable(kv[0]),
            )
        dtree = BTree.bulk_load(self.cache, dhandle, deleted_items)
        comp = DiskComponent(
            component_id=(seq_lo, seq_hi),
            index=tree,
            handle=handle,
            num_entries=len(entries),
            lsn=max(c.lsn for c in merged),
            deleted_keys=dtree,
            deleted_handle=dhandle,
        )
        self.components[selection] = [comp]
        for old in merged:
            self.cache.evict_file(old.handle)
            self.fm.delete_file(old.handle)
            if old.deleted_handle is not None:
                self.cache.evict_file(old.deleted_handle)
                self.fm.delete_file(old.deleted_handle)
        self.stats.merges += 1
        self.stats.merged_components += len(merged)
        self.stats.entries_merged += len(entries)
        self._save_manifest()
        return comp

    # -- introspection ------------------------------------------------------------

    @property
    def num_disk_components(self) -> int:
        return len(self.components)

    def durable_lsn(self) -> int:
        """Newest LSN guaranteed durable (max over disk components)."""
        return max((c.lsn for c in self.components), default=0)

    def _device(self):
        return self.fm.devices[self.device_hint % len(self.fm.devices)]

    def _manifest_path(self) -> str:
        return self._device().path_of(f"{self.name}.manifest")

    def _save_manifest(self) -> None:
        import json

        entries = [
            {
                "file": comp.handle.rel_path,
                "deleted_file": comp.deleted_handle.rel_path,
                "id": list(comp.component_id),
                "entries": comp.num_entries,
                "lsn": comp.lsn,
            }
            for comp in self.components
        ]
        with open(self._manifest_path(), "w") as f:
            json.dump(entries, f)

    @classmethod
    def recover(cls, fm: FileManager, cache: BufferCache, name: str,
                **kwargs) -> "LSMRTree":
        """Reopen from the manifest after a crash (memory component lost;
        WAL replay restores it)."""
        import json

        from repro.storage.rtree import RTree

        lsm = cls(fm, cache, name, **kwargs)
        try:
            with open(lsm._manifest_path()) as f:
                entries = json.load(f)
        except FileNotFoundError:
            return lsm
        max_seq = -1
        for entry in entries:
            handle = fm.open_file(entry["file"], lsm.device_hint)
            dhandle = fm.open_file(entry["deleted_file"], lsm.device_hint)
            comp = DiskComponent(
                component_id=tuple(entry["id"]),
                index=RTree.open(lsm.cache, handle),
                handle=handle,
                num_entries=entry["entries"],
                lsn=entry["lsn"],
                deleted_keys=BTree.open(lsm.cache, dhandle),
                deleted_handle=dhandle,
            )
            lsm.components.append(comp)
            max_seq = max(max_seq, comp.max_seq)
        lsm._next_seq = max_seq + 1
        return lsm

    def drop(self) -> None:
        import os

        try:
            os.remove(self._manifest_path())
        except FileNotFoundError:
            pass
        for comp in self.components:
            self.cache.evict_file(comp.handle)
            self.fm.delete_file(comp.handle)
            if comp.deleted_handle is not None:
                self.cache.evict_file(comp.deleted_handle)
                self.fm.delete_file(comp.deleted_handle)
        self.components.clear()
        self.memory.clear()
        self.memory_deleted.clear()


def _sortable(key):
    from repro.adm.comparators import tuple_key

    return tuple_key(key)
