"""LSM merge policies.

How aggressively disk components are merged is the central LSM design
trade-off: fewer components make reads cheap but cost write amplification.
AsterixDB ships several policies; we implement the three that span the
space, and benchmark E10 ablates them:

* :class:`NoMergePolicy` — never merge (read-pessimal, write-optimal).
* :class:`ConstantMergePolicy` — keep at most ``num_components`` on disk;
  merge them all when the bound is exceeded.
* :class:`PrefixMergePolicy` — AsterixDB's default: merge a *prefix*
  (newest-first) run of small components once their combined size passes a
  threshold, leaving large, settled components alone.
"""

from __future__ import annotations

from repro.storage.lsm.component import DiskComponent


class MergePolicy:
    """Strategy interface: given the disk components (newest first), return
    the contiguous newest-first slice to merge, or None."""

    name = "abstract"

    def select(self, components: list[DiskComponent]) -> slice | None:
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class NoMergePolicy(MergePolicy):
    """Never merge; components accumulate until the index is dropped."""

    name = "no-merge"

    def select(self, components):
        return None


class ConstantMergePolicy(MergePolicy):
    """Bound the number of disk components; full merge when exceeded."""

    name = "constant"

    def __init__(self, num_components: int = 4):
        self.num_components = num_components

    def select(self, components):
        if len(components) > self.num_components:
            return slice(0, len(components))
        return None

    def __repr__(self):
        return f"ConstantMergePolicy({self.num_components})"


class PrefixMergePolicy(MergePolicy):
    """AsterixDB's default policy (simplified).

    Scanning newest-first, find the longest prefix of components each
    smaller than ``max_mergable_size`` entries; merge that prefix if it has
    more than ``max_tolerance_count`` components or its total size passes
    ``max_mergable_size``.
    """

    name = "prefix"

    def __init__(self, max_mergable_size: int = 100_000,
                 max_tolerance_count: int = 5):
        self.max_mergable_size = max_mergable_size
        self.max_tolerance_count = max_tolerance_count

    def select(self, components):
        prefix_len = 0
        prefix_size = 0
        for comp in components:
            if comp.num_entries >= self.max_mergable_size:
                break
            prefix_len += 1
            prefix_size += comp.num_entries
        if prefix_len < 2:
            return None
        if (prefix_len > self.max_tolerance_count
                or prefix_size >= self.max_mergable_size):
            return slice(0, prefix_len)
        return None

    def __repr__(self):
        return (f"PrefixMergePolicy(max_mergable_size="
                f"{self.max_mergable_size}, max_tolerance_count="
                f"{self.max_tolerance_count})")
