"""The LSM B+ tree.

"The data objects in a given dataset are stored in partitions of LSM-based
B+ trees" (paper Section III): this structure is the primary index of every
dataset partition, and — keyed on (secondary key, primary key) — also every
B+ tree secondary index, the inverted index's postings store, and the
linearized spatial competitors of experiment E1.

Writes go to a byte-budgeted memory component; exceeding the budget flushes
it to an immutable, bulk-loaded, bloom-filtered disk component.  Deletes are
antimatter records.  Point lookups consult components newest-first (bloom
filters skip most disk components); range scans merge all components with
newest-wins semantics.  A merge policy consolidates disk components.
"""

from __future__ import annotations

import heapq

from repro.adm.comparators import order_part
from repro.common.errors import DuplicateKeyError
from repro.storage.bloom import BloomFilter
from repro.storage.btree import BTree
from repro.storage.buffer_cache import BufferCache
from repro.storage.file_manager import FileManager
from repro.storage.lsm.component import (
    ANTIMATTER,
    DiskComponent,
    LSMStats,
    decode,
    encode_matter,
)
from repro.storage.lsm.merge_policy import MergePolicy, PrefixMergePolicy
from repro.storage.lsm.synopsis import ComponentSynopsis, SynopsisBuilder
from repro.storage.mem import MemBTree


class LSMBTree:
    """An LSM-structured B+ tree: composite ADM key -> value bytes."""

    def __init__(self, fm: FileManager, cache: BufferCache, name: str, *,
                 memory_budget_bytes: int = 256 * 1024,
                 merge_policy: MergePolicy | None = None,
                 bloom_fpr: float = 0.01,
                 device_hint: int = 0):
        self.fm = fm
        self.cache = cache
        self.name = name
        self.memory_budget_bytes = memory_budget_bytes
        self.merge_policy = merge_policy or PrefixMergePolicy()
        self.bloom_fpr = bloom_fpr
        self.device_hint = device_hint
        self.memory = MemBTree()
        self.memory_lsn = 0
        self.components: list[DiskComponent] = []   # newest first
        self.stats = LSMStats()
        self._next_seq = 0
        #: optional ``(key, payload_bytes) -> {path: value} | None`` hook;
        #: when set, flush and merge build a per-component synopsis while
        #: they stream entries (see :mod:`repro.storage.lsm.synopsis`)
        self.synopsis_extractor = None

    # -- write path -----------------------------------------------------------

    def upsert(self, key, value: bytes, lsn: int = 0) -> None:
        """Insert or replace; Fig. 3(d)'s UPSERT bottoms out here."""
        self.memory.put(key, encode_matter(value))
        self.memory_lsn = max(self.memory_lsn, lsn)
        self._maybe_flush()

    def insert_unique(self, key, value: bytes, lsn: int = 0) -> None:
        """Primary-index INSERT: duplicate keys are an error."""
        if self.search(key) is not None:
            raise DuplicateKeyError(f"duplicate key {key!r} in {self.name}")
        self.upsert(key, value, lsn)

    def delete(self, key, lsn: int = 0) -> None:
        """Write an antimatter record for ``key``."""
        self.memory.put(key, ANTIMATTER)
        self.memory_lsn = max(self.memory_lsn, lsn)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self.memory.bytes_used >= self.memory_budget_bytes:
            self.flush()

    # -- read path --------------------------------------------------------------

    def search(self, key) -> bytes | None:
        """Point lookup; returns value bytes, or None if absent/deleted."""
        self.stats.searches += 1
        raw = self.memory.get(key)
        if raw is not None:
            self.stats.components_searched += 1
            anti, payload = decode(raw)
            return None if anti else payload
        for comp in self.components:
            if comp.bloom is not None and not comp.bloom.may_contain(key):
                self.stats.bloom_skips += 1
                continue
            self.stats.components_searched += 1
            raw = comp.index.search(key)
            if raw is not None:
                anti, payload = decode(raw)
                return None if anti else payload
        return None

    def scan(self, lo=None, hi=None, *, lo_inclusive: bool = True,
             hi_inclusive: bool = True):
        """Merged range scan: yields (key, value), newest component wins,
        antimatter suppresses older entries."""
        iterators = [
            self.memory.range_items(lo, hi, lo_inclusive=lo_inclusive,
                                    hi_inclusive=hi_inclusive)
        ]
        for comp in self.components:
            iterators.append(
                comp.index.range_scan(lo, hi, lo_inclusive=lo_inclusive,
                                      hi_inclusive=hi_inclusive)
            )
        yield from _merge_newest_wins(iterators)

    def scan_all(self):
        return self.scan()

    def __len__(self):
        """Exact live-entry count (walks the merged scan)."""
        return sum(1 for _ in self.scan())

    # -- flush ----------------------------------------------------------------------

    def flush(self) -> DiskComponent | None:
        """Seal the memory component into a new disk component."""
        if len(self.memory) == 0:
            return None
        seq = self._next_seq
        self._next_seq += 1
        handle = self.fm.create_file(f"{self.name}_c{seq}.btree",
                                     self.device_hint)
        bloom = BloomFilter(len(self.memory), self.bloom_fpr)
        builder = (SynopsisBuilder()
                   if self.synopsis_extractor is not None else None)
        items = []
        for key, raw in self.memory.items():
            bloom.add(key)
            items.append((key, raw))
            if builder is not None:
                anti, payload = decode(raw)
                if not anti:
                    builder.add(self.synopsis_extractor(key, payload))
        tree = BTree.bulk_load(self.cache, handle, items)
        comp = DiskComponent(
            component_id=(seq, seq),
            index=tree,
            handle=handle,
            num_entries=len(items),
            lsn=self.memory_lsn,
            bloom=bloom,
            synopsis=builder.build() if builder is not None else None,
        )
        self.components.insert(0, comp)
        self.memory.clear()
        self.memory_lsn = 0
        self.stats.flushes += 1
        self.stats.entries_flushed += len(items)
        self._save_bloom(handle, bloom)
        self._maybe_merge()
        self._save_manifest()
        return comp

    # -- merge ------------------------------------------------------------------------

    def _maybe_merge(self) -> None:
        selection = self.merge_policy.select(self.components)
        if selection is not None:
            self.merge(selection)

    def merge(self, selection: slice | None = None) -> DiskComponent | None:
        """Merge a newest-first slice of disk components (default: all)."""
        if selection is None:
            selection = slice(0, len(self.components))
        merged = self.components[selection]
        if len(merged) < 2:
            return None
        includes_oldest = selection.stop >= len(self.components)
        iterators = [c.index.range_scan() for c in merged]
        seq_lo = min(c.min_seq for c in merged)
        seq_hi = max(c.max_seq for c in merged)
        handle = self.fm.create_file(f"{self.name}_c{seq_lo}-{seq_hi}.btree",
                                     self.device_hint)
        expected = sum(c.num_entries for c in merged)
        bloom = BloomFilter(expected, self.bloom_fpr)

        builder = (SynopsisBuilder()
                   if self.synopsis_extractor is not None else None)

        def merged_items():
            for key, raw in _merge_newest_wins(iterators, keep_antimatter=True):
                anti, payload = decode(raw)
                if anti and includes_oldest:
                    continue  # nothing older left to annihilate
                bloom.add(key)
                if builder is not None and not anti:
                    builder.add(self.synopsis_extractor(key, payload))
                yield key, raw

        tree = BTree.bulk_load(self.cache, handle, merged_items())
        comp = DiskComponent(
            component_id=(seq_lo, seq_hi),
            index=tree,
            handle=handle,
            num_entries=tree.count,
            lsn=max(c.lsn for c in merged),
            bloom=bloom,
            synopsis=builder.build() if builder is not None else None,
        )
        self.components[selection] = [comp]
        import os

        for old in merged:
            self.cache.evict_file(old.handle)
            try:
                os.remove(self._device().path_of(old.handle.rel_path
                                                 + ".bloom"))
            except FileNotFoundError:
                pass
            self.fm.delete_file(old.handle)
        self.stats.merges += 1
        self.stats.merged_components += len(merged)
        self.stats.entries_merged += tree.count
        self._save_bloom(handle, bloom)
        self._save_manifest()
        return comp

    # -- introspection ------------------------------------------------------------------

    def synopsis(self) -> ComponentSynopsis | None:
        """Whole-index statistics: merged disk-component synopses plus an
        on-demand pass over the (byte-budgeted, hence small) memory
        component, so statistics are available without forcing a flush.
        Returns None when no extractor is installed."""
        if self.synopsis_extractor is None:
            return None
        parts = [c.synopsis for c in self.components]
        if len(self.memory):
            builder = SynopsisBuilder()
            for key, raw in self.memory.items():
                anti, payload = decode(raw)
                if not anti:
                    builder.add(self.synopsis_extractor(key, payload))
            parts.append(builder.build())
        return ComponentSynopsis.merge(parts)

    @property
    def num_disk_components(self) -> int:
        return len(self.components)

    def component_summaries(self) -> list[dict]:
        out = [
            {
                "kind": "memory",
                "entries": len(self.memory),
                "bytes": self.memory.bytes_used,
            }
        ]
        for comp in self.components:
            out.append(
                {
                    "kind": "disk",
                    "id": comp.label(),
                    "entries": comp.num_entries,
                    "pages": comp.handle.num_pages,
                    "lsn": comp.lsn,
                }
            )
        return out

    def drop(self) -> None:
        """Delete all files backing this index, bloom sidecars included."""
        import os

        paths = [self._manifest_path()]
        for comp in self.components:
            paths.append(self._device().path_of(comp.handle.rel_path
                                                + ".bloom"))
            self.cache.evict_file(comp.handle)
            self.fm.delete_file(comp.handle)
        self.components.clear()
        self.memory.clear()
        for path in paths:
            try:
                os.remove(path)
            except FileNotFoundError:
                pass

    # -- durability (manifest + bloom sidecars) --------------------------------

    def durable_lsn(self) -> int:
        """Newest LSN guaranteed durable (max over disk components)."""
        return max((c.lsn for c in self.components), default=0)

    def _device(self):
        return self.fm.devices[self.device_hint % len(self.fm.devices)]

    def _manifest_path(self) -> str:
        return self._device().path_of(f"{self.name}.manifest")

    def _save_manifest(self) -> None:
        """Persist the component list so the index survives a crash.

        The manifest is tiny metadata (one JSON line per component) written
        outside the counted page I/O, mirroring AsterixDB's component
        metadata files."""
        import json

        entries = [
            {
                "file": comp.handle.rel_path,
                "id": list(comp.component_id),
                "entries": comp.num_entries,
                "lsn": comp.lsn,
                "synopsis": (comp.synopsis.to_dict()
                             if comp.synopsis is not None else None),
            }
            for comp in self.components
        ]
        with open(self._manifest_path(), "w") as f:
            json.dump(entries, f)

    def _save_bloom(self, handle, bloom) -> None:
        import struct as _struct

        path = self._device().path_of(handle.rel_path + ".bloom")
        with open(path, "wb") as f:
            f.write(_struct.pack(">IIQ", bloom.num_bits, bloom.num_hashes,
                                 bloom.count))
            f.write(bloom.to_bytes())

    def _load_bloom(self, rel_path: str):
        import struct as _struct

        path = self._device().path_of(rel_path + ".bloom")
        try:
            with open(path, "rb") as f:
                num_bits, num_hashes, count = _struct.unpack(
                    ">IIQ", f.read(16)
                )
                return BloomFilter.from_state(num_bits, num_hashes, count,
                                              f.read())
        except FileNotFoundError:
            return None

    @classmethod
    def recover(cls, fm: FileManager, cache: BufferCache, name: str,
                **kwargs) -> "LSMBTree":
        """Reopen an index from its manifest after a crash.

        The memory component is gone (that's what the WAL replay restores);
        disk components are reopened read-only with their persisted blooms
        and LSNs."""
        import json

        lsm = cls(fm, cache, name, **kwargs)
        try:
            with open(lsm._manifest_path()) as f:
                entries = json.load(f)
        except FileNotFoundError:
            return lsm
        max_seq = -1
        for entry in entries:
            handle = fm.open_file(entry["file"], lsm.device_hint)
            tree = BTree.open(cache, handle)
            comp = DiskComponent(
                component_id=tuple(entry["id"]),
                index=tree,
                handle=handle,
                num_entries=entry["entries"],
                lsn=entry["lsn"],
                bloom=lsm._load_bloom(entry["file"]),
                synopsis=ComponentSynopsis.from_dict(entry.get("synopsis")),
            )
            lsm.components.append(comp)
            max_seq = max(max_seq, comp.max_seq)
        lsm._next_seq = max_seq + 1
        return lsm


def _merge_newest_wins(iterators, *, keep_antimatter: bool = False):
    """Heap-merge sorted (key, raw) iterators; iterator order is newest
    first, and for equal keys only the newest component's record survives.
    Antimatter records are dropped (the key is gone) unless
    ``keep_antimatter`` (merges that don't include the oldest component must
    retain tombstones)."""
    # heap entries carry order_part pairs, not _Key wrappers: parts order
    # and compare equal exactly like tuple_key but in the C tuple
    # comparator, and this merge runs once per entry per scan
    heap = []
    for rank, it in enumerate(iterators):
        it = iter(it)
        for key, raw in it:
            heapq.heappush(
                heap, (tuple(map(order_part, key)), rank, key, raw, it))
            break
    current_key_wrapped = None
    while heap:
        wrapped, rank, key, raw, it = heapq.heappop(heap)
        for next_key, next_raw in it:
            heapq.heappush(
                heap,
                (tuple(map(order_part, next_key)), rank, next_key,
                 next_raw, it),
            )
            break
        if current_key_wrapped is not None and wrapped == current_key_wrapped:
            continue  # an older component's version of the same key
        current_key_wrapped = wrapped
        anti, _ = decode(raw)
        if anti and not keep_antimatter:
            continue
        yield key, raw if keep_antimatter else decode(raw)[1]
