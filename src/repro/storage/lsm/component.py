"""LSM component descriptors.

An LSM index is a stack of components: one mutable in-memory component
absorbing writes (paper Fig. 2, "ingestion buffering") and a sequence of
immutable disk components, newest first.  Deletes are *antimatter* records —
a tombstone that annihilates any matching entry in older components — so
disk components are never modified in place; they only ever get created by
flushes and merges, and destroyed after merges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability.metrics import get_registry


# value encodings inside LSM B+ tree components
MATTER = b"\x01"
ANTIMATTER = b"\x00"


def encode_matter(value: bytes) -> bytes:
    return MATTER + value


def decode(value: bytes):
    """Return (is_antimatter, payload)."""
    if value[:1] == ANTIMATTER:
        return True, b""
    return False, value[1:]


@dataclass
class DiskComponent:
    """One immutable on-disk component.

    ``component_id`` is a (min_seq, max_seq) pair: a flushed component has
    min == max; a merged component spans the ids it absorbed — the standard
    LSM bookkeeping that lets recovery reason about what a component
    contains.  ``lsn`` is the newest log record reflected in the component;
    recovery replays only log records newer than it.
    """

    component_id: tuple
    index: object                 # BTree or RTree over this component's file
    handle: object                # FileHandle
    num_entries: int
    lsn: int = 0
    bloom: object = None          # BloomFilter | None
    deleted_keys: object = None   # companion deleted-key BTree (LSM R-tree)
    deleted_handle: object = None
    synopsis: object = None       # ComponentSynopsis | None (cost stats)

    @property
    def min_seq(self) -> int:
        return self.component_id[0]

    @property
    def max_seq(self) -> int:
        return self.component_id[1]

    def label(self) -> str:
        lo, hi = self.component_id
        return f"[{lo}]" if lo == hi else f"[{lo}..{hi}]"


#: LSMStats fields mirrored into the process-wide metrics registry as
#: ``lsm.<field>`` counters, aggregated over every LSM index in the
#: process (docs/OBSERVABILITY.md documents the vocabulary).
_MIRRORED_FIELDS = (
    "flushes", "merges", "merged_components", "entries_flushed",
    "entries_merged", "searches", "bloom_skips", "components_searched",
)

_MIRROR_COUNTERS = {
    name: get_registry().counter(f"lsm.{name}") for name in _MIRRORED_FIELDS
}


@dataclass
class LSMStats:
    """Lifecycle counters for one LSM index.

    Increments are mirrored into the registry's aggregate ``lsm.*``
    counters, so every B+ tree / R-tree / inverted index lifecycle event
    is visible process-wide without threading a registry handle through
    the storage layer.
    """

    flushes: int = 0
    merges: int = 0
    merged_components: int = 0
    entries_flushed: int = 0
    entries_merged: int = 0
    searches: int = 0
    bloom_skips: int = 0
    components_searched: int = 0

    def __setattr__(self, name, value):
        if name in _MIRROR_COUNTERS:
            delta = value - getattr(self, name, 0)
            if delta > 0:
                _MIRROR_COUNTERS[name].inc(delta)
        object.__setattr__(self, name, value)
