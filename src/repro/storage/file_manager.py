"""Page-file management over I/O devices.

A :class:`FileManager` owns the open page files of one node.  Files are
sequences of fixed-size pages stored in real OS files; every page read/write
goes through here so the device's :class:`~repro.storage.iodevice.IOStats`
stay accurate.  Callers normally access pages through the buffer cache, not
directly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.common.errors import StorageError
from repro.storage.iodevice import IODevice


@dataclass
class FileHandle:
    """An open page file."""

    file_id: int
    device: IODevice
    rel_path: str
    page_size: int
    num_pages: int = 0
    deleted: bool = False
    _fd: object = field(default=None, repr=False)

    @property
    def path(self) -> str:
        return self.device.path_of(self.rel_path)


class FileManager:
    """Creates, opens, grows, and deletes page files on a node's devices."""

    def __init__(self, devices: list[IODevice], page_size: int,
                 injector=None):
        if not devices:
            raise StorageError("a node needs at least one I/O device")
        self.devices = devices
        self.page_size = page_size
        #: Optional fault injector (duck-typed: ``hit(site, **ctx)``);
        #: armed schedules can fail individual page accesses at the
        #: ``disk.read_page`` / ``disk.write_page`` sites.
        self.injector = injector
        self._next_file_id = 0
        self._files: dict[int, FileHandle] = {}

    # -- lifecycle -----------------------------------------------------------

    def create_file(self, rel_path: str, device_hint: int = 0) -> FileHandle:
        """Create a new, empty page file on the hinted device."""
        device = self.devices[device_hint % len(self.devices)]
        path = device.path_of(rel_path)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        fd = open(path, "w+b")
        handle = FileHandle(
            file_id=self._next_file_id,
            device=device,
            rel_path=rel_path,
            page_size=self.page_size,
            _fd=fd,
        )
        self._next_file_id += 1
        self._files[handle.file_id] = handle
        return handle

    def open_file(self, rel_path: str, device_hint: int = 0) -> FileHandle:
        """Open an existing page file (e.g. during recovery)."""
        device = self.devices[device_hint % len(self.devices)]
        path = device.path_of(rel_path)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {path}")
        fd = open(path, "r+b")
        size = os.path.getsize(path)
        handle = FileHandle(
            file_id=self._next_file_id,
            device=device,
            rel_path=rel_path,
            page_size=self.page_size,
            num_pages=size // self.page_size,
            _fd=fd,
        )
        self._next_file_id += 1
        self._files[handle.file_id] = handle
        return handle

    def delete_file(self, handle: FileHandle) -> None:
        if handle.deleted:
            return
        handle._fd.close()
        try:
            os.remove(handle.path)
        except FileNotFoundError:
            pass
        handle.deleted = True
        self._files.pop(handle.file_id, None)

    def handles_under(self, prefix: str) -> list[FileHandle]:
        """Open handles whose ``rel_path`` starts with ``prefix`` (e.g.
        ``"temp/"`` — the job retry loop purges those between attempts,
        since an aborted attempt's spill files are garbage)."""
        return [h for h in self._files.values()
                if h.rel_path.startswith(prefix)]

    def get(self, file_id: int) -> FileHandle:
        try:
            return self._files[file_id]
        except KeyError:
            raise StorageError(f"unknown file id {file_id}") from None

    def close(self) -> None:
        for handle in list(self._files.values()):
            handle._fd.close()
        self._files.clear()

    # -- page I/O -----------------------------------------------------------

    def read_page(self, handle: FileHandle, page_no: int,
                  sequential: bool = False) -> bytearray:
        if handle.deleted:
            raise StorageError(f"read from deleted file {handle.rel_path}")
        if page_no >= handle.num_pages:
            raise StorageError(
                f"page {page_no} out of range for {handle.rel_path} "
                f"({handle.num_pages} pages)"
            )
        if self.injector is not None:
            self.injector.hit("disk.read_page", path=handle.rel_path,
                              page=page_no)
        handle._fd.seek(page_no * self.page_size)
        data = handle._fd.read(self.page_size)
        if sequential:
            handle.device.stats.seq_reads += 1
        else:
            handle.device.stats.reads += 1
        if handle.device.latency_us:
            time.sleep(handle.device.latency_us / 1e6)
        buf = bytearray(self.page_size)
        buf[: len(data)] = data
        return buf

    def write_page(self, handle: FileHandle, page_no: int, data,
                   sequential: bool = False) -> None:
        if handle.deleted:
            raise StorageError(f"write to deleted file {handle.rel_path}")
        if len(data) != self.page_size:
            raise StorageError(
                f"page write of {len(data)} bytes (page size "
                f"{self.page_size})"
            )
        if self.injector is not None:
            self.injector.hit("disk.write_page", path=handle.rel_path,
                              page=page_no)
        handle._fd.seek(page_no * self.page_size)
        handle._fd.write(data)
        if sequential:
            handle.device.stats.seq_writes += 1
        else:
            handle.device.stats.writes += 1
        if handle.device.latency_us:
            time.sleep(handle.device.latency_us / 1e6)
        if page_no >= handle.num_pages:
            handle.num_pages = page_no + 1

    def append_page(self, handle: FileHandle) -> int:
        """Extend the file by one zeroed page; returns its page number."""
        page_no = handle.num_pages
        handle.num_pages += 1
        return page_no

    def sync(self, handle: FileHandle) -> None:
        handle._fd.flush()

    # -- aggregate stats -----------------------------------------------------

    def io_stats(self):
        total = None
        for device in self.devices:
            total = device.stats if total is None else total + device.stats
        return total
