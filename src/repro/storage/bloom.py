"""Bloom filters for LSM disk components.

Every LSM B+ tree disk component carries a bloom filter over its keys so
point lookups can skip components that certainly don't contain the key —
with many disk components this is what keeps primary-key lookups from paying
one B+ tree descent per component.
"""

from __future__ import annotations

import math

from repro.adm.serializer import serialize_tuple
from repro.adm.values import hash_value


class BloomFilter:
    """A standard k-hash bloom filter over composite ADM keys."""

    def __init__(self, expected_count: int, fpr: float = 0.01):
        expected_count = max(expected_count, 1)
        bits = int(-expected_count * math.log(fpr) / (math.log(2) ** 2)) + 8
        self.num_bits = bits
        self.num_hashes = max(1, round(bits / expected_count * math.log(2)))
        self._bits = bytearray((bits + 7) // 8)
        self.count = 0

    def _positions(self, key):
        data = serialize_tuple(key)
        h1 = hash_value(data, seed=0x9E3779B9)
        h2 = hash_value(data, seed=0x85EBCA6B) | 1
        for i in range(self.num_hashes):
            yield ((h1 + i * h2) % self.num_bits)

    def add(self, key) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def may_contain(self, key) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(key)
        )

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    @classmethod
    def from_state(cls, num_bits: int, num_hashes: int, count: int,
                   bits: bytes) -> "BloomFilter":
        """Rebuild a filter persisted by a component sidecar file."""
        bf = cls.__new__(cls)
        bf.num_bits = num_bits
        bf.num_hashes = num_hashes
        bf.count = count
        bf._bits = bytearray(bits)
        return bf

    @property
    def size_bytes(self) -> int:
        return len(self._bits)
