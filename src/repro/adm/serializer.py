"""Tag-based binary serialization of ADM values.

The storage layer (LSM component pages, WAL records, operator spill files)
stores *bytes*, not Python objects: each serialized value is a 1-byte
:class:`~repro.adm.values.TypeTag` followed by a tag-specific payload.  This
is a simplified version of AsterixDB's physical ADM layout — the important
property preserved is that pages and log records have a real, measurable
byte size, so page-count-based experiments (E1, E2, E10) are meaningful.

Variable-length payloads use a u32 length prefix; integers are zig-zag
varints so small keys stay small.
"""

from __future__ import annotations

import struct
import uuid as _uuid

from repro.adm.values import (
    MISSING,
    ADate,
    ADateTime,
    ADuration,
    AInterval,
    ALine,
    APoint,
    APolygon,
    ARectangle,
    ACircle,
    ATime,
    Multiset,
    TypeTag,
    tag_of,
)
from repro.common.errors import StorageError


def _write_varint(out: bytearray, n: int) -> None:
    """Zig-zag varint encoding (small magnitudes -> few bytes)."""
    z = (n << 1) ^ (n >> 63) if -(1 << 63) <= n < (1 << 63) else None
    if z is None:
        raise StorageError(f"integer out of 64-bit range: {n}")
    z &= 0xFFFFFFFFFFFFFFFF
    while True:
        b = z & 0x7F
        z >>= 7
        if z:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    z = 0
    shift = 0
    while True:
        b = buf[pos]
        pos += 1
        z |= (b & 0x7F) << shift
        if not b & 0x80:
            break
        shift += 7
    n = (z >> 1) ^ -(z & 1)
    return n, pos


def serialize(value) -> bytes:
    """Serialize one ADM value to bytes."""
    out = bytearray()
    _serialize_into(out, value)
    return bytes(out)


def _serialize_into(out: bytearray, value) -> None:
    tag = tag_of(value)
    out.append(tag)
    if tag in (TypeTag.MISSING, TypeTag.NULL):
        return
    if tag is TypeTag.BOOLEAN:
        out.append(1 if value else 0)
    elif tag is TypeTag.BIGINT:
        _write_varint(out, value)
    elif tag is TypeTag.DOUBLE:
        out.extend(struct.pack(">d", value))
    elif tag is TypeTag.STRING:
        data = value.encode("utf-8")
        out.extend(struct.pack(">I", len(data)))
        out.extend(data)
    elif tag is TypeTag.BINARY:
        out.extend(struct.pack(">I", len(value)))
        out.extend(value)
    elif tag is TypeTag.UUID:
        out.extend(value.bytes)
    elif tag is TypeTag.DATE:
        _write_varint(out, value.days)
    elif tag in (TypeTag.TIME, TypeTag.DATETIME):
        _write_varint(out, value.millis)
    elif tag is TypeTag.DURATION:
        _write_varint(out, value.months)
        _write_varint(out, value.millis)
    elif tag is TypeTag.INTERVAL:
        out.append(value.tag)
        _write_varint(out, value.start)
        _write_varint(out, value.end)
    elif tag is TypeTag.POINT:
        out.extend(struct.pack(">dd", value.x, value.y))
    elif tag is TypeTag.LINE:
        out.extend(struct.pack(">dddd", value.p1.x, value.p1.y,
                               value.p2.x, value.p2.y))
    elif tag is TypeTag.RECTANGLE:
        bl, tr = value.bottom_left, value.top_right
        out.extend(struct.pack(">dddd", bl.x, bl.y, tr.x, tr.y))
    elif tag is TypeTag.CIRCLE:
        out.extend(struct.pack(">ddd", value.center.x, value.center.y,
                               value.radius))
    elif tag is TypeTag.POLYGON:
        out.extend(struct.pack(">I", len(value.points)))
        for p in value.points:
            out.extend(struct.pack(">dd", p.x, p.y))
    elif tag in (TypeTag.ARRAY, TypeTag.MULTISET):
        out.extend(struct.pack(">I", len(value)))
        for item in value:
            _serialize_into(out, item)
    elif tag is TypeTag.OBJECT:
        fields = [(k, v) for k, v in value.items() if v is not MISSING]
        out.extend(struct.pack(">I", len(fields)))
        for k, v in fields:
            kdata = k.encode("utf-8")
            out.extend(struct.pack(">I", len(kdata)))
            out.extend(kdata)
            _serialize_into(out, v)
    else:
        raise StorageError(f"cannot serialize tag {tag!r}")


def deserialize(buf: bytes, pos: int = 0):
    """Deserialize one ADM value; returns the value (see
    :func:`deserialize_at` for streaming use)."""
    value, _ = deserialize_at(buf, pos)
    return value


# byte-value dispatch constants: deserialize_at runs once per stored
# value on every scan, and constructing the TypeTag enum member
# (``TypeTag(buf[pos])``) costs more than the whole payload decode for
# small scalars — so the hot tags compare the raw byte against plain
# ints and only the rare tail resolves the enum member
_B_MISSING = int(TypeTag.MISSING)
_B_NULL = int(TypeTag.NULL)
_B_BOOLEAN = int(TypeTag.BOOLEAN)
_B_BIGINT = int(TypeTag.BIGINT)
_B_DOUBLE = int(TypeTag.DOUBLE)
_B_STRING = int(TypeTag.STRING)
_B_OBJECT = int(TypeTag.OBJECT)
_TAG_BY_BYTE = {int(t): t for t in TypeTag}


def deserialize_at(buf: bytes, pos: int):
    """Deserialize one ADM value starting at ``pos``; returns
    ``(value, next_pos)``."""
    b = buf[pos]
    pos += 1
    if b == _B_BIGINT:
        return _read_varint(buf, pos)
    if b == _B_STRING:
        (n,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        return buf[pos:pos + n].decode("utf-8"), pos + n
    if b == _B_OBJECT:
        (n,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        obj = {}
        for _ in range(n):
            (klen,) = struct.unpack_from(">I", buf, pos)
            pos += 4
            key = buf[pos:pos + klen].decode("utf-8")
            pos += klen
            obj[key], pos = deserialize_at(buf, pos)
        return obj, pos
    if b == _B_DOUBLE:
        return struct.unpack_from(">d", buf, pos)[0], pos + 8
    if b == _B_MISSING:
        return MISSING, pos
    if b == _B_NULL:
        return None, pos
    if b == _B_BOOLEAN:
        return bool(buf[pos]), pos + 1
    tag = _TAG_BY_BYTE.get(b)
    if tag is None:
        tag = TypeTag(b)   # unknown byte: same ValueError as before
    return _deserialize_rare(tag, buf, pos)


def _deserialize_rare(tag: TypeTag, buf: bytes, pos: int):
    """The non-scalar / temporal / spatial tail of :func:`deserialize_at`."""
    if tag is TypeTag.BINARY:
        (n,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        return bytes(buf[pos:pos + n]), pos + n
    if tag is TypeTag.UUID:
        return _uuid.UUID(bytes=bytes(buf[pos:pos + 16])), pos + 16
    if tag is TypeTag.DATE:
        days, pos = _read_varint(buf, pos)
        return ADate(days), pos
    if tag is TypeTag.TIME:
        millis, pos = _read_varint(buf, pos)
        return ATime(millis), pos
    if tag is TypeTag.DATETIME:
        millis, pos = _read_varint(buf, pos)
        return ADateTime(millis), pos
    if tag is TypeTag.DURATION:
        months, pos = _read_varint(buf, pos)
        millis, pos = _read_varint(buf, pos)
        return ADuration(months, millis), pos
    if tag is TypeTag.INTERVAL:
        sub = TypeTag(buf[pos])
        pos += 1
        start, pos = _read_varint(buf, pos)
        end, pos = _read_varint(buf, pos)
        return AInterval(start, end, sub), pos
    if tag is TypeTag.POINT:
        x, y = struct.unpack_from(">dd", buf, pos)
        return APoint(x, y), pos + 16
    if tag is TypeTag.LINE:
        x1, y1, x2, y2 = struct.unpack_from(">dddd", buf, pos)
        return ALine(APoint(x1, y1), APoint(x2, y2)), pos + 32
    if tag is TypeTag.RECTANGLE:
        x1, y1, x2, y2 = struct.unpack_from(">dddd", buf, pos)
        return ARectangle(APoint(x1, y1), APoint(x2, y2)), pos + 32
    if tag is TypeTag.CIRCLE:
        x, y, r = struct.unpack_from(">ddd", buf, pos)
        return ACircle(APoint(x, y), r), pos + 24
    if tag is TypeTag.POLYGON:
        (n,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        pts = []
        for _ in range(n):
            x, y = struct.unpack_from(">dd", buf, pos)
            pts.append(APoint(x, y))
            pos += 16
        return APolygon(tuple(pts)), pos
    if tag in (TypeTag.ARRAY, TypeTag.MULTISET):
        (n,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        items = Multiset() if tag is TypeTag.MULTISET else []
        for _ in range(n):
            item, pos = deserialize_at(buf, pos)
            items.append(item)
        return items, pos
    if tag is TypeTag.OBJECT:
        (n,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        obj = {}
        for _ in range(n):
            (klen,) = struct.unpack_from(">I", buf, pos)
            pos += 4
            key = buf[pos:pos + klen].decode("utf-8")
            pos += klen
            obj[key], pos = deserialize_at(buf, pos)
        return obj, pos
    raise StorageError(f"cannot deserialize tag {tag!r}")


def serialize_tuple(values) -> bytes:
    """Serialize a composite value (e.g. a key, PK pair) as a counted group."""
    out = bytearray()
    out.append(len(values))
    for v in values:
        _serialize_into(out, v)
    return bytes(out)


def deserialize_tuple(buf: bytes, pos: int = 0) -> tuple:
    n = buf[pos]
    pos += 1
    values = []
    for _ in range(n):
        v, pos = deserialize_at(buf, pos)
        values.append(v)
    return tuple(values)


def serialized_size(value) -> int:
    """Byte size of ``value`` once serialized (used for budget accounting)."""
    return len(serialize(value))
