"""Textual ADM parser.

ADM's textual syntax is a JSON superset (paper Fig. 3(d)): besides JSON
literals it accepts typed constructors — ``datetime("2017-01-01T00:00:00")``,
``date("...")``, ``time("...")``, ``duration("P30D")``, ``point("1.5,2.5")``,
``uuid("...")`` and friends — and the multiset constructor ``{{ ... }}``.
``LOAD DATASET`` and the feed adapters parse records with this module.
"""

from __future__ import annotations

import uuid as _uuid

from repro.adm.values import (
    ADate,
    ADateTime,
    ADuration,
    ALine,
    APoint,
    APolygon,
    ARectangle,
    ACircle,
    ATime,
    Multiset,
)
from repro.common.errors import SyntaxError_


class ADMParser:
    """Recursive-descent parser over a single ADM text value."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)

    # -- public API ---------------------------------------------------------

    def parse(self):
        value = self.parse_value()
        self._skip_ws()
        if self.pos != self.n:
            raise self._err("trailing characters after value")
        return value

    def parse_value(self):
        self._skip_ws()
        if self.pos >= self.n:
            raise self._err("unexpected end of input")
        ch = self.text[self.pos]
        if ch == "{":
            if self.text.startswith("{{", self.pos):
                return self._parse_multiset()
            return self._parse_object()
        if ch == "[":
            return self._parse_array()
        if ch == '"' or ch == "'":
            return self._parse_string()
        if ch.isdigit() or ch in "+-.":
            return self._parse_number()
        return self._parse_word()

    # -- pieces ---------------------------------------------------------------

    def _parse_object(self) -> dict:
        self._expect("{")
        obj = {}
        self._skip_ws()
        if self._peek() == "}":
            self.pos += 1
            return obj
        while True:
            self._skip_ws()
            key = self._parse_string()
            self._skip_ws()
            self._expect(":")
            obj[key] = self.parse_value()
            self._skip_ws()
            ch = self._peek()
            if ch == ",":
                self.pos += 1
                continue
            if ch == "}":
                self.pos += 1
                return obj
            raise self._err("expected ',' or '}' in object")

    def _parse_array(self) -> list:
        self._expect("[")
        return self._parse_items("]", [])

    def _parse_multiset(self) -> Multiset:
        self._expect("{")
        self._expect("{")
        items = Multiset()
        self._skip_ws()
        if self.text.startswith("}}", self.pos):
            self.pos += 2
            return items
        while True:
            items.append(self.parse_value())
            self._skip_ws()
            if self._peek() == ",":
                self.pos += 1
                continue
            if self.text.startswith("}}", self.pos):
                self.pos += 2
                return items
            raise self._err("expected ',' or '}}' in multiset")

    def _parse_items(self, close: str, items: list):
        self._skip_ws()
        if self._peek() == close:
            self.pos += 1
            return items
        while True:
            items.append(self.parse_value())
            self._skip_ws()
            ch = self._peek()
            if ch == ",":
                self.pos += 1
                continue
            if ch == close:
                self.pos += 1
                return items
            raise self._err(f"expected ',' or '{close}' in list")

    def _parse_string(self) -> str:
        quote = self._peek()
        if quote not in ('"', "'"):
            raise self._err("expected string")
        self.pos += 1
        out = []
        while self.pos < self.n:
            ch = self.text[self.pos]
            if ch == quote:
                self.pos += 1
                return "".join(out)
            if ch == "\\":
                self.pos += 1
                esc = self.text[self.pos]
                mapping = {"n": "\n", "t": "\t", "r": "\r", "b": "\b",
                           "f": "\f", "/": "/", "\\": "\\", '"': '"',
                           "'": "'"}
                if esc == "u":
                    code = self.text[self.pos + 1:self.pos + 5]
                    out.append(chr(int(code, 16)))
                    self.pos += 4
                elif esc in mapping:
                    out.append(mapping[esc])
                else:
                    raise self._err(f"bad escape \\{esc}")
                self.pos += 1
            else:
                out.append(ch)
                self.pos += 1
        raise self._err("unterminated string")

    def _parse_number(self):
        start = self.pos
        if self._peek() in "+-":
            self.pos += 1
        is_float = False
        while self.pos < self.n and (self.text[self.pos].isdigit()
                                     or self.text[self.pos] in ".eE+-"):
            ch = self.text[self.pos]
            if ch in ".eE":
                is_float = True
            if ch in "+-" and self.text[self.pos - 1] not in "eE":
                break
            self.pos += 1
        token = self.text[start:self.pos]
        # trailing type suffixes from ADM text (i8/i16/i32/i64/f/d)
        for suffix in ("i64", "i32", "i16", "i8"):
            if self.text.startswith(suffix, self.pos):
                self.pos += len(suffix)
                return int(token)
        if self.pos < self.n and self.text[self.pos] in "fFdD":
            self.pos += 1
            return float(token)
        try:
            return float(token) if is_float else int(token)
        except ValueError as exc:
            raise self._err(f"bad number {token!r}") from exc

    _CONSTRUCTORS = {
        "date": lambda s: ADate.parse(s),
        "time": lambda s: ATime.parse(s),
        "datetime": lambda s: ADateTime.parse(s),
        "duration": lambda s: ADuration.parse(s),
        "point": lambda s: APoint.parse(s),
        "uuid": lambda s: _uuid.UUID(s),
    }

    def _parse_word(self):
        start = self.pos
        while self.pos < self.n and (self.text[self.pos].isalnum()
                                     or self.text[self.pos] in "_-"):
            self.pos += 1
        word = self.text[start:self.pos]
        if word == "true":
            return True
        if word == "false":
            return False
        if word == "null":
            return None
        self._skip_ws()
        if self._peek() == "(":
            self.pos += 1
            self._skip_ws()
            arg = self._parse_string()
            self._skip_ws()
            self._expect(")")
            return self._construct(word, arg)
        raise self._err(f"unexpected token {word!r}")

    def _construct(self, name: str, arg: str):
        name = name.lower()
        if name in self._CONSTRUCTORS:
            return self._CONSTRUCTORS[name](arg)
        if name == "line":
            a, b = arg.split(" ")
            return ALine(APoint.parse(a), APoint.parse(b))
        if name == "rectangle":
            a, b = arg.split(" ")
            return ARectangle(APoint.parse(a), APoint.parse(b))
        if name == "circle":
            center, radius = arg.rsplit(" ", 1)
            return ACircle(APoint.parse(center), float(radius))
        if name == "polygon":
            pts = tuple(APoint.parse(p) for p in arg.split(" "))
            return APolygon(pts)
        raise self._err(f"unknown constructor {name!r}")

    # -- low-level helpers -------------------------------------------------

    def _skip_ws(self):
        while self.pos < self.n and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def _peek(self) -> str:
        return self.text[self.pos] if self.pos < self.n else ""

    def _expect(self, ch: str):
        if self._peek() != ch:
            raise self._err(f"expected {ch!r}")
        self.pos += 1

    def _err(self, message: str) -> SyntaxError_:
        line = self.text.count("\n", 0, self.pos) + 1
        col = self.pos - self.text.rfind("\n", 0, self.pos)
        return SyntaxError_(message, line=line, column=col)


def parse_adm(text: str):
    """Parse one ADM value from text."""
    return ADMParser(text).parse()


def format_adm(value, indent: int | None = None) -> str:
    """Render an ADM value back to its textual syntax (inverse of
    :func:`parse_adm` up to whitespace)."""
    return _format(value, indent, 0)


def _format(value, indent, depth) -> str:
    from repro.adm.values import MISSING, tag_of, TypeTag

    tag = tag_of(value)
    if tag is TypeTag.MISSING:
        return "missing"
    if tag is TypeTag.NULL:
        return "null"
    if tag is TypeTag.BOOLEAN:
        return "true" if value else "false"
    if tag is TypeTag.BIGINT:
        return str(value)
    if tag is TypeTag.DOUBLE:
        return repr(value)
    if tag is TypeTag.STRING:
        return f'"{_escape(value)}"'
    if tag is TypeTag.BINARY:
        return f'hex("{value.hex()}")'
    if tag is TypeTag.UUID:
        return f'uuid("{value}")'
    if tag in (TypeTag.ARRAY, TypeTag.MULTISET):
        opens, closes = ("[", "]") if tag is TypeTag.ARRAY else ("{{", "}}")
        inner = ", ".join(_format(v, indent, depth + 1) for v in value)
        return f"{opens} {inner} {closes}" if inner else f"{opens}{closes}"
    if tag is TypeTag.OBJECT:
        items = [
            f'"{_escape(k)}": {_format(v, indent, depth + 1)}'
            for k, v in value.items()
            if v is not MISSING
        ]
        if indent is None:
            return "{" + ", ".join(items) + "}"
        pad = " " * (indent * (depth + 1))
        closing = " " * (indent * depth)
        body = (",\n" + pad).join(items)
        return "{\n" + pad + body + "\n" + closing + "}"
    return repr(value)  # temporal & spatial reprs are constructor syntax


def _escape(text: str) -> str:
    out = text.replace("\\", "\\\\").replace('"', '\\"')
    out = out.replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
    return out.replace("\b", "\\b").replace("\f", "\\f")
