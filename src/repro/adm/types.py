"""The ADM type system (paper Fig. 3(a)).

ADM types let application developers "choose an essentially schema-free
world, a highly-specified schema world, or something in between":

* Every named object type is **open** by default: instances may carry
  additional, undeclared (self-describing) fields.  ``CREATE TYPE ... AS
  CLOSED`` forbids extra fields (Fig. 3(b)'s ``AccessLogType``).
* Fields may be declared optional with ``?`` (Fig. 3(a)'s ``inResponseTo:
  int?``) or omitted from the schema entirely.
* Constructors compose: objects, ordered lists ``[T]``, and multisets
  ``{{T}}``.

This module defines the type objects, a registry-aware resolver (named types
may reference each other, e.g. ``employment: [EmploymentType]``), and
instance validation used by INSERT/UPSERT/LOAD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import (
    MISSING,
    ADate,
    ADateTime,
    ADuration,
    AInterval,
    ALine,
    APoint,
    APolygon,
    ARectangle,
    ACircle,
    ATime,
    Multiset,
    TypeTag,
)
from repro.common.errors import TypeError_, UnknownEntityError

import uuid as _uuid


class AsterixType:
    """Base class for all ADM types.

    Subclasses expose a ``name`` attribute or property; it is deliberately
    not declared here so that dataclass subclasses can declare ``name`` as a
    required field (a base-class default would leak into them).
    """

    def validate(self, value, registry: "TypeRegistry | None" = None,
                 path: str = "$") -> None:
        """Raise :class:`TypeError_` if ``value`` is not an instance."""
        raise NotImplementedError

    def __repr__(self):
        return self.name


class AnyType(AsterixType):
    """The top type: every ADM value (including null) is an instance."""

    name = "any"

    def validate(self, value, registry=None, path="$"):
        if value is MISSING:
            raise TypeError_(f"{path}: MISSING is not a storable value")


@dataclass(frozen=True, repr=False)
class PrimitiveType(AsterixType):
    """A builtin scalar type, with optional integer range enforcement."""

    name: str
    tag: TypeTag
    classes: tuple
    int_bits: int = 0

    def validate(self, value, registry=None, path="$"):
        if value is None:
            raise TypeError_(f"{path}: null where {self.name} required")
        if isinstance(value, bool) and self.tag is not TypeTag.BOOLEAN:
            raise TypeError_(f"{path}: boolean where {self.name} required")
        if self.tag is TypeTag.DOUBLE and isinstance(value, int) \
                and not isinstance(value, bool):
            return  # ints are acceptable doubles/floats
        if not isinstance(value, self.classes):
            raise TypeError_(
                f"{path}: {type(value).__name__} value {value!r} where "
                f"{self.name} required"
            )
        if self.int_bits:
            lo = -(1 << (self.int_bits - 1))
            hi = (1 << (self.int_bits - 1)) - 1
            if not lo <= value <= hi:
                raise TypeError_(
                    f"{path}: {value} out of range for {self.name}"
                )


BOOLEAN = PrimitiveType("boolean", TypeTag.BOOLEAN, (bool,))
TINYINT = PrimitiveType("tinyint", TypeTag.TINYINT, (int,), 8)
SMALLINT = PrimitiveType("smallint", TypeTag.SMALLINT, (int,), 16)
INTEGER = PrimitiveType("integer", TypeTag.INTEGER, (int,), 32)
BIGINT = PrimitiveType("bigint", TypeTag.BIGINT, (int,), 64)
FLOAT = PrimitiveType("float", TypeTag.FLOAT, (float,))
DOUBLE = PrimitiveType("double", TypeTag.DOUBLE, (float,))
STRING = PrimitiveType("string", TypeTag.STRING, (str,))
BINARY = PrimitiveType("binary", TypeTag.BINARY, (bytes,))
UUID = PrimitiveType("uuid", TypeTag.UUID, (_uuid.UUID,))
DATE = PrimitiveType("date", TypeTag.DATE, (ADate,))
TIME = PrimitiveType("time", TypeTag.TIME, (ATime,))
DATETIME = PrimitiveType("datetime", TypeTag.DATETIME, (ADateTime,))
DURATION = PrimitiveType("duration", TypeTag.DURATION, (ADuration,))
INTERVAL = PrimitiveType("interval", TypeTag.INTERVAL, (AInterval,))
POINT = PrimitiveType("point", TypeTag.POINT, (APoint,))
LINE = PrimitiveType("line", TypeTag.LINE, (ALine,))
RECTANGLE = PrimitiveType("rectangle", TypeTag.RECTANGLE, (ARectangle,))
CIRCLE = PrimitiveType("circle", TypeTag.CIRCLE, (ACircle,))
POLYGON = PrimitiveType("polygon", TypeTag.POLYGON, (APolygon,))

ANY = AnyType()

BUILTIN_TYPES = {
    t.name: t
    for t in (
        BOOLEAN, TINYINT, SMALLINT, INTEGER, BIGINT, FLOAT, DOUBLE, STRING,
        BINARY, UUID, DATE, TIME, DATETIME, DURATION, INTERVAL, POINT, LINE,
        RECTANGLE, CIRCLE, POLYGON,
    )
}
# SQL-flavoured aliases accepted by the DDL (AsterixDB supports both).
BUILTIN_TYPES.update(
    {
        "int": BIGINT,
        "int8": TINYINT,
        "int16": SMALLINT,
        "int32": INTEGER,
        "int64": BIGINT,
        "any": ANY,
    }
)


@dataclass(frozen=True)
class TypeReference(AsterixType):
    """A by-name reference to a named type, resolved via the registry."""

    ref_name: str

    @property
    def name(self):
        return self.ref_name

    def validate(self, value, registry=None, path="$"):
        if registry is None:
            raise TypeError_(f"{path}: cannot resolve type {self.ref_name}")
        registry.resolve(self.ref_name).validate(value, registry, path)

    def __repr__(self):
        return self.ref_name


@dataclass(frozen=True)
class Field:
    """One declared field of an object type."""

    name: str
    type: AsterixType
    optional: bool = False

    def __repr__(self):
        opt = "?" if self.optional else ""
        return f"{self.name}: {self.type!r}{opt}"


@dataclass(frozen=True, repr=False)
class ObjectType(AsterixType):
    """A (possibly open) object type: Fig. 3(a)'s CREATE TYPE bodies."""

    name: str
    fields: tuple
    is_open: bool = True

    def field_map(self) -> dict:
        return {f.name: f for f in self.fields}

    def field_type(self, name: str) -> AsterixType | None:
        for f in self.fields:
            if f.name == name:
                return f.type
        return None

    def validate(self, value, registry=None, path="$"):
        if not isinstance(value, dict):
            raise TypeError_(
                f"{path}: {type(value).__name__} where object {self.name} "
                f"required"
            )
        declared = self.field_map()
        for f in self.fields:
            v = value.get(f.name, MISSING)
            if v is MISSING:
                if not f.optional:
                    raise TypeError_(
                        f"{path}.{f.name}: missing required field"
                    )
                continue
            if v is None and f.optional:
                continue
            f.type.validate(v, registry, f"{path}.{f.name}")
        if not self.is_open:
            extra = [k for k in value if k not in declared
                     and value[k] is not MISSING]
            if extra:
                raise TypeError_(
                    f"{path}: closed type {self.name} forbids extra "
                    f"field(s) {sorted(extra)}"
                )

    def __repr__(self):
        kind = "" if self.is_open else "CLOSED "
        body = ", ".join(repr(f) for f in self.fields)
        return f"{kind}{self.name}{{{body}}}"


@dataclass(frozen=True, repr=False)
class OrderedListType(AsterixType):
    """``[T]``: an ordered list whose items are instances of T."""

    item: AsterixType

    @property
    def name(self):
        return f"[{self.item!r}]"

    def validate(self, value, registry=None, path="$"):
        if not isinstance(value, list) or isinstance(value, Multiset):
            raise TypeError_(f"{path}: {type(value).__name__} where "
                             f"ordered list required")
        for i, v in enumerate(value):
            self.item.validate(v, registry, f"{path}[{i}]")

    def __repr__(self):
        return self.name


@dataclass(frozen=True, repr=False)
class MultisetType(AsterixType):
    """``{{T}}``: an unordered list (bag) whose items are instances of T."""

    item: AsterixType

    @property
    def name(self):
        return f"{{{{{self.item!r}}}}}"

    def validate(self, value, registry=None, path="$"):
        if not isinstance(value, (list, Multiset)):
            raise TypeError_(f"{path}: {type(value).__name__} where "
                             f"multiset required")
        for i, v in enumerate(value):
            self.item.validate(v, registry, f"{path}{{{i}}}")

    def __repr__(self):
        return self.name


class TypeRegistry:
    """Named-type namespace for one dataverse.

    Named types may reference each other by name (``employment:
    [EmploymentType]``); resolution happens lazily at validation time so
    declaration order does not matter.
    """

    def __init__(self):
        self._types: dict[str, AsterixType] = {}

    def add(self, dtype: AsterixType) -> None:
        self._types[dtype.name] = dtype

    def remove(self, name: str) -> None:
        self._types.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._types or name in BUILTIN_TYPES

    def names(self):
        return sorted(self._types)

    def resolve(self, name: str) -> AsterixType:
        if name in self._types:
            return self._types[name]
        if name in BUILTIN_TYPES:
            return BUILTIN_TYPES[name]
        raise UnknownEntityError(f"unknown type: {name}")

    def validate(self, value, type_name: str) -> None:
        self.resolve(type_name).validate(value, self)
