"""Total ordering over ADM values.

Index keys (B+ tree, and the PK part of every secondary index entry) and
ORDER BY need a single total order across *all* ADM values, because ADM is
schema-optional: an open field indexed by a secondary index may hold a
different type in every record.  The order is:

1. by :class:`~repro.adm.values.TypeTag` (MISSING < NULL < BOOLEAN < numerics
   < STRING < ... < OBJECT), except that
2. all numeric values compare with each other *by value* (``1 < 1.5 < 2``),
   and
3. within a tag, by natural value; collections compare lexicographically and
   objects by sorted (key, value) pairs.
"""

from __future__ import annotations

import functools

from repro.adm.values import (
    MISSING,
    TypeTag,
    is_numeric_tag,
    tag_of,
)

_NUMERIC_RANK = TypeTag.TINYINT  # all numerics sort at this rank


def compare(a, b) -> int:
    """Three-way comparison: negative if a < b, 0 if equal, positive if a > b."""
    ta, tb = tag_of(a), tag_of(b)
    ra = _NUMERIC_RANK if is_numeric_tag(ta) else ta
    rb = _NUMERIC_RANK if is_numeric_tag(tb) else tb
    if ra != rb:
        return -1 if ra < rb else 1
    if ra == _NUMERIC_RANK:
        return (a > b) - (a < b)
    if ta in (TypeTag.MISSING, TypeTag.NULL):
        return 0
    if ta is TypeTag.BOOLEAN:
        return (a > b) - (a < b)
    if ta in (TypeTag.ARRAY, TypeTag.MULTISET):
        xs = sorted(a, key=sort_key) if ta is TypeTag.MULTISET else a
        ys = sorted(b, key=sort_key) if ta is TypeTag.MULTISET else b
        for x, y in zip(xs, ys):
            c = compare(x, y)
            if c:
                return c
        return (len(xs) > len(ys)) - (len(xs) < len(ys))
    if ta is TypeTag.OBJECT:
        ka = sorted(k for k, v in a.items() if v is not MISSING)
        kb = sorted(k for k, v in b.items() if v is not MISSING)
        if ka != kb:
            return -1 if ka < kb else 1
        for k in ka:
            c = compare(a[k], b[k])
            if c:
                return c
        return 0
    if ta is TypeTag.UUID:
        return (a.bytes > b.bytes) - (a.bytes < b.bytes)
    # remaining scalar wrappers (temporal, spatial) define dataclass order
    return (a > b) - (a < b)


def eq(a, b) -> bool:
    """Deep equality under the comparator's total order (1 == 1.0)."""
    return compare(a, b) == 0


def comparable(a, b) -> bool:
    """SQL++ comparability: numerics inter-compare by value; anything else
    only compares within its own type tag.  Query predicates treat a
    cross-type comparison as *unknown* (null), even though :func:`compare`
    totally orders all values for index/sort purposes — index range
    searches must band-filter with this to match predicate semantics."""
    ta, tb = tag_of(a), tag_of(b)
    if is_numeric_tag(ta) and is_numeric_tag(tb):
        return True
    return ta == tb


def comparable_tuples(key, bound) -> bool:
    """Componentwise :func:`comparable` over a key and a (prefix) bound."""
    return all(comparable(k, b) for k, b in zip(key, bound))


@functools.total_ordering
class _Key:
    """A wrapper making any ADM value usable as a Python sort key."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return compare(self.value, other.value) < 0

    def __eq__(self, other):
        return compare(self.value, other.value) == 0

    def __repr__(self):
        return f"_Key({self.value!r})"


def sort_key(value) -> _Key:
    """Key function for ``sorted``/``bisect`` over ADM values."""
    return _Key(value)


def tuple_key(values) -> tuple:
    """Key function for composite (multi-field) keys."""
    return tuple(_Key(v) for v in values)


# --- batched sort keys (ISSUE-7) ---------------------------------------------
#
# ``_Key`` calls :func:`compare` — a Python-level tree walk — on every
# comparison, which a sort performs O(n log n) times.  ``order_part``
# produces a ``(rank, payload)`` pair instead: the rank is the collapsed
# TypeTag order (all numerics share one rank), and for plain scalars the
# payload is the raw value, so the sort's comparisons run in the C tuple
# comparator.  Parts order exactly like ``sort_key`` but the two key
# kinds must not be mixed within one sort.

_NUMERIC_PART_RANK = int(_NUMERIC_RANK)


def order_part(value):
    """One field's sort-key part: ``(rank, payload)`` ordered identically
    to ``sort_key(value)`` (total ADM order, numerics by value), with
    native payloads for plain scalars and a ``_Key`` fallback for
    complex values."""
    t = type(value)
    if t is int or t is float:
        return (_NUMERIC_PART_RANK, value)
    if t is str:
        return (int(TypeTag.STRING), value)
    if value is MISSING:
        return (int(TypeTag.MISSING), 0)   # all MISSINGs are equal
    if value is None:
        return (int(TypeTag.NULL), 0)      # all nulls are equal
    if t is bool:
        return (int(TypeTag.BOOLEAN), value)
    tag = tag_of(value)
    if is_numeric_tag(tag):
        # numeric wrapper/subclass: compare by value against plain ints
        # and floats at the shared numeric rank
        return (_NUMERIC_PART_RANK, value)
    return (int(tag), _Key(value))


#: Exact payload type sets a whole key column may hold and still compare
#: natively without the rank, because every pairwise ``<`` equals
#: :func:`compare`: any mix of plain ints/floats, or one homogeneous
#: scalar type.  bool only qualifies alone (True == 1 natively, but
#: BOOLEAN ranks below the numerics in ADM order).
_NATIVE_SCALAR_SETS = ({str}, {bytes}, {bool})
_NATIVE_NUMERIC_SET = {int, float}


def native_orderable(values) -> bool:
    """True when raw ``values`` can serve directly as sort keys: native
    ``<`` over every pair agrees with :func:`compare`."""
    kinds = set(map(type, values))
    return kinds <= _NATIVE_NUMERIC_SET or kinds in _NATIVE_SCALAR_SETS


def tuple_key_many(tuples, fields=None) -> list:
    """Batch composite keys for ``tuples`` (``fields`` selects and orders
    the key columns; None keys the whole tuple).  Returns one key per
    tuple, order-compatible with :func:`tuple_key` but built from
    :func:`order_part` so comparisons stay in the C tuple comparator.
    Keys from one call only compare against keys from ``order_part``
    -based builders, never against ``tuple_key`` output."""
    if fields is None:
        return [tuple(order_part(v) for v in t) for t in tuples]
    return [tuple(order_part(t[i]) for i in fields) for t in tuples]


def compare_tuples(a, b) -> int:
    """Three-way comparison of composite keys (tuples of ADM values)."""
    for x, y in zip(a, b):
        c = compare(x, y)
        if c:
            return c
    return (len(a) > len(b)) - (len(a) < len(b))
