"""The ADM value universe.

ADM (the ASTERIX Data Model) is JSON extended with object-database concepts
(paper Section III, feature 1): beyond JSON's null/boolean/number/string/
array/object it adds a MISSING value, fixed-width integers, binary, UUID,
temporal values (date, time, datetime, duration, interval), simple
"Google-map style" spatial values (point, line, rectangle, circle, polygon),
and an unordered-list (multiset) constructor written ``{{ ... }}``.

Representation choices (pragmatic, documented in DESIGN.md):

* ``MISSING`` is a singleton sentinel; SQL++ distinguishes it from ``null``.
* null is Python ``None``; booleans are Python ``bool``.
* All integers are Python ``int`` at runtime and tagged ``BIGINT``; declared
  narrower types (int8/16/32) are enforced as range constraints by the type
  system rather than distinct runtime classes.
* floats are Python ``float`` (tagged ``DOUBLE``); strings are ``str``;
  binary is ``bytes``; UUIDs are :class:`uuid.UUID`.
* Temporal and spatial values are small frozen dataclasses defined here.
* Ordered lists are Python ``list``; multisets are :class:`Multiset` (a list
  subclass with bag equality); objects are Python ``dict`` with string keys.
"""

from __future__ import annotations

import datetime as _dt
import enum
import math
import re
import uuid as _uuid
from dataclasses import dataclass

from repro.common.errors import InvalidArgumentError


class Missing:
    """The SQL++ MISSING value: a field access that found no field.

    There is exactly one instance, :data:`MISSING`.  It is distinct from
    null: ``SELECT r.nosuchfield`` produces an object with *no* field at all,
    whereas a null field is present with value null.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "MISSING"

    def __bool__(self):
        return False

    def __reduce__(self):
        return (Missing, ())


MISSING = Missing()


class TypeTag(enum.IntEnum):
    """Serialization/tag order for ADM values.

    The integer order of the tags defines the cross-type total order used by
    index keys and ORDER BY (see :mod:`repro.adm.comparators`); numeric
    values compare by value regardless of INT/DOUBLE tag.
    """

    MISSING = 0
    NULL = 1
    BOOLEAN = 2
    TINYINT = 3
    SMALLINT = 4
    INTEGER = 5
    BIGINT = 6
    FLOAT = 7
    DOUBLE = 8
    STRING = 9
    BINARY = 10
    UUID = 11
    DATE = 12
    TIME = 13
    DATETIME = 14
    DURATION = 15
    INTERVAL = 16
    POINT = 17
    LINE = 18
    RECTANGLE = 19
    CIRCLE = 20
    POLYGON = 21
    ARRAY = 22
    MULTISET = 23
    OBJECT = 24


_NUMERIC_TAGS = frozenset(
    {
        TypeTag.TINYINT,
        TypeTag.SMALLINT,
        TypeTag.INTEGER,
        TypeTag.BIGINT,
        TypeTag.FLOAT,
        TypeTag.DOUBLE,
    }
)


def is_numeric_tag(tag: TypeTag) -> bool:
    return tag in _NUMERIC_TAGS


# --- temporal values -------------------------------------------------------

_MILLIS_PER_DAY = 86_400_000


@dataclass(frozen=True, order=True)
class ADate:
    """An ADM date: days since the Unix epoch (1970-01-01)."""

    days: int

    @classmethod
    def parse(cls, text: str) -> "ADate":
        try:
            d = _dt.date.fromisoformat(text.strip())
        except ValueError as exc:
            raise InvalidArgumentError(f"invalid date: {text!r}") from exc
        return cls((d - _dt.date(1970, 1, 1)).days)

    def to_date(self) -> _dt.date:
        return _dt.date(1970, 1, 1) + _dt.timedelta(days=self.days)

    def __str__(self):
        return self.to_date().isoformat()

    def __repr__(self):
        return f'date("{self}")'


@dataclass(frozen=True, order=True)
class ATime:
    """An ADM time of day: milliseconds since midnight."""

    millis: int

    @classmethod
    def parse(cls, text: str) -> "ATime":
        try:
            t = _dt.time.fromisoformat(text.strip())
        except ValueError as exc:
            raise InvalidArgumentError(f"invalid time: {text!r}") from exc
        millis = ((t.hour * 60 + t.minute) * 60 + t.second) * 1000
        millis += t.microsecond // 1000
        return cls(millis)

    def __str__(self):
        ms = self.millis
        h, ms = divmod(ms, 3_600_000)
        m, ms = divmod(ms, 60_000)
        s, ms = divmod(ms, 1000)
        base = f"{h:02d}:{m:02d}:{s:02d}"
        return f"{base}.{ms:03d}" if ms else base

    def __repr__(self):
        return f'time("{self}")'


@dataclass(frozen=True, order=True)
class ADateTime:
    """An ADM datetime: milliseconds since the Unix epoch (UTC)."""

    millis: int

    @classmethod
    def parse(cls, text: str) -> "ADateTime":
        text = text.strip()
        if text.endswith("Z"):
            text = text[:-1]
        try:
            dt = _dt.datetime.fromisoformat(text)
        except ValueError as exc:
            raise InvalidArgumentError(f"invalid datetime: {text!r}") from exc
        if dt.tzinfo is not None:
            dt = dt.astimezone(_dt.timezone.utc).replace(tzinfo=None)
        delta = dt - _dt.datetime(1970, 1, 1)
        millis = (delta.days * _MILLIS_PER_DAY + delta.seconds * 1000
                  + delta.microseconds // 1000)
        return cls(millis)

    @classmethod
    def from_parts(cls, date: ADate, time: ATime) -> "ADateTime":
        return cls(date.days * _MILLIS_PER_DAY + time.millis)

    def date_part(self) -> ADate:
        return ADate(self.millis // _MILLIS_PER_DAY)

    def time_part(self) -> ATime:
        return ATime(self.millis % _MILLIS_PER_DAY)

    def __str__(self):
        return f"{self.date_part()}T{self.time_part()}"

    def __repr__(self):
        return f'datetime("{self}")'


_DURATION_RE = re.compile(
    r"^(-)?P(?:(\d+)Y)?(?:(\d+)M)?(?:(\d+)D)?"
    r"(?:T(?:(\d+)H)?(?:(\d+)M)?(?:(\d+(?:\.\d+)?)S)?)?$"
)


@dataclass(frozen=True)
class ADuration:
    """An ADM duration: a (months, milliseconds) pair, ISO-8601 style.

    Durations with a month component are not totally ordered against ones
    with day/time components (how long is a month?), so ADuration compares
    by the (months, millis) pair lexicographically — the same pragmatic
    choice AsterixDB makes for its duration ordering.
    """

    months: int
    millis: int

    @classmethod
    def parse(cls, text: str) -> "ADuration":
        m = _DURATION_RE.match(text.strip())
        if not m or text.strip() in ("P", "-P"):
            raise InvalidArgumentError(f"invalid duration: {text!r}")
        neg, years, months, days, hours, minutes, seconds = m.groups()
        total_months = int(years or 0) * 12 + int(months or 0)
        millis = int(days or 0) * _MILLIS_PER_DAY
        millis += int(hours or 0) * 3_600_000
        millis += int(minutes or 0) * 60_000
        millis += int(float(seconds or 0) * 1000)
        if neg:
            total_months, millis = -total_months, -millis
        return cls(total_months, millis)

    def __lt__(self, other: "ADuration"):
        return (self.months, self.millis) < (other.months, other.millis)

    def __str__(self):
        months, millis = self.months, self.millis
        sign = ""
        if months < 0 or millis < 0:
            sign, months, millis = "-", abs(months), abs(millis)
        y, mo = divmod(months, 12)
        days, rest = divmod(millis, _MILLIS_PER_DAY)
        h, rest = divmod(rest, 3_600_000)
        mi, rest = divmod(rest, 60_000)
        s = rest / 1000
        out = sign + "P"
        if y:
            out += f"{y}Y"
        if mo:
            out += f"{mo}M"
        if days:
            out += f"{days}D"
        if h or mi or s:
            out += "T"
            if h:
                out += f"{h}H"
            if mi:
                out += f"{mi}M"
            if s:
                out += f"{s:g}S"
        if out in ("P", "-P"):
            out += "T0S"
        return out

    def __repr__(self):
        return f'duration("{self}")'


@dataclass(frozen=True, order=True)
class AInterval:
    """A half-open interval over date/time/datetime chronons.

    ``tag`` records which temporal type the endpoints came from so interval
    functions can reconstruct typed endpoints.
    """

    start: int
    end: int
    tag: TypeTag = TypeTag.DATETIME

    def __post_init__(self):
        if self.end < self.start:
            raise InvalidArgumentError(
                f"interval end {self.end} before start {self.start}"
            )

    def overlaps(self, other: "AInterval") -> bool:
        return self.start < other.end and other.start < self.end

    def __repr__(self):
        return f"interval({self.start}, {self.end})"


# --- spatial values ---------------------------------------------------------

@dataclass(frozen=True, order=True)
class APoint:
    """A 2D point (paper: 'simple (Googlemap style) spatial attributes')."""

    x: float
    y: float

    @classmethod
    def parse(cls, text: str) -> "APoint":
        try:
            xs, ys = text.split(",")
            return cls(float(xs), float(ys))
        except ValueError as exc:
            raise InvalidArgumentError(f"invalid point: {text!r}") from exc

    def distance(self, other: "APoint") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def __repr__(self):
        return f'point("{self.x:g},{self.y:g}")'


@dataclass(frozen=True, order=True)
class ALine:
    """A 2D line segment."""

    p1: APoint
    p2: APoint

    def __repr__(self):
        return f'line("{self.p1.x:g},{self.p1.y:g} {self.p2.x:g},{self.p2.y:g}")'


@dataclass(frozen=True, order=True)
class ARectangle:
    """An axis-aligned rectangle given by bottom-left and top-right points."""

    bottom_left: APoint
    top_right: APoint

    def __post_init__(self):
        bl, tr = self.bottom_left, self.top_right
        if tr.x < bl.x or tr.y < bl.y:
            raise InvalidArgumentError(
                f"rectangle corners out of order: {bl!r}, {tr!r}"
            )

    def contains_point(self, p: APoint) -> bool:
        return (
            self.bottom_left.x <= p.x <= self.top_right.x
            and self.bottom_left.y <= p.y <= self.top_right.y
        )

    def intersects(self, other: "ARectangle") -> bool:
        return not (
            other.bottom_left.x > self.top_right.x
            or other.top_right.x < self.bottom_left.x
            or other.bottom_left.y > self.top_right.y
            or other.top_right.y < self.bottom_left.y
        )

    def __repr__(self):
        bl, tr = self.bottom_left, self.top_right
        return f'rectangle("{bl.x:g},{bl.y:g} {tr.x:g},{tr.y:g}")'


@dataclass(frozen=True, order=True)
class ACircle:
    """A circle given by center point and radius."""

    center: APoint
    radius: float

    def contains_point(self, p: APoint) -> bool:
        return self.center.distance(p) <= self.radius

    def mbr(self) -> ARectangle:
        c, r = self.center, self.radius
        return ARectangle(APoint(c.x - r, c.y - r), APoint(c.x + r, c.y + r))

    def __repr__(self):
        return f'circle("{self.center.x:g},{self.center.y:g} {self.radius:g}")'


@dataclass(frozen=True)
class APolygon:
    """A simple polygon given by its vertices (at least three)."""

    points: tuple

    def __post_init__(self):
        if len(self.points) < 3:
            raise InvalidArgumentError("polygon needs at least 3 points")

    def mbr(self) -> ARectangle:
        xs = [p.x for p in self.points]
        ys = [p.y for p in self.points]
        return ARectangle(APoint(min(xs), min(ys)), APoint(max(xs), max(ys)))

    def contains_point(self, p: APoint) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        inside = False
        pts = self.points
        n = len(pts)
        for i in range(n):
            a, b = pts[i], pts[(i + 1) % n]
            if _on_segment(a, b, p):
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def __lt__(self, other: "APolygon"):
        return self.points < other.points

    def __repr__(self):
        coords = " ".join(f"{p.x:g},{p.y:g}" for p in self.points)
        return f'polygon("{coords}")'


def _on_segment(a: APoint, b: APoint, p: APoint) -> bool:
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > 1e-9:
        return False
    return (
        min(a.x, b.x) - 1e-9 <= p.x <= max(a.x, b.x) + 1e-9
        and min(a.y, b.y) - 1e-9 <= p.y <= max(a.y, b.y) + 1e-9
    )


# --- collections -------------------------------------------------------------

class Multiset(list):
    """An ADM unordered list (``{{ ... }}``): a bag with order-insensitive
    equality.  Fig. 3(a)'s ``friendIds: {{ int }}`` is one of these."""

    def __eq__(self, other):
        if isinstance(other, Multiset):
            return _bag_key(self) == _bag_key(other)
        if isinstance(other, list):
            return False  # a bag is never equal to an ordered list
        return NotImplemented

    def __ne__(self, other):
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    __hash__ = None

    def __repr__(self):
        return "{{" + ", ".join(repr(x) for x in self) + "}}"


def _bag_key(items) -> list:
    from repro.adm.comparators import sort_key

    return sorted((sort_key(x) for x in items))


# --- tagging and hashing ------------------------------------------------------

_TAG_BY_CLASS = {
    bool: TypeTag.BOOLEAN,
    int: TypeTag.BIGINT,
    float: TypeTag.DOUBLE,
    str: TypeTag.STRING,
    bytes: TypeTag.BINARY,
    _uuid.UUID: TypeTag.UUID,
    ADate: TypeTag.DATE,
    ATime: TypeTag.TIME,
    ADateTime: TypeTag.DATETIME,
    ADuration: TypeTag.DURATION,
    AInterval: TypeTag.INTERVAL,
    APoint: TypeTag.POINT,
    ALine: TypeTag.LINE,
    ARectangle: TypeTag.RECTANGLE,
    ACircle: TypeTag.CIRCLE,
    APolygon: TypeTag.POLYGON,
    Multiset: TypeTag.MULTISET,
    list: TypeTag.ARRAY,
    dict: TypeTag.OBJECT,
}


def tag_of(value) -> TypeTag:
    """Return the :class:`TypeTag` of a runtime ADM value."""
    if value is MISSING:
        return TypeTag.MISSING
    if value is None:
        return TypeTag.NULL
    # bool must be checked before int (bool is an int subclass); Multiset
    # before list for the same reason.
    if isinstance(value, bool):
        return TypeTag.BOOLEAN
    if isinstance(value, Multiset):
        return TypeTag.MULTISET
    tag = _TAG_BY_CLASS.get(type(value))
    if tag is not None:
        return tag
    if isinstance(value, int):
        return TypeTag.BIGINT
    if isinstance(value, float):
        return TypeTag.DOUBLE
    if isinstance(value, list):
        return TypeTag.ARRAY
    if isinstance(value, dict):
        return TypeTag.OBJECT
    raise InvalidArgumentError(f"not an ADM value: {value!r} ({type(value)})")


def fnv1a_bytes(data: bytes, seed: int = 0) -> int:
    """FNV-1a over a byte string — the primitive under :func:`hash_value`.
    Exposed so callers that already hold a value's canonical bytes (the
    runtime key cache) can hash without re-canonicalizing."""
    h = (0xCBF29CE484222325 ^ seed) & 0xFFFFFFFFFFFFFFFF
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def hash_value(value, seed: int = 0) -> int:
    """Deterministic 64-bit hash of an ADM value, used for hash partitioning
    (paper: 'primary key-based hash partitioning of all datasets') and hash
    joins/aggregation.  FNV-1a over the value's canonical byte string so it
    is stable across processes and runs.
    """
    return fnv1a_bytes(_canonical_bytes(value), seed)


def canonical_bytes(value) -> bytes:
    """A byte string equal for ADM-equal values (1 and 1.0 agree; multiset
    order is normalized; MISSING fields are dropped).  The basis for
    hashing and for value-identity sets (DISTINCT, array_distinct)."""
    return _canonical_bytes(value)


def _canonical_bytes(value) -> bytes:
    if isinstance(value, tuple):
        # composite keys (PKs, connector keys) hash as field sequences
        return b"\xfe" + b"\x00".join(_canonical_bytes(v) for v in value)
    tag = tag_of(value)
    head = bytes([tag])
    if tag in (TypeTag.MISSING, TypeTag.NULL):
        return head
    if tag is TypeTag.BOOLEAN:
        return head + (b"\x01" if value else b"\x00")
    if is_numeric_tag(tag):
        # ints and equal-valued floats hash identically (1 == 1.0 in ADM)
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if isinstance(value, int):
            return b"\x06" + value.to_bytes(16, "big", signed=True)
        import struct

        return b"\x08" + struct.pack(">d", value)
    if tag is TypeTag.STRING:
        return head + value.encode("utf-8")
    if tag is TypeTag.BINARY:
        return head + value
    if tag is TypeTag.UUID:
        return head + value.bytes
    if tag in (TypeTag.DATE, TypeTag.TIME, TypeTag.DATETIME):
        chronon = getattr(value, "days", None)
        if chronon is None:
            chronon = value.millis
        return head + chronon.to_bytes(8, "big", signed=True)
    if tag is TypeTag.DURATION:
        return (
            head
            + value.months.to_bytes(8, "big", signed=True)
            + value.millis.to_bytes(8, "big", signed=True)
        )
    if tag is TypeTag.INTERVAL:
        return (
            head
            + value.start.to_bytes(8, "big", signed=True)
            + value.end.to_bytes(8, "big", signed=True)
        )
    if tag in (
        TypeTag.POINT,
        TypeTag.LINE,
        TypeTag.RECTANGLE,
        TypeTag.CIRCLE,
        TypeTag.POLYGON,
    ):
        return head + repr(value).encode("utf-8")
    if tag is TypeTag.ARRAY:
        out = [head]
        out.extend(_canonical_bytes(x) + b"\x00" for x in value)
        return b"".join(out)
    if tag is TypeTag.MULTISET:
        parts = sorted(_canonical_bytes(x) for x in value)
        return head + b"\x00".join(parts)
    if tag is TypeTag.OBJECT:
        out = [head]
        for k in sorted(value):
            v = value[k]
            if v is MISSING:
                continue
            out.append(k.encode("utf-8") + b"\x01" + _canonical_bytes(v))
        return b"\x00".join(out)
    raise InvalidArgumentError(f"unhashable ADM value: {value!r}")


def deep_copy(value):
    """Structural copy of an ADM value (scalars are immutable and shared)."""
    if isinstance(value, Multiset):
        return Multiset(deep_copy(x) for x in value)
    if isinstance(value, list):
        return [deep_copy(x) for x in value]
    if isinstance(value, dict):
        return {k: deep_copy(v) for k, v in value.items()}
    return value
