"""Shared tokenizer for SQL++ and AQL.

Keywords are case-insensitive; identifiers may be quoted with backticks
(SQL++'s escape for reserved words, like Fig. 3(b)'s `` `path` ``);
``$name`` variables are AQL's binding syntax.  Comments: ``--`` to end of
line and ``/* ... */``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SyntaxError_


@dataclass(frozen=True)
class Token:
    kind: str          # IDENT, VAR, STRING, NUMBER, PUNCT, EOF
    text: str
    value: object
    line: int
    column: int

    def is_kw(self, *words: str) -> bool:
        return self.kind == "IDENT" and self.text.upper() in words

    def __repr__(self):
        return f"{self.kind}({self.text!r})"


_PUNCT = [
    "<=", ">=", "!=", "||", "**", ":=",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "*", "/", "%",
    "+", "-", "<", ">", "=", "?", "@", "^",
]


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)

    def err(msg):
        return SyntaxError_(msg, line=line, column=pos - line_start + 1)

    while pos < n:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if text.startswith("--", pos):
            end = text.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if text.startswith("/*", pos):
            end = text.find("*/", pos)
            if end == -1:
                raise err("unterminated comment")
            line += text.count("\n", pos, end)
            pos = end + 2
            continue
        col = pos - line_start + 1
        if ch in "\"'":
            value, pos2 = _read_string(text, pos, err)
            tokens.append(Token("STRING", text[pos:pos2], value, line, col))
            pos = pos2
            continue
        if ch == "`":
            end = text.find("`", pos + 1)
            if end == -1:
                raise err("unterminated quoted identifier")
            tokens.append(Token("IDENT", text[pos + 1:end],
                                text[pos + 1:end], line, col))
            pos = end + 1
            continue
        if ch == "$":
            start = pos + 1
            pos += 1
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            if pos == start:
                raise err("bad variable name")
            tokens.append(Token("VAR", text[start:pos], text[start:pos],
                                line, col))
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < n
                            and text[pos + 1].isdigit()):
            value, pos2 = _read_number(text, pos)
            tokens.append(Token("NUMBER", text[pos:pos2], value, line, col))
            pos = pos2
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            tokens.append(Token("IDENT", word, word, line, col))
            continue
        for punct in _PUNCT:
            if text.startswith(punct, pos):
                tokens.append(Token("PUNCT", punct, punct, line, col))
                pos += len(punct)
                break
        else:
            raise err(f"unexpected character {ch!r}")
    tokens.append(Token("EOF", "", None, line, n - line_start + 1))
    return tokens


def _read_string(text, pos, err):
    quote = text[pos]
    pos += 1
    out = []
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch == quote:
            # doubled quote = escaped quote (SQL style)
            if pos + 1 < n and text[pos + 1] == quote:
                out.append(quote)
                pos += 2
                continue
            return "".join(out), pos + 1
        if ch == "\\":
            pos += 1
            if pos >= n:
                break
            esc = text[pos]
            mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\",
                       '"': '"', "'": "'", "/": "/", "b": "\b", "f": "\f"}
            if esc == "u":
                out.append(chr(int(text[pos + 1:pos + 5], 16)))
                pos += 5
                continue
            if esc not in mapping:
                raise err(f"bad escape \\{esc}")
            out.append(mapping[esc])
            pos += 1
            continue
        out.append(ch)
        pos += 1
    raise err("unterminated string")


def _read_number(text, pos):
    start = pos
    n = len(text)
    is_float = False
    while pos < n and text[pos].isdigit():
        pos += 1
    if pos < n and text[pos] == "." and pos + 1 < n \
            and text[pos + 1].isdigit():
        is_float = True
        pos += 1
        while pos < n and text[pos].isdigit():
            pos += 1
    if pos < n and text[pos] in "eE":
        look = pos + 1
        if look < n and text[look] in "+-":
            look += 1
        if look < n and text[look].isdigit():
            is_float = True
            pos = look
            while pos < n and text[pos].isdigit():
                pos += 1
    token = text[start:pos]
    return (float(token) if is_float else int(token)), pos
