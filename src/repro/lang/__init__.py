"""The query languages: SQL++ and AQL over one core AST and translator."""

from repro.lang import core_ast
from repro.lang.aql.parser import AQLParser, parse_aql
from repro.lang.sqlpp.parser import (
    SQLPPParser,
    parse_sqlpp,
    parse_sqlpp_expression,
)
from repro.lang.translator import Translator

__all__ = [
    "AQLParser",
    "SQLPPParser",
    "Translator",
    "core_ast",
    "parse_aql",
    "parse_sqlpp",
    "parse_sqlpp_expression",
]
