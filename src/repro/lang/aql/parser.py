"""The AQL parser — the deprecated first language, kept as a peer.

AQL "came from taking XQuery ... and tossing out its XML cruft" (§IV-A):
a FLWOR-style language with ``$variables``.  The paper's history is
reproduced faithfully: AQL parses to the *same* core AST as SQL++ and is
compiled by the same translator through the same algebra, rules, runtime
operators and connectors — and it is deprecated in favour of SQL++ (the
API emits a deprecation note when it's used).

Supported FLWOR:
  ``for $x in dataset Name`` / ``for $x at $i in expr`` / ``let $y := e``
  / ``where e`` / ``group by $k := e [, ...] with $v [, ...]`` /
  ``order by e [asc|desc]`` / ``limit e [offset e]`` / ``distinct`` /
  ``return e``

plus quantified expressions (``some/every $x in e satisfies p``) and the
shared expression grammar.  AQL's collection aggregates (``count()``,
``avg()``...) are collection *functions*, so they map to ``coll_*`` at
parse time — exactly the AQL/SQL++ semantic difference the SQL++ papers
call out.  DDL and DML reuse the statement grammar (AsterixDB's DDL was
shared between the two languages).
"""

from __future__ import annotations

from repro.lang import core_ast as ast
from repro.lang.sqlpp.parser import SQLPPParser

_AQL_COLLECTION_FNS = {
    "count": "coll_count",
    "sum": "coll_sum",
    "avg": "coll_avg",
    "min": "coll_min",
    "max": "coll_max",
}


class AQLParser(SQLPPParser):
    """AQL statements: FLWOR queries + the shared DDL/DML grammar."""

    def parse_statement(self) -> ast.Statement:
        if self.at_kw("FOR") or self.peek().kind == "VAR":
            return ast.QueryStatement(self.parse_flwor())
        return super().parse_statement()

    def parse_query(self):
        if self.at_kw("FOR", "LET"):
            return self.parse_flwor()
        return self.parse_expression()

    # -- FLWOR ---------------------------------------------------------------

    def parse_flwor(self) -> ast.SelectQuery:
        q = ast.SelectQuery()
        while True:
            if self.take_kw("FOR"):
                var = self._aql_var()
                positional = None
                if self.take_kw("AT"):
                    positional = self._aql_var()
                self.expect_kw("IN")
                expr = self.parse_expression()
                q.from_terms.append(
                    ast.FromTerm(expr, var, "from", None, positional)
                )
                continue
            if self.take_kw("LET"):
                var = self._aql_var()
                self.expect_punct(":=")
                q.let_clauses.append((var, self.parse_expression()))
                continue
            if self.take_kw("WHERE"):
                cond = self.parse_expression()
                if q.where is None:
                    q.where = cond
                else:
                    q.where = ast.Call("and", [q.where, cond])
                continue
            if self.at_kw("GROUP"):
                self.expect_kw("GROUP")
                self.expect_kw("BY")
                while True:
                    alias = self._aql_var()
                    self.expect_punct(":=")
                    q.group_keys.append(
                        ast.GroupKey(self.parse_expression(), alias)
                    )
                    if not self.take_punct(","):
                        break
                if self.take_kw("WITH"):
                    while True:
                        q.aql_group_with.append(self._aql_var())
                        if not self.take_punct(","):
                            break
                continue
            if self.take_kw("ORDER"):
                self.expect_kw("BY")
                while True:
                    expr = self.parse_expression()
                    desc = self.take_kw("DESC")
                    if not desc:
                        self.take_kw("ASC")
                    q.order_by.append(ast.OrderItem(expr, desc))
                    if not self.take_punct(","):
                        break
                continue
            if self.take_kw("LIMIT"):
                q.limit = self.parse_expression()
                if self.take_kw("OFFSET"):
                    q.offset = self.parse_expression()
                continue
            if self.take_kw("DISTINCT"):
                q.select.distinct = True
                continue
            break
        self.expect_kw("RETURN")
        q.select.value_expr = self.parse_expression()
        return q

    def _aql_var(self) -> str:
        tok = self.peek()
        if tok.kind != "VAR":
            raise self.error("expected a $variable")
        self.next()
        return tok.text

    # -- expression tweaks -------------------------------------------------------

    def _parse_primary(self):
        # `dataset Name` / `dataset("Name")` dataset access
        if self.at_kw("DATASET"):
            self.next()
            if self.take_punct("("):
                tok = self.next()
                self.expect_punct(")")
                return ast.Call("dataset", [ast.Literal(tok.value)])
            return ast.Call("dataset",
                            [ast.Literal(self.expect_ident())])
        return super()._parse_primary()

    def _parse_call(self, name: str):
        call = super()._parse_call(name)
        if isinstance(call, ast.Call):
            mapped = _AQL_COLLECTION_FNS.get(call.function.lower())
            if mapped:
                return ast.Call(mapped, call.args)
        return call


def parse_aql(text: str) -> list:
    """Parse an AQL script into statements."""
    return AQLParser(text).parse_statements()
