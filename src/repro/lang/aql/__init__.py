"""AQL parser package (deprecated in favour of SQL++, kept as a peer)."""

from repro.lang.aql.parser import AQLParser, parse_aql

__all__ = ["AQLParser", "parse_aql"]
