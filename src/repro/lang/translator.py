"""Core AST -> Algebricks logical plans.

One translator serves both languages — the load-bearing reproduction of
§IV-A: "Thanks to AsterixDB's Algebricks and Hyracks layers, we were able
[to] implement SQL++ fairly quickly as a peer of AQL, sharing the
Algebricks query algebra and many optimizer rules as well as the
associated Hyracks runtime operators and connectors."

Notable translations:

* dataset FROM terms become DataSourceScan/ExternalScan; expression FROM
  terms become Unnest (correlated, over the running plan);
* ``SOME x IN <dataset> SATISFIES p`` as a WHERE conjunct decorrelates
  into a left **semi join** (Fig. 3(c)'s shape); ``EVERY`` into an anti
  join of the negated predicate; EXISTS (SELECT .. FROM ds ..) likewise;
* quantifiers and subqueries over collection *expressions* stay
  expression-level (LQuant / LComp comprehensions);
* SQL-92 aggregate sugar (COUNT/SUM/MIN/MAX/AVG in the SELECT/HAVING/ORDER
  of a grouped query) is extracted into GroupBy aggregate calls, exactly
  the implicit-grouping rewrite SQL++ defines; GROUP AS materializes the
  group via the ``listify`` aggregate.
"""

from __future__ import annotations

import itertools

from repro.algebricks import logical as L
from repro.algebricks.expressions import (
    LCall,
    LCase,
    LCollCtor,
    LComp,
    LConst,
    LLambdaVar,
    LObjCtor,
    LQuant,
    LVar,
    fold_constants,
)
from repro.algebricks.logical import AggCall
from repro.common.errors import CompilationError, IdentifierError
from repro.functions.registry import is_scalar
from repro.lang import core_ast as ast

_SQL_AGGREGATES = {
    "count": "count",
    "sum": "sum",
    "min": "min",
    "max": "max",
    "avg": "avg",
    "count_star": "count_star",
    "array_count": None,   # scalar collection fns are NOT aggregate sugar
}


class _AggPlaceholder(ast.Expr):
    """Marks an extracted aggregate call inside a post-group expression."""

    def __init__(self, var: int):
        self.var = var


class Translator:
    """Stateless per-statement translation with a shared variable counter."""

    def __init__(self, metadata):
        self.metadata = metadata      # MetadataView + dataset existence
        self._vars = itertools.count(1)

    def new_var(self) -> int:
        return next(self._vars)

    # ===== statements ============================================================

    def translate_query(self, query) -> L.LogicalOp:
        """QueryStatement body -> plan rooted at DistributeResult."""
        if isinstance(query, ast.UnionQuery):
            plan, result = self._union(query)
        elif isinstance(query, ast.SelectQuery):
            plan, result = self._select(query, {})
        else:
            result = self._expr(query, {}, set())
            plan = L.EmptyTupleSource()
        return L.DistributeResult(result, inputs=[plan])

    def translate_insert(self, stmt: ast.InsertStatement) -> L.LogicalOp:
        if isinstance(stmt.payload, ast.SubqueryExpr):
            plan, result = self._select(stmt.payload.query, {})
            record_expr = result
        elif isinstance(stmt.payload, ast.ArrayExpr):
            coll = self._expr(stmt.payload, {}, set())
            var = self.new_var()
            plan = L.Unnest(var, coll, inputs=[L.EmptyTupleSource()])
            record_expr = LVar(var)
        else:
            expr = self._expr(stmt.payload, {}, set())
            var = self.new_var()
            plan = L.Assign(var, expr, inputs=[L.EmptyTupleSource()])
            record_expr = LVar(var)
        op = "upsert" if stmt.upsert else "insert"
        return L.InsertDelete(self._qualify(stmt.dataset), op,
                              record_expr=record_expr, inputs=[plan])

    def translate_delete(self, stmt: ast.DeleteStatement) -> L.LogicalOp:
        scan, scope, pk_vars = self._dataset_scan(stmt.dataset)
        alias = stmt.alias or stmt.dataset
        scope = {alias: scope[stmt.dataset]}
        plan = scan
        if stmt.where is not None:
            plan = self._where(stmt.where, scope, plan)
        return L.InsertDelete(self._qualify(stmt.dataset), "delete",
                              pk_exprs=[LVar(v) for v in pk_vars],
                              inputs=[plan])

    def translate_load(self, stmt, adapter) -> L.LogicalOp:
        var = self.new_var()
        qualified = self._qualify(stmt.dataset)
        plan = L.ExternalScan(qualified, adapter, var)
        return L.InsertDelete(qualified, "load", record_expr=LVar(var),
                              inputs=[plan])

    def _union(self, union: ast.UnionQuery):
        """UNION ALL: each branch projects its result to one variable;
        branches fold left through UnionAll operators, each union level
        producing a fresh variable (re-using one variable across levels
        would make an outer union re-produce a variable its own input
        already emits)."""
        branch_outs = []
        for branch in union.branches:
            plan, result = self._select(branch, {})
            bvar = self.new_var()
            plan = L.Assign(bvar, result, inputs=[plan])
            plan = L.Project([bvar], inputs=[plan])
            branch_outs.append((plan, bvar))
        combined, out_var = branch_outs[0]
        for right_plan, _ in branch_outs[1:]:
            var = self.new_var()
            combined = L.UnionAll(var, inputs=[combined, right_plan])
            out_var = var
        return combined, LVar(out_var)

    # ===== the select core ========================================================

    def _select(self, q: ast.SelectQuery, outer_scope: dict):
        """Returns (plan, result_expr)."""
        scope = dict(outer_scope)
        plan = L.EmptyTupleSource()

        # WITH: constants-to-be (const folding + inlining erase them)
        for name, expr in q.with_clauses:
            var = self.new_var()
            plan = L.Assign(var, self._expr(expr, scope, set()),
                            inputs=[plan])
            scope[name] = var

        # FROM
        for term in q.from_terms:
            plan = self._from_term(term, scope, plan)

        # LET
        for name, expr in q.let_clauses:
            var = self.new_var()
            plan = L.Assign(var, self._expr(expr, scope, set()),
                            inputs=[plan])
            scope[name] = var

        # WHERE (with dataset-quantifier/EXISTS decorrelation)
        if q.where is not None:
            plan = self._where(q.where, scope, plan)

        # GROUP BY / implicit aggregation
        agg_templates = []      # (var, fn, arg core-AST expr)
        post_exprs = {}         # rewritten select/having/order expressions
        has_group = bool(q.group_keys)
        exprs_to_scan = []
        if q.select.value_expr is not None:
            exprs_to_scan.append(("value", q.select.value_expr))
        for i, proj in enumerate(q.select.projections):
            if not proj.star:
                exprs_to_scan.append((("proj", i), proj.expr))
        if q.having is not None:
            exprs_to_scan.append(("having", q.having))
        for i, item in enumerate(q.order_by):
            exprs_to_scan.append((("order", i), item.expr))
        found_any_agg = False
        for key, expr in exprs_to_scan:
            rewritten, aggs = self._extract_aggregates(expr)
            post_exprs[key] = rewritten
            agg_templates.extend(aggs)
            found_any_agg |= bool(aggs)

        if has_group or q.group_as or getattr(q, "aql_group_with", None):
            plan, scope = self._group_by(q, scope, plan, agg_templates)
        elif found_any_agg:
            # implicit global aggregation: SELECT COUNT(*) FROM ds
            agg_calls = []
            placeholder_scope = dict(scope)
            for var, fn, arg in agg_templates:
                agg_calls.append(
                    AggCall(var, fn, self._expr(arg, scope, set()))
                )
            plan = L.Aggregate(agg_calls, inputs=[plan])
            scope = {}
            scope.update(
                {f"${v}": v for v, _, _ in agg_templates}
            )
            del placeholder_scope
        elif agg_templates:
            pass  # unreachable

        if q.having is not None:
            cond = self._expr(post_exprs["having"], scope, set())
            plan = L.Select(cond, inputs=[plan])

        # SELECT result expression (projections assigned so ORDER BY can
        # reference aliases)
        if q.select.value_expr is not None:
            rv = self.new_var()
            plan = L.Assign(
                rv, self._expr(post_exprs["value"], scope, set()),
                inputs=[plan],
            )
            result = LVar(rv)
        else:
            pairs = []
            for i, proj in enumerate(q.select.projections):
                if proj.star:
                    for alias, var in sorted(scope.items()):
                        pairs.append((LConst(alias), LVar(var)))
                    continue
                var = self.new_var()
                plan = L.Assign(
                    var, self._expr(post_exprs[("proj", i)], scope, set()),
                    inputs=[plan],
                )
                scope[proj.alias] = var
                pairs.append((LConst(proj.alias), LVar(var)))
            result = LObjCtor(pairs)

        # DISTINCT
        if q.select.distinct:
            rv = self.new_var()
            plan = L.Assign(rv, result, inputs=[plan])
            plan = L.Project([rv], inputs=[plan])
            plan = L.Distinct([rv], inputs=[plan])
            result = LVar(rv)
            scope = {"$distinct": rv}

        # ORDER BY
        if q.order_by:
            pairs = []
            for i, item in enumerate(q.order_by):
                var = self.new_var()
                plan = L.Assign(
                    var, self._expr(post_exprs[("order", i)], scope, set()),
                    inputs=[plan],
                )
                pairs.append((LVar(var), item.descending))
            plan = L.Order(pairs, inputs=[plan])

        # LIMIT / OFFSET
        if q.limit is not None or q.offset is not None:
            count = self._const_int(q.limit, "LIMIT")
            offset = self._const_int(q.offset, "OFFSET") or 0
            plan = L.Limit(count, offset, inputs=[plan])

        return plan, result

    def _const_int(self, expr, what: str):
        if expr is None:
            return None
        lowered = fold_constants(self._expr(expr, {}, set()))
        if not isinstance(lowered, LConst) or not isinstance(
                lowered.value, int):
            raise CompilationError(f"{what} must be a constant integer")
        return lowered.value

    # -- FROM ----------------------------------------------------------------------

    def _from_term(self, term: ast.FromTerm, scope: dict,
                   plan: L.LogicalOp) -> L.LogicalOp:
        if term.kind in ("from",):
            return self._attach_source(term, scope, plan)
        if term.kind in ("join", "leftjoin"):
            right_plan, right_scope = self._independent_source(term)
            join_scope = dict(scope)
            join_scope.update(right_scope)
            cond = self._expr(term.condition, join_scope, set())
            kind = "inner" if term.kind == "join" else "leftouter"
            scope.update(right_scope)
            return L.Join(cond, kind, inputs=[plan, right_plan])
        if term.kind in ("unnest", "leftunnest"):
            coll = self._expr(term.expr, scope, set())
            var = self.new_var()
            pos_var = None
            if term.positional_alias:
                pos_var = self.new_var()
                scope[term.positional_alias] = pos_var
            scope[term.alias] = var
            return L.Unnest(var, coll, outer=(term.kind == "leftunnest"),
                            positional_var=pos_var, inputs=[plan])
        raise CompilationError(f"unknown FROM term kind {term.kind}")

    def _dataset_name_of(self, expr) -> str | None:
        """Is this FROM/quantifier source a dataset reference?"""
        if isinstance(expr, ast.VarRef) and self._is_dataset(expr.name):
            return expr.name
        # qualified reference: FROM Dataverse.Dataset
        if isinstance(expr, ast.FieldAccess) and isinstance(
                expr.base, ast.VarRef):
            qualified = f"{expr.base.name}.{expr.field}"
            if self._is_dataset(qualified):
                return qualified
        if isinstance(expr, ast.Call) and expr.function.lower() == "dataset":
            arg = expr.args[0]
            if isinstance(arg, ast.Literal):
                return arg.value
            if isinstance(arg, ast.VarRef):
                return arg.name
        return None

    def _is_dataset(self, name: str) -> bool:
        return self.metadata.dataset_exists(name)

    def _dataset_scan(self, name: str):
        """Returns (scan op, {name: record var}, pk_vars).  The scan
        records the *qualified* dataset name (what the cluster's partition
        map is keyed on)."""
        qualified = self._qualify(name)
        if self.metadata.is_external(name):
            var = self.new_var()
            adapter = self.metadata.external_adapter(name)
            return L.ExternalScan(qualified, adapter, var), {name: var}, []
        pk_vars = [self.new_var() for _ in self.metadata.pk_fields(name)]
        record_var = self.new_var()
        scan = L.DataSourceScan(qualified, pk_vars, record_var)
        return scan, {name: record_var}, pk_vars

    def _qualify(self, name: str) -> str:
        qualify = getattr(self.metadata, "qualify", None)
        return qualify(name) if qualify is not None else name

    def _attach_source(self, term, scope, plan):
        ds = self._dataset_name_of(term.expr)
        if ds is not None:
            if term.alias in scope:
                raise CompilationError(f"duplicate alias {term.alias}")
            scan, ds_scope, _ = self._dataset_scan(ds)
            scope[term.alias] = ds_scope[ds]
            if isinstance(plan, L.EmptyTupleSource):
                return scan
            if self._is_assign_chain_over_ets(plan):
                # hoist WITH/LET assigns above the scan instead of a cross
                # join against the empty-tuple source
                return self._replant(plan, scan)
            return L.Join(LConst(True), "inner", inputs=[plan, scan])
        # expression source: correlated unnest
        coll = self._expr(term.expr, scope, set())
        var = self.new_var()
        scope[term.alias] = var
        pos_var = None
        if term.positional_alias:
            pos_var = self.new_var()
            scope[term.positional_alias] = pos_var
        return L.Unnest(var, coll, positional_var=pos_var, inputs=[plan])

    @staticmethod
    def _is_assign_chain_over_ets(plan) -> bool:
        while isinstance(plan, L.Assign):
            plan = plan.inputs[0]
        return isinstance(plan, L.EmptyTupleSource)

    @staticmethod
    def _replant(plan, new_bottom):
        """Replace the EmptyTupleSource under an assign chain."""
        if isinstance(plan, L.EmptyTupleSource):
            return new_bottom
        node = plan
        while not isinstance(node.inputs[0], L.EmptyTupleSource):
            node = node.inputs[0]
        node.inputs[0] = new_bottom
        return plan

    def _independent_source(self, term):
        """Build a JOIN right-hand side as its own sub-plan."""
        ds = self._dataset_name_of(term.expr)
        if ds is not None:
            scan, ds_scope, _ = self._dataset_scan(ds)
            return scan, {term.alias: ds_scope[ds]}
        coll = self._expr(term.expr, {}, set())
        var = self.new_var()
        plan = L.Unnest(var, coll, inputs=[L.EmptyTupleSource()])
        return plan, {term.alias: var}

    # -- WHERE (quantifier/EXISTS decorrelation) --------------------------------------

    def _where(self, where, scope, plan):
        for conjunct in self._conjuncts(where):
            plan = self._apply_predicate(conjunct, scope, plan)
        return plan

    @staticmethod
    def _conjuncts(expr):
        if isinstance(expr, ast.Call) and expr.function.lower() == "and":
            out = []
            for arg in expr.args:
                out.extend(Translator._conjuncts(arg))
            return out
        return [expr]

    def _apply_predicate(self, conjunct, scope, plan):
        # SOME x IN <dataset> SATISFIES p  ->  left semi join
        if isinstance(conjunct, ast.QuantifiedExpr):
            ds = self._dataset_name_of(conjunct.collection)
            if ds is not None:
                scan, ds_scope, _ = self._dataset_scan(ds)
                inner_scope = dict(scope)
                inner_scope[conjunct.var] = ds_scope[ds]
                pred = self._expr(conjunct.predicate, inner_scope, set())
                if conjunct.some:
                    return L.Join(pred, "leftsemi", inputs=[plan, scan])
                return L.Join(LCall("not", [pred]), "leftanti",
                              inputs=[plan, scan])
        # EXISTS (SELECT ... FROM <dataset> [AS a] [WHERE p])
        if isinstance(conjunct, ast.ExistsExpr) and isinstance(
                conjunct.subquery, ast.SubqueryExpr):
            sub = conjunct.subquery.query
            if (len(sub.from_terms) == 1 and not sub.group_keys
                    and not sub.let_clauses and not sub.order_by):
                ds = self._dataset_name_of(sub.from_terms[0].expr)
                if ds is not None:
                    scan, ds_scope, _ = self._dataset_scan(ds)
                    inner_scope = dict(scope)
                    inner_scope[sub.from_terms[0].alias] = ds_scope[ds]
                    pred = (self._expr(sub.where, inner_scope, set())
                            if sub.where is not None else LConst(True))
                    kind = "leftanti" if conjunct.negated else "leftsemi"
                    return L.Join(pred, kind, inputs=[plan, scan])
        cond = self._expr(conjunct, scope, set())
        return L.Select(cond, inputs=[plan])

    # -- GROUP BY ---------------------------------------------------------------------

    def _group_by(self, q, scope, plan, agg_templates):
        pre_scope = dict(scope)
        keys = []
        post_scope: dict = {}
        for gk in q.group_keys:
            pre_var = self.new_var()
            plan = L.Assign(pre_var, self._expr(gk.expr, pre_scope, set()),
                            inputs=[plan])
            post_var = self.new_var()
            keys.append((post_var, LVar(pre_var)))
            post_scope[gk.alias] = post_var
        agg_calls = []
        for var, fn, arg in agg_templates:
            agg_calls.append(
                AggCall(var, fn, self._expr(arg, pre_scope, set()))
            )
        if q.group_as:
            group_var = self.new_var()
            element = LObjCtor([
                (LConst(alias), LVar(v))
                for alias, v in sorted(pre_scope.items())
            ])
            agg_calls.append(AggCall(group_var, "listify", element))
            post_scope[q.group_as] = group_var
        for name in getattr(q, "aql_group_with", None) or ():
            if name not in pre_scope:
                raise IdentifierError(f"unknown group variable ${name}")
            var = self.new_var()
            agg_calls.append(
                AggCall(var, "listify", LVar(pre_scope[name]))
            )
            post_scope[name] = var
        plan = L.GroupBy(keys, agg_calls, inputs=[plan])
        return plan, post_scope

    def _extract_aggregates(self, expr):
        """Rewrite SQL-92 aggregate sugar into placeholders; returns
        (rewritten expr, [(var, fn, arg expr)])."""
        aggs = []

        def visit(node):
            if isinstance(node, ast.Call):
                fn = node.function.lower()
                if fn in ("count", "sum", "min", "max", "avg",
                          "count_star") and _SQL_AGGREGATES.get(fn):
                    var = self.new_var()
                    arg = (node.args[0] if node.args
                           else ast.Literal(1))
                    aggs.append((var, _SQL_AGGREGATES[fn], arg))
                    return _AggPlaceholder(var)
                return ast.Call(node.function,
                                [visit(a) for a in node.args])
            if isinstance(node, ast.FieldAccess):
                return ast.FieldAccess(visit(node.base), node.field)
            if isinstance(node, ast.IndexAccess):
                return ast.IndexAccess(visit(node.base), visit(node.index))
            if isinstance(node, ast.ObjectExpr):
                return ast.ObjectExpr(
                    [(visit(n), visit(v)) for n, v in node.pairs]
                )
            if isinstance(node, ast.ArrayExpr):
                return ast.ArrayExpr([visit(i) for i in node.items],
                                     node.multiset)
            if isinstance(node, ast.CaseWhen):
                return ast.CaseWhen(
                    [(visit(c), visit(r)) for c, r in node.whens],
                    visit(node.default),
                )
            return node

        return visit(expr), aggs

    # ===== expressions =================================================================

    def _expr(self, e, scope: dict, lambda_vars: set):
        if isinstance(e, _AggPlaceholder):
            return LVar(e.var)
        if isinstance(e, ast.Literal):
            return LConst(e.value)
        if isinstance(e, ast.VarRef):
            if e.name in lambda_vars:
                return LLambdaVar(e.name)
            if e.name in scope:
                return LVar(scope[e.name])
            if self._is_dataset(e.name):
                raise CompilationError(
                    f"dataset {e.name} can only be referenced in FROM or "
                    f"a quantifier over a dataset"
                )
            raise IdentifierError(f"unresolved identifier {e.name}")
        if isinstance(e, ast.FieldAccess):
            return LCall("field_access",
                         [self._expr(e.base, scope, lambda_vars),
                          LConst(e.field)])
        if isinstance(e, ast.IndexAccess):
            return LCall("get_item",
                         [self._expr(e.base, scope, lambda_vars),
                          self._expr(e.index, scope, lambda_vars)])
        if isinstance(e, ast.Call):
            fn = e.function.lower().replace("-", "_")
            if fn in ("count", "sum", "avg") and fn in _SQL_AGGREGATES:
                raise CompilationError(
                    f"aggregate function {e.function} used outside a "
                    f"grouping context (use coll_{fn} on collections)"
                )
            if not is_scalar(fn):
                raise IdentifierError(f"unknown function {e.function}")
            return LCall(fn, [self._expr(a, scope, lambda_vars)
                              for a in e.args])
        if isinstance(e, ast.QuantifiedExpr):
            if self._dataset_name_of(e.collection) is not None:
                raise CompilationError(
                    "a quantifier over a dataset is only supported as a "
                    "WHERE conjunct"
                )
            coll = self._expr(e.collection, scope, lambda_vars)
            pred = self._expr(e.predicate, scope,
                              lambda_vars | {e.var})
            return LQuant(e.some, e.var, coll, pred)
        if isinstance(e, ast.CaseWhen):
            whens = [
                (self._expr(c, scope, lambda_vars),
                 self._expr(r, scope, lambda_vars))
                for c, r in e.whens
            ]
            return LCase(whens, self._expr(e.default, scope, lambda_vars))
        if isinstance(e, ast.ObjectExpr):
            return LObjCtor([
                (self._expr(n, scope, lambda_vars),
                 self._expr(v, scope, lambda_vars))
                for n, v in e.pairs
            ])
        if isinstance(e, ast.ArrayExpr):
            return LCollCtor(
                [self._expr(i, scope, lambda_vars) for i in e.items],
                e.multiset,
            )
        if isinstance(e, ast.SubqueryExpr):
            return self._inline_subquery(e.query, scope, lambda_vars)
        if isinstance(e, ast.ExistsExpr):
            coll = self._expr(e.subquery, scope, lambda_vars)
            test = LCall("gt", [LCall("coll_count", [coll]), LConst(0)])
            return LCall("not", [test]) if e.negated else test
        raise CompilationError(f"cannot translate expression {e!r}")

    def _inline_subquery(self, q: ast.SelectQuery, scope, lambda_vars):
        """Compile a subquery over collection expressions into nested
        comprehensions.  Dataset sources are rejected here — the supported
        decorrelations live in :meth:`_apply_predicate`."""
        if q.group_keys or q.group_as or q.order_by or q.limit is not None:
            raise CompilationError(
                "subqueries with GROUP BY/ORDER BY/LIMIT are only "
                "supported at statement level"
            )
        for term in q.from_terms:
            if self._dataset_name_of(term.expr) is not None:
                raise CompilationError(
                    f"correlated subquery over dataset "
                    f"{self._dataset_name_of(term.expr)} is not supported; "
                    f"rewrite as a join"
                )
            if term.kind not in ("from", "unnest"):
                raise CompilationError(
                    "only simple FROM/UNNEST terms are supported in "
                    "inline subqueries"
                )
        inner_lambda = set(lambda_vars)
        bindings = []
        for term in q.from_terms:
            coll = self._expr(term.expr, scope, inner_lambda)
            bindings.append((term.alias, coll))
            inner_lambda.add(term.alias)
        lets = []
        for name, expr in q.let_clauses:
            lets.append((name, self._expr(expr, scope, inner_lambda)))
            inner_lambda.add(name)
        where = (self._expr(q.where, scope, inner_lambda)
                 if q.where is not None else None)
        if q.select.value_expr is not None:
            body = self._expr(q.select.value_expr, scope, inner_lambda)
        else:
            pairs = []
            for proj in q.select.projections:
                if proj.star:
                    raise CompilationError(
                        "SELECT * is not supported in inline subqueries"
                    )
                pairs.append((
                    LConst(proj.alias),
                    self._expr(proj.expr, scope, inner_lambda),
                ))
            body = LObjCtor(pairs)
        # LETs become nested single-element comprehensions... simpler: a
        # let is sugar for iterating a one-element array
        for name, expr in reversed(lets):
            body = LComp(name, LCollCtor([expr]), None, body)
            if where is not None:
                # the filter must see the let bindings; fold it inside
                body = LComp(name, LCollCtor([expr]), where, body.body)
                where = None
        comp = body
        for i, (alias, coll) in enumerate(reversed(bindings)):
            is_innermost = i == 0
            comp = LComp(alias, coll,
                         where if is_innermost and where is not None
                         else None,
                         comp)
        if not bindings:   # FROM-less subquery: one-row evaluation
            comp = LCollCtor([body])
        if q.select.distinct:
            comp = LCall("array_distinct", [comp])
        return comp
