"""The SQL++ parser (paper feature 2, the language of Fig. 3).

SQL++ "did a nice job of mostly extending standard SQL, while allowing for
differences in a few key places where SQL made flat-world or schema-based
assumptions" (§IV-A).  This recursive-descent parser covers the subset the
paper exercises plus the usual expression language:

* queries: WITH, SELECT [DISTINCT] [VALUE], FROM (joins, UNNEST), LET,
  WHERE, GROUP BY [GROUP AS], HAVING, ORDER BY, LIMIT/OFFSET — with the
  clauses acceptable in either SQL (SELECT-first) or pipeline (FROM-first)
  order;
* expressions: full operator precedence, IS [NOT] NULL/MISSING/UNKNOWN,
  [NOT] BETWEEN/LIKE/IN/EXISTS, quantified expressions (SOME/EVERY ...
  SATISFIES), CASE, object/array/multiset constructors, path navigation,
  subqueries;
* DDL: CREATE DATAVERSE / TYPE (open and CLOSED) / DATASET / EXTERNAL
  DATASET / INDEX (BTREE, RTREE, KEYWORD, NGRAM), DROP, USE, LOAD DATASET;
* DML: INSERT / UPSERT / DELETE.

Everything in Fig. 3(a)–(d) parses verbatim (see the test suite).
"""

from __future__ import annotations

from repro.common.errors import SyntaxError_
from repro.lang import core_ast as ast
from repro.lang.lexer import Token, tokenize

RESERVED_STOPWORDS = {
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET",
    "SELECT", "LET", "WITH", "JOIN", "LEFT", "INNER", "OUTER", "UNNEST",
    "ON", "AS", "BY", "AND", "OR", "THEN", "ELSE", "WHEN", "END",
    "SATISFIES", "ASC", "DESC", "AT", "UNION",
}


class Parser:
    """Token-stream helper shared by the SQL++ and AQL grammars."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- stream primitives -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        self.pos += 1
        return tok

    def at_kw(self, *words: str) -> bool:
        return self.peek().is_kw(*words)

    def take_kw(self, *words: str) -> bool:
        if self.at_kw(*words):
            self.next()
            return True
        return False

    def expect_kw(self, word: str) -> None:
        if not self.take_kw(word):
            raise self.error(f"expected {word}")

    def at_punct(self, *puncts: str) -> bool:
        tok = self.peek()
        return tok.kind == "PUNCT" and tok.text in puncts

    def take_punct(self, *puncts: str) -> bool:
        if self.at_punct(*puncts):
            self.next()
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        if not self.take_punct(punct):
            raise self.error(f"expected {punct!r}")

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != "IDENT":
            raise self.error("expected an identifier")
        self.next()
        return tok.text

    def error(self, message: str) -> SyntaxError_:
        tok = self.peek()
        return SyntaxError_(f"{message} (found {tok.text!r})",
                            line=tok.line, column=tok.column)


class SQLPPParser(Parser):
    """SQL++ statements and expressions."""

    # ===== statements =========================================================

    def parse_statements(self) -> list:
        statements = []
        while self.peek().kind != "EOF":
            statements.append(self.parse_statement())
            while self.take_punct(";"):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        if self.at_kw("CREATE"):
            return self._parse_create()
        if self.at_kw("DROP"):
            return self._parse_drop()
        if self.at_kw("USE"):
            self.next()
            self.take_kw("DATAVERSE")
            return ast.UseDataverse(self.expect_ident())
        if self.at_kw("LOAD"):
            return self._parse_load()
        if self.at_kw("INSERT", "UPSERT"):
            return self._parse_insert()
        if self.at_kw("DELETE"):
            return self._parse_delete()
        return ast.QueryStatement(self.parse_query())

    # -- DDL ---------------------------------------------------------------------

    def _parse_create(self):
        self.expect_kw("CREATE")
        if self.take_kw("DATAVERSE"):
            name = self.expect_ident()
            return ast.CreateDataverse(name, self._if_not_exists())
        if self.take_kw("TYPE"):
            name = self.expect_ident()
            ine = self._if_not_exists()
            self.expect_kw("AS")
            is_open = not self.take_kw("CLOSED")
            self.take_kw("OPEN")
            body = self._parse_type_expr()
            body.is_open = is_open
            return ast.CreateType(name, body, ine)
        if self.take_kw("EXTERNAL"):
            self.expect_kw("DATASET")
            name = self.expect_ident()
            self.expect_punct("(")
            type_name = self.expect_ident()
            self.expect_punct(")")
            self.expect_kw("USING")
            adapter = self.expect_ident()
            props = self._parse_properties()
            return ast.CreateExternalDataset(name, type_name, adapter,
                                             props)
        if self.take_kw("INTERNAL") or self.at_kw("DATASET"):
            self.expect_kw("DATASET")
            name = self.expect_ident()
            ine = self._if_not_exists()
            self.expect_punct("(")
            type_name = self.expect_ident()
            self.expect_punct(")")
            ine = ine or self._if_not_exists()
            self.expect_kw("PRIMARY")
            self.expect_kw("KEY")
            keys = [self._parse_field_path()]
            while self.take_punct(","):
                keys.append(self._parse_field_path())
            return ast.CreateDataset(name, type_name, keys, ine)
        if self.take_kw("INDEX"):
            name = self.expect_ident()
            ine = self._if_not_exists()
            self.expect_kw("ON")
            dataset = self.expect_ident()
            self.expect_punct("(")
            array_path = None
            if self.at_kw("UNNEST"):
                # CREATE INDEX ix ON ds (UNNEST arr [SELECT f, ...])
                self.expect_kw("UNNEST")
                array_path = self._parse_field_path()
                fields = []
                if self.take_kw("SELECT"):
                    fields.append(self._parse_field_path())
                    while self.take_punct(","):
                        fields.append(self._parse_field_path())
            else:
                fields = [self._parse_field_path()]
                while self.take_punct(","):
                    fields.append(self._parse_field_path())
            self.expect_punct(")")
            kind = "array" if array_path is not None else "btree"
            gram = 3
            if self.take_kw("TYPE"):
                kw = self.expect_ident().lower()
                if array_path is not None and kw != "btree":
                    from repro.common.errors import InvalidIndexDDLError
                    raise InvalidIndexDDLError(
                        f"UNNEST index only supports TYPE btree, got {kw}")
                if array_path is not None:
                    pass                     # kind stays "array"
                elif kw in ("btree", "rtree", "keyword"):
                    kind = kw
                elif kw == "ngram":
                    kind = "ngram"
                    if self.take_punct("("):
                        gram = int(self.next().value)
                        self.expect_punct(")")
                else:
                    raise self.error(f"unknown index type {kw}")
            ine = ine or self._if_not_exists()   # trailing form accepted
            return ast.CreateIndex(name, dataset, fields, kind, gram, ine,
                                   array_path=array_path)
        raise self.error("unknown CREATE statement")

    def _if_not_exists(self) -> bool:
        if self.at_kw("IF"):
            self.expect_kw("IF")
            self.expect_kw("NOT")
            self.expect_kw("EXISTS")
            return True
        return False

    def _parse_drop(self):
        self.expect_kw("DROP")
        if self.take_kw("INDEX"):
            dataset = self.expect_ident()
            self.expect_punct(".")
            name = self.expect_ident()
            return ast.DropStatement("index", name, dataset,
                                     self._if_exists())
        for kind in ("DATAVERSE", "TYPE", "DATASET"):
            if self.take_kw(kind):
                name = self.expect_ident()
                return ast.DropStatement(kind.lower(), name, None,
                                         self._if_exists())
        raise self.error("unknown DROP statement")

    def _if_exists(self) -> bool:
        if self.at_kw("IF"):
            self.expect_kw("IF")
            self.expect_kw("EXISTS")
            return True
        return False

    def _parse_type_expr(self) -> ast.TypeExpr:
        if self.take_punct("{"):
            if self.take_punct("{"):   # {{ T }} multiset
                item = self._parse_type_expr()
                self.expect_punct("}")
                self.expect_punct("}")
                return ast.TypeExpr("multiset", item=item)
            fields = []
            if not self.at_punct("}"):
                while True:
                    fname = self.expect_ident()
                    self.expect_punct(":")
                    ftype = self._parse_type_expr()
                    optional = self.take_punct("?")
                    fields.append(ast.TypeField(fname, ftype, optional))
                    if not self.take_punct(","):
                        break
            self.expect_punct("}")
            return ast.TypeExpr("object", fields=fields)
        if self.take_punct("["):
            item = self._parse_type_expr()
            self.expect_punct("]")
            return ast.TypeExpr("ordered", item=item)
        return ast.TypeExpr("named", name=self.expect_ident())

    def _parse_field_path(self) -> str:
        parts = [self.expect_ident()]
        while self.take_punct("."):
            parts.append(self.expect_ident())
        return ".".join(parts)

    def _parse_properties(self) -> dict:
        """(("k"="v"), ("k"="v"), ...) — Fig. 3(b)'s adapter syntax."""
        props = {}
        self.expect_punct("(")
        while True:
            self.expect_punct("(")
            key = self.next().value
            self.expect_punct("=")
            value = self.next().value
            self.expect_punct(")")
            props[key] = value
            if not self.take_punct(","):
                break
        self.expect_punct(")")
        return props

    def _parse_load(self):
        self.expect_kw("LOAD")
        self.expect_kw("DATASET")
        dataset = self.expect_ident()
        self.expect_kw("USING")
        self.expect_ident()           # adapter name (localfs)
        props = self._parse_properties()
        path = props.pop("path", "")
        fmt = props.pop("format", "adm")
        return ast.LoadStatement(dataset, path, fmt, props)

    # -- DML ---------------------------------------------------------------------

    def _parse_insert(self):
        upsert = self.take_kw("UPSERT")
        if not upsert:
            self.expect_kw("INSERT")
        self.expect_kw("INTO")
        dataset = self.expect_ident()
        if self.take_punct("("):
            payload = self._parse_query_or_expr()
            self.expect_punct(")")
        else:
            payload = self._parse_query_or_expr()
        return ast.InsertStatement(dataset, payload, upsert)

    def _parse_query_or_expr(self):
        if self.at_kw("SELECT", "FROM", "WITH"):
            return ast.SubqueryExpr(self.parse_select_query())
        return self.parse_expression()

    def _parse_delete(self):
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        dataset = self.expect_ident()
        alias = None
        if self.take_kw("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "IDENT" and not self.at_kw("WHERE"):
            alias = self.expect_ident()
        where = None
        if self.take_kw("WHERE"):
            where = self.parse_expression()
        return ast.DeleteStatement(dataset, alias, where)

    # ===== queries ==============================================================

    def parse_query(self):
        """A top-level query: SELECT block(s), optionally chained with
        UNION ALL, or a bare expression."""
        if self.at_kw("SELECT", "FROM", "WITH"):
            query = self.parse_select_query()
            branches = [query]
            while self.at_kw("UNION"):
                self.expect_kw("UNION")
                self.expect_kw("ALL")
                branches.append(self.parse_select_query())
            if len(branches) > 1:
                return ast.UnionQuery(branches)
            return query
        return self.parse_expression()

    def parse_select_query(self) -> ast.SelectQuery:
        q = ast.SelectQuery()
        if self.take_kw("WITH"):
            while True:
                name = self.expect_ident()
                self.expect_kw("AS")
                q.with_clauses.append((name, self.parse_expression()))
                if not self.take_punct(","):
                    break
        select_seen = False
        if self.at_kw("SELECT"):
            self._parse_select_clause(q)
            select_seen = True
        if self.take_kw("FROM"):
            self._parse_from(q)
        # body clauses in order
        while True:
            if self.take_kw("LET"):
                while True:
                    name = self.expect_ident()
                    self.expect_punct("=")
                    q.let_clauses.append((name, self.parse_expression()))
                    if not self.take_punct(","):
                        break
                continue
            if self.take_kw("WHERE"):
                q.where = self.parse_expression()
                continue
            if self.at_kw("GROUP"):
                self.expect_kw("GROUP")
                if self.take_kw("AS"):
                    q.group_as = self.expect_ident()
                    continue
                self.expect_kw("BY")
                while True:
                    expr = self.parse_expression()
                    alias = None
                    if self.take_kw("AS"):
                        alias = self.expect_ident()
                    elif isinstance(expr, ast.VarRef):
                        alias = expr.name
                    elif isinstance(expr, ast.FieldAccess):
                        alias = expr.field
                    else:
                        alias = f"_g{len(q.group_keys)}"
                    q.group_keys.append(ast.GroupKey(expr, alias))
                    if not self.take_punct(","):
                        break
                if self.at_kw("GROUP") and self.peek(1).is_kw("AS"):
                    self.expect_kw("GROUP")
                    self.expect_kw("AS")
                    q.group_as = self.expect_ident()
                continue
            if self.take_kw("HAVING"):
                q.having = self.parse_expression()
                continue
            break
        if not select_seen:
            if self.at_kw("SELECT"):
                self._parse_select_clause(q)
            else:
                raise self.error("query needs a SELECT clause")
        if self.take_kw("ORDER"):
            self.expect_kw("BY")
            while True:
                expr = self.parse_expression()
                desc = False
                if self.take_kw("DESC"):
                    desc = True
                else:
                    self.take_kw("ASC")
                q.order_by.append(ast.OrderItem(expr, desc))
                if not self.take_punct(","):
                    break
        if self.take_kw("LIMIT"):
            q.limit = self.parse_expression()
            if self.take_kw("OFFSET"):
                q.offset = self.parse_expression()
        elif self.take_kw("OFFSET"):
            q.offset = self.parse_expression()
        return q

    def _parse_select_clause(self, q: ast.SelectQuery) -> None:
        self.expect_kw("SELECT")
        clause = ast.SelectClause()
        clause.distinct = self.take_kw("DISTINCT")
        self.take_kw("ALL")
        if self.take_kw("VALUE", "ELEMENT", "RAW"):
            clause.value_expr = self.parse_expression()
        else:
            while True:
                if self.take_punct("*"):
                    clause.projections.append(
                        ast.Projection(None, None, star=True)
                    )
                else:
                    expr = self.parse_expression()
                    alias = None
                    if self.take_kw("AS"):
                        alias = self.expect_ident()
                    elif (self.peek().kind == "IDENT"
                          and self.peek().text.upper()
                          not in RESERVED_STOPWORDS):
                        alias = self.expect_ident()
                    elif isinstance(expr, ast.FieldAccess):
                        alias = expr.field
                    elif isinstance(expr, ast.VarRef):
                        alias = expr.name
                    else:
                        alias = f"$f{len(clause.projections) + 1}"
                    clause.projections.append(ast.Projection(expr, alias))
                if not self.take_punct(","):
                    break
        q.select = clause

    def _parse_from(self, q: ast.SelectQuery) -> None:
        q.from_terms.append(self._parse_from_term("from"))
        while True:
            if self.take_punct(","):
                q.from_terms.append(self._parse_from_term("from"))
                continue
            if self.at_kw("JOIN", "INNER"):
                self.take_kw("INNER")
                self.expect_kw("JOIN")
                term = self._parse_from_term("join")
                self.expect_kw("ON")
                term.condition = self.parse_expression()
                q.from_terms.append(term)
                continue
            if self.at_kw("LEFT") and self.peek(1).is_kw("JOIN", "OUTER"):
                self.expect_kw("LEFT")
                self.take_kw("OUTER")
                self.expect_kw("JOIN")
                term = self._parse_from_term("leftjoin")
                self.expect_kw("ON")
                term.condition = self.parse_expression()
                q.from_terms.append(term)
                continue
            if self.at_kw("UNNEST"):
                self.expect_kw("UNNEST")
                q.from_terms.append(self._parse_from_term("unnest"))
                continue
            if self.at_kw("LEFT") and self.peek(1).is_kw("UNNEST"):
                self.expect_kw("LEFT")
                self.expect_kw("UNNEST")
                q.from_terms.append(self._parse_from_term("leftunnest"))
                continue
            break

    def _parse_from_term(self, kind: str) -> ast.FromTerm:
        expr = self.parse_expression()
        alias = None
        if self.take_kw("AS"):
            alias = self.expect_ident()
        elif (self.peek().kind == "IDENT"
              and self.peek().text.upper() not in RESERVED_STOPWORDS):
            alias = self.expect_ident()
        elif isinstance(expr, ast.VarRef):
            alias = expr.name
        elif isinstance(expr, ast.FieldAccess):
            alias = expr.field
        else:
            raise self.error("FROM term needs an alias")
        positional = None
        if self.take_kw("AT"):
            positional = self.expect_ident()
        return ast.FromTerm(expr, alias, kind, None, positional)

    # ===== expressions ===========================================================

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.at_kw("OR"):
            self.next()
            left = ast.Call("or", [left, self._parse_and()])
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.at_kw("AND"):
            self.next()
            left = ast.Call("and", [left, self._parse_not()])
        return left

    def _parse_not(self):
        if self.take_kw("NOT"):
            return ast.Call("not", [self._parse_not()])
        return self._parse_comparison()

    _CMP = {"=": "eq", "==": "eq", "!=": "neq", "<": "lt", "<=": "le",
            ">": "gt", ">=": "ge"}

    def _parse_comparison(self):
        left = self._parse_concat()
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.text in self._CMP:
            self.next()
            return ast.Call(self._CMP[tok.text],
                            [left, self._parse_concat()])
        negate = False
        if self.at_kw("NOT") and self.peek(1).is_kw("LIKE", "IN", "BETWEEN"):
            self.next()
            negate = True
        if self.take_kw("LIKE"):
            expr = ast.Call("like", [left, self._parse_concat()])
            return ast.Call("not", [expr]) if negate else expr
        if self.take_kw("IN"):
            coll = self._parse_concat()
            expr = ast.Call("array_contains", [coll, left])
            return ast.Call("not", [expr]) if negate else expr
        if self.take_kw("BETWEEN"):
            lo = self._parse_concat()
            self.expect_kw("AND")
            hi = self._parse_concat()
            expr = ast.Call("between", [left, lo, hi])
            return ast.Call("not", [expr]) if negate else expr
        if self.take_kw("IS"):
            negated = self.take_kw("NOT")
            if self.take_kw("NULL"):
                expr = ast.Call("is_null", [left])
            elif self.take_kw("MISSING"):
                expr = ast.Call("is_missing", [left])
            elif self.take_kw("UNKNOWN"):
                expr = ast.Call("is_unknown", [left])
            elif self.take_kw("KNOWN", "VALUED"):
                expr = ast.Call("not", [ast.Call("is_unknown", [left])])
                negated = not negated
            else:
                raise self.error("expected NULL/MISSING/UNKNOWN after IS")
            return ast.Call("not", [expr]) if negated else expr
        return left

    def _parse_concat(self):
        left = self._parse_additive()
        while self.at_punct("||"):
            self.next()
            left = ast.Call("string_concat", [left, self._parse_additive()])
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self.at_punct("+", "-"):
            op = self.next().text
            right = self._parse_multiplicative()
            fn = "numeric_add" if op == "+" else "numeric_subtract"
            left = ast.Call(fn, [left, right])
        return left

    def _parse_multiplicative(self):
        left = self._parse_power()
        while True:
            if self.at_punct("*", "/", "%"):
                op = self.next().text
                fn = {"*": "numeric_multiply", "/": "numeric_divide",
                      "%": "numeric_mod"}[op]
                left = ast.Call(fn, [left, self._parse_power()])
            elif self.at_kw("DIV"):
                self.next()
                left = ast.Call("numeric_idiv", [left, self._parse_power()])
            elif self.at_kw("MOD"):
                self.next()
                left = ast.Call("numeric_mod", [left, self._parse_power()])
            else:
                return left

    def _parse_power(self):
        left = self._parse_unary()
        if self.at_punct("^", "**"):
            self.next()
            return ast.Call("power", [left, self._parse_power()])
        return left

    def _parse_unary(self):
        if self.take_punct("-"):
            return ast.Call("numeric_unary_minus", [self._parse_unary()])
        if self.take_punct("+"):
            return self._parse_unary()
        if self.at_kw("EXISTS"):
            self.next()
            return ast.ExistsExpr(self._parse_path())
        if self.at_kw("SOME", "ANY", "EVERY"):
            return self._parse_quantified()
        if self.at_kw("CASE"):
            return self._parse_case()
        return self._parse_path()

    def _parse_quantified(self):
        some = not self.take_kw("EVERY")
        if some:
            self.next()  # SOME or ANY
        var = self._binding_name()
        self.expect_kw("IN")
        collection = self.parse_expression()
        self.expect_kw("SATISFIES")
        predicate = self.parse_expression()
        self.take_kw("END")
        return ast.QuantifiedExpr(some, var, collection, predicate)

    def _binding_name(self) -> str:
        tok = self.peek()
        if tok.kind in ("IDENT", "VAR"):
            self.next()
            return tok.text
        raise self.error("expected a variable name")

    def _parse_case(self):
        self.expect_kw("CASE")
        operand = None
        if not self.at_kw("WHEN"):
            operand = self.parse_expression()
        whens = []
        while self.take_kw("WHEN"):
            cond = self.parse_expression()
            if operand is not None:
                cond = ast.Call("eq", [operand, cond])
            self.expect_kw("THEN")
            whens.append((cond, self.parse_expression()))
        default = ast.Literal(None)
        if self.take_kw("ELSE"):
            default = self.parse_expression()
        self.expect_kw("END")
        return ast.CaseWhen(whens, default)

    def _parse_path(self):
        expr = self._parse_primary()
        while True:
            if self.take_punct("."):
                expr = ast.FieldAccess(expr, self.expect_ident())
            elif self.take_punct("["):
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.IndexAccess(expr, index)
            else:
                return expr

    def _parse_primary(self):
        tok = self.peek()
        if tok.kind == "NUMBER":
            self.next()
            return ast.Literal(tok.value)
        if tok.kind == "STRING":
            self.next()
            return ast.Literal(tok.value)
        if tok.kind == "VAR":
            self.next()
            return ast.VarRef(tok.text)
        if self.take_punct("("):
            if self.at_kw("SELECT", "FROM", "WITH"):
                query = self.parse_select_query()
                self.expect_punct(")")
                return ast.SubqueryExpr(query)
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if self.at_punct("{"):
            if self.peek(1).kind == "PUNCT" and self.peek(1).text == "{":
                return self._parse_multiset()
            return self._parse_object()
        if self.take_punct("["):
            items = []
            if not self.at_punct("]"):
                while True:
                    items.append(self.parse_expression())
                    if not self.take_punct(","):
                        break
            self.expect_punct("]")
            return ast.ArrayExpr(items)
        if tok.kind == "IDENT":
            upper = tok.text.upper()
            if upper == "TRUE":
                self.next()
                return ast.Literal(True)
            if upper == "FALSE":
                self.next()
                return ast.Literal(False)
            if upper == "NULL":
                self.next()
                return ast.Literal(None)
            if upper == "MISSING":
                self.next()
                from repro.adm import MISSING

                return ast.Literal(MISSING)
            name = self.expect_ident()
            if self.take_punct("("):
                return self._parse_call(name)
            return ast.VarRef(name)
        raise self.error("expected an expression")

    def _parse_call(self, name: str):
        args = []
        if self.at_punct("*") and name.upper() == "COUNT":
            self.next()
            self.expect_punct(")")
            return ast.Call("count_star", [ast.Literal(1)])
        if not self.at_punct(")"):
            while True:
                args.append(self.parse_expression())
                if not self.take_punct(","):
                    break
        self.expect_punct(")")
        return ast.Call(name, args)

    def _parse_object(self):
        self.expect_punct("{")
        pairs = []
        if not self.at_punct("}"):
            while True:
                tok = self.peek()
                if tok.kind == "STRING":
                    self.next()
                    name = ast.Literal(tok.value)
                elif tok.kind == "IDENT":
                    self.next()
                    name = ast.Literal(tok.text)
                else:
                    name = self.parse_expression()
                self.expect_punct(":")
                pairs.append((name, self.parse_expression()))
                if not self.take_punct(","):
                    break
        self.expect_punct("}")
        return ast.ObjectExpr(pairs)

    def _parse_multiset(self):
        self.expect_punct("{")
        self.expect_punct("{")
        items = []
        if not (self.at_punct("}") and self.peek(1).text == "}"):
            while True:
                items.append(self.parse_expression())
                if not self.take_punct(","):
                    break
        self.expect_punct("}")
        self.expect_punct("}")
        return ast.ArrayExpr(items, multiset=True)


def parse_sqlpp(text: str) -> list:
    """Parse a SQL++ script into statements."""
    return SQLPPParser(text).parse_statements()


def parse_sqlpp_expression(text: str) -> ast.Expr:
    """Parse a single SQL++ expression (tests use this)."""
    parser = SQLPPParser(text)
    expr = parser.parse_expression()
    if parser.peek().kind != "EOF":
        raise parser.error("trailing input after expression")
    return expr
