"""SQL++ parser package."""

from repro.lang.sqlpp.parser import SQLPPParser, parse_sqlpp, parse_sqlpp_expression

__all__ = ["SQLPPParser", "parse_sqlpp", "parse_sqlpp_expression"]
