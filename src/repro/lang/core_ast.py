"""The shared core AST.

SQL++ and AQL parse to the same tree — the concrete reproduction of the
paper's §IV-A claim that "SQL++ was very much like AQL, but with a
SQL-based syntax", letting the project implement it "fairly quickly as a
peer of AQL, sharing the Algebricks query algebra and many optimizer
rules".  One translator (:mod:`repro.lang.translator`) lowers this AST to
the algebra for both languages.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --- expressions -------------------------------------------------------------

class Expr:
    pass


@dataclass
class Literal(Expr):
    value: object


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class FieldAccess(Expr):
    base: Expr
    field: str


@dataclass
class IndexAccess(Expr):
    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    function: str
    args: list


@dataclass
class QuantifiedExpr(Expr):
    """SOME/EVERY var IN collection SATISFIES predicate."""

    some: bool
    var: str
    collection: Expr
    predicate: Expr


@dataclass
class CaseWhen(Expr):
    whens: list                      # [(cond, result)]
    default: Expr


@dataclass
class ObjectExpr(Expr):
    pairs: list                      # [(name_expr, value_expr)]


@dataclass
class ArrayExpr(Expr):
    items: list
    multiset: bool = False


@dataclass
class SubqueryExpr(Expr):
    query: "SelectQuery"


@dataclass
class ExistsExpr(Expr):
    subquery: Expr
    negated: bool = False


# --- the query core --------------------------------------------------------------

@dataclass
class FromTerm:
    """One FROM binding.  kind: from | join | leftjoin | unnest |
    leftunnest.  ``condition`` only for joins."""

    expr: Expr
    alias: str
    kind: str = "from"
    condition: Expr | None = None
    positional_alias: str | None = None


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class GroupKey:
    expr: Expr
    alias: str


@dataclass
class Projection:
    """SELECT item: expr AS alias, or star."""

    expr: Expr | None
    alias: str | None
    star: bool = False


@dataclass
class SelectClause:
    """Either ``value_expr`` (SELECT VALUE / AQL return) or projections."""

    value_expr: Expr | None = None
    projections: list = field(default_factory=list)
    distinct: bool = False


@dataclass
class SelectQuery:
    with_clauses: list = field(default_factory=list)    # [(name, expr)]
    from_terms: list = field(default_factory=list)      # [FromTerm]
    let_clauses: list = field(default_factory=list)     # [(name, expr)]
    where: Expr | None = None
    group_keys: list = field(default_factory=list)      # [GroupKey]
    group_as: str | None = None
    having: Expr | None = None
    select: SelectClause = field(default_factory=SelectClause)
    order_by: list = field(default_factory=list)        # [OrderItem]
    limit: Expr | None = None
    offset: Expr | None = None
    # AQL's `group by ... with $v`: post-group, $v is the list of the
    # group's pre-group $v values (translated via the listify aggregate)
    aql_group_with: list = field(default_factory=list)


# --- statements --------------------------------------------------------------------

@dataclass
class UnionQuery:
    """q1 UNION ALL q2 [UNION ALL ...] (bag union of the branches)."""

    branches: list


class Statement:
    pass


@dataclass
class QueryStatement(Statement):
    query: SelectQuery | Expr        # SELECT query, or a bare expression


@dataclass
class CreateDataverse(Statement):
    name: str
    if_not_exists: bool = False


@dataclass
class UseDataverse(Statement):
    name: str


@dataclass
class TypeField:
    name: str
    type_name: object                # str | nested TypeExpr structures
    optional: bool = False


@dataclass
class TypeExpr:
    """kind: object | ordered | multiset | named."""

    kind: str
    fields: list = field(default_factory=list)   # object: [TypeField]
    item: "TypeExpr | None" = None                # ordered/multiset
    name: str | None = None                       # named
    is_open: bool = True


@dataclass
class CreateType(Statement):
    name: str
    body: TypeExpr
    if_not_exists: bool = False


@dataclass
class CreateDataset(Statement):
    name: str
    type_name: str
    primary_key: list                 # field paths
    if_not_exists: bool = False


@dataclass
class CreateExternalDataset(Statement):
    name: str
    type_name: str
    adapter: str                      # e.g. localfs, hdfs
    properties: dict = field(default_factory=dict)


@dataclass
class CreateIndex(Statement):
    name: str
    dataset: str
    fields: list                      # element fields for an array index
    kind: str = "btree"               # btree | rtree | keyword | ngram | array
    gram_length: int = 3
    if_not_exists: bool = False
    array_path: str | None = None     # UNNEST path (kind == "array")


@dataclass
class DropStatement(Statement):
    kind: str                         # dataverse | type | dataset | index
    name: str
    dataset: str | None = None        # for indexes
    if_exists: bool = False


@dataclass
class LoadStatement(Statement):
    dataset: str
    path: str
    format: str = "adm"               # adm | delimited-text
    properties: dict = field(default_factory=dict)


@dataclass
class InsertStatement(Statement):
    dataset: str
    payload: Expr
    upsert: bool = False


@dataclass
class DeleteStatement(Statement):
    dataset: str
    alias: str | None = None
    where: Expr | None = None
