"""Couchbase Analytics simulation: KV front end + shadow datasets."""

from repro.analytics.kv_store import (
    Bucket,
    KVStore,
    Mutation,
    MutationKind,
)
from repro.analytics.service import KEY_FIELD, AnalyticsService, Link

__all__ = [
    "AnalyticsService",
    "Bucket",
    "KEY_FIELD",
    "KVStore",
    "Link",
    "Mutation",
    "MutationKind",
]
