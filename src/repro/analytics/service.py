"""The Couchbase Analytics service simulation (paper §VI, Fig. 7).

"Under the hood, the Analytics service is based on the query processing
and storage technology of Apache AsterixDB": a *shadow dataset* on the
analytical side receives the bucket's mutation stream, so users "conduct
near real-time data analyses on an up-to-date copy of the data" with
performance isolation from the front end.

:class:`AnalyticsService` links buckets to shadow datasets in an
:class:`~repro.api.AsterixInstance`, ingests DCP mutations (resumable by
sequence number), reports per-link lag, and serves SQL++ over the shadows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.kv_store import KVStore, MutationKind
from repro.common.errors import DuplicateError, UnknownEntityError

KEY_FIELD = "_key"


@dataclass
class Link:
    bucket: str
    dataset: str                  # qualified shadow dataset name
    last_seqno: int = 0
    mutations_applied: int = 0


class AnalyticsService:
    """Shadow datasets + SQL++ over them."""

    def __init__(self, instance, kv: KVStore):
        self.instance = instance
        self.kv = kv
        self.links: dict[str, Link] = {}

    # -- linking ------------------------------------------------------------------

    def connect_bucket(self, bucket: str, dataset: str | None = None):
        """Create a shadow dataset for a bucket and start tracking it.

        Shadow documents carry the KV key in ``_key`` (their primary key);
        the document body is otherwise stored as-is, in its "natural
        (application schema) form" — no schema needs declaring."""
        if bucket in self.links:
            raise DuplicateError(f"bucket {bucket} already connected")
        self.kv.bucket(bucket)    # must exist
        dataset = dataset or bucket
        self.instance.execute(f"""
            CREATE TYPE {dataset}ShadowType AS {{ {KEY_FIELD}: string }};
            CREATE DATASET {dataset}({dataset}ShadowType)
            PRIMARY KEY {KEY_FIELD};
        """)
        entry = self.instance.metadata.dataset_entry(dataset)
        link = Link(bucket, entry.name)
        self.links[bucket] = link
        return link

    def disconnect_bucket(self, bucket: str) -> None:
        link = self._link(bucket)
        del self.links[bucket]

    def _link(self, bucket: str) -> Link:
        try:
            return self.links[bucket]
        except KeyError:
            raise UnknownEntityError(
                f"bucket {bucket} is not connected"
            ) from None

    # -- ingestion -------------------------------------------------------------------

    def sync(self, bucket: str | None = None, *,
             max_mutations: int | None = None) -> int:
        """Pull pending mutations into the shadow dataset(s); returns how
        many were applied."""
        links = ([self._link(bucket)] if bucket is not None
                 else list(self.links.values()))
        applied = 0
        for link in links:
            stream = self.kv.bucket(link.bucket).dcp_stream(link.last_seqno)
            if max_mutations is not None:
                stream = stream[:max_mutations]
            for mutation in stream:
                if mutation.kind is MutationKind.UPSERT:
                    shadow = dict(mutation.document)
                    shadow[KEY_FIELD] = mutation.key
                    self.instance.cluster.insert_record(
                        link.dataset, shadow, upsert=True
                    )
                else:
                    self.instance.cluster.delete_record(
                        link.dataset, (mutation.key,)
                    )
                link.last_seqno = mutation.seqno
                link.mutations_applied += 1
                applied += 1
        return applied

    def lag(self, bucket: str) -> int:
        """Mutations not yet reflected in the shadow dataset."""
        link = self._link(bucket)
        return self.kv.bucket(bucket).high_seqno - link.last_seqno

    # -- queries ----------------------------------------------------------------------

    def query(self, text: str) -> list:
        """SQL++ over the shadow datasets — running here, not on the Data
        Service (the performance-isolation point of Fig. 7)."""
        return self.instance.query(text)
