"""The operational front end of the Couchbase simulation (paper §VI).

Fig. 7: "data and data changes in the Couchbase front-end data store are
streamed in real time into the Couchbase Analytics backend".  This module
is the front end: a key-value document store ("Data Service") whose
buckets assign every mutation a monotone sequence number and expose a
DCP-like change stream — exactly what shadow datasets consume.

The store also keeps a tiny queueing model (a simulated service time per
operation) so the HTAP-isolation experiment (E8) can show what the paper's
architecture buys: analytics running against the *shadow* copy adds zero
load here, whereas a hypothetical scan-the-data-service analytics query
(the pre-Analytics world) stalls front-end operations behind it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import UnknownEntityError


class MutationKind(enum.Enum):
    UPSERT = "upsert"
    DELETE = "delete"


@dataclass(frozen=True)
class Mutation:
    seqno: int
    kind: MutationKind
    key: str
    document: dict | None = None


@dataclass
class Bucket:
    """One KV bucket: documents + its mutation log (the DCP source)."""

    name: str
    op_service_time_us: float = 10.0
    documents: dict = field(default_factory=dict)
    mutations: list = field(default_factory=list)
    busy_until_us: float = 0.0
    op_latencies_us: list = field(default_factory=list)

    @property
    def high_seqno(self) -> int:
        return len(self.mutations)

    def _serve(self, now_us: float, service_us: float) -> float:
        """FIFO queueing: returns the op's latency."""
        start = max(now_us, self.busy_until_us)
        self.busy_until_us = start + service_us
        latency = self.busy_until_us - now_us
        self.op_latencies_us.append(latency)
        return latency

    def upsert(self, key: str, document: dict,
               now_us: float = 0.0) -> float:
        latency = self._serve(now_us, self.op_service_time_us)
        self.documents[key] = document
        self.mutations.append(
            Mutation(self.high_seqno + 1, MutationKind.UPSERT, key,
                     dict(document))
        )
        return latency

    def delete(self, key: str, now_us: float = 0.0) -> float:
        latency = self._serve(now_us, self.op_service_time_us)
        self.documents.pop(key, None)
        self.mutations.append(
            Mutation(self.high_seqno + 1, MutationKind.DELETE, key)
        )
        return latency

    def get(self, key: str, now_us: float = 0.0):
        self._serve(now_us, self.op_service_time_us)
        return self.documents.get(key)

    def scan_inline(self, now_us: float = 0.0,
                    per_doc_us: float = 1.0) -> list:
        """The pre-Analytics baseline: an analytical scan executed BY the
        data service, occupying it for the whole duration."""
        self._serve(now_us, per_doc_us * max(1, len(self.documents)))
        return list(self.documents.values())

    def dcp_stream(self, from_seqno: int = 0) -> list:
        """Mutations with seqno > from_seqno (the DCP protocol's resume
        semantics)."""
        return [m for m in self.mutations if m.seqno > from_seqno]


class KVStore:
    """The Data Service: named buckets of JSON documents."""

    def __init__(self):
        self.buckets: dict[str, Bucket] = {}

    def create_bucket(self, name: str,
                      op_service_time_us: float = 10.0) -> Bucket:
        bucket = Bucket(name, op_service_time_us)
        self.buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> Bucket:
        try:
            return self.buckets[name]
        except KeyError:
            raise UnknownEntityError(f"no such bucket {name}") from None
