"""A Python reproduction of Apache AsterixDB ("AsterixDB Mid-Flight",
ICDE 2019): ADM + SQL++/AQL + Algebricks + Hyracks + LSM storage.

Quickstart::

    from repro import connect

    with connect("/tmp/mydb") as db:
        db.execute('CREATE TYPE T AS { id: int };')
        db.execute('CREATE DATASET Ds(T) PRIMARY KEY id;')
        db.execute('INSERT INTO Ds ({"id": 1, "x": "hello"});')
        print(db.query('SELECT VALUE d.x FROM Ds d;'))
"""

from repro.api import AsterixInstance, Result, connect
from repro.common.config import ClusterConfig, CostModel, NodeConfig
from repro.observability import (
    ExplainResult,
    MetricsRegistry,
    QueryTrace,
    get_registry,
)

__all__ = [
    "AsterixInstance",
    "ClusterConfig",
    "CostModel",
    "ExplainResult",
    "MetricsRegistry",
    "NodeConfig",
    "QueryTrace",
    "Result",
    "connect",
    "get_registry",
]

__version__ = "0.1.0"
