"""The rule-based rewriter (paper Fig. 5: "rewrite rules" boxes).

Rules are functions ``(op, ctx) -> (op, changed)`` applied bottom-up to a
fixpoint.  The headline rewrites:

* constant folding (Fig. 3(c)'s WITH clause becomes two constants),
* conjunction splitting + select pushdown (filters sink toward sources,
  through assigns, unnests, and into join branches),
* join-condition extraction (cross joins + equality selects become
  equi-joins the physical layer can hash),
* access-method introduction (select-over-scan becomes a primary-index
  range search or a secondary B+ tree / R-tree / inverted index search —
  the paper's feature 8 meeting its feature 3),
* limit-into-order pushdown (top-K sort),
* dead-assign removal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.observability.metrics import get_registry

from repro.algebricks.expressions import (
    LCall,
    LConst,
    LVar,
    conjuncts,
    fold_constants,
    free_vars,
    make_conjunction,
)
from repro.algebricks.logical import (
    Assign,
    DataSourceScan,
    GroupBy,
    Join,
    Limit,
    LogicalOp,
    Order,
    PrimaryIndexSearch,
    SecondaryIndexSearch,
    Select,
    Unnest,
    walk,
)


@dataclass
class OptimizerContext:
    """What rules may consult: the catalog view and feature switches."""

    metadata: object                  # MetadataView protocol (see below)
    enable_index_access: bool = True
    enable_cost_based: bool = True    # statistics-driven rewrites on/off
    next_var: object = None           # callable allocating fresh variables
    recorder: object = None           # observability.RewriteRecorder | None


class MetadataView:
    """The catalog interface rules consult.

    ``pk_fields(dataset)``, ``secondary_indexes(dataset)`` (list of
    SecondaryIndexSpec), ``is_external(dataset)``."""

    def pk_fields(self, dataset: str) -> tuple:
        raise NotImplementedError

    def secondary_indexes(self, dataset: str) -> list:
        raise NotImplementedError

    def is_external(self, dataset: str) -> bool:
        raise NotImplementedError

    def dataset_statistics(self, dataset: str):
        """Per-dataset statistics rollup (a
        :class:`~repro.storage.lsm.synopsis.ComponentSynopsis`), or None
        when unavailable.  Default None keeps plain catalog fakes
        working; the cost-based rules degrade to syntactic behavior."""
        return None


# --- rule helpers -------------------------------------------------------------

def _replace_inputs(op: LogicalOp, new_inputs: list) -> LogicalOp:
    op.inputs = new_inputs
    return op


# --- individual rules ------------------------------------------------------------

def rule_fold_constants(op: LogicalOp, ctx) -> tuple[LogicalOp, bool]:
    changed = False
    if isinstance(op, Select):
        folded = fold_constants(op.condition)
        changed = repr(folded) != repr(op.condition)
        op.condition = folded
    elif isinstance(op, Assign):
        folded = fold_constants(op.expr)
        changed = repr(folded) != repr(op.expr)
        op.expr = folded
    elif isinstance(op, Join):
        folded = fold_constants(op.condition)
        changed = repr(folded) != repr(op.condition)
        op.condition = folded
    return op, changed


def rule_break_select_conjunctions(op, ctx):
    if not isinstance(op, Select):
        return op, False
    parts = conjuncts(op.condition)
    if len(parts) <= 1:
        return op, False
    child = op.inputs[0]
    for part in reversed(parts):
        child = Select(part, inputs=[child])
    return child, True


def rule_remove_true_selects(op, ctx):
    if isinstance(op, Select) and isinstance(op.condition, LConst) \
            and op.condition.value is True:
        return op.inputs[0], True
    return op, False


def rule_push_select_down(op, ctx):
    """Push one Select one step down when legal."""
    if not isinstance(op, Select):
        return op, False
    child = op.inputs[0]
    needed = free_vars(op.condition)
    if isinstance(child, Assign) and child.var not in needed:
        # select(assign(x)) -> assign(select(x))
        op.inputs = child.inputs
        child.inputs = [op]
        return child, True
    if isinstance(child, Unnest):
        produced = {child.var}
        if child.positional_var is not None:
            produced.add(child.positional_var)
        if not needed & produced:
            op.inputs = child.inputs
            child.inputs = [op]
            return child, True
    if isinstance(child, Order) and child.topk is None:
        op.inputs = child.inputs
        child.inputs = [op]
        return child, True
    if isinstance(child, Join):
        left_schema = set(child.child_schema(0))
        right_schema = set(child.child_schema(1))
        if needed <= left_schema:
            op.inputs = [child.inputs[0]]
            child.inputs[0] = op
            return child, True
        if needed <= right_schema and child.kind == "inner":
            op.inputs = [child.inputs[1]]
            child.inputs[1] = op
            return child, True
    return op, False


def rule_selects_into_join_condition(op, ctx):
    """A Select stuck above a join (references both sides) becomes part of
    the join condition, enabling equi-join detection in the physical
    layer."""
    if not isinstance(op, Select):
        return op, False
    child = op.inputs[0]
    if not isinstance(child, Join) or child.kind not in ("inner",):
        return op, False
    needed = free_vars(op.condition)
    left = set(child.child_schema(0))
    right = set(child.child_schema(1))
    if needed <= left or needed <= right:
        return op, False  # pushdown rule will handle it
    if not needed <= (left | right):
        return op, False
    parts = conjuncts(child.condition)
    if len(parts) == 1 and isinstance(parts[0], LConst) \
            and parts[0].value is True:
        parts = []
    parts.append(op.condition)
    child.condition = make_conjunction(parts)
    return child, True


def rule_extract_join_keys(op, ctx):
    """Computed equi-join keys — ``eq(f(left), g(right))`` conjuncts where
    each side's free variables come wholly from one join input — are
    assigned to fresh variables below the inputs and the conjunct is
    rewritten to ``eq($$l, $$r)``, the only form jobgen's equi-split
    recognizes.  Without this, ``ON m.authorId = u.id`` compiles to a
    broadcast nested-loop join that evaluates the predicate |L|x|R|
    times; with it, the join becomes a partitioned hash join (the 28x
    join_groupby speedup in docs/PERFORMANCE.md is mostly this rule)."""
    if not isinstance(op, Join) or ctx.next_var is None:
        return op, False
    left_schema = set(op.child_schema(0))
    right_schema = set(op.child_schema(1))
    new_parts = []
    left_assigns: list = []
    right_assigns: list = []
    changed = False
    for part in conjuncts(op.condition):
        rewritten = None
        if (isinstance(part, LCall) and part.name == "eq"
                and len(part.args) == 2):
            a, b = part.args
            fa, fb = free_vars(a), free_vars(b)
            if (fa and fb and fa <= right_schema and fb <= left_schema
                    and not (fa <= left_schema and fb <= right_schema)):
                a, b, fa, fb = b, a, fb, fa
            if (fa and fb and fa <= left_schema and fb <= right_schema
                    and not (isinstance(a, LVar) and isinstance(b, LVar))):
                if isinstance(a, LVar):
                    lv = a.var
                else:
                    lv = ctx.next_var()
                    left_assigns.append((lv, a))
                if isinstance(b, LVar):
                    rv = b.var
                else:
                    rv = ctx.next_var()
                    right_assigns.append((rv, b))
                rewritten = LCall("eq", [LVar(lv), LVar(rv)])
        if rewritten is None:
            new_parts.append(part)
        else:
            changed = True
            new_parts.append(rewritten)
    if not changed:
        return op, False
    for var, expr in left_assigns:
        op.inputs[0] = Assign(var=var, expr=expr, inputs=[op.inputs[0]])
    for var, expr in right_assigns:
        op.inputs[1] = Assign(var=var, expr=expr, inputs=[op.inputs[1]])
    op.condition = make_conjunction(new_parts)
    return op, True


def rule_push_limit_into_order(op, ctx):
    if not isinstance(op, Limit) or op.count is None:
        return op, False
    child = op.inputs[0]
    if isinstance(child, Order) and child.topk is None:
        child.topk = op.count + op.offset
        return op, True
    return op, False


# --- access-method rules -------------------------------------------------------

def _field_env(op: LogicalOp) -> tuple[LogicalOp, dict]:
    """Descend through Assigns, building var -> defining-expr; returns the
    operator below the assign chain and the environment."""
    env: dict = {}
    while isinstance(op, Assign):
        env[op.var] = op.expr
        op = op.inputs[0]
    return op, env


def _resolve(expr, env, depth=0):
    """Chase variables through the assign environment (bounded)."""
    while isinstance(expr, LVar) and expr.var in env and depth < 16:
        expr = env[expr.var]
        depth += 1
    return expr


def _as_field_access(expr, env, record_var: int):
    """If expr is record.field (possibly via assigns), return field name."""
    expr = _resolve(expr, env)
    if (isinstance(expr, LCall) and expr.name == "field_access"
            and len(expr.args) == 2):
        base = _resolve(expr.args[0], env)
        name = expr.args[1]
        if isinstance(base, LVar) and base.var == record_var \
                and isinstance(name, LConst):
            return name.value
    return None


def _field_path_from(expr, env, base_var: int):
    """If expr is a chain of field accesses rooted at ``base_var``
    (possibly via assigns), return the dotted path — ``""`` for the
    variable itself, None if it is anything else."""
    expr = _resolve(expr, env)
    parts: list = []
    while (isinstance(expr, LCall) and expr.name == "field_access"
            and len(expr.args) == 2
            and isinstance(expr.args[1], LConst)):
        parts.append(expr.args[1].value)
        expr = _resolve(expr.args[0], env)
    if isinstance(expr, LVar) and expr.var == base_var:
        return ".".join(reversed(parts))
    return None


def _sargable_path(cond, env, base_var):
    """Match path CMP const (either side) where the path is rooted at
    ``base_var``; returns (path, cmp, const).  The path may be ``""``
    (the variable itself), so callers test ``is not None``."""
    cond = _resolve(cond, env)
    if not isinstance(cond, LCall) or cond.name not in _CMP_BOUNDS:
        return None
    a, b = cond.args
    pa = _field_path_from(a, env, base_var)
    rb = _resolve(b, env)
    if pa is not None and isinstance(rb, LConst):
        return pa, cond.name, rb.value
    pb = _field_path_from(b, env, base_var)
    ra = _resolve(a, env)
    if pb is not None and isinstance(ra, LConst):
        return pb, _CMP_SWAP[cond.name], ra.value
    return None


_CMP_BOUNDS = {
    "eq": ("lo", "hi", True, True),
    "lt": (None, "hi", True, False),
    "le": (None, "hi", True, True),
    "gt": ("lo", None, False, True),
    "ge": ("lo", None, True, True),
}

_CMP_SWAP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}


def _sargable(cond, env, record_var):
    """Match field CMP const (either side); returns (field, cmp, const)."""
    cond = _resolve(cond, env)
    if not isinstance(cond, LCall) or cond.name not in _CMP_BOUNDS:
        return None
    a, b = cond.args
    fa = _as_field_access(a, env, record_var)
    rb = _resolve(b, env)
    if fa is not None and isinstance(rb, LConst):
        return fa, cond.name, rb.value
    fb = _as_field_access(b, env, record_var)
    ra = _resolve(a, env)
    if fb is not None and isinstance(ra, LConst):
        return fb, _CMP_SWAP[cond.name], ra.value
    return None


def rule_introduce_secondary_index(op, ctx):
    """Select chain over (assigns over) a DataSourceScan with a matching
    secondary index -> SecondaryIndexSearch (+ residual selects)."""
    if not ctx.enable_index_access or not isinstance(op, Select):
        return op, False
    # gather the select chain
    selects = []
    cursor = op
    while isinstance(cursor, Select):
        selects.append(cursor)
        cursor = cursor.inputs[0]
    below, env = _field_env(cursor)
    if not isinstance(below, DataSourceScan):
        return op, False
    scan = below
    specs = ctx.metadata.secondary_indexes(scan.dataset)
    if not specs:
        return op, False

    # 1) B+ tree indexes: accumulate bounds per indexed field, always
    # keeping the *tightest* bound (multiple predicates on one field
    # intersect: age >= 27 AND age = 55 is the point [55, 55])
    from repro.adm.comparators import comparable, compare as _cmp

    bounds: dict = {}
    consumed: dict = {}
    for sel in selects:
        hit = _sargable(sel.condition, env, scan.record_var)
        if hit is None:
            continue
        f, cmp_name, const = hit
        lo_k, hi_k, _, _ = _CMP_BOUNDS[cmp_name]
        entry = bounds.setdefault(
            f, {"lo": None, "hi": None, "lo_inc": True, "hi_inc": True}
        )
        # bounds of incomparable types can't intersect into one range
        # (the conjunction is null on every record): leave this field's
        # predicates unconsumed so the residual selects decide
        if any(v is not None and not comparable(const, v)
               for v in (entry["lo"], entry["hi"])):
            entry["invalid"] = True
        if entry.get("invalid"):
            continue
        if lo_k:
            inclusive = cmp_name != "gt"
            if (entry["lo"] is None
                    or _cmp(const, entry["lo"]) > 0
                    or (_cmp(const, entry["lo"]) == 0
                        and not inclusive)):
                entry["lo"] = const
                entry["lo_inc"] = inclusive
        if hi_k:
            inclusive = cmp_name != "lt"
            if (entry["hi"] is None
                    or _cmp(const, entry["hi"]) < 0
                    or (_cmp(const, entry["hi"]) == 0
                        and not inclusive)):
                entry["hi"] = const
                entry["hi_inc"] = inclusive
        consumed.setdefault(f, []).append(sel)

    # Prefer the index that consumes the most predicates (composite-key
    # indexes match an equality prefix plus one trailing range).
    best = None
    for spec in specs:
        if spec.kind != "btree":
            continue
        lo_vals, hi_vals = [], []
        lo_inc = hi_inc = True
        used_fields = []
        for f in spec.fields:
            b = bounds.get(f)
            if b is None or b.get("invalid") \
                    or (b["lo"] is None and b["hi"] is None):
                break
            is_eq = (b["lo"] is not None and b["hi"] is not None
                     and _cmp(b["lo"], b["hi"]) == 0
                     and b["lo_inc"] and b["hi_inc"])
            if is_eq:
                lo_vals.append(b["lo"])
                hi_vals.append(b["hi"])
                used_fields.append(f)
                continue
            # a range component ends the match (later fields can't bound)
            if b["lo"] is not None:
                lo_vals.append(b["lo"])
                lo_inc = b["lo_inc"]
            if b["hi"] is not None:
                hi_vals.append(b["hi"])
                hi_inc = b["hi_inc"]
            used_fields.append(f)
            break
        if not used_fields:
            continue
        if best is None or len(used_fields) > len(best[1]):
            best = (spec, used_fields, lo_vals, hi_vals, lo_inc, hi_inc)
    if best is not None:
        spec, used_fields, lo_vals, hi_vals, lo_inc, hi_inc = best
        search = SecondaryIndexSearch(
            dataset=scan.dataset, index_name=spec.name,
            index_kind="btree", pk_vars=list(scan.pk_vars),
            record_var=scan.record_var,
            lo=[LConst(v) for v in lo_vals] or None,
            hi=[LConst(v) for v in hi_vals] or None,
            lo_inclusive=lo_inc, hi_inclusive=hi_inc,
        )
        all_consumed = []
        for f in used_fields:
            all_consumed.extend(consumed.get(f, ()))
        return _rebuild_chain(op, selects, all_consumed, cursor,
                              scan, search), True

    # 2) R-tree: spatial_intersect(record.field, const window)
    for sel in selects:
        cond = _resolve(sel.condition, env)
        if not (isinstance(cond, LCall)
                and cond.name == "spatial_intersect"):
            continue
        for a, b in ((cond.args[0], cond.args[1]),
                     (cond.args[1], cond.args[0])):
            f = _as_field_access(a, env, scan.record_var)
            w = _resolve(b, env)
            if f is None or not isinstance(w, LConst):
                continue
            for spec in specs:
                if spec.kind == "rtree" and spec.fields == (f,):
                    search = SecondaryIndexSearch(
                        dataset=scan.dataset, index_name=spec.name,
                        index_kind="rtree", pk_vars=list(scan.pk_vars),
                        record_var=scan.record_var, window=w,
                    )
                    # keep the predicate as residual: exact geometry may
                    # be finer than the index's window test
                    return _rebuild_chain(op, selects, [], cursor, scan,
                                          search), True

    # 3) inverted: ftcontains(record.field, const text)
    for sel in selects:
        cond = _resolve(sel.condition, env)
        if not (isinstance(cond, LCall) and cond.name == "ftcontains"):
            continue
        f = _as_field_access(cond.args[0], env, scan.record_var)
        text = _resolve(cond.args[1], env)
        if f is None or not isinstance(text, LConst):
            continue
        for spec in specs:
            if spec.kind in ("keyword", "ngram") and spec.fields == (f,):
                search = SecondaryIndexSearch(
                    dataset=scan.dataset, index_name=spec.name,
                    index_kind=spec.kind, pk_vars=list(scan.pk_vars),
                    record_var=scan.record_var, text=text,
                )
                return _rebuild_chain(op, selects, [sel], cursor, scan,
                                      search), True

    return op, False


def rule_introduce_primary_index(op, ctx):
    """Selects on primary-key variables over a scan -> bounded primary
    search."""
    if not ctx.enable_index_access or not isinstance(op, Select):
        return op, False
    selects = []
    cursor = op
    while isinstance(cursor, Select):
        selects.append(cursor)
        cursor = cursor.inputs[0]
    below, env = _field_env(cursor)
    if not isinstance(below, DataSourceScan) or len(below.pk_vars) != 1:
        return op, False
    scan = below
    pk_var = scan.pk_vars[0]
    pk_field = ctx.metadata.pk_fields(scan.dataset)[0]
    lo = hi = None
    lo_inc = hi_inc = True
    consumed = []
    for sel in selects:
        cond = _resolve(sel.condition, env)
        if not isinstance(cond, LCall) or cond.name not in _CMP_BOUNDS:
            continue
        a, b = cond.args
        ra, rb = _resolve(a, env), _resolve(b, env)

        def matches_pk(e):
            if isinstance(e, LVar) and e.var == pk_var:
                return True
            return _as_field_access(e, env, scan.record_var) == pk_field

        name = cond.name
        if matches_pk(ra) and isinstance(rb, LConst):
            const = rb.value
        elif matches_pk(rb) and isinstance(ra, LConst):
            const, name = ra.value, _CMP_SWAP[cond.name]
        else:
            continue
        from repro.adm.comparators import comparable, compare as _cmp

        # incomparable bounds can't intersect (the conjunction is null
        # on every record): bail out and let the selects run over the scan
        if any(v is not None and not comparable(const, v)
               for v in (lo, hi)):
            return op, False
        if name in ("eq", "ge", "gt"):
            inclusive = name != "gt"
            if (lo is None or _cmp(const, lo) > 0
                    or (_cmp(const, lo) == 0 and not inclusive)):
                lo, lo_inc = const, inclusive
        if name in ("eq", "le", "lt"):
            inclusive = name != "lt"
            if (hi is None or _cmp(const, hi) < 0
                    or (_cmp(const, hi) == 0 and not inclusive)):
                hi, hi_inc = const, inclusive
        consumed.append(sel)
    if lo is None and hi is None:
        return op, False
    search = PrimaryIndexSearch(
        dataset=scan.dataset, pk_vars=list(scan.pk_vars),
        record_var=scan.record_var,
        lo=None if lo is None else [LConst(lo)],
        hi=None if hi is None else [LConst(hi)],
        lo_inclusive=lo_inc, hi_inclusive=hi_inc,
    )
    return _rebuild_chain(op, selects, consumed, cursor, scan, search), True


def rule_introduce_array_index(op, ctx):
    """Selects over an UNNEST binding over (assigns over) a scan, with a
    multi-valued (array) index on the unnested path -> swap the scan for
    an array-index search and keep the *entire* Unnest+Select chain as
    residual.

    Consuming nothing is what makes the rewrite byte-identical to the
    scan plan: the residual Unnest re-derives the exact per-element
    multiplicity (a record matching via two elements emits two tuples)
    and the residual selects re-check every predicate, including
    null/MISSING and cross-type cases.  The index merely shrinks the set
    of records fed into that chain, so it must be a *superset* of the
    records the scan plan would keep.  A sargable predicate on a
    *prefix* of the element key fields suffices for that: maintenance
    (:func:`repro.storage.dataset_storage.array_element_keys`) indexes
    every element whose first key field is known, storing trailing
    MISSING/null parts verbatim, so a prefix-bounded search sees every
    element a matching record could contribute — an element whose first
    key field is MISSING can't satisfy the (prefix-leading) predicate
    under the scan plan either.  As in the B+ tree rule, the usable
    prefix is a run of equality bounds optionally ended by one range."""
    if not ctx.enable_index_access or not isinstance(op, Select):
        return op, False
    selects = []
    cursor = op
    while isinstance(cursor, Select):
        selects.append(cursor)
        cursor = cursor.inputs[0]
    above, env_above = _field_env(cursor)
    if not isinstance(above, Unnest) or above.outer:
        return op, False
    unnest = above
    below, env_below = _field_env(unnest.inputs[0])
    if not isinstance(below, DataSourceScan):
        return op, False
    scan = below
    array_path = _field_path_from(unnest.collection, env_below,
                                  scan.record_var)
    if not array_path:
        return op, False
    specs = [s for s in ctx.metadata.secondary_indexes(scan.dataset)
             if s.kind == "array" and s.array_path == array_path]
    if not specs:
        return op, False

    from repro.adm.comparators import comparable, compare as _cmp

    env = {**env_below, **env_above}
    bounds: dict = {}
    for sel in selects:
        hit = _sargable_path(sel.condition, env, unnest.var)
        if hit is None:
            continue
        p, cmp_name, const = hit
        entry = bounds.setdefault(
            p, {"lo": None, "hi": None, "lo_inc": True, "hi_inc": True}
        )
        if any(v is not None and not comparable(const, v)
               for v in (entry["lo"], entry["hi"])):
            entry["invalid"] = True
        if entry.get("invalid"):
            continue
        if cmp_name in ("eq", "ge", "gt"):
            inclusive = cmp_name != "gt"
            if (entry["lo"] is None or _cmp(const, entry["lo"]) > 0
                    or (_cmp(const, entry["lo"]) == 0 and not inclusive)):
                entry["lo"] = const
                entry["lo_inc"] = inclusive
        if cmp_name in ("eq", "le", "lt"):
            inclusive = cmp_name != "lt"
            if (entry["hi"] is None or _cmp(const, entry["hi"]) < 0
                    or (_cmp(const, entry["hi"]) == 0 and not inclusive)):
                entry["hi"] = const
                entry["hi_inc"] = inclusive

    best = None
    for spec in specs:
        key_paths = spec.fields or ("",)
        # the maximal bounded prefix: key fields with a valid bound,
        # starting at field 0 (the leading field must be bounded — an
        # unbounded prefix gives the search nothing to seek on)
        usable = 0
        for p in key_paths:
            b = bounds.get(p)
            if (b is None or b.get("invalid")
                    or (b["lo"] is None and b["hi"] is None)):
                break
            usable += 1
        if usable == 0:
            continue
        lo_vals, hi_vals = [], []
        lo_inc = hi_inc = True
        used = 0
        for p in key_paths[:usable]:
            b = bounds[p]
            used += 1
            is_eq = (b["lo"] is not None and b["hi"] is not None
                     and _cmp(b["lo"], b["hi"]) == 0
                     and b["lo_inc"] and b["hi_inc"])
            if is_eq:
                lo_vals.append(b["lo"])
                hi_vals.append(b["hi"])
                continue
            # a range component ends the prefix (later fields can't bound)
            if b["lo"] is not None:
                lo_vals.append(b["lo"])
                lo_inc = b["lo_inc"]
            if b["hi"] is not None:
                hi_vals.append(b["hi"])
                hi_inc = b["hi_inc"]
            break
        if best is None or used > best[5]:
            best = (spec, lo_vals, hi_vals, lo_inc, hi_inc, used)
    if best is None:
        return op, False
    spec, lo_vals, hi_vals, lo_inc, hi_inc, _ = best
    search = SecondaryIndexSearch(
        dataset=scan.dataset, index_name=spec.name,
        index_kind="array", pk_vars=list(scan.pk_vars),
        record_var=scan.record_var,
        lo=[LConst(v) for v in lo_vals] or None,
        hi=[LConst(v) for v in hi_vals] or None,
        lo_inclusive=lo_inc, hi_inclusive=hi_inc,
    )
    node = unnest
    while node.inputs[0] is not scan:
        node = node.inputs[0]
    node.inputs[0] = search
    return op, True


def _rebuild_chain(top, selects, consumed, assign_top, scan, search):
    """Replace the scan with the index search and drop consumed selects.

    ``assign_top`` is the node just below the select chain (the top of the
    assign chain, or the scan itself)."""
    # swap scan -> search at the bottom of the assign chain
    node = assign_top
    if node is scan:
        new_bottom = search
    else:
        cursor = node
        while cursor.inputs[0] is not scan:
            cursor = cursor.inputs[0]
        cursor.inputs[0] = search
        new_bottom = node
    # rebuild the select chain minus consumed ones
    consumed_ids = {id(s) for s in consumed}
    rebuilt = new_bottom
    for sel in reversed(selects):
        if id(sel) in consumed_ids:
            continue
        sel.inputs = [rebuilt]
        rebuilt = sel
    return rebuilt


def rule_inline_constant_assigns(op, ctx):
    """Substitute variables assigned a constant into the operators above
    and let dead-assign removal drop the assign.  This is what makes the
    Fig. 3(c) WITH clause (endTime := current_datetime(), startTime :=
    endTime - P30D) disappear into the comparison predicates."""
    from repro.algebricks.expressions import substitute

    consts: dict[int, LConst] = {}
    for node in walk(op):
        if isinstance(node, Assign) and isinstance(node.expr, LConst):
            consts[node.var] = node.expr
    if not consts:
        return op, False
    changed = [False]

    def sub_expr(expr):
        new = substitute(expr, consts)
        if repr(new) != repr(expr):
            changed[0] = True
        return new

    for node in walk(op):
        if isinstance(node, Select):
            node.condition = sub_expr(node.condition)
        elif isinstance(node, Assign) and not isinstance(node.expr, LConst):
            node.expr = sub_expr(node.expr)
        elif isinstance(node, Join):
            node.condition = sub_expr(node.condition)
        elif isinstance(node, Order):
            # sort keys must stay pre-assigned variable references —
            # jobgen refuses an LConst key (sort-key-variable invariant)
            pass
        elif isinstance(node, GroupBy):
            # group keys likewise (group-key-variable invariant); the
            # constant assign stays live as their producer
            for agg in node.aggregates:
                agg.argument = sub_expr(agg.argument)
        elif hasattr(node, "expr") and node.expr is not None \
                and not isinstance(node, Assign):
            node.expr = sub_expr(node.expr)
        elif hasattr(node, "record_expr") and node.record_expr is not None:
            node.record_expr = sub_expr(node.record_expr)
        elif hasattr(node, "collection"):
            node.collection = sub_expr(node.collection)
    return op, changed[0]


def rule_remove_dead_assigns(op, ctx):
    """Drop Assigns whose variable no operator above uses (one pass from
    the root; invoked on the root only)."""
    needed: set[int] = set()
    changed = [False]

    def visit(node: LogicalOp, needed_above: set[int]) -> LogicalOp:
        while isinstance(node, Assign) and node.var not in needed_above \
                and not _assign_needed(node, needed_above):
            changed[0] = True
            node = node.inputs[0]
        here = set(needed_above) | node.used_vars()
        node.inputs = [visit(child, here) for child in node.inputs]
        return node

    def _assign_needed(node, needed_above):
        return node.var in needed_above

    new_root = visit(op, needed)
    return new_root, changed[0]


# --- cost-based rules -------------------------------------------------------------

def _flatten_join_chain(op):
    """Decompose a maximal inner-join tree into (relations, conjuncts,
    floating assigns).  Assign nodes found between joins (the key
    extractions of :func:`rule_extract_join_keys`) are collected for
    re-placement; any other operator terminates the chain and becomes a
    relation leaf.  Returns None if ``op`` heads fewer than three
    relations or a non-inner join participates."""
    relations: list = []
    conjs: list = []
    assigns: list = []

    def visit(node):
        if isinstance(node, Join) and node.kind == "inner":
            for part in conjuncts(node.condition):
                if not (isinstance(part, LConst) and part.value is True):
                    conjs.append(part)
            visit(node.inputs[0])
            visit(node.inputs[1])
            return
        if isinstance(node, Assign):
            inner = node
            chain = []
            while isinstance(inner, Assign):
                chain.append(inner)
                inner = inner.inputs[0]
            if isinstance(inner, Join) and inner.kind == "inner":
                assigns.extend(chain)
                visit(inner)
                return
        relations.append(node)

    visit(op)
    if len(relations) < 3:
        return None
    return relations, conjs, assigns


def _resolved_needs(expr, assign_env) -> set:
    """Free variables of ``expr`` with floating-assign variables chased
    down to relation variables (to fixpoint)."""
    needs = set(free_vars(expr))
    changed = True
    while changed:
        changed = False
        for var in list(needs):
            if var in assign_env:
                needs.discard(var)
                needs |= set(free_vars(assign_env[var]))
                changed = True
    return needs


def rule_reorder_joins(op, ctx):
    """Cost-based join reordering for chains of three or more inner
    joins.

    The chain is flattened into relations + condition conjuncts +
    floating key-extraction assigns, relations are re-ordered greedily
    by estimated intermediate size (smallest connected pair first, then
    the relation minimizing the next intermediate, connected relations
    preferred over cross products), and the chain is rebuilt left-deep
    with each assign re-placed at the lowest point its inputs are in
    scope and each conjunct at the lowest join that covers its
    variables.  Fires only when statistics say the new order is strictly
    cheaper (sum of estimated intermediates) than the written order —
    with no statistics, estimates tie and the plan is left alone.
    Inner-join reordering preserves the result *multiset*; row order may
    change, as with any partitioned execution."""
    if not ctx.enable_cost_based or not isinstance(op, Join) \
            or op.kind != "inner":
        return op, False
    flat = _flatten_join_chain(op)
    if flat is None:
        return op, False
    relations, conjs, assigns = flat
    assign_env = {a.var: a.expr for a in assigns}

    from repro.algebricks.cost import CardinalityEstimator

    estimator = CardinalityEstimator(ctx.metadata)
    rel_info = []                       # (est, origins, vars)
    origins_all: dict = {}
    for rel in relations:
        est, origins = estimator.subtree(rel)
        # floor at one row: a zero estimate would zero out every order's
        # cost and make the cross-product penalty (a multiplier) moot
        rel_info.append([max(est, 1.0), origins, set(rel.schema())])
        origins_all.update(origins)
    conj_needs = [_resolved_needs(c, assign_env) for c in conjs]

    def order_cost(order):
        """(total intermediate size, per-step join estimates) of a
        left-deep execution in ``order``."""
        est = rel_info[order[0]][0]
        avail = set(rel_info[order[0]][2])
        used = [False] * len(conjs)
        total = 0.0
        for idx in order[1:]:
            r_est, _, r_vars = rel_info[idx]
            est = est * r_est
            avail |= r_vars
            for ci, conj in enumerate(conjs):
                if used[ci] or not conj_needs[ci] <= avail:
                    continue
                used[ci] = True
                if (isinstance(conj, LCall) and conj.name == "eq"
                        and len(conj.args) == 2
                        and isinstance(conj.args[0], LVar)
                        and isinstance(conj.args[1], LVar)):
                    est *= estimator.equi_pair_selectivity(
                        conj.args[0].var, conj.args[1].var,
                        origins_all, est / max(r_est, 1e-9), r_est)
                else:
                    est *= estimator._conjunct_selectivity(
                        conj, origins_all)
            total += est
        return total

    n = len(relations)

    def connected(avail_vars, idx):
        return any(needs & rel_info[idx][2] and needs <= (
            avail_vars | rel_info[idx][2]) for needs in conj_needs)

    # greedy: cheapest connected first pair, then grow by minimum
    # estimated intermediate (connected candidates preferred)
    best_pair, best_pair_cost = None, None
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            cost = order_cost([i, j])
            if not connected(rel_info[i][2], j):
                # cross products only as a last resort; additive term so
                # the penalty bites even when the estimate rounds to zero
                cost = (cost + 1.0) * 1e6
            if best_pair_cost is None or cost < best_pair_cost:
                best_pair, best_pair_cost = [i, j], cost
    order = best_pair
    while len(order) < n:
        avail = set().union(*(rel_info[i][2] for i in order))
        best_next, best_cost = None, None
        for idx in range(n):
            if idx in order:
                continue
            cost = order_cost(order + [idx])
            if not connected(avail, idx):
                cost = (cost + 1.0) * 1e6
            if best_cost is None or cost < best_cost:
                best_next, best_cost = idx, cost
        order.append(best_next)

    original = list(range(n))
    if order == original:
        return op, False
    if not order_cost(order) < order_cost(original) * 0.999:
        return op, False             # no strict win: keep the written order

    # rebuild left-deep, re-placing assigns and conjuncts bottom-most
    floating = list(assigns)
    conj_left = list(zip(conjs, conj_needs))

    def place_assigns(tree, avail):
        placed = True
        while placed:
            placed = False
            for a in list(floating):
                if set(free_vars(a.expr)) <= avail:
                    a.inputs = [tree]
                    tree = a
                    avail.add(a.var)
                    floating.remove(a)
                    placed = True
        return tree

    tree = relations[order[0]]
    avail = set(rel_info[order[0]][2])
    tree = place_assigns(tree, avail)
    for idx in order[1:]:
        right = relations[idx]
        r_avail = set(rel_info[idx][2])
        right = place_assigns(right, r_avail)
        avail |= r_avail
        parts = []
        for pair in list(conj_left):
            conj, needs = pair
            if set(free_vars(conj)) <= avail:
                parts.append(conj)
                conj_left.remove(pair)
        cond = make_conjunction(parts) if parts else LConst(True)
        tree = Join(cond, kind="inner", inputs=[tree, right])
        tree = place_assigns(tree, avail)
    if conj_left or floating:
        # something could not be re-placed (shouldn't happen for plans
        # the flattener accepted): keep the original plan
        return op, False
    get_registry().counter("optimizer.join_reorders").inc()
    return tree, True


# --- the driver -----------------------------------------------------------------

# Rule *sets*, applied in sequence like real Algebricks: normalization
# and pushdown must reach fixpoint before the access-method rules fire —
# otherwise an index rewrite can trigger while only part of a predicate
# has sunk to the scan, and the remaining conjuncts lose their chance to
# become index bounds.
_NORMALIZE_RULES = [
    rule_fold_constants,
    rule_break_select_conjunctions,
    rule_remove_true_selects,
    rule_push_select_down,
    rule_selects_into_join_condition,
    rule_extract_join_keys,
    rule_push_limit_into_order,
]

# Access-method rules match a *maximal* chain of selects over a scan, so
# they must be applied top-down (a bottom-up pass would fire on the
# innermost select first and strand the outer conjuncts as residuals).
_ACCESS_RULES = [
    rule_introduce_primary_index,
    rule_introduce_secondary_index,
    rule_introduce_array_index,
]


def _apply_rule(rule, op: LogicalOp, ctx) -> tuple[LogicalOp, bool]:
    """Invoke one rule; report the attempt to the recorder if tracing.

    When plan verification is on (repro.analysis), every *firing* rule is
    immediately followed by a structural check of the subtree it
    rewrote — producers always sit below their users, so verifying the
    rewritten subtree is sound — and a violation names the rule."""
    recorder = ctx.recorder
    if recorder is None:
        op, changed = rule(op, ctx)
        if changed:
            _maybe_verify(op, rule)
        return op, changed
    import time

    target = op.label()
    started = time.perf_counter()
    op, changed = rule(op, ctx)
    recorder.observe(
        recorder.rule_name(rule),
        (time.perf_counter() - started) * 1e6,
        fired=changed, target=target,
    )
    if changed:
        _maybe_verify(op, rule)
    return op, changed


def _maybe_verify(op: LogicalOp, rule=None) -> None:
    """Verify ``op``'s subtree if the global switch is on; blames
    ``rule`` (a rule function) in the failure message."""
    from repro.analysis.plan_verifier import verify_plan
    from repro.analysis.verify import plan_verification_enabled

    if not plan_verification_enabled():
        return
    name = None
    if rule is not None:
        name = rule.__name__
        if name.startswith("rule_"):
            name = name[len("rule_"):]
    verify_plan(op, rule=name)


def _fresh_var_allocator(root: LogicalOp):
    """A callable minting plan-variable ids strictly above every id the
    plan already uses (schemas and referenced vars both count) — how
    ``OptimizerContext.next_var`` gets populated."""
    high = 0
    for node in walk(root):
        for v in node.schema():
            if isinstance(v, int) and v > high:
                high = v
        for v in node.used_vars():
            if isinstance(v, int) and v > high:
                high = v
    counter = itertools.count(high + 1)
    return lambda: next(counter)


def optimize(root: LogicalOp, metadata: MetadataView, *,
             enable_index_access: bool = True,
             enable_cost_based: bool = True,
             max_passes: int = 12,
             recorder: object = None) -> LogicalOp:
    """Apply the rule sets to fixpoint; returns the rewritten plan.

    ``enable_cost_based=False`` turns off the statistics-driven rewrites
    (join reordering here; build-side and broadcast selection in jobgen
    read the estimates this pass leaves behind) — the syntactic plan the
    equivalence suites compare against.

    Pass an :class:`repro.observability.RewriteRecorder` as ``recorder``
    to collect which rules fired, on what operator, and how long each
    rule spent — the substance of the optimize phase in a
    :class:`~repro.observability.QueryTrace`.
    """
    ctx = OptimizerContext(metadata=metadata,
                           enable_index_access=enable_index_access,
                           enable_cost_based=enable_cost_based,
                           recorder=recorder)
    ctx.next_var = _fresh_var_allocator(root)
    _maybe_verify(root)        # the translator's plan must be sound too
    for _ in range(max_passes):
        for _ in range(max_passes):
            root, changed = _apply_bottom_up(root, ctx, _NORMALIZE_RULES)
            root, inlined = _apply_rule(rule_inline_constant_assigns,
                                        root, ctx)
            root, dead_changed = _apply_rule(rule_remove_dead_assigns,
                                             root, ctx)
            if not (changed or inlined or dead_changed):
                break
        if ctx.enable_cost_based:
            # after normalization (selects merged into join conditions,
            # computed keys extracted) and before access-method
            # selection, so index rewrites see the final join shape
            root, _ = _apply_bottom_up(root, ctx, [rule_reorder_joins])
        root, access_changed = _apply_access_top_down(root, ctx)
        if recorder is not None:
            recorder.end_pass(plan_signature(root))
        if not access_changed:
            break
    _maybe_verify(root)
    if enable_cost_based:
        from repro.algebricks.cost import CardinalityEstimator

        CardinalityEstimator(metadata).annotate(root)
        get_registry().counter("optimizer.estimated_plans").inc()
    return root


def _apply_access_top_down(op: LogicalOp, ctx) -> tuple[LogicalOp, bool]:
    changed = False
    for rule in _ACCESS_RULES:
        op, c = _apply_rule(rule, op, ctx)
        changed |= c
    if changed:
        # the subtree was restructured; don't descend into stale nodes
        return op, True
    new_inputs = []
    for child in op.inputs:
        new_child, c = _apply_access_top_down(child, ctx)
        new_inputs.append(new_child)
        changed |= c
    op.inputs = new_inputs
    return op, changed


def _apply_bottom_up(op: LogicalOp, ctx, rules) -> tuple[LogicalOp, bool]:
    changed = False
    new_inputs = []
    for child in op.inputs:
        new_child, c = _apply_bottom_up(child, ctx, rules)
        new_inputs.append(new_child)
        changed |= c
    op.inputs = new_inputs
    for rule in rules:
        op, c = _apply_rule(rule, op, ctx)
        changed |= c
    return op, changed


def explain(root: LogicalOp) -> str:
    """Readable plan tree (the EXPLAIN output)."""
    return root.pretty()


def plan_signature(root: LogicalOp) -> list[str]:
    """Operator labels top-down (tests compare plans with this)."""
    return [type(op).__name__ for op in walk(root)]
