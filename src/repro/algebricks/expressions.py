"""Logical expressions over query variables.

Algebricks plans reference *variables* (``$$n``, allocated by the
translator); the job generator later maps variables to tuple columns and
lowers these trees to the runtime IR (:mod:`repro.hyracks.expressions`).
The rewriter relies on :func:`free_vars` (for pushdown legality),
:func:`substitute` (for inlining), and :func:`fold_constants`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import (
    CompilationError,
    IdentifierError,
    RuntimeError_,
    TypeError_,
)
from repro.functions.registry import is_scalar
from repro.hyracks import expressions as rt


class LExpr:
    """Base logical expression."""


@dataclass(frozen=True)
class LConst(LExpr):
    value: object

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class LVar(LExpr):
    """A plan variable ($$n)."""

    var: int

    def __repr__(self):
        return f"$${self.var}"


@dataclass(frozen=True)
class LLambdaVar(LExpr):
    """A variable bound inside the expression itself (quantifiers,
    inline-collection iteration) — not a plan variable."""

    name: str

    def __repr__(self):
        return f"%{self.name}"


class LCall(LExpr):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args):
        if not is_scalar(name):
            raise CompilationError(f"unknown function {name}")
        self.name = name
        self.args = list(args)

    def __repr__(self):
        return f"{self.name}({', '.join(map(repr, self.args))})"

    def __eq__(self, other):
        return (isinstance(other, LCall) and self.name == other.name
                and self.args == other.args)

    def __hash__(self):
        return hash((self.name, tuple(map(id, self.args))))


class LQuant(LExpr):
    __slots__ = ("some", "var", "collection", "predicate")

    def __init__(self, some: bool, var: str, collection: LExpr,
                 predicate: LExpr):
        self.some = some
        self.var = var
        self.collection = collection
        self.predicate = predicate

    def __repr__(self):
        kw = "some" if self.some else "every"
        return f"{kw} %{self.var} in {self.collection!r}: {self.predicate!r}"


class LCase(LExpr):
    __slots__ = ("whens", "default")

    def __init__(self, whens, default: LExpr):
        self.whens = list(whens)
        self.default = default

    def __repr__(self):
        return f"case({len(self.whens)})"


class LObjCtor(LExpr):
    __slots__ = ("pairs",)

    def __init__(self, pairs):
        self.pairs = list(pairs)     # [(name_lexpr, value_lexpr)]

    def __repr__(self):
        return "{" + ", ".join(f"{n!r}: {v!r}" for n, v in self.pairs) + "}"


class LComp(LExpr):
    """Inline comprehension: subqueries over collection expressions."""

    __slots__ = ("var", "collection", "filter", "body")

    def __init__(self, var: str, collection: LExpr, filter: LExpr | None,
                 body: LExpr):
        self.var = var
        self.collection = collection
        self.filter = filter
        self.body = body

    def __repr__(self):
        cond = f" if {self.filter!r}" if self.filter is not None else ""
        return f"[{self.body!r} for %{self.var} in {self.collection!r}{cond}]"


class LCollCtor(LExpr):
    __slots__ = ("items", "multiset")

    def __init__(self, items, multiset: bool = False):
        self.items = list(items)
        self.multiset = multiset

    def __repr__(self):
        return ("{{" if self.multiset else "[") + \
            ", ".join(map(repr, self.items)) + \
            ("}}" if self.multiset else "]")


def _children(expr: LExpr) -> list[LExpr]:
    if isinstance(expr, LCall):
        return expr.args
    if isinstance(expr, LComp):
        out = [expr.collection]
        if expr.filter is not None:
            out.append(expr.filter)
        out.append(expr.body)
        return out
    if isinstance(expr, LQuant):
        return [expr.collection, expr.predicate]
    if isinstance(expr, LCase):
        out = []
        for c, r in expr.whens:
            out.extend((c, r))
        out.append(expr.default)
        return out
    if isinstance(expr, LObjCtor):
        out = []
        for n, v in expr.pairs:
            out.extend((n, v))
        return out
    if isinstance(expr, LCollCtor):
        return expr.items
    return []


def free_vars(expr: LExpr) -> set[int]:
    """Plan variables referenced anywhere under this expression."""
    if isinstance(expr, LVar):
        return {expr.var}
    out: set[int] = set()
    for child in _children(expr):
        out |= free_vars(child)
    return out


def rebuild(expr: LExpr, children: list[LExpr]) -> LExpr:
    """Rebuild an expression node with new children (same shape)."""
    if isinstance(expr, LCall):
        return LCall(expr.name, children)
    if isinstance(expr, LQuant):
        return LQuant(expr.some, expr.var, children[0], children[1])
    if isinstance(expr, LComp):
        if expr.filter is not None:
            return LComp(expr.var, children[0], children[1], children[2])
        return LComp(expr.var, children[0], None, children[1])
    if isinstance(expr, LCase):
        whens = []
        it = iter(children)
        for _ in expr.whens:
            whens.append((next(it), next(it)))
        return LCase(whens, next(it))
    if isinstance(expr, LObjCtor):
        it = iter(children)
        return LObjCtor([(next(it), next(it)) for _ in expr.pairs])
    if isinstance(expr, LCollCtor):
        return LCollCtor(children, expr.multiset)
    return expr


def transform(expr: LExpr, fn) -> LExpr:
    """Bottom-up transform: fn is applied to every node after its
    children have been rebuilt."""
    kids = _children(expr)
    if kids:
        expr = rebuild(expr, [transform(c, fn) for c in kids])
    return fn(expr)


def substitute(expr: LExpr, mapping: dict) -> LExpr:
    """Replace plan variables per ``mapping`` (var -> LExpr)."""

    def sub(node):
        if isinstance(node, LVar) and node.var in mapping:
            return mapping[node.var]
        return node

    return transform(expr, sub)


_FOLD_BLOCKLIST = {
    # don't fold random/context-dependent functions other than the
    # deterministic session clock (which IS folded, as AsterixDB does
    # per-statement)
}


def fold_constants(expr: LExpr) -> LExpr:
    """Evaluate calls whose arguments are all constants."""
    from repro.functions.registry import call

    def fold(node):
        if isinstance(node, LCall) and node.name not in _FOLD_BLOCKLIST:
            if all(isinstance(a, LConst) for a in node.args):
                try:
                    return LConst(call(node.name,
                                       *[a.value for a in node.args]))
                except (RuntimeError_, TypeError_, IdentifierError,
                        TypeError, ValueError, ArithmeticError,
                        AttributeError, KeyError, IndexError):
                    # leave evaluation errors to runtime -- but only
                    # *evaluation* errors: injected faults (resilience,
                    # memory pressure) and invariant violations must
                    # propagate, not get folded away silently
                    return node
        return node

    return transform(expr, fold)


def is_conjunction(expr: LExpr) -> bool:
    return isinstance(expr, LCall) and expr.name == "and"


def conjuncts(expr: LExpr) -> list[LExpr]:
    """Flatten nested ANDs into a conjunct list."""
    if is_conjunction(expr):
        out = []
        for arg in expr.args:
            out.extend(conjuncts(arg))
        return out
    return [expr]


def make_conjunction(parts: list[LExpr]) -> LExpr:
    if not parts:
        return LConst(True)
    if len(parts) == 1:
        return parts[0]
    return LCall("and", parts)


def to_runtime(expr: LExpr, var_to_col: dict) -> rt.RuntimeExpr:
    """Lower a logical expression to the runtime IR, mapping plan
    variables to tuple columns."""
    if isinstance(expr, LConst):
        return rt.Const(expr.value)
    if isinstance(expr, LVar):
        if expr.var not in var_to_col:
            raise CompilationError(f"variable $${expr.var} not in scope")
        return rt.ColumnRef(var_to_col[expr.var])
    if isinstance(expr, LLambdaVar):
        return rt.VarRef(expr.name)
    if isinstance(expr, LCall):
        return rt.FunctionCall(
            expr.name, [to_runtime(a, var_to_col) for a in expr.args]
        )
    if isinstance(expr, LQuant):
        return rt.Quantified(
            expr.some, expr.var,
            to_runtime(expr.collection, var_to_col),
            to_runtime(expr.predicate, var_to_col),
        )
    if isinstance(expr, LCase):
        whens = [
            (to_runtime(c, var_to_col), to_runtime(r, var_to_col))
            for c, r in expr.whens
        ]
        return rt.CaseExpr(whens, to_runtime(expr.default, var_to_col))
    if isinstance(expr, LComp):
        return rt.Comprehension(
            expr.var,
            to_runtime(expr.collection, var_to_col),
            None if expr.filter is None else
            to_runtime(expr.filter, var_to_col),
            to_runtime(expr.body, var_to_col),
        )
    if isinstance(expr, LObjCtor):
        pairs = [
            (to_runtime(n, var_to_col), to_runtime(v, var_to_col))
            for n, v in expr.pairs
        ]
        return rt.ObjectConstructor(pairs)
    if isinstance(expr, LCollCtor):
        return rt.CollectionConstructor(
            [to_runtime(i, var_to_col) for i in expr.items], expr.multiset
        )
    raise CompilationError(f"cannot lower expression {expr!r}")
