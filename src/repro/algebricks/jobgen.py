"""The job generator: optimized logical plans -> Hyracks jobs.

This is the physical layer of Fig. 5, where the "data-partition-aware"
part of feature 3 lives.  Every compiled stream carries its *partitioning
property* (singleton, hash-partitioned on variables, or random) and its
*local order property*; connectors are inserted only where an operator's
requirement isn't already satisfied:

* joins hash-partition both sides on the join keys — unless a side is
  already hash-partitioned on them (e.g. a primary-key join on top of a
  primary-key-partitioned scan needs no exchange at all);
* group-bys hash-partition on the grouping keys — unless the input's
  property is a subset of them (grouping by pk + anything after a scan is
  exchange-free);
* ORDER BY sorts locally and merges globally through a MergeConnector;
* DML routes records to their owning partition by primary-key hash.

The invariant throughout: a stream's tuple layout equals its logical
operator's schema (variable i lives in column i), which keeps variable
-> column mapping trivial and verifiable.

Layer contract: input is an *optimized* logical plan (the output of
:func:`repro.algebricks.rules.optimize`) plus the catalog and the
cluster width; output is a validated
:class:`~repro.hyracks.job.JobSpecification` ready for
:meth:`~repro.hyracks.cluster.ClusterController.run_job`.  This module
never executes anything and holds no state between calls.  The generated
DAG is what ``AsterixInstance.explain`` serializes as the ``job`` half of
its output (via :func:`repro.observability.job_to_dict`); see
docs/ARCHITECTURE.md for a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebricks import logical as L
from repro.algebricks.expressions import (
    LCall,
    LConst,
    LVar,
    conjuncts,
    to_runtime,
)
from repro.analysis.plan_verifier import verify_job, verify_stream
from repro.analysis.verify import plan_verification_enabled
from repro.common.errors import CompilationError
from repro.hyracks.job import OperatorDescriptor
from repro.hyracks import (
    BroadcastConnector,
    HashPartitionConnector,
    JobSpecification,
    MergeConnector,
    OneToOneConnector,
)
from repro.hyracks.expressions import ColumnRef
from repro.observability.metrics import get_registry
from repro.hyracks.operators import (
    AggregateCall,
    AggregateOp,
    AssignOp,
    DatasetScanOp,
    DeleteOp,
    DistinctOp,
    ExternalScanOp,
    ExternalSortOp,
    HashGroupByOp,
    HybridHashJoinOp,
    EmptyTupleSourceOp,
    InsertOp,
    ArrayBTreeSearchOp,
    InvertedSearchOp,
    LimitOp,
    LoadOp,
    NestedLoopJoinOp,
    PreclusteredGroupByOp,
    PrimaryKeySearchOp,
    PrimaryLookupOp,
    ProjectOp,
    ResultWriterOp,
    SecondaryBTreeSearchOp,
    SecondaryRTreeSearchOp,
    SelectOp,
    TopKSortOp,
    UnnestOp,
    UpsertOp,
)

SINGLETON = ("singleton",)
RANDOM = ("random",)


class _SingletonMaterializeOp(OperatorDescriptor):
    """A width-1 materialize: the gather point for LIMIT / results."""

    partition_count = 1
    name = "gather"

    def run(self, ctx, partition, inputs):
        ctx.cost.tuples_out += len(inputs[0])
        return list(inputs[0])


@dataclass
class Stream:
    """A compiled sub-plan: its sink operator + physical properties."""

    op_id: int
    schema: list                     # ordered plan variables == columns
    width: int                       # 1 or cluster width
    partitioning: tuple = RANDOM     # SINGLETON | RANDOM | ("hash", vars)
    order: list = field(default_factory=list)   # [(var, desc)] local order

    def col(self, var: int) -> int:
        try:
            return self.schema.index(var)
        except ValueError:
            raise CompilationError(
                f"variable $${var} not in stream schema {self.schema}"
            ) from None

    @property
    def var_to_col(self) -> dict:
        return {v: i for i, v in enumerate(self.schema)}


class JobGenerator:
    """Compiles one logical plan into one Hyracks JobSpecification."""

    def __init__(self, metadata, num_partitions: int):
        self.metadata = metadata
        self.width = num_partitions
        self.job = JobSpecification()
        self.result_op: ResultWriterOp | None = None

    # -- public --------------------------------------------------------------

    def generate(self, root: L.LogicalOp):
        """Returns (job, result_writer)."""
        if isinstance(root, L.DistributeResult):
            self._compile_result(root)
        elif isinstance(root, L.InsertDelete):
            self._compile_dml(root)
        else:
            raise CompilationError(
                f"plan root must be DistributeResult or InsertDelete, "
                f"got {type(root).__name__}"
            )
        if plan_verification_enabled():
            verify_job(self.job)
        return self.job, self.result_op

    # -- helpers ---------------------------------------------------------------

    def _add(self, op) -> int:
        return self.job.add_operator(op)

    def _connect(self, connector, producer: int, consumer: int,
                 port: int = 0):
        self.job.connect(connector, producer, consumer, port)

    def _chain(self, stream: Stream, op, *, schema=None, order=None,
               connector=None) -> Stream:
        op_id = self._add(op)
        self._connect(connector or OneToOneConnector(), stream.op_id, op_id)
        width = 1 if op.partition_count == 1 else stream.width
        if connector is not None and isinstance(
                connector, HashPartitionConnector):
            width = self.width
        return Stream(
            op_id,
            stream.schema if schema is None else schema,
            width,
            stream.partitioning if connector is None else RANDOM,
            stream.order if order is None else order,
        )

    # -- compilation ----------------------------------------------------------

    def compile(self, op: L.LogicalOp) -> Stream:
        method = getattr(self, "_compile_" + type(op).__name__, None)
        if method is None:
            raise CompilationError(
                f"no physical translation for {type(op).__name__}"
            )
        stream = method(op)
        est = getattr(op, "est_card", None)
        if est is not None:
            # estimated-vs-actual: the physical sink operator of this
            # logical op carries the estimate into the job profile
            self.job.operators[stream.op_id].estimated_cardinality = est
        if plan_verification_enabled():
            verify_stream(op, stream)
        return stream

    def _compile_EmptyTupleSource(self, op) -> Stream:
        op_id = self._add(EmptyTupleSourceOp())
        return Stream(op_id, [], 1, SINGLETON)

    def _compile_DataSourceScan(self, op) -> Stream:
        op_id = self._add(DatasetScanOp(op.dataset))
        return Stream(op_id, op.schema(), self.width,
                      ("hash", tuple(op.pk_vars)),
                      order=[(v, False) for v in op.pk_vars])

    def _compile_ExternalScan(self, op) -> Stream:
        op_id = self._add(ExternalScanOp(op.adapter))
        return Stream(op_id, op.schema(), self.width, RANDOM)

    def _compile_PrimaryIndexSearch(self, op) -> Stream:
        lower = lambda es: (None if es is None else        # noqa: E731
                            [to_runtime(e, {}) for e in es])
        op_id = self._add(PrimaryKeySearchOp(
            op.dataset, lower(op.lo), lower(op.hi),
            op.lo_inclusive, op.hi_inclusive,
        ))
        return Stream(op_id, op.schema(), self.width,
                      ("hash", tuple(op.pk_vars)),
                      order=[(v, False) for v in op.pk_vars])

    def _compile_SecondaryIndexSearch(self, op) -> Stream:
        lower = lambda es: (None if es is None else        # noqa: E731
                            [to_runtime(e, {}) for e in es])
        if op.index_kind == "btree":
            search = SecondaryBTreeSearchOp(
                op.dataset, op.index_name, lower(op.lo), lower(op.hi),
                op.lo_inclusive, op.hi_inclusive,
            )
        elif op.index_kind == "array":
            search = ArrayBTreeSearchOp(
                op.dataset, op.index_name, lower(op.lo), lower(op.hi),
                op.lo_inclusive, op.hi_inclusive,
            )
        elif op.index_kind == "rtree":
            search = SecondaryRTreeSearchOp(
                op.dataset, op.index_name, to_runtime(op.window, {})
            )
        else:
            search = InvertedSearchOp(
                op.dataset, op.index_name, to_runtime(op.text, {})
            )
        search_id = self._add(search)
        # the [26] pipeline: PKs -> sorted fetch through the primary index
        lookup = PrimaryLookupOp(op.dataset, len(op.pk_vars),
                                 sort_keys=True)
        lookup_id = self._add(lookup)
        self._connect(OneToOneConnector(), search_id, lookup_id)
        return Stream(lookup_id, op.schema(), self.width,
                      ("hash", tuple(op.pk_vars)))

    def _compile_Assign(self, op) -> Stream:
        child = self.compile(op.inputs[0])
        expr = to_runtime(op.expr, child.var_to_col)
        return self._chain(child, AssignOp([expr]), schema=op.schema())

    def _compile_Select(self, op) -> Stream:
        child = self.compile(op.inputs[0])
        cond = to_runtime(op.condition, child.var_to_col)
        return self._chain(child, SelectOp(cond))

    def _compile_Project(self, op) -> Stream:
        child = self.compile(op.inputs[0])
        cols = [child.col(v) for v in op.vars]
        out = self._chain(child, ProjectOp(cols), schema=op.schema())
        out.order = [pair for pair in child.order if pair[0] in op.vars]
        if out.partitioning and out.partitioning[0] == "hash" and \
                not set(out.partitioning[1]) <= set(op.vars):
            # the hash-key columns were projected away: the data is still
            # partitioned that way, but no downstream operator can prove
            # (or reuse) it, so stop claiming the property
            out.partitioning = RANDOM
        return out

    def _compile_Unnest(self, op) -> Stream:
        child = self.compile(op.inputs[0])
        coll = to_runtime(op.collection, child.var_to_col)
        runtime = UnnestOp(coll, outer=op.outer,
                           positional=op.positional_var is not None)
        return self._chain(child, runtime, schema=op.schema())

    def _compile_UnionAll(self, op) -> Stream:
        left = self.compile(op.inputs[0])
        right = self.compile(op.inputs[1])
        from repro.hyracks.operators import UnionAllOp

        union_id = self._add(UnionAllOp())
        self._connect(OneToOneConnector(), left.op_id, union_id, 0)
        self._connect(OneToOneConnector(), right.op_id, union_id, 1)
        return Stream(union_id, op.schema(), max(left.width, right.width),
                      RANDOM)

    def _compile_Join(self, op) -> Stream:
        left = self.compile(op.inputs[0])
        right = self.compile(op.inputs[1])
        left_schema = op.child_schema(0)
        right_schema = op.child_schema(1)
        equi, residual = self._split_equi(op.condition, set(left_schema),
                                          set(right_schema))
        out_schema = op.schema()
        joined_var_to_col = {
            v: i for i, v in enumerate([*left_schema, *right_schema])
        }
        if equi:
            left_keys = [left.col(lv) for lv, _ in equi]
            right_keys = [right.col(rv) for _, rv in equi]
            residual_rt = (to_runtime(residual, joined_var_to_col)
                           if residual is not None else None)
            left_est = getattr(op.inputs[0], "est_card", None)
            right_est = getattr(op.inputs[1], "est_card", None)
            # build-side selection: build the hash table on the input
            # estimated smaller (output is byte-identical either way;
            # the win is spill avoidance when only the smaller side
            # fits the memory budget)
            build_side = 1
            if left_est is not None and right_est is not None \
                    and left_est < right_est:
                build_side = 0
                get_registry().counter("optimizer.build_side_swaps").inc()
            join = HybridHashJoinOp(
                left_keys, right_keys, kind=op.kind,
                residual=residual_rt, right_width=len(right_schema),
                build_side=build_side,
            )
            join_id = self._add(join)
            lconn = self._partition_connector(left, [lv for lv, _ in equi])
            rconn = self._partition_connector(right, [rv for _, rv in equi])
            if self._broadcast_wins(left, right, lconn, rconn,
                                    left_est, right_est):
                # broadcast the (small) right side instead of hash-
                # repartitioning both: every partition holds the full
                # right input, the left stays exactly where it is, and
                # the result keeps the left's partitioning — the same
                # shape as the nested-loop join below
                get_registry().counter("optimizer.broadcast_joins").inc()
                self._connect(OneToOneConnector(), left.op_id, join_id, 0)
                self._connect(BroadcastConnector(), right.op_id, join_id, 1)
                return Stream(join_id, out_schema, max(left.width, 1),
                              left.partitioning)
            self._connect(lconn, left.op_id, join_id, 0)
            self._connect(rconn, right.op_id, join_id, 1)
            return Stream(join_id, out_schema, self.width,
                          ("hash", tuple(lv for lv, _ in equi)))
        # no equi-condition: broadcast nested-loop join
        cond_rt = (to_runtime(op.condition, joined_var_to_col)
                   if not self._is_true(op.condition) else None)
        join = NestedLoopJoinOp(cond_rt, kind=op.kind,
                                right_width=len(right_schema))
        join_id = self._add(join)
        self._connect(OneToOneConnector(), left.op_id, join_id, 0)
        self._connect(BroadcastConnector(), right.op_id, join_id, 1)
        return Stream(join_id, out_schema, max(left.width, 1),
                      left.partitioning)

    @staticmethod
    def _is_true(expr) -> bool:
        return isinstance(expr, LConst) and expr.value is True

    def _split_equi(self, condition, left_vars, right_vars):
        """Partition a join condition into var=var equi pairs + residual."""
        equi = []
        residual = []
        for part in conjuncts(condition):
            if self._is_true(part):
                continue
            if (isinstance(part, LCall) and part.name == "eq"
                    and len(part.args) == 2):
                a, b = part.args
                if isinstance(a, LVar) and isinstance(b, LVar):
                    if a.var in left_vars and b.var in right_vars:
                        equi.append((a.var, b.var))
                        continue
                    if b.var in left_vars and a.var in right_vars:
                        equi.append((b.var, a.var))
                        continue
            residual.append(part)
        from repro.algebricks.expressions import make_conjunction

        return equi, (make_conjunction(residual) if residual else None)

    def _partition_connector(self, stream: Stream, key_vars: list):
        """Reuse existing partitioning when it matches (the heart of
        partition-awareness)."""
        if (stream.partitioning[0] == "hash"
                and tuple(stream.partitioning[1]) == tuple(key_vars)
                and stream.width == self.width):
            return OneToOneConnector()
        return HashPartitionConnector([stream.col(v) for v in key_vars])

    def _broadcast_wins(self, left, right, lconn, rconn,
                        left_est, right_est) -> bool:
        """Broadcast-vs-hash-repartition for an equi join: compare the
        estimated tuples each strategy moves over the network.

        Repartitioning moves ~(W-1)/W of every side that actually needs
        a :class:`HashPartitionConnector` (a side already partitioned on
        the join keys moves nothing); broadcasting replicates the right
        input to the other W-1 partitions and moves nothing on the left.
        Requires estimates from the cost pass — without statistics both
        are None and the classic repartitioning plan stands."""
        if left_est is None or right_est is None or self.width <= 1:
            return False
        w = self.width
        repart = 0.0
        if isinstance(lconn, HashPartitionConnector):
            repart += left_est * (w - 1) / w
        if isinstance(rconn, HashPartitionConnector):
            repart += right_est * (w - 1) / w
        broadcast = right_est * (w - 1)
        return broadcast < repart

    def _compile_GroupBy(self, op) -> Stream:
        child = self.compile(op.inputs[0])
        key_vars = []
        for new_var, expr in op.keys:
            if not isinstance(expr, LVar):
                raise CompilationError(
                    "group keys must be pre-assigned variables"
                )
            key_vars.append(expr.var)
        key_cols = [child.col(v) for v in key_vars]
        aggs = [
            AggregateCall(a.function,
                          to_runtime(a.argument, child.var_to_col))
            for a in op.aggregates
        ]
        # partition-awareness: an input hash-partitioned on a subset of the
        # group keys already has co-located groups
        if (child.partitioning[0] == "hash"
                and set(child.partitioning[1]) <= set(key_vars)
                and child.width == self.width):
            connector = OneToOneConnector()
        else:
            connector = HashPartitionConnector(key_cols)
        # order-awareness: input sorted on the keys -> preclustered group-by
        order_vars = [v for v, desc in child.order]
        if order_vars[: len(key_vars)] == key_vars and isinstance(
                connector, OneToOneConnector):
            runtime = PreclusteredGroupByOp(key_cols, aggs)
        else:
            runtime = HashGroupByOp(key_cols, aggs)
        out = self._chain(child, runtime, schema=op.schema(),
                          connector=connector, order=[])
        out.partitioning = ("hash", tuple(v for v, _ in op.keys))
        out.width = self.width if child.width > 1 or isinstance(
            connector, HashPartitionConnector) else child.width
        return out

    def _compile_Aggregate(self, op) -> Stream:
        child = self.compile(op.inputs[0])
        aggs = [
            AggregateCall(a.function,
                          to_runtime(a.argument, child.var_to_col))
            for a in op.aggregates
        ]
        out = self._chain(child, AggregateOp(aggs), schema=op.schema(),
                          order=[])
        out.width = 1
        out.partitioning = SINGLETON
        return out

    def _compile_Order(self, op) -> Stream:
        child = self.compile(op.inputs[0])
        fields = []
        descending = []
        for expr, desc in op.pairs:
            if not isinstance(expr, LVar):
                raise CompilationError(
                    "sort keys must be pre-assigned variables"
                )
            fields.append(child.col(expr.var))
            descending.append(desc)
        if op.topk is not None:
            runtime = TopKSortOp(fields, op.topk, descending)
        else:
            runtime = ExternalSortOp(fields, descending)
        order = [(expr.var, desc) for expr, desc in op.pairs]
        return self._chain(child, runtime, order=order)

    def _compile_Distinct(self, op) -> Stream:
        child = self.compile(op.inputs[0])
        cols = [child.col(v) for v in op.vars]
        if (child.partitioning[0] == "hash"
                and set(child.partitioning[1]) <= set(op.vars)
                and child.width == self.width):
            connector = OneToOneConnector()
        else:
            connector = HashPartitionConnector(cols)
        out = self._chain(child, DistinctOp(cols), connector=connector,
                          order=[])
        out.partitioning = ("hash", tuple(op.vars))
        return out

    def _compile_Limit(self, op) -> Stream:
        child = self._gather(self.compile(op.inputs[0]))
        return self._chain(child, LimitOp(op.count, op.offset))

    def _gather(self, stream: Stream) -> Stream:
        """Bring a stream to one partition, preserving order if any."""
        if stream.width == 1:
            return stream
        if stream.order:
            connector = MergeConnector(
                [stream.col(v) for v, _ in stream.order],
                [d for _, d in stream.order],
            )
        else:
            connector = OneToOneConnector()
        op_id = self._add(_SingletonMaterializeOp())
        self._connect(connector, stream.op_id, op_id)
        return Stream(op_id, stream.schema, 1, SINGLETON, stream.order)

    def _compile_result(self, root: L.DistributeResult) -> None:
        child = self.compile(root.inputs[0])
        expr = to_runtime(root.expr, child.var_to_col)
        assigned = self._chain(child, AssignOp([expr]),
                               schema=[*child.schema, -1])
        gathered = self._gather(assigned)
        projected = self._chain(gathered, ProjectOp([len(child.schema)]),
                                schema=[-1])
        self.result_op = ResultWriterOp()
        self._chain(projected, self.result_op)

    def _compile_dml(self, root: L.InsertDelete) -> None:
        child = self.compile(root.inputs[0])
        pk_fields = self.metadata.pk_fields(root.dataset)
        if root.op in ("insert", "upsert", "load"):
            record_expr = to_runtime(root.record_expr, child.var_to_col)
            record_col = len(child.schema)
            stream = self._chain(
                child, AssignOp([record_expr]),
                schema=[*child.schema, -1],
            )
            schema = list(stream.schema)
            from repro.hyracks.expressions import Const as RConst
            from repro.hyracks.expressions import FunctionCall as RCall

            assigns = [
                RCall("field_access", [ColumnRef(record_col), RConst(f)])
                for f in pk_fields
            ]
            stream = self._chain(
                stream, AssignOp(assigns),
                schema=[*schema, *[-2 - i for i in range(len(pk_fields))]],
            )
            pk_cols = [record_col + 1 + i for i in range(len(pk_fields))]
            op_cls = {"insert": InsertOp, "upsert": UpsertOp,
                      "load": LoadOp}[root.op]
            dml = op_cls(root.dataset, ColumnRef(record_col))
            dml_id = self._add(dml)
            self._connect(HashPartitionConnector(pk_cols), stream.op_id,
                          dml_id)
            counts = Stream(dml_id, [-9], self.width)
        else:  # delete
            pk_exprs = [to_runtime(e, child.var_to_col)
                        for e in root.pk_exprs or []]
            dml = DeleteOp(root.dataset, [ColumnRef(len(child.schema) + i)
                                          for i in range(len(pk_exprs))])
            stream = self._chain(
                child, AssignOp(pk_exprs),
                schema=[*child.schema,
                        *[-2 - i for i in range(len(pk_exprs))]],
            )
            pk_cols = [len(child.schema) + i for i in range(len(pk_exprs))]
            dml_id = self._add(dml)
            self._connect(HashPartitionConnector(pk_cols), stream.op_id,
                          dml_id)
            counts = Stream(dml_id, [-9], self.width)
        total = self._chain(
            counts,
            AggregateOp([AggregateCall("sum", ColumnRef(0))]),
            schema=[-10],
        )
        self.result_op = ResultWriterOp()
        self._chain(total, self.result_op)


def compile_plan(root, metadata, num_partitions: int):
    """Convenience: logical plan -> (job, result_writer)."""
    return JobGenerator(metadata, num_partitions).generate(root)
