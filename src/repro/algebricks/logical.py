"""Algebricks logical operators (paper Fig. 5, feature 3).

A logical plan is a tree (DAG-free in this reproduction) of operators,
each producing a *schema*: the ordered list of live variables.  The
translator builds these from SQL++/AQL core ASTs; the rule-based rewriter
(:mod:`repro.algebricks.rules`) restructures them; the job generator
(:mod:`repro.algebricks.jobgen`) lowers them onto Hyracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebricks.expressions import LExpr, free_vars


class LogicalOp:
    """Base logical operator."""

    inputs: list

    def schema(self) -> list[int]:
        """Ordered live variables this operator produces."""
        raise NotImplementedError

    def used_vars(self) -> set[int]:
        """Variables this operator's expressions reference."""
        return set()

    def child_schema(self, i: int = 0) -> list[int]:
        return self.inputs[i].schema()

    def label(self) -> str:
        return type(self).__name__

    def pretty(self, depth: int = 0) -> str:
        lines = ["  " * depth + self.describe()]
        for child in self.inputs:
            lines.append(child.pretty(depth + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.label()


@dataclass
class EmptyTupleSource(LogicalOp):
    inputs: list = field(default_factory=list)

    def schema(self):
        return []

    def describe(self):
        return "empty-tuple-source"


@dataclass
class DataSourceScan(LogicalOp):
    """Scan of an internal dataset: produces pk vars then the record var."""

    dataset: str
    pk_vars: list
    record_var: int
    inputs: list = field(default_factory=list)

    def schema(self):
        return [*self.pk_vars, self.record_var]

    def describe(self):
        return (f"data-scan {self.dataset} -> "
                f"{['$$%d' % v for v in self.schema()]}")


@dataclass
class ExternalScan(LogicalOp):
    """In-situ scan of an external dataset (feature 6)."""

    dataset: str
    adapter: object
    record_var: int = 0
    inputs: list = field(default_factory=list)

    def schema(self):
        return [self.record_var]

    def describe(self):
        return f"external-scan {self.dataset} -> $${self.record_var}"


@dataclass
class Assign(LogicalOp):
    var: int
    expr: LExpr
    inputs: list = field(default_factory=list)

    def schema(self):
        return [*self.child_schema(), self.var]

    def used_vars(self):
        return free_vars(self.expr)

    def describe(self):
        return f"assign $${self.var} := {self.expr!r}"


@dataclass
class Select(LogicalOp):
    condition: LExpr
    inputs: list = field(default_factory=list)

    def schema(self):
        return self.child_schema()

    def used_vars(self):
        return free_vars(self.condition)

    def describe(self):
        return f"select {self.condition!r}"


@dataclass
class Project(LogicalOp):
    vars: list = field(default_factory=list)
    inputs: list = field(default_factory=list)

    def schema(self):
        return list(self.vars)

    def used_vars(self):
        return set(self.vars)

    def describe(self):
        return f"project {['$$%d' % v for v in self.vars]}"


@dataclass
class Join(LogicalOp):
    """kind: inner | leftouter | leftsemi | leftanti.  Semi/anti joins keep
    only the left schema."""

    condition: LExpr
    kind: str = "inner"
    inputs: list = field(default_factory=list)

    def schema(self):
        if self.kind in ("leftsemi", "leftanti"):
            return self.child_schema(0)
        return [*self.child_schema(0), *self.child_schema(1)]

    def used_vars(self):
        return free_vars(self.condition)

    def describe(self):
        return f"join[{self.kind}] {self.condition!r}"


@dataclass
class AggCall:
    """One aggregate computation inside GroupBy/Aggregate."""

    var: int
    function: str
    argument: LExpr

    def __repr__(self):
        return f"$${self.var} := {self.function}({self.argument!r})"


@dataclass
class GroupBy(LogicalOp):
    """keys: [(new_var, key_expr)]; aggregates: [AggCall]."""

    keys: list = field(default_factory=list)
    aggregates: list = field(default_factory=list)
    inputs: list = field(default_factory=list)

    def schema(self):
        return [v for v, _ in self.keys] + [a.var for a in self.aggregates]

    def used_vars(self):
        out: set[int] = set()
        for _, expr in self.keys:
            out |= free_vars(expr)
        for agg in self.aggregates:
            out |= free_vars(agg.argument)
        return out

    def describe(self):
        keys = ", ".join(f"$${v}:={e!r}" for v, e in self.keys)
        return f"group-by [{keys}] {self.aggregates!r}"


@dataclass
class Aggregate(LogicalOp):
    """Global (single-group) aggregation."""

    aggregates: list = field(default_factory=list)
    inputs: list = field(default_factory=list)

    def schema(self):
        return [a.var for a in self.aggregates]

    def used_vars(self):
        out: set[int] = set()
        for agg in self.aggregates:
            out |= free_vars(agg.argument)
        return out

    def describe(self):
        return f"aggregate {self.aggregates!r}"


@dataclass
class Order(LogicalOp):
    """pairs: [(expr, descending: bool)]; topk set by limit pushdown."""

    pairs: list = field(default_factory=list)
    topk: int | None = None
    inputs: list = field(default_factory=list)

    def schema(self):
        return self.child_schema()

    def used_vars(self):
        out: set[int] = set()
        for expr, _ in self.pairs:
            out |= free_vars(expr)
        return out

    def describe(self):
        parts = [f"{e!r}{' desc' if d else ''}" for e, d in self.pairs]
        extra = f" topk={self.topk}" if self.topk else ""
        return f"order [{', '.join(parts)}]{extra}"


@dataclass
class Distinct(LogicalOp):
    vars: list = field(default_factory=list)
    inputs: list = field(default_factory=list)

    def schema(self):
        return self.child_schema()

    def used_vars(self):
        return set(self.vars)

    def describe(self):
        return f"distinct {['$$%d' % v for v in self.vars]}"


@dataclass
class Limit(LogicalOp):
    count: int | None = None
    offset: int = 0
    inputs: list = field(default_factory=list)

    def schema(self):
        return self.child_schema()

    def describe(self):
        return f"limit {self.count} offset {self.offset}"


@dataclass
class Unnest(LogicalOp):
    var: int
    collection: LExpr
    outer: bool = False
    positional_var: int | None = None
    inputs: list = field(default_factory=list)

    def schema(self):
        extra = [self.var]
        if self.positional_var is not None:
            extra.append(self.positional_var)
        return [*self.child_schema(), *extra]

    def used_vars(self):
        return free_vars(self.collection)

    def describe(self):
        return f"unnest $${self.var} <- {self.collection!r}"


@dataclass
class UnionAll(LogicalOp):
    """Bag union of two single-variable branches."""

    var: int = 0
    inputs: list = field(default_factory=list)

    def schema(self):
        return [self.var]

    def describe(self):
        return f"union-all -> $${self.var}"


@dataclass
class PrimaryIndexSearch(LogicalOp):
    """Bounded primary-index search (access-method rewrite of scan+select
    on pk)."""

    dataset: str
    pk_vars: list
    record_var: int
    lo: list | None = None            # list[LExpr] | None
    hi: list | None = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True
    inputs: list = field(default_factory=list)

    def schema(self):
        return [*self.pk_vars, self.record_var]

    def describe(self):
        return (f"primary-search {self.dataset} "
                f"[{self.lo!r} .. {self.hi!r}]")


@dataclass
class SecondaryIndexSearch(LogicalOp):
    """Secondary-index search feeding a primary lookup: produces pk vars
    and the record var (the lookup is fused here, [26]-style: the jobgen
    emits search -> sort-pk -> lookup)."""

    dataset: str
    index_name: str
    index_kind: str                   # btree | rtree | keyword | ngram | array
    pk_vars: list = field(default_factory=list)
    record_var: int = 0
    lo: list | None = None            # btree bounds
    hi: list | None = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True
    window: LExpr | None = None       # rtree
    text: LExpr | None = None         # inverted
    inputs: list = field(default_factory=list)

    def schema(self):
        return [*self.pk_vars, self.record_var]

    def describe(self):
        detail = (f"[{self.lo!r}..{self.hi!r}]"
                  if self.index_kind in ("btree", "array")
                  else repr(self.window or self.text))
        return (f"{self.index_kind}-index-search "
                f"{self.dataset}.{self.index_name} {detail}")


@dataclass
class InsertDelete(LogicalOp):
    """op: insert | upsert | delete | load."""

    dataset: str
    op: str
    record_expr: LExpr | None = None          # insert/upsert/load
    pk_exprs: list | None = None               # delete
    inputs: list = field(default_factory=list)

    def schema(self):
        return []

    def used_vars(self):
        out: set[int] = set()
        if self.record_expr is not None:
            out |= free_vars(self.record_expr)
        for e in self.pk_exprs or ():
            out |= free_vars(e)
        return out

    def describe(self):
        return f"{self.op} into {self.dataset}"


@dataclass
class DistributeResult(LogicalOp):
    """Plan root: emit the value of ``expr`` per tuple."""

    expr: LExpr = None
    inputs: list = field(default_factory=list)

    def schema(self):
        return []

    def used_vars(self):
        return free_vars(self.expr) if self.expr is not None else set()

    def describe(self):
        return f"distribute-result {self.expr!r}"


def walk(op: LogicalOp):
    """Yield every operator in the tree, top-down."""
    yield op
    for child in op.inputs:
        yield from walk(child)
