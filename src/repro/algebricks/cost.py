"""Cardinality estimation over logical plans (the cost side of the
"data-partition-aware" claim).

The estimator walks a logical tree bottom-up carrying two things:

* an **estimate** of the operator's output cardinality, and
* a **variable-origin environment** mapping plan variables to the
  dataset field they carry (``var -> (kind, dataset, path)``), built
  from scans and field-access assigns — the bridge between plan
  variables and the per-dataset statistics rollup
  (:meth:`MetadataManager.dataset_statistics`, harvested from LSM
  component synopses).

Selectivities come from the equi-depth histograms when a predicate is
sargable on an origin-tracked field, and from the usual textbook
defaults otherwise.  Every visited operator is annotated with
``op.est_card``; EXPLAIN and the job generator surface it as
estimated-vs-actual cardinality, and the three cost-based decisions
(join reordering, hash-join build side, broadcast-vs-repartition) all
read their inputs from here.

The estimator never changes a plan and is deliberately cheap: one walk,
one catalog rollup per dataset (cached), no I/O charges.
"""

from __future__ import annotations

from repro.algebricks import logical as L
from repro.algebricks.expressions import LCall, LConst, LVar, conjuncts
from repro.common.errors import MetadataError
from repro.observability.metrics import get_registry

#: fallbacks when no statistics exist (the classic System-R constants)
DEFAULT_SCAN_CARD = 1000.0
DEFAULT_EQ_SEL = 0.1
DEFAULT_RANGE_SEL = 0.3
DEFAULT_OTHER_SEL = 0.25
DEFAULT_UNNEST_FANOUT = 3.0

_RANGE_CMPS = ("lt", "le", "gt", "ge")


class CardinalityEstimator:
    """Bottom-up cardinality estimation with per-subtree memoization."""

    def __init__(self, metadata):
        self.metadata = metadata
        self._dataset_stats: dict = {}       # dataset -> synopsis | None
        self._memo: dict = {}                # id(op) -> (est, origins)
        self._registry = get_registry()

    # -- statistics access ------------------------------------------------------

    def stats(self, dataset: str):
        if dataset not in self._dataset_stats:
            getter = getattr(self.metadata, "dataset_statistics", None)
            synopsis = getter(dataset) if getter is not None else None
            self._dataset_stats[dataset] = synopsis
            self._registry.counter(
                "optimizer.stats_hits" if synopsis is not None
                else "optimizer.stats_misses").inc()
        return self._dataset_stats[dataset]

    def field_stats(self, dataset: str, path: str):
        synopsis = self.stats(dataset)
        if synopsis is None:
            return None
        return synopsis.fields.get(path)

    # -- public -----------------------------------------------------------------

    def annotate(self, root) -> float:
        """Estimate the whole tree, stamping ``est_card`` on every
        operator; returns the root estimate."""
        est, _ = self.subtree(root)
        return est

    def subtree(self, op) -> tuple:
        """(estimated cardinality, variable-origin env) of one subtree."""
        hit = self._memo.get(id(op))
        if hit is not None:
            return hit
        children = [self.subtree(child) for child in op.inputs]
        origins: dict = {}
        for _, child_origins in children:
            origins.update(child_origins)
        est = self._estimate(op, [e for e, _ in children], origins)
        est = max(est, 0.0)
        op.est_card = round(est, 1)
        result = (est, origins)
        self._memo[id(op)] = result
        return result

    # -- per-operator estimates -------------------------------------------------

    def _estimate(self, op, child_ests, origins) -> float:
        if isinstance(op, L.EmptyTupleSource):
            return 1.0
        if isinstance(op, L.DataSourceScan):
            return self._scan_estimate(op, origins)
        if isinstance(op, L.ExternalScan):
            origins[op.record_var] = ("record", op.dataset, "")
            return DEFAULT_SCAN_CARD
        if isinstance(op, L.PrimaryIndexSearch):
            return self._primary_search_estimate(op, origins)
        if isinstance(op, L.SecondaryIndexSearch):
            return self._secondary_search_estimate(op, origins)
        if isinstance(op, L.Assign):
            self._assign_origin(op, origins)
            return child_ests[0]
        if isinstance(op, L.Select):
            return child_ests[0] * self.selectivity(op.condition, origins)
        if isinstance(op, (L.Project, L.Order)):
            est = child_ests[0]
            if isinstance(op, L.Order) and op.topk is not None:
                est = min(est, float(op.topk))
            return est
        if isinstance(op, L.Limit):
            if op.count is None:
                return child_ests[0]
            return min(child_ests[0], float(op.count + op.offset))
        if isinstance(op, L.Unnest):
            origins[op.var] = ("element", *self._collection_origin(
                op.collection, origins))
            return child_ests[0] * self._unnest_fanout(op, origins)
        if isinstance(op, L.Join):
            return self._join_estimate(op, child_ests, origins)
        if isinstance(op, L.GroupBy):
            return self._group_estimate(child_ests[0], op.keys, origins)
        if isinstance(op, L.Distinct):
            return self._group_estimate(child_ests[0], op.vars, origins)
        if isinstance(op, L.Aggregate):
            return 1.0
        if isinstance(op, L.UnionAll):
            return sum(child_ests)
        if child_ests:
            return child_ests[0]
        return DEFAULT_SCAN_CARD

    def _scan_estimate(self, op, origins) -> float:
        origins[op.record_var] = ("record", op.dataset, "")
        try:
            pk_fields = self.metadata.pk_fields(op.dataset)
        except (MetadataError, NotImplementedError):
            pk_fields = ()
        for var, name in zip(op.pk_vars, pk_fields):
            origins[var] = ("field", op.dataset, name)
        synopsis = self.stats(op.dataset)
        if synopsis is not None and synopsis.record_count > 0:
            return float(synopsis.record_count)
        return DEFAULT_SCAN_CARD

    def _bound_value(self, exprs, index: int):
        if exprs is None or index >= len(exprs):
            return None
        expr = exprs[index]
        return expr.value if isinstance(expr, LConst) else None

    def _bounds_selectivity(self, dataset, paths, op) -> float:
        """Product of per-field selectivities for an index search's
        (lo, hi) prefix bounds."""
        sel = 1.0
        width = max(len(op.lo or ()), len(op.hi or ()))
        for i, path in enumerate(paths[:width] if paths else []):
            lo = self._bound_value(op.lo, i)
            hi = self._bound_value(op.hi, i)
            fs = self.field_stats(dataset, path)
            if lo is not None and hi is not None and lo == hi:
                sel *= (fs.selectivity_eq(lo) if fs is not None
                        else DEFAULT_EQ_SEL)
            elif fs is not None:
                sel *= fs.selectivity_range(
                    lo, hi, lo_inclusive=op.lo_inclusive,
                    hi_inclusive=op.hi_inclusive)
            else:
                sel *= DEFAULT_RANGE_SEL
        return sel

    def _primary_search_estimate(self, op, origins) -> float:
        base = self._scan_estimate(op, origins)
        try:
            pk_fields = self.metadata.pk_fields(op.dataset)
        except (MetadataError, NotImplementedError):
            pk_fields = ()
        return base * self._bounds_selectivity(op.dataset, pk_fields, op)

    def _secondary_search_estimate(self, op, origins) -> float:
        base = self._scan_estimate(op, origins)
        spec = None
        try:
            for cand in self.metadata.secondary_indexes(op.dataset):
                if cand.name == op.index_name:
                    spec = cand
                    break
        except (MetadataError, NotImplementedError):
            pass
        if op.index_kind == "btree" and spec is not None:
            return base * self._bounds_selectivity(
                op.dataset, spec.fields, op)
        if op.index_kind == "array" and spec is not None:
            fs = self.field_stats(op.dataset, spec.array_path)
            fanout = (fs.avg_array_length
                      if fs is not None and fs.array_count else
                      DEFAULT_UNNEST_FANOUT)
            # per-element bounds; element fields are untracked, so use
            # defaults per bounded key column
            width = max(len(op.lo or ()), len(op.hi or ()))
            return base * fanout * (DEFAULT_RANGE_SEL ** max(1, width))
        return base * DEFAULT_EQ_SEL

    def _assign_origin(self, op, origins) -> None:
        target = self._field_origin(op.expr, origins)
        if target is not None:
            origins[op.var] = ("field", *target)

    def _field_origin(self, expr, origins):
        """(dataset, dotted path) when ``expr`` is a field-access chain
        rooted at an origin-tracked variable; else None."""
        parts = []
        while (isinstance(expr, LCall) and expr.name == "field_access"
               and len(expr.args) == 2
               and isinstance(expr.args[1], LConst)):
            parts.append(expr.args[1].value)
            expr = expr.args[0]
        if not isinstance(expr, LVar):
            return None
        origin = origins.get(expr.var)
        if origin is None:
            return None
        kind, dataset, base = origin
        path = ".".join(str(p) for p in reversed(parts))
        if kind == "record":
            return (dataset, path) if path else None
        if kind == "field":
            return (dataset, f"{base}.{path}" if path else base)
        return None       # array elements: per-field stats untracked

    def _collection_origin(self, expr, origins):
        target = self._field_origin(expr, origins)
        return target if target is not None else (None, None)

    def _unnest_fanout(self, op, origins) -> float:
        target = self._field_origin(op.collection, origins)
        if target is not None and target[0] is not None:
            fs = self.field_stats(*target)
            if fs is not None and fs.array_count:
                return fs.avg_array_length
        return DEFAULT_UNNEST_FANOUT

    def _distinct_of(self, var, origins):
        origin = origins.get(var)
        if origin is None or origin[0] != "field":
            return None
        fs = self.field_stats(origin[1], origin[2])
        if fs is None or fs.distinct <= 0:
            return None
        return float(fs.distinct)

    def _group_estimate(self, child_est, key_vars, origins) -> float:
        groups = 1.0
        known = False
        for var in key_vars:
            ndv = self._distinct_of(var, origins)
            if ndv is not None:
                groups *= ndv
                known = True
        if not known:
            groups = max(1.0, child_est ** 0.5)
        return min(child_est, groups)

    # -- predicates -------------------------------------------------------------

    def selectivity(self, condition, origins) -> float:
        """Estimated fraction of tuples satisfying ``condition``."""
        sel = 1.0
        for part in conjuncts(condition):
            sel *= self._conjunct_selectivity(part, origins)
        return max(0.0, min(1.0, sel))

    def _conjunct_selectivity(self, part, origins) -> float:
        if isinstance(part, LConst):
            return 1.0 if part.value is True else 0.0
        if not isinstance(part, LCall):
            return DEFAULT_OTHER_SEL
        name = part.name
        if name not in ("eq", *_RANGE_CMPS) or len(part.args) != 2:
            return DEFAULT_OTHER_SEL
        a, b = part.args
        target, const, cmp_name = None, None, name
        swap = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}
        if isinstance(b, LConst):
            target = self._field_origin(a, origins)
            const = b.value
        elif isinstance(a, LConst):
            target = self._field_origin(b, origins)
            const = a.value
            cmp_name = swap[name]
        if target is None:
            return DEFAULT_EQ_SEL if name == "eq" else DEFAULT_RANGE_SEL
        fs = self.field_stats(*target)
        if fs is None:
            return DEFAULT_EQ_SEL if name == "eq" else DEFAULT_RANGE_SEL
        if cmp_name == "eq":
            return fs.selectivity_eq(const)
        if cmp_name in ("lt", "le"):
            return fs.selectivity_range(
                None, const, hi_inclusive=(cmp_name == "le"))
        return fs.selectivity_range(
            const, None, lo_inclusive=(cmp_name == "ge"))

    # -- joins ------------------------------------------------------------------

    def equi_pair_selectivity(self, lvar, rvar, origins,
                              left_est, right_est) -> float:
        """1 / max(ndv) for one ``eq($$l, $$r)`` pair, with the input
        cardinalities as the ndv fallback (right for key-foreign-key
        joins, conservative otherwise)."""
        ndv_l = self._distinct_of(lvar, origins) or max(left_est, 1.0)
        ndv_r = self._distinct_of(rvar, origins) or max(right_est, 1.0)
        return 1.0 / max(ndv_l, ndv_r, 1.0)

    def join_output(self, left_est, right_est, condition, origins,
                    left_vars=None, right_vars=None) -> float:
        """Estimated output of an inner join of two inputs under
        ``condition`` (var sets optional; they tighten equi detection)."""
        est = left_est * right_est
        for part in conjuncts(condition):
            if (isinstance(part, LCall) and part.name == "eq"
                    and len(part.args) == 2
                    and isinstance(part.args[0], LVar)
                    and isinstance(part.args[1], LVar)):
                a, b = part.args[0].var, part.args[1].var
                if left_vars is not None and right_vars is not None:
                    if a in right_vars and b in left_vars:
                        a, b = b, a
                    if not (a in left_vars and b in right_vars):
                        est *= DEFAULT_OTHER_SEL
                        continue
                est *= self.equi_pair_selectivity(
                    a, b, origins, left_est, right_est)
            else:
                est *= self._conjunct_selectivity(part, origins)
        return est

    def _join_estimate(self, op, child_ests, origins) -> float:
        left_est, right_est = child_ests
        inner = self.join_output(
            left_est, right_est, op.condition, origins,
            set(op.child_schema(0)), set(op.child_schema(1)))
        if op.kind == "inner":
            return inner
        if op.kind == "leftouter":
            return max(inner, left_est)
        if op.kind == "leftsemi":
            return min(left_est, max(inner, 1.0))
        return max(left_est - inner, 1.0)      # leftanti
