"""Algebricks: the rule-based, data-partition-aware compiler framework."""

from repro.algebricks import logical
from repro.algebricks.expressions import (
    LCall,
    LCase,
    LCollCtor,
    LConst,
    LExpr,
    LLambdaVar,
    LObjCtor,
    LQuant,
    LVar,
    conjuncts,
    fold_constants,
    free_vars,
    make_conjunction,
    substitute,
    to_runtime,
    transform,
)
from repro.algebricks.jobgen import JobGenerator, Stream, compile_plan
from repro.algebricks.rules import (
    MetadataView,
    OptimizerContext,
    explain,
    optimize,
    plan_signature,
)

__all__ = [
    "JobGenerator",
    "LCall",
    "LCase",
    "LCollCtor",
    "LConst",
    "LExpr",
    "LLambdaVar",
    "LObjCtor",
    "LQuant",
    "LVar",
    "MetadataView",
    "OptimizerContext",
    "Stream",
    "compile_plan",
    "conjuncts",
    "explain",
    "fold_constants",
    "free_vars",
    "logical",
    "make_conjunction",
    "optimize",
    "plan_signature",
    "substitute",
    "to_runtime",
    "transform",
]
