"""Data feeds: continuous ingestion (paper Fig. 1's "Data Feeds" arrow).

AsterixDB's feeds pipe external data sources into datasets continuously —
the web/social-media firehose of the original use cases.  A feed couples
a *source* (anything iterable that yields ADM records: a generator, a
file being appended to, a socket in real life) to a dataset, ingesting in
batches through the normal transactional path (so fed records are
recoverable like any others, and LSM memory components do the
"ingestion buffering" of Fig. 2).

Semantics: at-least-once with upsert idempotence — a batch interrupted
mid-way re-applies cleanly, the same guarantee the real feeds framework
settled on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import (
    AsterixError,
    DuplicateError,
    UnknownEntityError,
)


@dataclass
class FeedStats:
    batches: int = 0
    records: int = 0
    failures: int = 0


class FeedSource:
    """Anything that yields record batches; exhaustion ends the feed."""

    def next_batch(self, max_records: int) -> list:
        raise NotImplementedError


class GeneratorSource(FeedSource):
    """Wraps a Python iterable of records."""

    def __init__(self, iterable):
        self._it = iter(iterable)

    def next_batch(self, max_records: int) -> list:
        return list(itertools.islice(self._it, max_records))


class FileTailSource(FeedSource):
    """Tails an ADM-lines file: new lines appended between polls become
    new records (the classic file feed adapter)."""

    def __init__(self, path: str):
        from repro.adm.parser import parse_adm

        self.path = path
        self._offset = 0
        self._parse = parse_adm

    def next_batch(self, max_records: int) -> list:
        records = []
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                f.seek(self._offset)
                for line in f:
                    if not line.endswith("\n"):
                        break   # partial tail line: wait for more
                    self._offset += len(line)
                    line = line.strip()
                    if line:
                        records.append(self._parse(line))
                    if len(records) >= max_records:
                        break
        except FileNotFoundError:
            pass
        return records


@dataclass
class Feed:
    name: str
    source: FeedSource
    dataset: str | None = None     # qualified, set by connect
    state: str = "created"          # created | connected | running | stopped
    batch_size: int = 64
    stats: FeedStats = field(default_factory=FeedStats)


class FeedManager:
    """CREATE/CONNECT/START/STOP FEED, as a Python API."""

    def __init__(self, instance):
        self.instance = instance
        self.feeds: dict[str, Feed] = {}

    def create_feed(self, name: str, source: FeedSource, *,
                    batch_size: int = 64) -> Feed:
        if name in self.feeds:
            raise DuplicateError(f"feed {name} exists")
        feed = Feed(name, source, batch_size=batch_size)
        self.feeds[name] = feed
        return feed

    def connect_feed(self, name: str, dataset: str) -> None:
        feed = self._feed(name)
        entry = self.instance.metadata.dataset_entry(dataset)
        if entry.kind != "internal":
            raise AsterixError("feeds target internal datasets")
        feed.dataset = entry.name
        feed.state = "connected"

    def start_feed(self, name: str) -> None:
        feed = self._feed(name)
        if feed.dataset is None:
            raise AsterixError(f"feed {name} is not connected")
        feed.state = "running"

    def stop_feed(self, name: str) -> None:
        self._feed(name).state = "stopped"

    def drop_feed(self, name: str) -> None:
        self.feeds.pop(name, None)

    def _feed(self, name: str) -> Feed:
        try:
            return self.feeds[name]
        except KeyError:
            raise UnknownEntityError(f"no such feed {name}") from None

    # -- ingestion ------------------------------------------------------------

    def pump(self, name: str | None = None, *,
             max_batches: int | None = None) -> int:
        """Pull batches from running feeds into their datasets; returns
        records ingested.  (Real feeds run continuously; the simulator
        pumps explicitly so tests and benchmarks stay deterministic.)"""
        feeds = ([self._feed(name)] if name is not None
                 else [f for f in self.feeds.values()
                       if f.state == "running"])
        total = 0
        for feed in feeds:
            if feed.state != "running":
                continue
            batches = 0
            while max_batches is None or batches < max_batches:
                batch = feed.source.next_batch(feed.batch_size)
                if not batch:
                    break
                for record in batch:
                    try:
                        self.instance.cluster.insert_record(
                            feed.dataset, record, upsert=True)
                        feed.stats.records += 1
                        total += 1
                    except AsterixError:
                        feed.stats.failures += 1
                feed.stats.batches += 1
                batches += 1
                if max_batches is None and batches >= 1000:
                    break   # safety valve for unbounded sources
        return total
