"""Data feeds: continuous ingestion (paper Fig. 1's "Data Feeds" arrow).

AsterixDB's feeds pipe external data sources into datasets continuously —
the web/social-media firehose of the original use cases.  A feed couples
a *source* (anything iterable that yields ADM records: a generator, a
file being appended to, a socket in real life) to a dataset, ingesting in
batches through the normal transactional path (so fed records are
recoverable like any others, and LSM memory components do the
"ingestion buffering" of Fig. 2).

Semantics: at-least-once with upsert idempotence — a batch interrupted
mid-way re-applies cleanly, the same guarantee the real feeds framework
settled on.

Resilience (docs/RESILIENCE.md): each pulled batch is staged in the
feed's ``pending`` buffer *before* ingestion and cleared only after every
record landed, so a fault mid-batch — an injected
:class:`~repro.resilience.FeedSourceFault` at the ``feed.next_batch``
site, a node crash mid-insert — never loses data: sources are re-pulled
after simulated-clock backoff, and pending records are replayed through
the same upsert path, de-duplicated by primary key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import (
    AsterixError,
    DuplicateError,
    UnknownEntityError,
)
from repro.observability.metrics import get_registry
from repro.resilience import FeedSourceFault, ResilienceFault


@dataclass
class FeedStats:
    batches: int = 0
    records: int = 0
    failures: int = 0
    source_faults: int = 0      # FeedSourceFault firings survived
    replays: int = 0            # pending-buffer / mid-batch replays
    records_replayed: int = 0


class FeedSource:
    """Anything that yields record batches; exhaustion ends the feed."""

    def next_batch(self, max_records: int) -> list:
        raise NotImplementedError


class GeneratorSource(FeedSource):
    """Wraps a Python iterable of records."""

    def __init__(self, iterable):
        self._it = iter(iterable)

    def next_batch(self, max_records: int) -> list:
        return list(itertools.islice(self._it, max_records))


class FileTailSource(FeedSource):
    """Tails an ADM-lines file: new lines appended between polls become
    new records (the classic file feed adapter)."""

    def __init__(self, path: str):
        from repro.adm.parser import parse_adm

        self.path = path
        self._offset = 0
        self._parse = parse_adm

    def next_batch(self, max_records: int) -> list:
        records = []
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                f.seek(self._offset)
                for line in f:
                    if not line.endswith("\n"):
                        break   # partial tail line: wait for more
                    self._offset += len(line)
                    line = line.strip()
                    if line:
                        records.append(self._parse(line))
                    if len(records) >= max_records:
                        break
        except FileNotFoundError:
            pass
        return records


@dataclass
class Feed:
    name: str
    source: FeedSource
    dataset: str | None = None     # qualified, set by connect
    state: str = "created"          # created | connected | running | stopped
    batch_size: int = 64
    stats: FeedStats = field(default_factory=FeedStats)
    #: The staged batch currently being ingested; survives a faulted pump
    #: and is replayed (upsert-deduplicated) by the next one.
    pending: list = field(default_factory=list)


class FeedManager:
    """CREATE/CONNECT/START/STOP FEED, as a Python API."""

    def __init__(self, instance):
        self.instance = instance
        self.feeds: dict[str, Feed] = {}

    def create_feed(self, name: str, source: FeedSource, *,
                    batch_size: int = 64) -> Feed:
        if name in self.feeds:
            raise DuplicateError(f"feed {name} exists")
        feed = Feed(name, source, batch_size=batch_size)
        self.feeds[name] = feed
        return feed

    def connect_feed(self, name: str, dataset: str) -> None:
        feed = self._feed(name)
        entry = self.instance.metadata.dataset_entry(dataset)
        if entry.kind != "internal":
            raise AsterixError("feeds target internal datasets")
        feed.dataset = entry.name
        feed.state = "connected"

    def start_feed(self, name: str) -> None:
        feed = self._feed(name)
        if feed.dataset is None:
            raise AsterixError(f"feed {name} is not connected")
        feed.state = "running"

    def stop_feed(self, name: str) -> None:
        self._feed(name).state = "stopped"

    def drop_feed(self, name: str) -> None:
        self.feeds.pop(name, None)

    def _feed(self, name: str) -> Feed:
        try:
            return self.feeds[name]
        except KeyError:
            raise UnknownEntityError(f"no such feed {name}") from None

    # -- ingestion ------------------------------------------------------------

    def pump(self, name: str | None = None, *,
             max_batches: int | None = None) -> int:
        """Pull batches from running feeds into their datasets; returns
        records ingested.  (Real feeds run continuously; the simulator
        pumps explicitly so tests and benchmarks stay deterministic.)

        At-least-once: a batch left in ``feed.pending`` by an earlier
        faulted pump is replayed before any new data is pulled; replays
        go through the upsert path, so primary-key duplicates collapse."""
        feeds = ([self._feed(name)] if name is not None
                 else [f for f in self.feeds.values()
                       if f.state == "running"])
        total = 0
        for feed in feeds:
            if feed.state != "running":
                continue
            batches = 0
            while max_batches is None or batches < max_batches:
                if feed.pending:
                    batch = feed.pending
                    feed.stats.replays += 1
                    feed.stats.records_replayed += len(batch)
                    get_registry().counter(
                        "resilience.feed_replays").inc()
                else:
                    batch = self._next_batch(feed)
                    if not batch:
                        break
                    feed.pending = list(batch)
                grants = self._acquire_batch_memory(feed)
                try:
                    total += self._ingest(feed, batch)
                finally:
                    for grant in grants:
                        grant.release()
                feed.pending = []
                feed.stats.batches += 1
                batches += 1
                if max_batches is None and batches >= 1000:
                    break   # safety valve for unbounded sources
        return total

    def _acquire_batch_memory(self, feed: Feed) -> list:
        """Backpressure: hold ``feed_memory_frames`` on every node's
        memory governor while a batch ingests, so ingestion competes for
        the same working-memory pool as queries instead of growing
        unaccounted.  Under heavy query load the capped admission wait
        expires as a typed
        :class:`~repro.resilience.MemoryPressureFault` — the staged
        batch stays in ``feed.pending`` and replays on the next pump,
        so backpressure delays data, never loses it."""
        cluster = self.instance.cluster
        frames = cluster.config.node.feed_memory_frames
        timeout_ms = cluster.config.node.admission_timeout_ms
        grants: list = []
        try:
            for node in cluster.nodes:    # ascending: no deadlock with
                grants.append(node.memory.admit(   # query admission
                    frames, label="feed", timeout_ms=timeout_ms))
        except ResilienceFault:
            for grant in grants:
                grant.release()
            raise
        return grants

    def _next_batch(self, feed: Feed) -> list:
        """Pull one batch, surviving injected source faults.

        The ``feed.next_batch`` injection site fires *before* the source
        cursor advances, so a retried pull re-reads the same data — the
        fault costs simulated backoff time, never records."""
        cluster = self.instance.cluster
        limit = cluster.config.resilience.feed_retry_attempts
        attempts = 0
        while True:
            try:
                cluster.injector.hit("feed.next_batch", feed=feed.name)
            except ResilienceFault as fault:
                attempts += 1
                if isinstance(fault, FeedSourceFault):
                    feed.stats.source_faults += 1
                    get_registry().counter(
                        "resilience.feed_source_faults").inc()
                else:
                    cluster.handle_fault(fault)
                if attempts >= limit:
                    raise
                cluster.retry_policy.backoff(attempts, cluster.clock)
                continue
            return feed.source.next_batch(feed.batch_size)

    def _ingest(self, feed: Feed, batch: list) -> int:
        """Upsert ``batch`` record by record; a resilience fault mid-way
        recovers the cluster (node restart + WAL replay for crashes) and
        retries from the *same* record — it may or may not have committed
        before the fault, and the upsert makes either answer correct."""
        cluster = self.instance.cluster
        limit = cluster.config.resilience.feed_retry_attempts
        ingested = 0
        attempts = 0
        i = 0
        while i < len(batch):
            try:
                cluster.insert_record(feed.dataset, batch[i], upsert=True)
            except ResilienceFault as fault:
                attempts += 1
                if attempts >= limit:
                    raise
                cluster.handle_fault(fault)
                cluster.retry_policy.backoff(attempts, cluster.clock)
                feed.stats.replays += 1
                feed.stats.records_replayed += 1
                get_registry().counter("resilience.feed_replays").inc()
                continue
            except AsterixError:
                feed.stats.failures += 1
            else:
                feed.stats.records += 1
                ingested += 1
            i += 1
        return ingested
