"""Data feeds: continuous ingestion into datasets."""

from repro.feeds.feed import (
    Feed,
    FeedManager,
    FeedSource,
    FeedStats,
    FileTailSource,
    GeneratorSource,
)

__all__ = [
    "Feed",
    "FeedManager",
    "FeedSource",
    "FeedStats",
    "FileTailSource",
    "GeneratorSource",
]
