"""External dataset adapters (paper feature 6, Fig. 3(b)).

"Support for querying and indexing of external data (e.g., data in HDFS)
as well as natively stored data": an adapter exposes an external source as
a sequence of *splits*, each yielding ADM records, so the external-scan
operator can read splits in parallel across partitions exactly like HDFS
block readers.

* :class:`LocalFSAdapter` — Fig. 3(b)'s ``localfs``: one or more local
  files in ``delimited-text`` or ``adm`` (JSON-superset) format; each file
  is one split.
* :class:`HDFSAdapter` — reads from the simulated HDFS
  (:mod:`repro.external.hdfs`); each block is one split.

Delimited text needs a schema to name and type its columns — which is why
Fig. 3(b) defines the CLOSED ``AccessLogType``; the adapter takes the
ordered field list from the dataset's type.
"""

from __future__ import annotations

import os

from repro.adm.parser import parse_adm
from repro.adm.types import ObjectType, PrimitiveType, TypeReference
from repro.adm.values import TypeTag
from repro.common.errors import InvalidArgumentError


def _convert_field(text: str, ftype, registry) -> object:
    """Parse one delimited-text column per its declared type."""
    if isinstance(ftype, TypeReference) and registry is not None:
        ftype = registry.resolve(ftype.ref_name)
    if isinstance(ftype, PrimitiveType):
        tag = ftype.tag
        if tag in (TypeTag.TINYINT, TypeTag.SMALLINT, TypeTag.INTEGER,
                   TypeTag.BIGINT):
            return int(text)
        if tag in (TypeTag.FLOAT, TypeTag.DOUBLE):
            return float(text)
        if tag is TypeTag.BOOLEAN:
            return text.strip().lower() == "true"
        if tag is TypeTag.STRING:
            return text
        # temporal/spatial columns use the ADM textual constructors' body
        from repro.adm.values import (
            ADate, ADateTime, ADuration, APoint, ATime,
        )

        parsers = {
            TypeTag.DATE: ADate.parse,
            TypeTag.TIME: ATime.parse,
            TypeTag.DATETIME: ADateTime.parse,
            TypeTag.DURATION: ADuration.parse,
            TypeTag.POINT: APoint.parse,
        }
        if tag in parsers:
            return parsers[tag](text)
    return text


class LocalFSAdapter:
    """Reads local files as an external dataset."""

    def __init__(self, path: str, format: str = "adm", *,
                 delimiter: str = "|",
                 dataset_type: ObjectType | None = None,
                 type_registry=None):
        # Fig. 3(b) writes localhost:///path; strip the authority
        if "://" in path:
            path = path.split("://", 1)[1]
            path = path.lstrip("/")
            if not path.startswith("/"):
                path = "/" + path
        if path.startswith("localhost:"):
            path = path[len("localhost:"):]
        self.path = path
        self.format = format
        self.delimiter = delimiter
        self.dataset_type = dataset_type
        self.type_registry = type_registry
        self._bytes_read = 0
        if format == "delimited-text" and dataset_type is None:
            raise InvalidArgumentError(
                "delimited-text needs the dataset type for its columns"
            )

    def _files(self):
        if os.path.isdir(self.path):
            return sorted(
                os.path.join(self.path, f)
                for f in os.listdir(self.path)
                if not f.startswith(".")
            )
        return [self.path]

    def read_splits(self):
        """Yield (split_index, record) pairs; one split per file."""
        for split, path in enumerate(self._files()):
            with open(path, "r", encoding="utf-8") as f:
                for line in f:
                    self._bytes_read += len(line)
                    line = line.strip()
                    if not line:
                        continue
                    yield split, self._parse_line(line)

    def _parse_line(self, line: str) -> dict:
        if self.format == "adm":
            record = parse_adm(line)
            if not isinstance(record, dict):
                raise InvalidArgumentError(
                    f"adm line is not an object: {line[:60]!r}"
                )
            return record
        columns = line.split(self.delimiter)
        fields = self.dataset_type.fields
        if len(columns) != len(fields):
            raise InvalidArgumentError(
                f"expected {len(fields)} columns, got {len(columns)}: "
                f"{line[:60]!r}"
            )
        return {
            f.name: _convert_field(c, f.type, self.type_registry)
            for f, c in zip(fields, columns)
        }

    def take_bytes_read(self) -> int:
        n = self._bytes_read
        self._bytes_read = 0
        return n

    def __repr__(self):
        return f"localfs({self.path}, {self.format})"


class HDFSAdapter:
    """Reads a file from the simulated HDFS, one split per block."""

    def __init__(self, hdfs, path: str, format: str = "adm", *,
                 delimiter: str = "|",
                 dataset_type: ObjectType | None = None,
                 type_registry=None):
        self.hdfs = hdfs
        self.path = path
        self.format = format
        self.delimiter = delimiter
        self.dataset_type = dataset_type
        self.type_registry = type_registry
        self._bytes_read = 0

    def read_splits(self):
        for split, block in enumerate(self.hdfs.blocks_of(self.path)):
            data = self.hdfs.read_block(self.path, block.block_id)
            self._bytes_read += len(data)
            for line in data.decode("utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                yield split, self._parse_line(line)

    def _parse_line(self, line: str) -> dict:
        if self.format == "adm":
            return parse_adm(line)
        columns = line.split(self.delimiter)
        fields = self.dataset_type.fields
        return {
            f.name: _convert_field(c, f.type, self.type_registry)
            for f, c in zip(fields, columns)
        }

    def take_bytes_read(self) -> int:
        n = self._bytes_read
        self._bytes_read = 0
        return n

    def __repr__(self):
        return f"hdfs({self.path}, {self.format})"
