"""A simulated HDFS (DESIGN.md, Substitutions).

The paper's external-data story is HDFS-centric ("data in HDFS files can
be made accessible for querying in situ").  With no Hadoop available, this
module provides the smallest HDFS-shaped thing that exercises the same
code path: a namenode mapping paths to fixed-size blocks, block data on
local disk, and line-boundary-respecting splits so parallel readers see
whole records (the classic InputFormat behaviour).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.errors import StorageError

DEFAULT_BLOCK_SIZE = 64 * 1024


@dataclass(frozen=True)
class BlockInfo:
    block_id: int
    length: int


class SimulatedHDFS:
    """An in-process namenode + on-disk blocks."""

    def __init__(self, root: str, block_size: int = DEFAULT_BLOCK_SIZE):
        self.root = root
        self.block_size = block_size
        self._namenode: dict[str, list[BlockInfo]] = {}
        os.makedirs(root, exist_ok=True)
        self.reads = 0
        self.writes = 0

    def _block_path(self, path: str, block_id: int) -> str:
        safe = path.strip("/").replace("/", "__")
        return os.path.join(self.root, f"{safe}.blk{block_id}")

    # -- client API ----------------------------------------------------------

    def put(self, path: str, data: bytes) -> None:
        """Write a file, splitting into blocks at line boundaries (each
        block holds whole lines so splits are independently parseable)."""
        if path in self._namenode:
            raise StorageError(f"hdfs file exists: {path}")
        blocks = []
        start = 0
        block_id = 0
        while start < len(data):
            end = min(start + self.block_size, len(data))
            if end < len(data):
                # back off to the last newline so lines don't straddle
                nl = data.rfind(b"\n", start, end)
                if nl > start:
                    end = nl + 1
            chunk = data[start:end]
            with open(self._block_path(path, block_id), "wb") as f:
                f.write(chunk)
            self.writes += 1
            blocks.append(BlockInfo(block_id, len(chunk)))
            block_id += 1
            start = end
        self._namenode[path] = blocks

    def put_lines(self, path: str, lines) -> None:
        self.put(path, "".join(line + "\n" for line in lines).encode())

    def exists(self, path: str) -> bool:
        return path in self._namenode

    def blocks_of(self, path: str) -> list[BlockInfo]:
        try:
            return self._namenode[path]
        except KeyError:
            raise StorageError(f"no such hdfs file: {path}") from None

    def read_block(self, path: str, block_id: int) -> bytes:
        if path not in self._namenode:
            raise StorageError(f"no such hdfs file: {path}")
        self.reads += 1
        with open(self._block_path(path, block_id), "rb") as f:
            return f.read()

    def delete(self, path: str) -> None:
        for block in self._namenode.pop(path, ()):
            try:
                os.remove(self._block_path(path, block.block_id))
            except FileNotFoundError:
                pass

    def file_size(self, path: str) -> int:
        return sum(b.length for b in self.blocks_of(path))
