"""External data: localfs/HDFS adapters, simulated HDFS, CSV round-trip."""

from repro.external.adapters import HDFSAdapter, LocalFSAdapter
from repro.external.csv_io import export_csv, import_csv
from repro.external.hdfs import BlockInfo, SimulatedHDFS

__all__ = [
    "BlockInfo",
    "HDFSAdapter",
    "LocalFSAdapter",
    "SimulatedHDFS",
    "export_csv",
    "import_csv",
]
