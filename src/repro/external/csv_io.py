"""CSV import/export round-tripping (paper §V-D).

The Gloria Mark multitasking study needed "export support, in addition, to
round-trip their data in and out of the system in order to move it between
analysis tools" — a feature AsterixDB added for them.  These helpers
convert between CSV files and ADM records: scalars round-trip losslessly
via the ADM textual constructors; nested values are serialized as ADM text
in their cell.
"""

from __future__ import annotations

import csv

from repro.adm.parser import format_adm, parse_adm
from repro.common.errors import SyntaxError_
from repro.adm.values import (
    MISSING,
    ADate,
    ADateTime,
    ADuration,
    AInterval,
    APoint,
    ATime,
    TypeTag,
)


def _cell_to_text(value) -> str:
    if value is None:
        return "null"
    if value is MISSING:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (ADate, ATime, ADateTime, ADuration, APoint)):
        return repr(value)          # constructor syntax
    if isinstance(value, AInterval):
        return f"interval:{value.start}:{value.end}:{int(value.tag)}"
    return format_adm(value)


def _text_to_cell(text: str):
    if text == "":
        return MISSING
    if text == "null":
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.startswith("interval:"):
        _, start, end, tag = text.split(":")
        return AInterval(int(start), int(end), TypeTag(int(tag)))
    if any(text.startswith(c + '("') for c in
           ("date", "time", "datetime", "duration", "point", "uuid")) or \
            text.startswith(("{", "[")):
        try:
            return parse_adm(text)
        except SyntaxError_:
            return text      # not ADM after all: keep the raw string
    return text


def export_csv(path: str, records, fields: list[str]) -> int:
    """Write records to CSV with the given column order; returns count."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(fields)
        for record in records:
            writer.writerow(
                [_cell_to_text(record.get(field, MISSING))
                 for field in fields]
            )
            count += 1
    return count


def import_csv(path: str) -> list[dict]:
    """Read a CSV written by :func:`export_csv` (or any headered CSV)
    back into ADM records; MISSING cells are dropped from their record."""
    records = []
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        header = next(reader)
        for row in reader:
            record = {}
            for field, cell in zip(header, row):
                value = _text_to_cell(cell)
                if value is not MISSING:
                    record[field] = value
            records.append(record)
    return records
