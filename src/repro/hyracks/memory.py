"""The node-level memory governor (paper Fig. 2's "working memory" box).

The companion BDMS paper (arXiv 1407.0454) describes each node dividing
its memory among the buffer cache, LSM memory components, and *working
memory* for memory-intensive operators — with per-operator budgets
arbitrated against one node-wide pool rather than handed out as private
fixed allocations.  This module is that arbiter for the simulated
cluster: one :class:`MemoryGovernor` per :class:`NodeController` owns
``NodeConfig.query_memory_frames`` frames and hands out
:class:`MemoryGrant` leases to

* **query admissions** — :meth:`admit` reserves
  ``query_admission_frames`` per node before a job's first stage runs.
  When the pool can't cover the reservation the query *queues* (a capped
  condition wait); the cap expiring surfaces as a typed
  :class:`~repro.resilience.MemoryPressureFault` (ASX3505), and a
  reservation larger than the whole budget is rejected immediately with
  :class:`~repro.resilience.MemoryBudgetFault` (ASX3506) — never a hang.
* **operators** — sort, group-by, and join request their
  ``*_memory_frames`` default (or explicit ``memory_frames``) through
  :meth:`acquire` and size their spill thresholds from the possibly
  reduced grant.  Operator grants never block: the query's admission
  reservation is borrowed as a floor, so an admitted query always makes
  progress, just with more spilling under contention.
* **feed batches** — the feed pump holds ``feed_memory_frames`` per node
  while ingesting a batch (:mod:`repro.feeds.feed`), so heavy queries
  apply backpressure to ingestion instead of letting it grow unbounded.

Serial equivalence: granting carries **no** simulated-clock charge, and
a request made with the pool otherwise idle receives exactly what it
asked for — so with the governor sized to the old per-operator defaults
and one query at a time, results, tuple counts, and simulated times are
byte-identical to the pre-governor fixed-budget behaviour.

Observability: every grant bumps the ``memory.*`` counter/gauge family
and, when a tracing span is at hand, emits one ``memory_grant`` span
event (docs/OBSERVABILITY.md lists the vocabulary).
"""

from __future__ import annotations

import threading
import time

from repro.observability.metrics import get_registry
from repro.resilience import MemoryBudgetFault, MemoryPressureFault


class MemoryGrant:
    """A lease on governor frames; release exactly once (idempotent).

    ``frames`` is what the requester may use; ``borrowed`` of those came
    out of the query's admission reservation (returned to it on release)
    and the rest (``frames - borrowed``) came from the node's free pool.
    Admission reservations are themselves grants with ``borrowed == 0``
    and a private ``available`` balance operators borrow against.
    """

    __slots__ = ("governor", "label", "frames", "borrowed", "available",
                 "reservation", "generation", "released")

    def __init__(self, governor: "MemoryGovernor", label: str, frames: int,
                 borrowed: int = 0,
                 reservation: "MemoryGrant | None" = None):
        self.governor = governor
        self.label = label
        self.frames = frames
        self.borrowed = borrowed
        self.reservation = reservation
        self.available = frames      # only meaningful for reservations
        self.generation = governor.generation
        self.released = False

    def release(self) -> None:
        self.governor.release(self)

    def __enter__(self) -> "MemoryGrant":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self):
        return (f"MemoryGrant({self.label}, frames={self.frames}, "
                f"borrowed={self.borrowed})")


class MemoryGovernor:
    """Arbitrates one node's working-memory frame budget.

    Thread-safe: admissions and feed pumps request from coordinator /
    pump threads while operator grants arrive from the node's worker
    thread.  ``used`` never exceeds ``capacity``; ``peak`` records the
    high-water mark (mirrored to the ``memory.node<N>.peak_frames``
    gauge, which the contention tests assert against).
    """

    def __init__(self, capacity_frames: int, node_id: int = 0):
        self.capacity = max(1, int(capacity_frames))
        self.node_id = node_id
        self.used = 0
        self.peak = 0
        #: Bumped when the node crashes (:meth:`reset`): grants issued
        #: before the crash died with the node and must not be
        #: double-counted when their holders unwind through ``finally``.
        self.generation = 0
        self._cond = threading.Condition()
        registry = get_registry()
        self._m_grants = registry.counter("memory.grants")
        self._m_reduced = registry.counter("memory.reduced_grants")
        self._m_releases = registry.counter("memory.releases")
        self._m_grant_frames = registry.histogram("memory.grant_frames")
        self._m_admissions = registry.counter("memory.admissions")
        self._m_waits = registry.counter("memory.admission_waits")
        self._m_wait_us = registry.histogram("memory.admission_wait_us")
        self._m_timeouts = registry.counter("memory.admission_timeouts")
        self._m_rejects = registry.counter("memory.admission_rejects")
        self._g_queue = registry.gauge("memory.admission_queue")
        self._g_used = registry.gauge(f"memory.node{node_id}.used_frames")
        self._g_peak = registry.gauge(f"memory.node{node_id}.peak_frames")

    @property
    def free(self) -> int:
        return self.capacity - self.used

    # -- accounting (call with self._cond held) -------------------------------

    def _take(self, frames: int) -> None:
        self.used += frames
        if self.used > self.peak:
            self.peak = self.used
            self._g_peak.set(self.peak)
        self._g_used.set(self.used)

    def _give_back(self, frames: int) -> None:
        self.used -= frames
        self._g_used.set(self.used)
        self._cond.notify_all()

    # -- the three request paths ----------------------------------------------

    def admit(self, frames: int, *, label: str = "query",
              timeout_ms: float = 2000.0, span=None) -> MemoryGrant:
        """Reserve ``frames`` for an admitted query (or a feed batch),
        queueing up to ``timeout_ms`` wall milliseconds for the pool to
        drain.  Raises :class:`MemoryBudgetFault` when ``frames`` can
        never fit and :class:`MemoryPressureFault` when the wait cap
        expires — typed errors in both cases, never a hang."""
        frames = max(1, int(frames))
        if frames > self.capacity:
            self._m_rejects.inc()
            raise MemoryBudgetFault(
                f"minimum reservation of {frames} frames exceeds the "
                f"node budget of {self.capacity} frames "
                f"(NodeConfig.query_memory_frames)",
                site="memory.admit", node=self.node_id,
                context={"label": label, "frames": frames},
            )
        deadline = None
        waited = False
        started = time.perf_counter()
        with self._cond:
            while self.free < frames:
                if not waited:
                    waited = True
                    self._m_waits.inc()
                    self._g_queue.inc()
                if deadline is None:
                    deadline = started + timeout_ms / 1e3
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not self._cond.wait(remaining):
                    self._g_queue.dec()
                    self._m_timeouts.inc()
                    raise MemoryPressureFault(
                        f"{label} waited {timeout_ms:.0f}ms for {frames} "
                        f"frames ({self.used}/{self.capacity} in use)",
                        site="memory.admit", node=self.node_id,
                        context={"label": label, "frames": frames},
                    )
            if waited:
                self._g_queue.dec()
                self._m_wait_us.observe(
                    (time.perf_counter() - started) * 1e6)
            self._take(frames)
            grant = MemoryGrant(self, label, frames)
        self._m_admissions.inc()
        self._record(grant, frames, span, kind="memory_admission")
        return grant

    def acquire(self, desired: int, *, label: str = "op",
                reservation: MemoryGrant | None = None,
                span=None) -> MemoryGrant:
        """Grant up to ``desired`` frames to an operator, reduced —
        never queued — when the pool is contended.  Frames come first
        from the query's admission ``reservation`` (its guaranteed
        floor), then from the free pool; the grant is therefore at least
        1 frame for any admitted query and the operator spills more
        instead of waiting (waiting here could deadlock: operator tasks
        hold the node lock)."""
        desired = max(1, int(desired))
        with self._cond:
            borrowed = 0
            if reservation is not None and not reservation.released \
                    and reservation.generation == self.generation:
                borrowed = min(reservation.available, desired)
                reservation.available -= borrowed
            extra = min(desired - borrowed, self.free)
            if borrowed + extra == 0:
                raise MemoryPressureFault(
                    f"{label} found its admission reservation and the "
                    f"free pool both empty "
                    f"({self.used}/{self.capacity} frames in use)",
                    site="memory.acquire", node=self.node_id,
                    context={"label": label, "desired": desired},
                )
            self._take(extra)
            grant = MemoryGrant(self, label, borrowed + extra, borrowed,
                                reservation)
        if grant.frames < desired:
            self._m_reduced.inc()
        self._record(grant, desired, span, kind="memory_grant")
        return grant

    def release(self, grant: MemoryGrant) -> None:
        """Return a grant's frames: pool-sourced frames to the free pool,
        borrowed frames to the query's admission reservation.  Idempotent;
        grants from before a node crash are dropped, not double-counted."""
        if grant.released:
            return
        grant.released = True
        if grant.generation != self.generation:
            return               # the crash already zeroed the pool
        with self._cond:
            if grant.borrowed and grant.reservation is not None \
                    and not grant.reservation.released:
                grant.reservation.available += grant.borrowed
            self._give_back(grant.frames - grant.borrowed)
        self._m_releases.inc()

    # -- crash fidelity --------------------------------------------------------

    def reset(self) -> None:
        """The node died: all leases die with it.  Holders unwinding
        later see the generation bump and skip their release."""
        with self._cond:
            self.generation += 1
            self.used = 0
            self._g_used.set(0)
            self._cond.notify_all()

    # -- observability ---------------------------------------------------------

    def _record(self, grant: MemoryGrant, desired: int, span,
                kind: str) -> None:
        self._m_grants.inc()
        self._m_grant_frames.observe(grant.frames)
        if span is not None:
            span.add_event(
                kind, node=self.node_id, label=grant.label,
                desired=desired, granted=grant.frames,
                borrowed=grant.borrowed, used_frames=self.used,
                capacity=self.capacity,
            )

    def __repr__(self):
        return (f"MemoryGovernor(node={self.node_id}, "
                f"used={self.used}/{self.capacity})")
