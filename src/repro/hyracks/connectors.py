"""Connector descriptors: how tuples move between operator partitions.

These are Hyracks' data-redistribution primitives; the Algebricks physical
layer decides which one each edge needs based on partitioning properties
(paper Fig. 5's "data-partition-aware" optimization is exactly the art of
inserting as few of the expensive ones as possible).

Every connector charges the simulated clock for the tuples it moves to a
*different* partition — local (same-partition) delivery is free, which is
what makes partition-property-preserving plans measurably cheaper.
"""

from __future__ import annotations

from repro.adm.comparators import tuple_key
from repro.adm.values import hash_value
from repro.hyracks.job import ConnectorDescriptor


class OneToOneConnector(ConnectorDescriptor):
    """Partition i feeds consumer partition i (pipelining; no data moves)."""

    name = "1:1"

    def route(self, producer_outputs, num_consumers, ctx):
        outputs = [list(part) for part in producer_outputs]
        if len(outputs) == num_consumers:
            return outputs
        if len(outputs) == 1 and num_consumers > 1:
            # widening a singleton source: everything stays on partition 0
            return [outputs[0]] + [[] for _ in range(num_consumers - 1)]
        # narrowing to a single consumer: concatenate (gather)
        if num_consumers == 1:
            merged = []
            for i, part in enumerate(outputs):
                if i != 0:
                    ctx.charge_network(len(part))
                merged.extend(part)
            return [merged]
        raise ValueError(
            f"1:1 connector with {len(outputs)} producers and "
            f"{num_consumers} consumers"
        )


class HashPartitionConnector(ConnectorDescriptor):
    """Hash-partition on key fields — the workhorse behind parallel joins,
    grouping, and primary-key routing of INSERT/UPSERT."""

    name = "hash"

    def __init__(self, key_fields: list[int]):
        self.key_fields = list(key_fields)

    def route(self, producer_outputs, num_consumers, ctx):
        outputs = [[] for _ in range(num_consumers)]
        cols = tuple(self.key_fields)
        # the job's shared key cache (when routing inside the executor):
        # the hash computed here is reused byte-for-byte by the consuming
        # join/group-by, which keys the very same tuple objects on the
        # very same columns
        cache = getattr(ctx, "key_cache", None)
        num_producers = len(producer_outputs)
        for src, part in enumerate(producer_outputs):
            for tup in part:
                if cache is not None:
                    target = cache.key_hash(tup, cols) % num_consumers
                else:
                    key = tuple(tup[i] for i in cols)
                    target = hash_value(key) % num_consumers
                ctx.charge_hash(1)
                if target != (src % num_consumers) \
                        or num_producers != num_consumers:
                    ctx.charge_network(1)
                outputs[target].append(tup)
        return outputs

    def __repr__(self):
        return f"hash({self.key_fields})"


class BroadcastConnector(ConnectorDescriptor):
    """Every producer tuple goes to every consumer partition (small build
    sides of joins)."""

    name = "broadcast"

    def route(self, producer_outputs, num_consumers, ctx):
        merged = []
        for part in producer_outputs:
            merged.extend(part)
        ctx.charge_network(len(merged) * max(0, num_consumers - 1))
        return [list(merged) for _ in range(num_consumers)]


class MergeConnector(ConnectorDescriptor):
    """Gather sorted partitions into one globally sorted stream (the final
    exchange under a parallel ORDER BY)."""

    name = "sort-merge"

    def __init__(self, key_fields: list[int], descending: list[bool] | None = None):
        self.key_fields = list(key_fields)
        self.descending = list(descending or [False] * len(key_fields))

    def _sort_key(self, tup):
        # per-field descending is handled by the upstream sort; the merge
        # connector re-sorts with the same composite key for correctness
        return tuple(
            tuple_key((tup[i],)) for i in self.key_fields
        )

    def route(self, producer_outputs, num_consumers, ctx):
        if num_consumers != 1:
            raise ValueError("merge connector gathers to one partition")
        import heapq

        for i, part in enumerate(producer_outputs):
            if i != 0:
                ctx.charge_network(len(part))
        # batched (the default): compile the composite key once over all
        # partitions' tuples, so heap pushes reuse one cheap closure
        # instead of rebuilding per-field wrappers per push; same merge
        # order, same per-pop compare charge
        if getattr(ctx, "batch_execution", True):
            key = self._compiled_key(
                [t for part in producer_outputs for t in part])
        else:
            key = self._key_with_order
        iters = [iter(part) for part in producer_outputs]
        heap = []
        pushes = 0
        for rank, it in enumerate(iters):
            for tup in it:
                heap.append((key(tup), rank, id(tup), tup))
                pushes += 1
                break
        heapq.heapify(heap)
        merged = []
        while heap:
            _, rank, _, tup = heapq.heappop(heap)
            merged.append(tup)
            ctx.charge_compare(1)
            for nxt in iters[rank]:
                heapq.heappush(heap, (key(nxt), rank, id(nxt), nxt))
                pushes += 1
                break
        if key is not self._key_with_order and pushes:
            from repro.observability.metrics import get_registry

            get_registry().counter("sort.key_cache_hits").inc(pushes)
        return [merged]

    def _compiled_key(self, all_tuples):
        from repro.hyracks.operators.sort import compile_order_key

        return compile_order_key(self.key_fields, self.descending,
                                 all_tuples)

    def _key_with_order(self, tup):
        from repro.hyracks.operators.sort import order_key

        return order_key(tup, self.key_fields, self.descending)

    def __repr__(self):
        return f"merge({self.key_fields})"


class RangePartitionConnector(ConnectorDescriptor):
    """Range-partition on one key field given split points (parallel global
    sorts use this; split points come from sampling)."""

    name = "range"

    def __init__(self, key_field: int, split_points: list):
        self.key_field = key_field
        self.split_points = list(split_points)

    def route(self, producer_outputs, num_consumers, ctx):
        from repro.adm.comparators import compare

        outputs = [[] for _ in range(num_consumers)]
        for part in producer_outputs:
            for tup in part:
                value = tup[self.key_field]
                target = 0
                for split in self.split_points:
                    if compare(value, split) > 0:
                        target += 1
                    else:
                        break
                target = min(target, num_consumers - 1)
                ctx.charge_network(1)
                outputs[target].append(tup)
        return outputs

    def __repr__(self):
        return f"range(${self.key_field})"
