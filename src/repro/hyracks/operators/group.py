"""Grouping and aggregation operators.

``AggregateCall`` pairs a registered aggregate with the expression feeding
it.  Two grouped implementations mirror AsterixDB's physical choices: hash
group-by (with grace-style spilling under a frame budget) and pre-clustered
group-by for inputs already sorted on the grouping keys; ``AggregateOp``
is the global (single-group) variant.

With ``ExecutorConfig.batch_execution`` on (the default) every operator
here works frame-at-a-time: group keys batch through the job key cache
(``TaskContext.key_bytes_many``), each group accumulates its tuples and
folds them once through ``AggregateCall.evaluate_many`` +
``AggregateState.step_many``.  The per-tuple loops remain as the
reference semantics when the toggle is off; both paths issue the same
simulated-clock charges and produce byte-identical output, groups in the
same (first-seen / clustered) order.  ``agg.batched_steps`` counts the
values that flowed through the bulk fold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import fnv1a_bytes
from repro.functions.aggregates import AggregateState
from repro.functions.registry import resolve_aggregate
from repro.hyracks.expressions import (
    RuntimeExpr,
    compile_expr,
    compile_expr_batch,
)
from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.runfile import RunFileWriter
from repro.observability.metrics import get_registry


@dataclass
class AggregateCall:
    """One aggregate computation: function name + input expression."""

    function: str
    argument: RuntimeExpr

    def __post_init__(self):
        self._func = resolve_aggregate(self.function)
        self._eval = None       # compiled argument closure
        self._eval_many = None  # compiled frame-level evaluator

    def compile(self) -> None:
        self._eval = compile_expr(self.argument)
        self._eval_many = compile_expr_batch(self.argument, self._eval)

    @property
    def evaluator(self):
        """The per-tuple argument evaluator: the compiled closure when the
        owning operator was prepared, the interpreter otherwise."""
        return (self._eval if self._eval is not None
                else self.argument.evaluate)

    def evaluate_many(self, frame) -> list:
        """The argument over a whole frame, one comprehension — identical
        values to calling :attr:`evaluator` per tuple."""
        if self._eval_many is not None:
            return self._eval_many(frame)
        evaluate = self.argument.evaluate
        return [evaluate(t) for t in frame]

    def new_state(self) -> AggregateState:
        return AggregateState(self._func)

    def __repr__(self):
        return f"{self.function}({self.argument!r})"


def _finish_group(key_values: tuple, states: list) -> tuple:
    return key_values + tuple(s.finish() for s in states)


def _fold_group(aggregates, frame) -> list:
    """Fresh states for ``aggregates``, bulk-folded over ``frame``."""
    states = [a.new_state() for a in aggregates]
    for call, state in zip(aggregates, states):
        state.step_many(call.evaluate_many(frame))
    return states


class HashGroupByOp(OperatorDescriptor):
    """Hash aggregation on key fields, spilling by key hash when the group
    table exceeds its frame budget (inputs are hash-partitioned on the
    keys, so per-partition groups are globally correct)."""

    name = "hash-group-by"
    streaming = False     # pipeline breaker: groups close at end-of-stream

    def __init__(self, key_fields: list[int], aggregates: list[AggregateCall],
                 memory_frames: int | None = None):
        self.key_fields = list(key_fields)
        self.aggregates = list(aggregates)
        self.memory_frames = memory_frames
        self.spill_rounds = 0

    def prepare(self, config):
        for agg in self.aggregates:
            agg.compile()

    def run(self, ctx, partition, inputs):
        desired = (self.memory_frames if self.memory_frames is not None
                   else ctx.config.node.group_memory_frames)
        grant = ctx.acquire_memory(desired, label="group-by")
        try:
            budget = max(2, grant.frames * ctx.frame_size)
            out = self._aggregate(ctx, inputs[0], budget, 0)
        finally:
            ctx.release_memory(grant)
        ctx.cost.tuples_out += len(out)
        return out

    def _spill(self, ctx, overflow, kb, tup, depth, fan_out, seed):
        """Route one tuple past a full group table into its overflow
        partition (created lazily on the first spilled tuple)."""
        if not overflow:
            self.spill_rounds += 1
            # ownership transfers to _aggregate, which finishes every
            # writer this hands it
            overflow.extend(
                RunFileWriter(ctx, f"gb{depth}")   # lint: allow-temp-pairing
                for _ in range(fan_out))
        h = fnv1a_bytes(kb, seed=seed)
        overflow[h % fan_out].write(tup)

    def _aggregate(self, ctx, data, budget, depth):
        overflow: list[RunFileWriter] = []
        fan_out = 4
        seed = 0xA6A6 + depth
        key_fields = self.key_fields
        cols = tuple(key_fields)
        ctx.charge_hash(len(data))
        if ctx.config.executor.batch_execution:
            # phase 1 routes tuples into per-group pending lists with the
            # exact spill decisions of the per-tuple path (same key
            # bytes, same first-seen order, same table-size threshold);
            # phase 2 folds each group once
            groups: dict[bytes, tuple] = {}
            for tup, kb in zip(data, ctx.key_bytes_many(data, cols)):
                entry = groups.get(kb)
                if entry is None:
                    if len(groups) >= budget and depth < 8:
                        self._spill(ctx, overflow, kb, tup, depth,
                                    fan_out, seed)
                        continue
                    entry = (tuple(tup[i] for i in key_fields), [])
                    groups[kb] = entry
                entry[1].append(tup)
            aggregates = self.aggregates
            out = [
                _finish_group(key, _fold_group(aggregates, pending))
                for key, pending in groups.values()
            ]
            grouped = sum(len(p) for _, p in groups.values())
            if grouped:
                get_registry().counter("agg.batched_steps").inc(
                    grouped * max(1, len(aggregates)))
        else:
            evals = [a.evaluator for a in self.aggregates]
            groups = {}
            for tup in data:
                kb = ctx.key_bytes(tup, cols)
                entry = groups.get(kb)
                if entry is None:
                    if len(groups) >= budget and depth < 8:
                        self._spill(ctx, overflow, kb, tup, depth,
                                    fan_out, seed)
                        continue
                    key = tuple(tup[i] for i in key_fields)
                    entry = (key, [a.new_state() for a in self.aggregates])
                    groups[kb] = entry
                for ev, state in zip(evals, entry[1]):
                    state.step(ev(tup))   # lint: allow-per-tuple
            out = [_finish_group(key, states)
                   for key, states in groups.values()]
        ctx.charge_cpu(len(data) * max(1, len(self.aggregates)))
        for writer in overflow:
            reader = writer.finish()
            try:
                spilled = list(reader)   # exhaustion auto-releases the file
            finally:
                reader.close()           # idempotent; covers partial reads
            out.extend(self._aggregate(ctx, spilled, budget, depth + 1))
        return out

    def __repr__(self):
        return f"hash-group-by({self.key_fields}, {self.aggregates})"


class PreclusteredGroupByOp(OperatorDescriptor):
    """Group-by over key-sorted input: constant memory, no hashing —
    the physical operator Algebricks picks when the input's local order
    property already covers the grouping keys."""

    name = "preclustered-group-by"

    def __init__(self, key_fields: list[int],
                 aggregates: list[AggregateCall]):
        self.key_fields = list(key_fields)
        self.aggregates = list(aggregates)

    def prepare(self, config):
        for agg in self.aggregates:
            agg.compile()

    def run(self, ctx, partition, inputs):
        data = inputs[0]
        out = []
        cols = tuple(self.key_fields)
        ctx.charge_compare(len(data))
        if ctx.config.executor.batch_execution:
            # batch the key bytes, scan for group boundaries, fold each
            # clustered slice once
            kbs = ctx.key_bytes_many(data, cols)
            aggregates = self.aggregates
            start = 0
            for idx in range(1, len(data) + 1):
                if idx < len(data) and kbs[idx] == kbs[start]:
                    continue
                frame = data[start:idx]
                key = tuple(frame[0][i] for i in self.key_fields)
                out.append(_finish_group(key,
                                         _fold_group(aggregates, frame)))
                start = idx
            if data:
                get_registry().counter("agg.batched_steps").inc(
                    len(data) * max(1, len(aggregates)))
        else:
            current_kb = None
            current_key: tuple = ()
            states: list = []
            evals = [a.evaluator for a in self.aggregates]
            for tup in data:
                kb = ctx.key_bytes(tup, cols)
                if kb != current_kb:
                    if current_kb is not None:
                        out.append(_finish_group(current_key, states))
                    current_kb = kb
                    current_key = tuple(tup[i] for i in self.key_fields)
                    states = [a.new_state() for a in self.aggregates]
                for ev, state in zip(evals, states):
                    state.step(ev(tup))   # lint: allow-per-tuple
            if current_kb is not None:
                out.append(_finish_group(current_key, states))
        ctx.charge_cpu(len(data))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"preclustered-group-by({self.key_fields})"


class AggregateOp(OperatorDescriptor):
    """Global aggregation: the whole input is one group (gathered to a
    single partition first).  Always emits exactly one tuple."""

    partition_count = 1
    name = "aggregate"

    def __init__(self, aggregates: list[AggregateCall]):
        self.aggregates = list(aggregates)

    def prepare(self, config):
        for agg in self.aggregates:
            agg.compile()

    def run(self, ctx, partition, inputs):
        data = inputs[0]
        if ctx.config.executor.batch_execution:
            states = _fold_group(self.aggregates, data)
            if data:
                get_registry().counter("agg.batched_steps").inc(
                    len(data) * max(1, len(self.aggregates)))
        else:
            states = [a.new_state() for a in self.aggregates]
            evals = [a.evaluator for a in self.aggregates]
            for tup in data:
                for ev, state in zip(evals, states):
                    state.step(ev(tup))   # lint: allow-per-tuple
        ctx.charge_cpu(len(data) * max(1, len(self.aggregates)))
        ctx.cost.tuples_out += 1
        return [tuple(s.finish() for s in states)]

    def __repr__(self):
        return f"aggregate({self.aggregates})"
