"""Grouping and aggregation operators.

``AggregateCall`` pairs a registered aggregate with the expression feeding
it.  Two grouped implementations mirror AsterixDB's physical choices: hash
group-by (with grace-style spilling under a frame budget) and pre-clustered
group-by for inputs already sorted on the grouping keys; ``AggregateOp``
is the global (single-group) variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adm.values import fnv1a_bytes
from repro.functions.aggregates import AggregateState
from repro.functions.registry import resolve_aggregate
from repro.hyracks.expressions import RuntimeExpr, compile_expr
from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.runfile import RunFileWriter


@dataclass
class AggregateCall:
    """One aggregate computation: function name + input expression."""

    function: str
    argument: RuntimeExpr

    def __post_init__(self):
        self._func = resolve_aggregate(self.function)
        self._eval = None      # compiled argument closure

    def compile(self) -> None:
        self._eval = compile_expr(self.argument)

    @property
    def evaluator(self):
        """The per-tuple argument evaluator: the compiled closure when the
        owning operator was prepared, the interpreter otherwise."""
        return (self._eval if self._eval is not None
                else self.argument.evaluate)

    def new_state(self) -> AggregateState:
        return AggregateState(self._func)

    def __repr__(self):
        return f"{self.function}({self.argument!r})"


def _finish_group(key_values: tuple, states: list) -> tuple:
    return key_values + tuple(s.finish() for s in states)


class HashGroupByOp(OperatorDescriptor):
    """Hash aggregation on key fields, spilling by key hash when the group
    table exceeds its frame budget (inputs are hash-partitioned on the
    keys, so per-partition groups are globally correct)."""

    name = "hash-group-by"
    streaming = False     # pipeline breaker: groups close at end-of-stream

    def __init__(self, key_fields: list[int], aggregates: list[AggregateCall],
                 memory_frames: int | None = None):
        self.key_fields = list(key_fields)
        self.aggregates = list(aggregates)
        self.memory_frames = memory_frames
        self.spill_rounds = 0

    def prepare(self, config):
        for agg in self.aggregates:
            agg.compile()

    def run(self, ctx, partition, inputs):
        desired = (self.memory_frames if self.memory_frames is not None
                   else ctx.config.node.group_memory_frames)
        grant = ctx.acquire_memory(desired, label="group-by")
        try:
            budget = max(2, grant.frames * ctx.frame_size)
            out = self._aggregate(ctx, inputs[0], budget, 0)
        finally:
            ctx.release_memory(grant)
        ctx.cost.tuples_out += len(out)
        return out

    def _aggregate(self, ctx, data, budget, depth):
        groups: dict[bytes, tuple] = {}
        overflow: list[RunFileWriter] = []
        fan_out = 4
        seed = 0xA6A6 + depth
        key_fields = self.key_fields
        cols = tuple(key_fields)
        evals = [a.evaluator for a in self.aggregates]
        for tup in data:
            kb = ctx.key_bytes(tup, cols)
            ctx.charge_hash(1)
            entry = groups.get(kb)
            if entry is None:
                if len(groups) >= budget and depth < 8:
                    # table full: spill this tuple by hash for a later pass
                    if not overflow:
                        self.spill_rounds += 1
                        overflow = [RunFileWriter(ctx, f"gb{depth}")
                                    for _ in range(fan_out)]
                    h = fnv1a_bytes(kb, seed=seed)
                    overflow[h % fan_out].write(tup)
                    continue
                key = tuple(tup[i] for i in key_fields)
                entry = (key, [a.new_state() for a in self.aggregates])
                groups[kb] = entry
            for ev, state in zip(evals, entry[1]):
                state.step(ev(tup))
        ctx.charge_cpu(len(data) * max(1, len(self.aggregates)))
        out = [_finish_group(key, states) for key, states in groups.values()]
        for writer in overflow:
            reader = writer.finish()
            try:
                spilled = list(reader)   # exhaustion auto-releases the file
            finally:
                reader.close()           # idempotent; covers partial reads
            out.extend(self._aggregate(ctx, spilled, budget, depth + 1))
        return out

    def __repr__(self):
        return f"hash-group-by({self.key_fields}, {self.aggregates})"


class PreclusteredGroupByOp(OperatorDescriptor):
    """Group-by over key-sorted input: constant memory, no hashing —
    the physical operator Algebricks picks when the input's local order
    property already covers the grouping keys."""

    name = "preclustered-group-by"

    def __init__(self, key_fields: list[int],
                 aggregates: list[AggregateCall]):
        self.key_fields = list(key_fields)
        self.aggregates = list(aggregates)

    def prepare(self, config):
        for agg in self.aggregates:
            agg.compile()

    def run(self, ctx, partition, inputs):
        out = []
        current_kb = None
        current_key: tuple = ()
        states: list = []
        cols = tuple(self.key_fields)
        evals = [a.evaluator for a in self.aggregates]
        for tup in inputs[0]:
            kb = ctx.key_bytes(tup, cols)
            ctx.charge_compare(1)
            if kb != current_kb:
                if current_kb is not None:
                    out.append(_finish_group(current_key, states))
                current_kb = kb
                current_key = tuple(tup[i] for i in self.key_fields)
                states = [a.new_state() for a in self.aggregates]
            for ev, state in zip(evals, states):
                state.step(ev(tup))
        if current_kb is not None:
            out.append(_finish_group(current_key, states))
        ctx.charge_cpu(len(inputs[0]))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"preclustered-group-by({self.key_fields})"


class AggregateOp(OperatorDescriptor):
    """Global aggregation: the whole input is one group (gathered to a
    single partition first).  Always emits exactly one tuple."""

    partition_count = 1
    name = "aggregate"

    def __init__(self, aggregates: list[AggregateCall]):
        self.aggregates = list(aggregates)

    def prepare(self, config):
        for agg in self.aggregates:
            agg.compile()

    def run(self, ctx, partition, inputs):
        states = [a.new_state() for a in self.aggregates]
        evals = [a.evaluator for a in self.aggregates]
        for tup in inputs[0]:
            for ev, state in zip(evals, states):
                state.step(ev(tup))
        ctx.charge_cpu(len(inputs[0]) * max(1, len(self.aggregates)))
        ctx.cost.tuples_out += 1
        return [tuple(s.finish() for s in states)]

    def __repr__(self):
        return f"aggregate({self.aggregates})"
