"""Index access operators (features 5/8 meeting feature 4).

A secondary-index query plan in AsterixDB is a pipeline: secondary index
search (producing primary keys) → sort PKs → primary index lookup — the
[26] trick.  These operators are those stages; the Algebricks access-method
rules emit them in place of scan+select.
"""

from __future__ import annotations

from repro.adm.comparators import comparable_tuples, tuple_key
from repro.adm.values import ARectangle
from repro.hyracks.expressions import RuntimeExpr
from repro.hyracks.job import OperatorDescriptor


class PrimaryKeySearchOp(OperatorDescriptor):
    """Primary-index point/range search: emits (pk..., record) like a
    scan, but bounded.  Bound expressions are evaluated once against the
    empty tuple (bounds are constants after optimization)."""

    num_inputs = 0
    name = "primary-search"

    def __init__(self, dataset: str, lo: list | None, hi: list | None,
                 lo_inclusive: bool = True, hi_inclusive: bool = True):
        self.dataset = dataset
        self.lo = lo
        self.hi = hi
        self.lo_inclusive = lo_inclusive
        self.hi_inclusive = hi_inclusive

    def _bound(self, exprs):
        if exprs is None:
            return None
        return tuple(e.evaluate(()) for e in exprs)

    def run(self, ctx, partition, inputs):
        storage = ctx.storage_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        lo, hi = self._bound(self.lo), self._bound(self.hi)
        out = []
        for pk, record in storage.scan(
                lo, hi, lo_inclusive=self.lo_inclusive,
                hi_inclusive=self.hi_inclusive):
            # the consumed predicate is null on a key that is not
            # type-comparable with its bound; match scan+select semantics
            if lo is not None and not comparable_tuples(pk, lo):
                continue
            if hi is not None and not comparable_tuples(pk, hi):
                continue
            out.append((*pk, record))
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"primary-search({self.dataset})"


class SecondaryBTreeSearchOp(OperatorDescriptor):
    """Secondary B+ tree search: emits primary-key tuples."""

    num_inputs = 0
    name = "btree-search"

    def __init__(self, dataset: str, index_name: str,
                 lo: list | None, hi: list | None,
                 lo_inclusive: bool = True, hi_inclusive: bool = True):
        self.dataset = dataset
        self.index_name = index_name
        self.lo = lo
        self.hi = hi
        self.lo_inclusive = lo_inclusive
        self.hi_inclusive = hi_inclusive

    def _bound(self, exprs):
        if exprs is None:
            return None
        return tuple(e.evaluate(()) for e in exprs)

    def run(self, ctx, partition, inputs):
        storage = ctx.storage_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        out = [
            pk for pk in storage.search_btree(
                self.index_name, self._bound(self.lo), self._bound(self.hi),
                lo_inclusive=self.lo_inclusive,
                hi_inclusive=self.hi_inclusive)
        ]
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"btree-search({self.dataset}.{self.index_name})"


class ArrayBTreeSearchOp(OperatorDescriptor):
    """Multi-valued (array) index search: emits *deduplicated* primary-key
    tuples.

    The index holds one (element key..., pk...) entry per array element,
    so a record whose array matches through several elements appears once
    per element in the range scan.  The dedup (first occurrence wins; the
    underlying scan is key-ordered, so output order is deterministic) is
    what keeps the downstream primary lookup + residual UNNEST plan
    byte-identical to the scan plan — the residual re-derives the exact
    per-element multiplicity."""

    num_inputs = 0
    name = "array-search"

    def __init__(self, dataset: str, index_name: str,
                 lo: list | None, hi: list | None,
                 lo_inclusive: bool = True, hi_inclusive: bool = True):
        self.dataset = dataset
        self.index_name = index_name
        self.lo = lo
        self.hi = hi
        self.lo_inclusive = lo_inclusive
        self.hi_inclusive = hi_inclusive

    def _bound(self, exprs):
        if exprs is None:
            return None
        return tuple(e.evaluate(()) for e in exprs)

    def run(self, ctx, partition, inputs):
        from repro.observability.metrics import get_registry

        registry = get_registry()
        storage = ctx.storage_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        seen = set()
        out = []
        postings = 0
        for pk in storage.search_btree(
                self.index_name, self._bound(self.lo), self._bound(self.hi),
                lo_inclusive=self.lo_inclusive,
                hi_inclusive=self.hi_inclusive):
            postings += 1
            if pk in seen:
                continue
            seen.add(pk)
            out.append(pk)
        registry.counter("index.array.lookups").inc()
        registry.counter("index.array.postings").inc(postings)
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(postings)
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"array-search({self.dataset}.{self.index_name})"


class SecondaryRTreeSearchOp(OperatorDescriptor):
    """Secondary R-tree window search: emits primary-key tuples."""

    num_inputs = 0
    name = "rtree-search"

    def __init__(self, dataset: str, index_name: str,
                 window: RuntimeExpr):
        self.dataset = dataset
        self.index_name = index_name
        self.window = window

    def run(self, ctx, partition, inputs):
        window = self.window.evaluate(())
        if not isinstance(window, ARectangle):
            window = window.mbr()  # circles/polygons search by MBR
        storage = ctx.storage_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        out = list(storage.search_rtree(self.index_name, window))
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"rtree-search({self.dataset}.{self.index_name})"


class InvertedSearchOp(OperatorDescriptor):
    """Keyword/ngram index search: emits PKs of records containing all
    tokens of the query text."""

    num_inputs = 0
    name = "inverted-search"

    def __init__(self, dataset: str, index_name: str, text: RuntimeExpr):
        self.dataset = dataset
        self.index_name = index_name
        self.text = text

    def run(self, ctx, partition, inputs):
        text = self.text.evaluate(())
        storage = ctx.storage_partition(self.dataset, partition)
        before = ctx.node.io_snapshot()
        out = list(storage.search_keyword(self.index_name, text))
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"inverted-search({self.dataset}.{self.index_name})"


class PrimaryLookupOp(OperatorDescriptor):
    """Resolve PK tuples to (pk..., record) via the primary index.

    ``sort_keys=True`` applies the [26] optimization (sort references
    before fetching); E1 flips it to quantify the effect the paper
    describes."""

    name = "primary-lookup"

    def __init__(self, dataset: str, pk_width: int, sort_keys: bool = True):
        self.dataset = dataset
        self.pk_width = pk_width
        self.sort_keys = sort_keys

    def run(self, ctx, partition, inputs):
        storage = ctx.storage_partition(self.dataset, partition)
        pks = [tuple(t[: self.pk_width]) for t in inputs[0]]
        if self.sort_keys:
            pks.sort(key=tuple_key)
            ctx.charge_compare(len(pks) * max(1, len(pks).bit_length()))
        before = ctx.node.io_snapshot()
        out = []
        for pk in pks:
            record = storage.get(pk)
            if record is not None:
                out.append((*pk, record))
        ctx.node.charge_io_delta(ctx, before)
        ctx.charge_cpu(len(out))
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"primary-lookup({self.dataset}, sort={self.sort_keys})"
