"""Task context and the streaming-operator protocol.

:class:`TaskContext` gives operators access to the node hosting their
partition (storage, temp files), the cluster config (frame sizes, memory
budgets), and the cost-charging hooks that drive the simulated clock.

This module also re-exports the pipeline protocol pieces operators
declare themselves against (:class:`OperatorTask`,
:class:`BufferedOperatorTask`, and the ``streaming`` flag on
:class:`~repro.hyracks.job.OperatorDescriptor`): a streaming operator
consumes frames incrementally and may be fused into a pipelined stage;
pipeline breakers — external sort, group-by, joins (the build side must
be complete before probing), the result writer — keep ``streaming =
False`` and start a new stage, which is where the executor materializes.
"""

from __future__ import annotations

import itertools

from repro.common.config import ClusterConfig
from repro.hyracks.job import (  # noqa: F401  (re-exported protocol)
    BufferedOperatorTask,
    OperatorTask,
)
from repro.hyracks.keys import plain_key_bytes, plain_key_bytes_many
from repro.hyracks.profiler import PartitionCost

#: Process-wide monotonic sequence for temp-file names.  ``id(self)`` was
#: used before, but CPython reuses ids after GC, so two tasks could
#: collide on the same temp file; a counter is unique for the process
#: lifetime and safe for concurrent tasks (``itertools.count`` advances
#: atomically under CPython).
_TEMP_SEQ = itertools.count(1)


class TaskContext:
    """Per-(operator, partition) execution context.

    ``span`` (optional) receives ``memory_grant`` events; ``reservation``
    is the query's admission reservation on this task's node (a
    :class:`~repro.hyracks.memory.MemoryGrant`), the floor operator
    grants borrow against.
    """

    def __init__(self, node, config: ClusterConfig, cost: PartitionCost,
                 span=None, reservation=None, key_cache=None):
        self.node = node                  # NodeController hosting this task
        self.config = config
        self.cost = cost
        self.span = span
        self.reservation = reservation
        #: the job's shared KeyCache (None when an operator runs outside
        #: the executor, e.g. in a direct unit test)
        self.key_cache = key_cache

    # -- key extraction ----------------------------------------------------------

    def key_bytes(self, tup, cols) -> bytes:
        """Canonical bytes of ``tup``'s key columns (``cols`` a tuple of
        indexes, or None for the whole tuple), via the job's shared
        key cache when one is attached.  Join build/probe, group-by, and
        distinct all key through here, so a tuple already keyed by the
        partitioning connector reuses its bytes instead of
        re-canonicalizing."""
        cache = self.key_cache
        if cache is not None:
            return cache.key_bytes(tup, cols)
        return plain_key_bytes(tup, cols)

    def key_bytes_many(self, tuples, cols) -> list:
        """Batched :meth:`key_bytes` over a whole frame — one call into
        the job's key cache instead of one per tuple.  Byte-identical
        output, same cache hit/miss accounting."""
        cache = self.key_cache
        if cache is not None:
            return cache.key_bytes_many(tuples, cols)
        return plain_key_bytes_many(tuples, cols)

    # -- cost charging ---------------------------------------------------------

    def charge_cpu(self, tuples: int) -> None:
        self.cost.cpu_us += tuples * self.config.cost.tuple_cpu_us

    def charge_hash(self, n: int) -> None:
        self.cost.cpu_us += n * self.config.cost.hash_us

    def charge_compare(self, n: int) -> None:
        self.cost.cpu_us += n * self.config.cost.compare_us

    def charge_network(self, tuples: int) -> None:
        self.cost.network_us += tuples * self.config.cost.network_tuple_us

    def charge_io(self, reads: int, writes: int, seq_reads: int,
                  seq_writes: int) -> None:
        c = self.config.cost
        self.cost.io_us += (
            reads * c.page_read_us + writes * c.page_write_us
            + seq_reads * c.seq_page_read_us
            + seq_writes * c.seq_page_write_us
        )

    # -- node services -----------------------------------------------------------

    def storage_partition(self, dataset: str, partition: int):
        return self.node.get_partition(dataset, partition)

    def txn_partition(self, dataset: str, partition: int):
        return self.node.get_txn_partition(dataset, partition)

    def make_temp_file(self, label: str):
        name = f"temp/{label}_{next(_TEMP_SEQ)}"
        return self.node.fm.create_file(name)

    def release_temp_file(self, handle) -> None:
        self.node.fm.delete_file(handle)

    # -- working memory ----------------------------------------------------------

    def acquire_memory(self, desired_frames: int, *, label: str = "op"):
        """Request ``desired_frames`` working-memory frames from this
        node's :class:`~repro.hyracks.memory.MemoryGovernor`.  The grant
        may be smaller under contention (spill accordingly); release it
        in a ``finally`` via :meth:`release_memory` or the grant's
        context manager."""
        return self.node.memory.acquire(
            desired_frames, label=label, reservation=self.reservation,
            span=self.span,
        )

    def release_memory(self, grant) -> None:
        grant.release()

    @property
    def frame_size(self) -> int:
        return self.config.frame_size
