"""Task context: what one operator partition sees while running.

Gives operators access to the node hosting their partition (storage,
temp files), the cluster config (frame sizes, memory budgets), and the
cost-charging hooks that drive the simulated clock.
"""

from __future__ import annotations

from repro.common.config import ClusterConfig
from repro.hyracks.profiler import PartitionCost


class TaskContext:
    """Per-(operator, partition) execution context."""

    def __init__(self, node, config: ClusterConfig, cost: PartitionCost):
        self.node = node                  # NodeController hosting this task
        self.config = config
        self.cost = cost
        self._temp_counter = [0]

    # -- cost charging ---------------------------------------------------------

    def charge_cpu(self, tuples: int) -> None:
        self.cost.cpu_us += tuples * self.config.cost.tuple_cpu_us

    def charge_hash(self, n: int) -> None:
        self.cost.cpu_us += n * self.config.cost.hash_us

    def charge_compare(self, n: int) -> None:
        self.cost.cpu_us += n * self.config.cost.compare_us

    def charge_network(self, tuples: int) -> None:
        self.cost.network_us += tuples * self.config.cost.network_tuple_us

    def charge_io(self, reads: int, writes: int, seq_reads: int,
                  seq_writes: int) -> None:
        c = self.config.cost
        self.cost.io_us += (
            reads * c.page_read_us + writes * c.page_write_us
            + seq_reads * c.seq_page_read_us
            + seq_writes * c.seq_page_write_us
        )

    # -- node services -----------------------------------------------------------

    def storage_partition(self, dataset: str, partition: int):
        return self.node.get_partition(dataset, partition)

    def txn_partition(self, dataset: str, partition: int):
        return self.node.get_txn_partition(dataset, partition)

    def make_temp_file(self, label: str):
        self._temp_counter[0] += 1
        name = f"temp/{label}_{id(self)}_{self._temp_counter[0]}"
        return self.node.fm.create_file(name)

    def release_temp_file(self, handle) -> None:
        self.node.fm.delete_file(handle)

    @property
    def frame_size(self) -> int:
        return self.config.frame_size
