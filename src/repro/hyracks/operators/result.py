"""Result collection: the job's sink."""

from __future__ import annotations

from repro.hyracks.job import OperatorDescriptor


class ResultWriterOp(OperatorDescriptor):
    """Gathers the final stream; the cluster controller reads
    ``collected`` after the job finishes.  Single-partitioned: the
    connector feeding it performs the gather (and the global merge, when
    order matters)."""

    partition_count = 1
    name = "result-writer"
    streaming = False     # pipeline breaker: the job's terminal sink

    def __init__(self):
        self.collected: list = []

    def run(self, ctx, partition, inputs):
        self.collected = list(inputs[0])
        ctx.cost.tuples_out += len(self.collected)
        return self.collected
