"""External sort (paper Fig. 2's "working memory" in action).

The fundamental AsterixDB assumption is that data "can well exceed the size
of main memory, and likewise (at least potentially) for intermediate query
results" [10] — so the sort operator is budgeted: it accumulates at most
``memory_frames * frame_size`` tuples, sorts each batch, spills it as a
sorted run file, and finally k-way-merges the runs (recursively if there
are more runs than merge fan-in).  Experiment E4 sweeps the budget.

The paper also credits university contributions with "much-improved
parallel sorting" (§VII): the parallel plan sorts each partition locally
with this operator and merges globally through a MergeConnector.

Two key strategies coexist (ISSUE-7, ``ExecutorConfig.batch_execution``):

* :func:`order_key` — the per-tuple reference: one ``_Key`` wrapper per
  field per call, each comparison a Python-level :func:`compare` walk.
* :func:`compile_order_key` — compiles fields+descending **once per
  operator run** into a single closure over cheap ``order_part`` pairs
  (raw values when a whole key column is natively orderable), so the
  sort's O(n log n) comparisons run in the C tuple comparator.  The
  external-merge path decorates run read-back streams with precomputed
  keys (:meth:`ExternalSortOp._decorated`), so ``_merge_iter`` never
  recomputes ``key(tup)`` on a heap push; the spill-file format is
  unchanged, so page counts — and therefore simulated I/O — are
  identical.  Both strategies issue the same simulated-clock charges.
"""

from __future__ import annotations

import heapq

from repro.adm.comparators import (
    native_orderable,
    order_part,
    tuple_key,
    tuple_key_many,
)
from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.runfile import RunFileWriter
from repro.observability.metrics import get_registry


class _Reversed:
    """Inverts comparison order for DESC sort fields."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return self.key == other.key


def order_key(tup, fields: list[int], descending: list[bool]):
    """Composite sort key honoring per-field ASC/DESC."""
    parts = []
    for i, desc in zip(fields, descending):
        k = tuple_key((tup[i],))
        parts.append(_Reversed(k) if desc else k)
    return tuple(parts)


def compile_order_key(fields: list[int], descending: list[bool], data=None):
    """Compile fields+descending into one key closure ordering tuples
    exactly like :func:`order_key` (min-first is output order).

    When ``data`` — the full input the keys will be drawn from — is
    supplied, a key column whose values are natively orderable (one
    plain scalar type, or any mix of ints and floats) compiles to the
    raw value, pushing those comparisons entirely into C.  Keys from one
    compilation never compare against :func:`order_key` output.
    """
    parts = []
    for f, desc in zip(fields, descending):
        if data is not None and native_orderable([t[f] for t in data]):
            def get(t, _f=f):
                return t[_f]
        else:
            def get(t, _f=f):
                return order_part(t[_f])
        parts.append((get, desc))
    if len(parts) == 1:
        get, desc = parts[0]
        if desc:
            return lambda t: _Reversed(get(t))
        return get
    return lambda t: tuple(
        _Reversed(g(t)) if d else g(t) for g, d in parts)


def _compile_sort_plan(fields, descending, data):
    """``(sorted_key, reverse, heap_key)`` for one sort run: pass the
    first two to ``sorted`` (an all-DESC order sorts by the ascending
    key with ``reverse=True`` — both orders break ties by input
    position, so the results are identical to per-field ``_Reversed``
    wrapping); ``heap_key`` orders min-first for merge heaps."""
    if descending and all(descending):
        asc = compile_order_key(fields, [False] * len(fields), data)
        return asc, True, (lambda t: _Reversed(asc(t)))
    key = compile_order_key(fields, descending, data)
    return key, False, key


class ExternalSortOp(OperatorDescriptor):
    """Budgeted external merge sort of one partition's stream."""

    name = "external-sort"
    streaming = False     # pipeline breaker: output exists only after the
                          # last input tuple has been seen

    def __init__(self, fields: list[int], descending: list[bool] | None = None,
                 memory_frames: int | None = None):
        self.fields = list(fields)
        self.descending = list(descending or [False] * len(fields))
        self.memory_frames = memory_frames
        self.last_run_counts: list[int] = []   # observability for E4
        self.last_merge_passes = 0             # read-back passes, incl. final

    def run(self, ctx, partition, inputs):
        desired = (self.memory_frames if self.memory_frames is not None
                   else ctx.config.node.sort_memory_frames)
        grant = ctx.acquire_memory(desired, label="sort")
        try:
            return self._sort(ctx, inputs[0],
                              max(2, grant.frames * ctx.frame_size))
        finally:
            ctx.release_memory(grant)

    def _sort(self, ctx, data, budget):
        batched = ctx.config.executor.batch_execution
        if batched:
            sort_key, reverse, heap_key = _compile_sort_plan(
                self.fields, self.descending, data)
        else:
            # per-tuple reference path: same comparisons, same charges
            sort_key = heap_key = (
                lambda t: order_key(t, self.fields, self.descending))
            reverse = False
        ctx.charge_cpu(len(data))
        if len(data) <= budget:
            # fits in memory: one quicksort, no spill
            out = sorted(data, key=sort_key, reverse=reverse)
            ctx.charge_compare(len(data) * max(1, len(data).bit_length()))
            self.last_run_counts.append(0)
            ctx.cost.tuples_out += len(out)
            return out
        # run generation
        runs = []
        for start in range(0, len(data), budget):
            chunk = sorted(data[start:start + budget], key=sort_key,
                           reverse=reverse)
            ctx.charge_compare(len(chunk) * max(1, len(chunk).bit_length()))
            writer = RunFileWriter(ctx, "sortrun")
            for tup in chunk:
                writer.write(tup)
            runs.append(writer.finish())
        self.last_run_counts.append(len(runs))
        # k-way merge under the same budget, measured in runs: classic
        # pass-structured merging — every pass sweeps the current run
        # list once, merging groups of ``fan_in``, so each tuple is
        # re-read/re-written at most ceil(log_fan_in(runs)) times.  (The
        # old schedule *prepended* the merged run, re-merging the big
        # accumulated run on every step — a quadratic read schedule.)
        fan_in = max(2, budget // ctx.frame_size)
        passes = 0
        while len(runs) > fan_in:
            passes += 1
            next_runs = []
            for i in range(0, len(runs), fan_in):
                group = runs[i:i + fan_in]
                if len(group) == 1:
                    next_runs.append(group[0])
                else:
                    next_runs.append(
                        self._merge_to_run(ctx, group, heap_key, batched))
            runs = next_runs
        passes += 1                      # the final merge into the output
        self.last_merge_passes = passes
        get_registry().counter("sort.merge_passes").inc(passes)
        out = list(self._merge_iter(ctx, runs, heap_key, batched))
        ctx.cost.tuples_out += len(out)
        return out

    @staticmethod
    def expected_merge_passes(num_runs: int, fan_in: int) -> int:
        """ceil(log_fan_in(num_runs)), the textbook external-merge pass
        count the implementation must match (asserted in tests).
        Computed with integer ceil-division so exact powers of the
        fan-in don't fall victim to float log rounding."""
        passes, count = 0, max(1, num_runs)
        while count > 1:
            count = -(-count // fan_in)
            passes += 1
        return max(1, passes)

    @staticmethod
    def _decorated(run, key):
        """Decorate a run's read-back stream with its sort key, computed
        exactly once per tuple at read time — the merge heap pushes the
        precomputed key instead of recomputing ``key(tup)``.  The run
        file itself stores only tuples (unchanged format), so page
        counts — and therefore simulated I/O — are identical."""
        for tup in run:
            yield key(tup), tup

    def _merge_iter(self, ctx, runs, key, batched=False):
        """Heap-merge ``runs``; every reader is closed in a ``finally``,
        so an early-exiting consumer (LIMIT, a fault mid-merge) releases
        every temp file instead of leaking it."""
        pushes = 0
        try:
            streams = [self._decorated(r, key) for r in runs]
            heap = []
            for rank, stream in enumerate(streams):
                for k, tup in stream:
                    heap.append((k, rank, id(tup), tup))
                    pushes += 1
                    break
            heapq.heapify(heap)
            while heap:
                _, rank, _, tup = heapq.heappop(heap)
                ctx.charge_compare(1)
                yield tup
                for k, nxt in streams[rank]:
                    heapq.heappush(heap, (k, rank, id(nxt), nxt))
                    pushes += 1
                    break
        finally:
            for r in runs:
                r.close()
            if batched and pushes:
                # heap pushes served from a batch-compiled precomputed key
                get_registry().counter("sort.key_cache_hits").inc(pushes)

    def _merge_to_run(self, ctx, runs, key, batched=False):
        writer = RunFileWriter(ctx, "mergerun")
        for tup in self._merge_iter(ctx, runs, key, batched):
            writer.write(tup)
        return writer.finish()

    def __repr__(self):
        arrows = [
            f"${f}{' desc' if d else ''}"
            for f, d in zip(self.fields, self.descending)
        ]
        return f"sort({', '.join(arrows)})"


class TopKSortOp(OperatorDescriptor):
    """ORDER BY + LIMIT fused: keep only the best K tuples in a bounded
    heap (the optimizer's limit-pushdown rewrite targets this)."""

    name = "topk-sort"
    streaming = False     # pipeline breaker (bounded buffer, but reorders)

    def __init__(self, fields: list[int], k: int,
                 descending: list[bool] | None = None):
        self.fields = list(fields)
        self.k = k
        self.descending = list(descending or [False] * len(fields))

    def run(self, ctx, partition, inputs):
        data = inputs[0]
        ctx.charge_cpu(len(data))
        # every input tuple sifts a k-bounded heap: n * ceil(log2 k)
        # comparisons, not n (which undercounted the heap behavior)
        ctx.charge_compare(len(data) * max(1, self.k.bit_length()))
        if ctx.config.executor.batch_execution:
            out = self._topk_batched(data)
        else:
            key = lambda t: order_key(t, self.fields, self.descending)  # noqa: E731
            out = heapq.nsmallest(self.k, data, key=key)
        ctx.cost.tuples_out += len(out)
        return out

    def _topk_batched(self, data):
        """Decorate-select-undecorate: batch-build one key per tuple,
        then let the heap compare ``(key, position, tuple)`` triples —
        the position makes every triple distinct, so ties never reach
        the tuples and stability matches ``nsmallest(key=...)``."""
        if self.descending and all(self.descending):
            # a uniformly-DESC top-k is the largest k under the
            # ascending key; positions descend so earlier input wins ties
            keyfn = compile_order_key(
                self.fields, [False] * len(self.fields), data)
            triples = zip([keyfn(t) for t in data],
                          range(0, -len(data), -1), data)
            best = heapq.nlargest(self.k, triples)
        elif any(self.descending):
            keyfn = compile_order_key(self.fields, self.descending, data)
            triples = zip([keyfn(t) for t in data], range(len(data)), data)
            best = heapq.nsmallest(self.k, triples)
        else:
            triples = zip(tuple_key_many(data, self.fields),
                          range(len(data)), data)
            best = heapq.nsmallest(self.k, triples)
        return [t for _, _, t in best]

    def __repr__(self):
        return f"topk-sort(k={self.k}, {self.fields})"
