"""External sort (paper Fig. 2's "working memory" in action).

The fundamental AsterixDB assumption is that data "can well exceed the size
of main memory, and likewise (at least potentially) for intermediate query
results" [10] — so the sort operator is budgeted: it accumulates at most
``memory_frames * frame_size`` tuples, sorts each batch, spills it as a
sorted run file, and finally k-way-merges the runs (recursively if there
are more runs than merge fan-in).  Experiment E4 sweeps the budget.

The paper also credits university contributions with "much-improved
parallel sorting" (§VII): the parallel plan sorts each partition locally
with this operator and merges globally through a MergeConnector.
"""

from __future__ import annotations

import heapq

from repro.adm.comparators import tuple_key
from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.runfile import RunFileWriter
from repro.observability.metrics import get_registry


class _Reversed:
    """Inverts comparison order for DESC sort fields."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return self.key == other.key


def order_key(tup, fields: list[int], descending: list[bool]):
    """Composite sort key honoring per-field ASC/DESC."""
    parts = []
    for i, desc in zip(fields, descending):
        k = tuple_key((tup[i],))
        parts.append(_Reversed(k) if desc else k)
    return tuple(parts)


class ExternalSortOp(OperatorDescriptor):
    """Budgeted external merge sort of one partition's stream."""

    name = "external-sort"
    streaming = False     # pipeline breaker: output exists only after the
                          # last input tuple has been seen

    def __init__(self, fields: list[int], descending: list[bool] | None = None,
                 memory_frames: int | None = None):
        self.fields = list(fields)
        self.descending = list(descending or [False] * len(fields))
        self.memory_frames = memory_frames
        self.last_run_counts: list[int] = []   # observability for E4
        self.last_merge_passes = 0             # read-back passes, incl. final

    def run(self, ctx, partition, inputs):
        desired = (self.memory_frames if self.memory_frames is not None
                   else ctx.config.node.sort_memory_frames)
        grant = ctx.acquire_memory(desired, label="sort")
        try:
            return self._sort(ctx, inputs[0],
                              max(2, grant.frames * ctx.frame_size))
        finally:
            ctx.release_memory(grant)

    def _sort(self, ctx, data, budget):
        key = lambda t: order_key(t, self.fields, self.descending)  # noqa: E731
        ctx.charge_cpu(len(data))
        if len(data) <= budget:
            # fits in memory: one quicksort, no spill
            out = sorted(data, key=key)
            ctx.charge_compare(len(data) * max(1, len(data).bit_length()))
            self.last_run_counts.append(0)
            ctx.cost.tuples_out += len(out)
            return out
        # run generation
        runs = []
        for start in range(0, len(data), budget):
            chunk = sorted(data[start:start + budget], key=key)
            ctx.charge_compare(len(chunk) * max(1, len(chunk).bit_length()))
            writer = RunFileWriter(ctx, "sortrun")
            for tup in chunk:
                writer.write(tup)
            runs.append(writer.finish())
        self.last_run_counts.append(len(runs))
        # k-way merge under the same budget, measured in runs: classic
        # pass-structured merging — every pass sweeps the current run
        # list once, merging groups of ``fan_in``, so each tuple is
        # re-read/re-written at most ceil(log_fan_in(runs)) times.  (The
        # old schedule *prepended* the merged run, re-merging the big
        # accumulated run on every step — a quadratic read schedule.)
        fan_in = max(2, budget // ctx.frame_size)
        passes = 0
        while len(runs) > fan_in:
            passes += 1
            next_runs = []
            for i in range(0, len(runs), fan_in):
                group = runs[i:i + fan_in]
                if len(group) == 1:
                    next_runs.append(group[0])
                else:
                    next_runs.append(self._merge_to_run(ctx, group, key))
            runs = next_runs
        passes += 1                      # the final merge into the output
        self.last_merge_passes = passes
        get_registry().counter("sort.merge_passes").inc(passes)
        out = list(self._merge_iter(ctx, runs, key))
        ctx.cost.tuples_out += len(out)
        return out

    @staticmethod
    def expected_merge_passes(num_runs: int, fan_in: int) -> int:
        """ceil(log_fan_in(num_runs)), the textbook external-merge pass
        count the implementation must match (asserted in tests).
        Computed with integer ceil-division so exact powers of the
        fan-in don't fall victim to float log rounding."""
        passes, count = 0, max(1, num_runs)
        while count > 1:
            count = -(-count // fan_in)
            passes += 1
        return max(1, passes)

    def _merge_iter(self, ctx, runs, key):
        """Heap-merge ``runs``; every reader is closed in a ``finally``,
        so an early-exiting consumer (LIMIT, a fault mid-merge) releases
        every temp file instead of leaking it."""
        try:
            iters = [iter(r) for r in runs]
            heap = []
            for rank, it in enumerate(iters):
                for tup in it:
                    heap.append((key(tup), rank, id(tup), tup))
                    break
            heapq.heapify(heap)
            while heap:
                _, rank, _, tup = heapq.heappop(heap)
                ctx.charge_compare(1)
                yield tup
                for nxt in iters[rank]:
                    heapq.heappush(heap, (key(nxt), rank, id(nxt), nxt))
                    break
        finally:
            for r in runs:
                r.close()

    def _merge_to_run(self, ctx, runs, key):
        writer = RunFileWriter(ctx, "mergerun")
        for tup in self._merge_iter(ctx, runs, key):
            writer.write(tup)
        return writer.finish()

    def __repr__(self):
        arrows = [
            f"${f}{' desc' if d else ''}"
            for f, d in zip(self.fields, self.descending)
        ]
        return f"sort({', '.join(arrows)})"


class TopKSortOp(OperatorDescriptor):
    """ORDER BY + LIMIT fused: keep only the best K tuples in a bounded
    heap (the optimizer's limit-pushdown rewrite targets this)."""

    name = "topk-sort"
    streaming = False     # pipeline breaker (bounded buffer, but reorders)

    def __init__(self, fields: list[int], k: int,
                 descending: list[bool] | None = None):
        self.fields = list(fields)
        self.k = k
        self.descending = list(descending or [False] * len(fields))

    def run(self, ctx, partition, inputs):
        key = lambda t: order_key(t, self.fields, self.descending)  # noqa: E731
        ctx.charge_cpu(len(inputs[0]))
        ctx.charge_compare(len(inputs[0]))
        out = heapq.nsmallest(self.k, inputs[0], key=key)
        ctx.cost.tuples_out += len(out)
        return out

    def __repr__(self):
        return f"topk-sort(k={self.k}, {self.fields})"
