"""Hyracks runtime operators."""

from repro.hyracks.operators.base import TaskContext
from repro.hyracks.operators.dml import DeleteOp, InsertOp, LoadOp, UpsertOp
from repro.hyracks.operators.group import (
    AggregateCall,
    AggregateOp,
    HashGroupByOp,
    PreclusteredGroupByOp,
)
from repro.hyracks.operators.index_ops import (
    ArrayBTreeSearchOp,
    InvertedSearchOp,
    PrimaryKeySearchOp,
    PrimaryLookupOp,
    SecondaryBTreeSearchOp,
    SecondaryRTreeSearchOp,
)
from repro.hyracks.operators.join import HybridHashJoinOp, NestedLoopJoinOp
from repro.hyracks.operators.result import ResultWriterOp
from repro.hyracks.operators.scan import (
    DatasetScanOp,
    EmptyTupleSourceOp,
    ExternalScanOp,
    InMemorySourceOp,
)
from repro.hyracks.operators.simple import (
    AssignOp,
    DistinctOp,
    LimitOp,
    MaterializeOp,
    ProjectOp,
    RunningAggregateOp,
    SelectOp,
    UnionAllOp,
    UnnestOp,
)
from repro.hyracks.operators.sort import ExternalSortOp, TopKSortOp

__all__ = [
    "AggregateCall",
    "AggregateOp",
    "AssignOp",
    "DatasetScanOp",
    "DeleteOp",
    "DistinctOp",
    "EmptyTupleSourceOp",
    "ExternalScanOp",
    "ExternalSortOp",
    "HashGroupByOp",
    "HybridHashJoinOp",
    "InMemorySourceOp",
    "InsertOp",
    "ArrayBTreeSearchOp",
    "InvertedSearchOp",
    "LimitOp",
    "LoadOp",
    "MaterializeOp",
    "NestedLoopJoinOp",
    "PreclusteredGroupByOp",
    "PrimaryKeySearchOp",
    "PrimaryLookupOp",
    "ProjectOp",
    "ResultWriterOp",
    "RunningAggregateOp",
    "SecondaryBTreeSearchOp",
    "SecondaryRTreeSearchOp",
    "SelectOp",
    "TaskContext",
    "TopKSortOp",
    "UnionAllOp",
    "UnnestOp",
    "UpsertOp",
]
